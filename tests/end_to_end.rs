//! End-to-end integration: planner → tables → dispatcher → simulator.
//!
//! These tests exercise the full reproduction stack the way the paper's
//! evaluation does — plan a high-density host, run guest workloads under a
//! scheduler on the simulated machine, and check the *guarantees* Tableau
//! advertises: a minimum share of CPU time and a hard bound on scheduling
//! latency for every vCPU, regardless of what the rest of the system does.

use experiments::config::{build_scenario, Background, SchedKind};
use rtsched::time::Nanos;
use schedulers::Tableau;
use tableau_core::planner::{plan, PlannerOptions};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
use workloads::{CacheThrash, IoStress};
use xensim::sched::BusyLoop;
use xensim::{Machine, Sim, VcpuId};

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

/// The paper's core guarantee, adversarially: every capped vCPU is a CPU
/// hog, the machine is fully reserved, and still each vCPU receives its
/// utilization and respects its latency bound.
#[test]
fn tableau_guarantees_hold_under_full_load() {
    let machine = Machine::small(3);
    let (mut sim, _v) = build_scenario(
        machine,
        4,
        SchedKind::Tableau,
        true,
        Box::new(BusyLoop),
        Background::Cpu, // every background VM is a hog too
    );
    // Wake the vantage (it starts blocked) so all 12 vCPUs compete.
    sim.push_external(Nanos(1), VcpuId(0), 0);
    sim.run_until(Nanos::from_secs(2));

    for i in 0..12u32 {
        let s = sim.stats().vcpu(VcpuId(i));
        // 25% of 2 s = 500 ms, minus per-slot overheads.
        assert!(
            s.service > ms(480),
            "vCPU {i} got only {} of its 500 ms reservation",
            s.service
        );
        assert!(
            s.delay_max <= ms(20),
            "vCPU {i} delay {} exceeds the 20 ms goal",
            s.delay_max
        );
    }
}

/// Mixed tiers on one host: a tight-latency tier coexists with bulk VMs,
/// each seeing its own configured bound.
#[test]
fn mixed_tiers_get_tier_appropriate_latency() {
    let mut host = HostConfig::new(2);
    host.add_vm(VmSpec::uniform(
        "tight",
        2,
        VcpuSpec::capped(Utilization::from_percent(10), ms(2)),
    ));
    host.add_vm(VmSpec::uniform(
        "bulk",
        2,
        VcpuSpec::capped(Utilization::from_percent(60), ms(100)),
    ));
    let p = plan(&host, &PlannerOptions::default()).unwrap();

    let machine = Machine::small(2);
    let mut sim = Sim::new(machine, Box::new(Tableau::from_plan(&p)));
    for i in 0..4 {
        sim.add_vcpu(Box::new(BusyLoop), i % 2, true);
    }
    sim.run_until(Nanos::from_secs(1));

    for i in 0..2u32 {
        let s = sim.stats().vcpu(VcpuId(i));
        assert!(s.delay_max <= ms(2), "tight vCPU {i}: {}", s.delay_max);
        assert!(s.service > ms(95), "tight vCPU {i}: {}", s.service);
    }
    for i in 2..4u32 {
        let s = sim.stats().vcpu(VcpuId(i));
        assert!(s.delay_max <= ms(100), "bulk vCPU {i}: {}", s.delay_max);
        assert!(s.service > ms(580), "bulk vCPU {i}: {}", s.service);
    }
}

/// Performance isolation: a vantage VM's service under Tableau is the same
/// whether its neighbours are idle or hostile.
#[test]
fn tableau_isolates_against_background_interference() {
    let service_with = |bg: Background| -> Nanos {
        let machine = Machine::small(2);
        let (mut sim, v) =
            build_scenario(machine, 4, SchedKind::Tableau, true, Box::new(BusyLoop), bg);
        sim.push_external(Nanos(1), v, 0);
        sim.run_until(Nanos::from_secs(1));
        sim.stats().vcpu(v).service
    };
    let idle = service_with(Background::None);
    let io = service_with(Background::Io);
    let cpu = service_with(Background::Cpu);
    let spread = |a: Nanos, b: Nanos| {
        (a.as_nanos() as f64 - b.as_nanos() as f64).abs() / a.as_nanos() as f64
    };
    assert!(
        spread(idle, io) < 0.02,
        "IO bg changed service: {idle} vs {io}"
    );
    assert!(
        spread(idle, cpu) < 0.02,
        "CPU bg changed service: {idle} vs {cpu}"
    );
}

/// Every scheduler in the repository runs the full high-density scenario
/// without violating basic sanity (no starvation of a reserved hog).
#[test]
fn all_schedulers_serve_a_dense_host() {
    for (kind, capped) in [
        (SchedKind::Credit, true),
        (SchedKind::Credit2, false),
        (SchedKind::Rtds, true),
        (SchedKind::Tableau, true),
    ] {
        let machine = Machine::small(2);
        let (mut sim, v) =
            build_scenario(machine, 4, kind, capped, Box::new(BusyLoop), Background::Io);
        sim.push_external(Nanos(1), v, 0);
        sim.run_until(Nanos::from_secs(1));
        let s = sim.stats().vcpu(v);
        assert!(
            s.service > ms(150),
            "{} starved the vantage: {}",
            kind.label(),
            s.service
        );
    }
}

/// The simulator's per-vCPU maximum dispatch delay for a CPU-bound probe
/// reflects each scheduler's character: bounded for Tableau/RTDS, bursty
/// for Credit under caps.
#[test]
fn delay_characters_match_the_paper() {
    let max_delay = |kind: SchedKind| -> Nanos {
        let machine = Machine::small(2);
        let (mut sim, v) =
            build_scenario(machine, 4, kind, true, Box::new(BusyLoop), Background::Io);
        sim.push_external(Nanos(1), v, 0);
        sim.run_until(Nanos::from_secs(2));
        sim.stats().vcpu(v).delay_max
    };
    let tableau = max_delay(SchedKind::Tableau);
    let credit = max_delay(SchedKind::Credit);
    assert!(tableau <= ms(20), "Tableau {tableau}");
    assert!(
        credit > tableau,
        "Credit ({credit}) should show larger worst-case delays than Tableau ({tableau})"
    );
}

/// Work conservation end to end: with idle neighbours, an uncapped VM under
/// Tableau consumes nearly the whole core via the second-level scheduler,
/// while a capped one stays at its reservation.
#[test]
fn second_level_scheduler_is_work_conserving() {
    let service = |capped: bool| -> Nanos {
        let mut host = HostConfig::new(1);
        let u = Utilization::from_percent(25);
        let spec = if capped {
            VcpuSpec::capped(u, ms(20))
        } else {
            VcpuSpec::new(u, ms(20))
        };
        for i in 0..4 {
            host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
        }
        let p = plan(&host, &PlannerOptions::default()).unwrap();
        let mut sim = Sim::new(Machine::small(1), Box::new(Tableau::from_plan(&p)));
        let v = sim.add_vcpu(Box::new(BusyLoop), 0, true);
        for _ in 0..3 {
            sim.add_vcpu(Box::new(xensim::sched::IdleGuest), 0, false);
        }
        sim.run_until(Nanos::from_secs(1));
        sim.stats().vcpu(v).service
    };
    let capped = service(true);
    let uncapped = service(false);
    assert!(capped < ms(260), "capped VM exceeded reservation: {capped}");
    assert!(uncapped > ms(900), "second level unused: {uncapped}");
}

/// Multi-vCPU VMs: each vCPU of an SMP VM carries its own reservation and
/// latency bound, independent of where the planner placed it.
#[test]
fn multi_vcpu_vms_get_per_vcpu_guarantees() {
    let mut host = HostConfig::new(2);
    host.add_vm(VmSpec::uniform(
        "smp",
        4,
        VcpuSpec::capped(Utilization::from_percent(30), ms(15)),
    ));
    host.add_vm(VmSpec::uniform(
        "small",
        2,
        VcpuSpec::capped(Utilization::from_percent(20), ms(40)),
    ));
    let p = plan(&host, &PlannerOptions::default()).unwrap();
    let machine = Machine::small(2);
    let mut sim = Sim::new(machine, Box::new(Tableau::from_plan(&p)));
    for i in 0..6 {
        sim.add_vcpu(Box::new(BusyLoop), i % 2, true);
    }
    sim.run_until(Nanos::from_secs(1));
    for i in 0..4u32 {
        let s = sim.stats().vcpu(VcpuId(i));
        assert!(s.service > ms(290), "SMP vCPU {i}: {}", s.service);
        assert!(s.delay_max <= ms(15), "SMP vCPU {i}: {}", s.delay_max);
    }
    for i in 4..6u32 {
        let s = sim.stats().vcpu(VcpuId(i));
        assert!(s.service > ms(190), "small vCPU {i}: {}", s.service);
        assert!(s.delay_max <= ms(40), "small vCPU {i}: {}", s.delay_max);
    }
}

/// Seed robustness: the headline latency bound does not depend on the
/// particular random ping schedule — any seed observes the same Tableau
/// ceiling while Credit's tail varies with the workload's luck.
#[test]
fn tableau_bound_is_seed_invariant() {
    use workloads::ping::{ping_arrivals, PingResponder};
    for seed in [1u64, 99, 2018] {
        let arrivals = ping_arrivals(4, 120, Nanos::from_millis(10), seed);
        let machine = Machine::small(2);
        let (mut sim, v) = build_scenario(
            machine,
            4,
            SchedKind::Tableau,
            true,
            Box::new(PingResponder::new()),
            Background::Io,
        );
        for &t in &arrivals {
            sim.push_external(t, v, 0);
        }
        sim.run_until(*arrivals.last().unwrap() + ms(500));
        let max = sim
            .workload_mut(v)
            .as_any()
            .downcast_ref::<PingResponder>()
            .unwrap()
            .latencies
            .max();
        assert!(max <= ms(21), "seed {seed}: {max}");
    }
}

/// Sec. 7.5's migration asymmetry, measured via the trace framework: under
/// Tableau, non-split vCPUs never migrate (strictly core-local tables),
/// while under the global RTDS "all vCPUs are (non-deterministically)
/// subject to occasional migration".
#[test]
fn migration_asymmetry_between_tableau_and_rtds() {
    let migrations = |kind: SchedKind| -> (u64, u64) {
        let machine = Machine::small(3);
        let (mut sim, v) = build_scenario(
            machine,
            4,
            kind,
            true,
            Box::new(IoStress::paper_default()),
            Background::Io,
        );
        sim.enable_tracing();
        sim.push_external(Nanos(1), v, 0);
        sim.run_until(Nanos::from_millis(500));
        let summary = xensim::TraceSummary::from_trace(sim.trace());
        let total: u64 = summary.migrations.iter().map(|&(_, n)| n).sum();
        (summary.migrations_of(xensim::VcpuId(v.0)), total)
    };
    let (tableau_vantage, _tableau_total) = migrations(SchedKind::Tableau);
    let (_rtds_vantage, rtds_total) = migrations(SchedKind::Rtds);
    assert_eq!(
        tableau_vantage, 0,
        "a non-split vCPU migrated under Tableau"
    );
    assert!(
        rtds_total > 100,
        "global EDF should migrate vCPUs freely: {rtds_total}"
    );
}

/// Cross-crate workload sanity: the I/O stressor drives the expected
/// scheduler-invocation pressure that the overhead experiments rely on.
#[test]
fn io_stress_produces_scheduler_pressure() {
    let machine = Machine::small(1);
    let (mut sim, v) = build_scenario(
        machine,
        4,
        SchedKind::Tableau,
        true,
        Box::new(IoStress::paper_default()),
        Background::Io,
    );
    sim.push_external(Nanos(1), v, 0);
    sim.run_until(Nanos::from_secs(1));
    let ops = sim.stats().ops;
    assert!(
        ops.get(xensim::OpKind::Schedule).count > 5_000,
        "only {} decisions per second",
        ops.get(xensim::OpKind::Schedule).count
    );
    // And the thrash never bleeds into guarantee violations.
    assert!(sim.stats().vcpu(v).delay_max <= ms(20));
    let _ = CacheThrash; // referenced for the cross-crate import check
}
