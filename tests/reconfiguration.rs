//! Reconfiguration end to end: the planner pushes a new table while the
//! system runs (the paper's VM creation/teardown path, Secs. 3 and 6).
//!
//! The defining property of Tableau's table-switch protocol is that the
//! running system keeps its guarantees *through* the switch: no core ever
//! runs an inconsistent mix of tables, the newly admitted VM starts
//! receiving service only after the synchronized switch point, and the
//! surviving VMs' reservations continue seamlessly.

use rtsched::time::Nanos;
use schedulers::Tableau;
use tableau_core::planner::{plan, PlannerOptions};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
use xensim::sched::BusyLoop;
use xensim::{Machine, Sim, VcpuId};

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

fn host_with(n: usize) -> HostConfig {
    let mut host = HostConfig::new(2);
    let spec = VcpuSpec::capped(Utilization::from_percent(25), ms(20));
    for i in 0..n {
        host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
    }
    host
}

#[test]
fn vm_admission_via_table_switch() {
    // Start with 6 VMs; the 7th and 8th will be admitted at runtime.
    let initial = plan(&host_with(6), &PlannerOptions::default()).unwrap();
    let expanded = plan(&host_with(8), &PlannerOptions::default()).unwrap();

    let machine = Machine::small(2);
    let mut sim = Sim::new(machine, Box::new(Tableau::from_plan(&initial)));
    // All 8 vCPUs exist as guests; the last two are runnable but have no
    // reservations until the new table lands.
    for i in 0..8 {
        sim.add_vcpu(Box::new(BusyLoop), i % 2, true);
    }

    // Phase 1: run 500 ms on the initial table.
    sim.run_until(ms(500));
    let before_7 = sim.stats().vcpu(VcpuId(7)).service;
    assert_eq!(
        before_7,
        Nanos::ZERO,
        "unadmitted VM ran before its table existed"
    );

    // Phase 2: the planner pushes the expanded table.
    let now = sim.now();
    let switch_at = sim
        .scheduler_mut()
        .as_any()
        .downcast_mut::<Tableau>()
        .unwrap()
        .install_table(expanded.table.clone(), now)
        .expect("expanded table is well-formed");
    assert!(switch_at > now);
    // The protocol switches at the end of the round after next: within two
    // table lengths.
    assert!(switch_at <= now + expanded.table.len() * 2);

    // Phase 3: run well past the switch.
    sim.run_until(switch_at + Nanos::from_secs(1));

    // The admitted VMs now receive their 25% reservations.
    for i in 6..8u32 {
        let s = sim.stats().vcpu(VcpuId(i));
        let expected = Nanos((1e9 * 0.25) as u64);
        assert!(
            s.service > expected - ms(30),
            "admitted vCPU {i} got {} after the switch",
            s.service
        );
    }
    // Survivors kept their reservations across the whole run
    // (~1.5s + pre-switch slack at 25% each).
    let total = switch_at + Nanos::from_secs(1);
    for i in 0..6u32 {
        let s = sim.stats().vcpu(VcpuId(i));
        let floor = Nanos((total.as_nanos() as f64 * 0.24) as u64);
        assert!(
            s.service > floor,
            "survivor vCPU {i} lost service across the switch: {} of {}",
            s.service,
            total
        );
        // And the latency bound held throughout, including the switch.
        assert!(s.delay_max <= ms(21), "vCPU {i} delay {}", s.delay_max);
    }
}

#[test]
fn vm_teardown_frees_capacity_for_the_second_level() {
    // 8 uncapped VMs; after teardown of 4, the survivors (uncapped) soak up
    // the freed capacity through the second-level scheduler.
    let full = {
        let mut host = HostConfig::new(2);
        let spec = VcpuSpec::new(Utilization::from_percent(25), ms(20));
        for i in 0..8 {
            host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
        }
        plan(&host, &PlannerOptions::default()).unwrap()
    };
    let shrunk = {
        let mut host = HostConfig::new(2);
        let spec = VcpuSpec::new(Utilization::from_percent(25), ms(20));
        for i in 0..4 {
            host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
        }
        plan(&host, &PlannerOptions::default()).unwrap()
    };

    let machine = Machine::small(2);
    let mut sim = Sim::new(machine, Box::new(Tableau::from_plan(&full)));
    for i in 0..8 {
        sim.add_vcpu(Box::new(BusyLoop), i % 2, true);
    }
    sim.run_until(ms(300));
    let now = sim.now();
    let switch_at = sim
        .scheduler_mut()
        .as_any()
        .downcast_mut::<Tableau>()
        .unwrap()
        .install_table(shrunk.table.clone(), now)
        .expect("shrunk table is well-formed");
    let mark = switch_at + ms(100);
    sim.run_until(mark);
    let at_mark: Vec<Nanos> = (0..4u32)
        .map(|i| sim.stats().vcpu(VcpuId(i)).service)
        .collect();
    sim.run_until(mark + Nanos::from_secs(1));

    // Survivors now split 2 cores 4 ways: ~50% each rather than 25%.
    for (i, &base) in at_mark.iter().enumerate() {
        let gained = sim.stats().vcpu(VcpuId(i as u32)).service - base;
        assert!(
            gained > ms(400),
            "survivor {i} gained only {gained} after teardown"
        );
    }
}

#[test]
fn switch_preserves_consistency_under_repeated_pushes() {
    // Hammer the switch path: push a new table every ~150 ms and check the
    // guarantees never lapse.
    let machine = Machine::small(2);
    let p = plan(&host_with(8), &PlannerOptions::default()).unwrap();
    let mut sim = Sim::new(machine, Box::new(Tableau::from_plan(&p)));
    for i in 0..8 {
        sim.add_vcpu(Box::new(BusyLoop), i % 2, true);
    }
    let mut t = ms(150);
    for _ in 0..8 {
        sim.run_until(t);
        let now = sim.now();
        let table = plan(&host_with(8), &PlannerOptions::default())
            .unwrap()
            .table;
        sim.scheduler_mut()
            .as_any()
            .downcast_mut::<Tableau>()
            .unwrap()
            .install_table(table, now)
            .expect("replanned table is well-formed");
        t += ms(150);
    }
    sim.run_until(t + Nanos::from_secs(1));
    for i in 0..8u32 {
        let s = sim.stats().vcpu(VcpuId(i));
        assert!(
            s.delay_max <= ms(21),
            "vCPU {i} delay {} under repeated switches",
            s.delay_max
        );
        assert!(s.service > Nanos((t.as_nanos() as f64 * 0.23) as u64));
    }
}
