//! Web-farm throughput sweep: SLA-aware peak throughput per scheduler.
//!
//! A miniature of the paper's Sec. 7.4 experiment: a vantage VM serves
//! 1 KiB files over HTTPS while the other VMs run an I/O-heavy background;
//! an open-loop wrk2-style generator sweeps the request rate and the
//! highest rate whose p99 satisfies a 100 ms SLA is each scheduler's
//! "SLA-aware peak throughput".
//!
//! Run with: `cargo run --release --example webfarm`

use experiments::config::{build_scenario, Background, SchedKind};
use rtsched::time::Nanos;
use workloads::wrk2::{constant_rate_arrivals, sla_peak_throughput, LoadPoint};
use workloads::HttpServer;
use xensim::Machine;

fn measure(machine: Machine, kind: SchedKind, rate: f64, duration: Nanos) -> LoadPoint {
    let (mut sim, vantage) = build_scenario(
        machine,
        4,
        kind,
        true,
        Box::new(HttpServer::new(1024)),
        Background::Io,
    );
    for t in constant_rate_arrivals(rate, duration) {
        sim.push_external(t, vantage, 0);
    }
    sim.run_until(duration);
    let server = sim
        .workload_mut(vantage)
        .as_any()
        .downcast_ref::<HttpServer>()
        .unwrap();
    LoadPoint::from_histogram(rate, server.completed, duration, &server.latencies)
}

fn main() {
    let machine = Machine::small(4);
    let duration = Nanos::from_secs(2);
    let rates = [800.0, 1000.0, 1200.0, 1400.0, 1600.0];

    println!("4 cores, 16 capped VMs, vantage nginx serving 1 KiB over HTTPS, IO BG\n");
    for kind in [SchedKind::Credit, SchedKind::Rtds, SchedKind::Tableau] {
        println!("--- {} ---", kind.label());
        println!("offered   achieved   mean(ms)   p99(ms)");
        let mut points = Vec::new();
        for &rate in &rates {
            let p = measure(machine, kind, rate, duration);
            println!(
                "{:>7.0}   {:>8.1}   {:>8.2}   {:>7.2}",
                p.offered_rps, p.achieved_rps, p.mean_ms, p.p99_ms
            );
            points.push(p);
        }
        println!(
            "SLA-aware peak (p99 <= 100 ms): {:.0} req/s\n",
            sla_peak_throughput(&points, 100.0)
        );
    }
}
