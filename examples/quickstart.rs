//! Quickstart: plan a Tableau scheduling table and watch the dispatcher
//! enact it.
//!
//! Builds the paper's canonical host shape — four 25%-utilization,
//! 20-ms-latency VMs per core — on a small two-core machine, generates a
//! verified scheduling table, prints it, and then walks the O(1) dispatcher
//! through one table round.
//!
//! Run with: `cargo run --release --example quickstart`

use rtsched::time::Nanos;
use tableau_core::planner::{plan, PlannerOptions};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};

fn main() {
    // 1. Describe the host: 2 cores, 8 single-vCPU VMs (4 per core), each
    // guaranteed 25% of a core with at most 20 ms of scheduling latency.
    let mut host = HostConfig::new(2);
    let spec = VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20));
    for i in 0..8 {
        host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
    }

    // 2. Run the planner (this is what executes on VM create/teardown).
    let plan = plan(&host, &PlannerOptions::default()).expect("admissible configuration");

    println!("Planned with stage: {:?}", plan.stage);
    println!(
        "Table length: {} ({} allocations, {} bytes compiled)\n",
        plan.table.len(),
        (0..plan.table.n_cores())
            .map(|c| plan.table.cpu(c).allocations().len())
            .sum::<usize>(),
        tableau_core::binary::encoded_size(&plan.table),
    );

    // 3. Per-vCPU parameters the planner chose, and the latency each vCPU
    // will actually observe (its worst-case service gap in the table).
    println!("vCPU  period      budget      worst blackout");
    for p in &plan.params {
        println!(
            "{:>4}  {:>10}  {:>10}  {:>10}",
            p.vcpu.to_string(),
            p.period.to_string(),
            p.cost.to_string(),
            plan.blackout_of(p.vcpu).unwrap().to_string(),
        );
    }

    // 4. The first few allocations of core 0's table.
    println!("\nCore 0 table (first 8 allocations):");
    for a in plan.table.cpu(0).allocations().iter().take(8) {
        println!(
            "  [{:>12} .. {:>12})  {}",
            a.start.to_string(),
            a.end.to_string(),
            a.vcpu
        );
    }

    // 5. Dispatch: who runs on core 0 through the first 2 ms? Each lookup
    // is O(1) — a slice-table index plus at most two allocation records.
    println!("\nDispatch walk on core 0:");
    let mut now = Nanos::ZERO;
    let mut steps = 0;
    while now < Nanos::from_millis(26) && steps < 8 {
        let slot = plan.table.lookup(0, now);
        match slot.vcpu() {
            Some(v) => println!(
                "  t={:>9}  run  {v} until {}",
                now.to_string(),
                slot.until()
            ),
            None => println!(
                "  t={:>9}  idle      until {}",
                now.to_string(),
                slot.until()
            ),
        }
        now = plan.table.slot_end_abs(0, now);
        steps += 1;
    }
    println!(
        "\n(the schedule repeats every {} — that is the whole hot path)",
        plan.table.len()
    );
}
