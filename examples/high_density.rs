//! High-density latency comparison: Tableau vs. Credit under I/O churn.
//!
//! Recreates the paper's headline predictability result (Sec. 7.3) at
//! example scale: a vantage VM answering pings while 15 background VMs
//! hammer the hypervisor with I/O, four VMs per core. Under Credit the
//! maximum ping latency blows up; under Tableau it stays under the 20 ms
//! latency goal no matter what the background does.
//!
//! Run with: `cargo run --release --example high_density`

use experiments::config::{build_scenario, Background, SchedKind};
use rtsched::time::Nanos;
use workloads::ping::{ping_arrivals, PingResponder};
use xensim::Machine;

fn main() {
    let machine = Machine::small(4);
    let arrivals = ping_arrivals(4, 500, Nanos::from_millis(20), 42);
    let end = *arrivals.last().unwrap() + Nanos::from_millis(500);

    println!("4 cores, 16 VMs (4 per core), capped at 25%, I/O-heavy background");
    println!("{} pings to the vantage VM\n", arrivals.len());
    println!("scheduler   avg latency     max latency");

    for kind in [SchedKind::Credit, SchedKind::Rtds, SchedKind::Tableau] {
        let (mut sim, vantage) = build_scenario(
            machine,
            4,
            kind,
            true,
            Box::new(PingResponder::new()),
            Background::Io,
        );
        for &t in &arrivals {
            sim.push_external(t, vantage, 0);
        }
        sim.run_until(end);
        let responder = sim
            .workload_mut(vantage)
            .as_any()
            .downcast_ref::<PingResponder>()
            .unwrap();
        println!(
            "{:>9}   {:>8.2} ms   {:>10.2} ms",
            kind.label(),
            responder.latencies.mean().as_millis_f64(),
            responder.latencies.max().as_millis_f64(),
        );
    }

    println!("\nTableau's maximum is bounded by the 20 ms latency goal it was");
    println!("configured with — the table enforces it, no heuristics involved.");
}
