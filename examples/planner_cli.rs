//! Planner CLI: the userspace planner daemon, as a one-shot tool.
//!
//! In the Xen implementation the planner is a dom0 daemon that takes the
//! host's VM configuration and pushes a compiled table via hypercall. This
//! example is the same pipeline as a CLI: a JSON host description in, a
//! plan report (and optionally the compiled binary table) out.
//!
//! Run with:
//!
//! ```bash
//! cargo run --release --example planner_cli -- --demo            # built-in config
//! cargo run --release --example planner_cli -- host.json        # your config
//! cargo run --release --example planner_cli -- host.json out.tbl # also write binary
//! ```
//!
//! Host JSON format (utilization in parts-per-million, latency in ns):
//!
//! ```json
//! {
//!   "n_cores": 4,
//!   "vms": [
//!     { "name": "web", "vcpus": [
//!       { "utilization": 250000, "latency": 20000000, "capped": false } ] }
//!   ]
//! }
//! ```

use std::io::Write;

use tableau_core::binary::encode;
use tableau_core::planner::{plan, PlannerOptions};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};

use rtsched::time::Nanos;

fn demo_host() -> HostConfig {
    let mut host = HostConfig::new(4);
    // A mixed fleet: a latency-sensitive tier, a bulk tier, one dedicated.
    host.add_vm(VmSpec::uniform(
        "latency-tier",
        4,
        VcpuSpec::new(Utilization::from_percent(10), Nanos::from_millis(2)),
    ));
    host.add_vm(VmSpec::uniform(
        "bulk-tier",
        4,
        VcpuSpec::capped(Utilization::from_percent(40), Nanos::from_millis(100)),
    ));
    host.add_vm(VmSpec::uniform(
        "dedicated",
        1,
        VcpuSpec::new(Utilization::FULL, Nanos::from_millis(100)),
    ));
    host
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: planner_cli (--demo | <host.json>) [out.tbl]");
        return;
    }

    let host: HostConfig = if args.first().map(|s| s.as_str()) == Some("--demo") || args.is_empty()
    {
        demo_host()
    } else {
        let text = std::fs::read_to_string(&args[0]).expect("read host config");
        serde_json::from_str(&text).expect("parse host config")
    };

    println!(
        "Planning {} vCPUs ({:.2} cores reserved) on {} cores...",
        host.vcpus().len(),
        host.total_utilization(),
        host.n_cores
    );

    let t0 = std::time::Instant::now();
    let plan = match plan(&host, &PlannerOptions::default()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("planning failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = t0.elapsed();

    println!(
        "stage: {:?}   time: {:.2} ms",
        plan.stage,
        elapsed.as_secs_f64() * 1e3
    );
    println!("split vCPUs: {:?}", plan.split_vcpus);
    println!(
        "coalescing: removed {} allocations, {} total service donated",
        plan.coalesce.removed,
        plan.coalesce.total_lost()
    );
    println!("\nvCPU  dedicated  period        budget        worst blackout");
    for p in &plan.params {
        println!(
            "{:>4}  {:>9}  {:>12}  {:>12}  {:>12}",
            p.vcpu.to_string(),
            p.dedicated,
            p.period.to_string(),
            p.cost.to_string(),
            plan.blackout_of(p.vcpu).unwrap().to_string(),
        );
    }

    let bytes = encode(&plan.table);
    println!("\ncompiled table: {} bytes", bytes.len());
    if let Some(out) = args.get(1) {
        let mut f = std::fs::File::create(out).expect("create output file");
        f.write_all(&bytes).expect("write table");
        println!("written to {out}");
    }
}
