//! Container scheduling with Tableau (the paper's Sec. 8 outlook).
//!
//! "The Tableau approach can be easily applied to schedule containers
//! instead of vCPUs, provided the containers are sufficiently long-running
//! ... combined with container-orchestration tools, Tableau may be used to
//! declaratively specify performance requirements of containers running on
//! a cluster." This example plays that out: a node runs a fleet of
//! containers with declarative `(cpu, latency)` requirements; deployments
//! arrive and leave, and each change is handled by *incremental
//! replanning* — only the cores the change touches get new tables, which is
//! what makes Tableau viable at container churn rates.
//!
//! Run with: `cargo run --release --example containers`

use rtsched::time::Nanos;
use tableau_core::incremental::plan_incremental;
use tableau_core::planner::{plan, Plan, PlannerOptions};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
use tableau_core::viz::{render_gantt, render_legend};

/// A declarative container requirement, kubernetes-style.
struct ContainerSpec {
    name: &'static str,
    /// CPU request in millicores (1000 = one core).
    millicores: u32,
    /// Maximum tolerable scheduling latency.
    latency: Nanos,
}

fn host_for(n_cores: usize, fleet: &[ContainerSpec]) -> HostConfig {
    let mut host = HostConfig::new(n_cores);
    for c in fleet {
        host.add_vm(VmSpec::uniform(
            c.name,
            1,
            // Containers are work-conserving by default (uncapped).
            VcpuSpec::new(Utilization::from_ppm(c.millicores * 1_000), c.latency),
        ));
    }
    host
}

fn show(title: &str, plan: &Plan) {
    println!("--- {title} ---");
    println!("{}", render_gantt(&plan.table, 72));
    println!("{}", render_legend(&plan.table));
}

fn main() {
    let ms = Nanos::from_millis;
    let n_cores = 4;

    // Initial deployment: a latency-sensitive API tier plus batch workers.
    let mut fleet = vec![
        ContainerSpec {
            name: "api-0",
            millicores: 300,
            latency: ms(5),
        },
        ContainerSpec {
            name: "api-1",
            millicores: 300,
            latency: ms(5),
        },
        ContainerSpec {
            name: "worker-0",
            millicores: 700,
            latency: ms(100),
        },
        ContainerSpec {
            name: "worker-1",
            millicores: 700,
            latency: ms(100),
        },
        ContainerSpec {
            name: "worker-2",
            millicores: 700,
            latency: ms(100),
        },
        ContainerSpec {
            name: "logship",
            millicores: 100,
            latency: ms(50),
        },
    ];

    let opts = PlannerOptions {
        peephole: true,
        ..PlannerOptions::default()
    };
    let mut prev_host = host_for(n_cores, &fleet);
    let mut prev_plan = plan(&prev_host, &opts).expect("fleet fits the node");
    show(
        "initial deployment (6 containers, 2.8 cores requested)",
        &prev_plan,
    );

    // A rolling deploy adds a canary.
    fleet.push(ContainerSpec {
        name: "api-canary",
        millicores: 300,
        latency: ms(5),
    });
    let host = host_for(n_cores, &fleet);
    let t0 = std::time::Instant::now();
    let (p, report) = plan_incremental(&prev_host, &prev_plan, &host, &opts).expect("canary fits");
    println!(
        "deploy api-canary: replanned cores {:?}, reused {:?} ({} us)\n",
        report.replanned_cores,
        report.reused_cores,
        t0.elapsed().as_micros()
    );
    show("after canary deploy", &p);
    prev_host = host;
    prev_plan = p;

    // Scale the batch tier down.
    fleet.retain(|c| c.name != "worker-2");
    let host = host_for(n_cores, &fleet);
    let t0 = std::time::Instant::now();
    let (p, report) =
        plan_incremental(&prev_host, &prev_plan, &host, &opts).expect("shrink always fits");
    println!(
        "scale down workers: replanned cores {:?}, reused {:?} ({} us)\n",
        report.replanned_cores,
        report.reused_cores,
        t0.elapsed().as_micros()
    );
    show("after scale-down", &p);

    // Every container's declared latency bound, verified from the table.
    println!("container     requested    guaranteed blackout");
    for (i, c) in fleet.iter().enumerate() {
        let vcpu = tableau_core::vcpu::VcpuId(i as u32);
        println!(
            "{:>11}   {:>7}m     {}",
            c.name,
            c.millicores,
            p.blackout_of(vcpu).unwrap()
        );
    }
}
