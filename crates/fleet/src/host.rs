//! One fleet host: the single-host Tableau stack plus control-plane state.

use std::sync::Arc;

use rtsched::time::Nanos;
use schedulers::Tableau;
use tableau_core::audit::TableAuditor;
use tableau_core::planner::Plan;
use tableau_core::table::Table;
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
use workloads::churn::Flavor;
use xensim::sched::BusyLoop;
use xensim::{EngineKind, Machine, Sim};

/// Control-plane view of one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostState {
    /// Serving traffic; a placement target.
    Online,
    /// In a degradation window: up (its simulator keeps running) but not a
    /// placement target, and its table installs are deferred.
    Degraded,
    /// Crashed; restarts empty at `until`.
    Down {
        /// Absolute fleet time of the restart.
        until: Nanos,
    },
}

/// One tenant VM placed on a host (control-plane bookkeeping).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Tenant {
    pub vm: u64,
    pub flavor: Flavor,
}

/// Per-host state: the simulated stack plus the install pipeline.
pub(crate) struct FleetHost {
    pub id: usize,
    pub state: HostState,
    pub tenants: Vec<Tenant>,
    /// Sum of tenant demand in ppm of one core (vcpus × per-vCPU ppm).
    pub committed_ppm: u64,
    /// The config `plan` was computed from (the incremental rung's
    /// baseline).
    pub host_cfg: HostConfig,
    /// Current target plan (probes + tenants). The installed table lags it
    /// while an install is pending.
    pub plan: Arc<Plan>,
    /// The simulator; `None` while the host is down.
    pub sim: Option<Sim>,
    /// Fleet time at which the current simulator was born (restarted hosts
    /// run their simulator in local time `now - epoch_base`).
    pub epoch_base: Nanos,
    /// Whether `plan` still needs to be installed into the dispatcher.
    pub dirty: bool,
    /// Admissions waiting for their first committed install on this host
    /// (`(vm, requested_at)`), for admission-to-install latency.
    pub awaiting: Vec<(u64, Nanos)>,
    /// Consecutive failed install attempts for the current dirty plan.
    pub install_attempts: u32,
    /// Earliest fleet time of the next install attempt (backoff).
    pub next_install_try: Nanos,
    /// Install-time fingerprints of the table the control plane believes
    /// is installed; the per-epoch audit checks the live table against it.
    pub auditor: TableAuditor,
    /// Corruptions injected since the audit last ran clean (drained into
    /// the detection counter the epoch the audit flags them).
    pub pending_corruptions: u64,
    /// Whether the audit has flagged the live table and a repair install
    /// is in flight; repeat violations of the same corruption are expected
    /// and not re-counted.
    pub audit_flagged: bool,
}

/// The per-core probe reservation every host carries (a stand-in for
/// dom0/agents): one capped single-vCPU VM per core. Probes come *first*
/// in every host config, so their vCPU ids are stably `0..n_cores` across
/// arbitrary tenant churn — the property the sim-table masking relies on.
pub(crate) fn probe_config(n_cores: usize, probe: VcpuSpec) -> HostConfig {
    let mut cfg = HostConfig::new(n_cores);
    for i in 0..n_cores {
        cfg.add_vm(VmSpec::uniform(format!("probe{i}"), 1, probe));
    }
    cfg
}

/// Appends one tenant VM to a host config (after the probes).
pub(crate) fn push_tenant(cfg: &mut HostConfig, t: &Tenant, latency_goal: Nanos) {
    let spec = VcpuSpec::capped(
        Utilization::from_ppm(t.flavor.utilization_ppm),
        latency_goal,
    );
    cfg.add_vm(VmSpec::uniform(format!("vm{}", t.vm), t.flavor.vcpus, spec));
}

/// Strips every non-probe reservation from a planned table, leaving idle
/// gaps. This is what gets installed into the host's simulator: probe ids
/// (`0..keep_below`) are executed for real; tenant execution is the
/// documented model reduction. Gaps are legal table content — the
/// dispatcher falls through to its second level or idles.
pub(crate) fn mask_table(table: &Table, keep_below: u32) -> Result<Table, String> {
    let per_core: Vec<Vec<_>> = (0..table.n_cores())
        .map(|c| {
            table
                .cpu(c)
                .allocations()
                .iter()
                .copied()
                .filter(|a| a.vcpu.0 < keep_below)
                .collect()
        })
        .collect();
    Table::new(table.len(), per_core)
}

impl FleetHost {
    /// Builds a freshly booted (probe-only) host around `boot_plan`.
    pub fn boot(
        id: usize,
        machine: &Machine,
        boot_cfg: &HostConfig,
        boot_plan: &Arc<Plan>,
        now: Nanos,
    ) -> FleetHost {
        let keep = machine.n_cores() as u32;
        let masked = mask_table(&boot_plan.table, keep)
            .expect("masking preserves table shape, which Table::new accepts");
        // The scheduler boots on the masked probe table; every later table
        // reaches it through the two-phase install protocol.
        let mut boot = (**boot_plan).clone();
        boot.table = masked;
        let auditor = TableAuditor::new(&boot.table);
        let mut sim = Sim::new(*machine, Box::new(Tableau::from_plan(&boot)));
        if machine.n_sockets > 1 {
            // Multi-socket hosts run the partitioned (per-socket PDES)
            // engine; it declines back to the sequential path whenever a
            // precondition fails (faults armed, cross-socket placements,
            // …), so enabling it is always behavior-preserving.
            sim.set_engine(EngineKind::Partitioned);
        }
        for core in 0..machine.n_cores() {
            sim.add_vcpu(Box::new(BusyLoop), core, true);
        }
        FleetHost {
            id,
            state: HostState::Online,
            tenants: Vec::new(),
            committed_ppm: 0,
            host_cfg: boot_cfg.clone(),
            plan: boot_plan.clone(),
            sim: Some(sim),
            epoch_base: now,
            dirty: false,
            awaiting: Vec::new(),
            install_attempts: 0,
            next_install_try: Nanos::ZERO,
            auditor,
            pending_corruptions: 0,
            audit_flagged: false,
        }
    }

    /// The host's simulator-local time for an absolute fleet time.
    pub fn local(&self, now: Nanos) -> Nanos {
        now - self.epoch_base
    }

    /// Whether the host accepts new placements.
    pub fn placeable(&self) -> bool {
        self.state == HostState::Online
    }

    /// Mutable access to the Tableau scheduler inside the simulator.
    pub fn tableau_mut(&mut self) -> Option<&mut Tableau> {
        self.sim
            .as_mut()?
            .scheduler_mut()
            .as_any()
            .downcast_mut::<Tableau>()
    }
}
