//! Fleet control plane over simulated Tableau hosts (ROADMAP item 1).
//!
//! A [`Fleet`] owns N simulated hosts. Each host is the full single-host
//! stack grown in earlier PRs — a [`xensim::Sim`] running per-core probe
//! vCPUs under a `schedulers::Tableau` dispatcher — plus a slice of the
//! *shared* fingerprint plan cache: identically shaped hosts (and with
//! SAP-shaped churn, shapes recur constantly) resolve their tables from
//! one [`tableau_core::cache::PlanCache`].
//!
//! The front-end admits VM create/teardown/resize requests and the
//! robustness engine absorbs host-level failures:
//!
//! * **Placement backpressure ladder** — best-fit while the control plane
//!   is healthy, first-fit once the install/evacuation backlog passes a
//!   threshold, and finally a *typed* [`AdmissionRejected`] shed. Never a
//!   panic, never a silently dropped VM.
//! * **Crash-triggered evacuation** — a crashed host's VMs re-place
//!   through the `plan_with_fallback` ladder with bounded exponential
//!   backoff and a per-VM retry budget; budget exhaustion *parks* the VM
//!   (still owned, retried at a slower cadence) instead of losing it.
//! * **Install pipeline** — tables reach each host's dispatcher through
//!   the two-phase install protocol; install-failure storms (see
//!   [`xensim::fault::InstallStormFaults`]) abort pushes mid-protocol and
//!   the per-host retry loop re-drives them with bounded backoff.
//!
//! The conservation invariant — every admitted, not-torn-down VM is in
//! exactly one of *placed on a live host*, *evacuating*, or *parked*, and
//! on at most one host — is checked by [`Fleet::check_conservation`] and
//! holds across any seeded fault sequence (see the property tests and the
//! `fleet` chaos soak experiment).
//!
//! **Model reduction.** Tenant vCPUs are control-plane objects: they
//! occupy planner capacity and table slots, but the per-host simulator
//! executes only the permanent probe vCPUs (tenant slots are masked to
//! idle in the installed table). This keeps hundreds of hosts cheap while
//! still exercising the real planner, the real two-phase installs against
//! real dispatchers, and real probe dispatch under every table the control
//! plane pushes.

mod control;
mod host;
pub mod queue;

pub use control::{Fleet, FleetConfig, FleetCounters, RungCounters, VmLocation};
pub use host::HostState;

use tableau_core::planner::ReplanError;

/// Typed admission shed: the last rung of the backpressure ladder. The VM
/// was never admitted — rejecting is how the fleet degrades instead of
/// panicking or losing work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionRejected {
    /// No online host has the spare utilization the flavor demands.
    NoCapacity {
        /// The rejected demand, in ppm of one core.
        demand_ppm: u64,
    },
    /// Hosts had nominal capacity but every candidate's replan failed
    /// (fragmentation: the ladder ran out of rungs on each).
    NoFeasiblePlan {
        /// How many candidate hosts were tried before shedding.
        candidates_tried: usize,
    },
}

impl std::fmt::Display for AdmissionRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionRejected::NoCapacity { demand_ppm } => {
                write!(f, "no online host has {demand_ppm} ppm spare")
            }
            AdmissionRejected::NoFeasiblePlan { candidates_tried } => {
                write!(f, "no feasible plan on {candidates_tried} candidate hosts")
            }
        }
    }
}

impl std::error::Error for AdmissionRejected {}

/// Errors of the non-admission front-end paths.
#[derive(Debug)]
pub enum FleetError {
    /// The VM id is not currently owned by the fleet.
    UnknownVm(u64),
    /// A resize could not be replanned in place; the VM keeps its old
    /// flavor (the request is rejected, the VM is not lost).
    ResizeInfeasible {
        /// The VM whose resize was rejected.
        vm: u64,
        /// The ladder's per-rung failures.
        error: ReplanError,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownVm(vm) => write!(f, "vm {vm} is not owned by the fleet"),
            FleetError::ResizeInfeasible { vm, error } => {
                write!(f, "resize of vm {vm} infeasible: {error}")
            }
        }
    }
}

impl std::error::Error for FleetError {}
