//! Indexed displaced-VM queues.

use std::collections::HashMap;

/// A FIFO queue of per-VM records with O(1) lookup by VM id.
///
/// The control plane's evacuating and parked queues used to be plain
/// vectors, so tearing down or resizing a queued VM was an O(n) scan —
/// and a mass-crash epoch can put every VM of several hosts in flight at
/// once. `VmQueue` keeps the arrival order (placement fairness and retry
/// cadence depend on it) and adds a vm-id index: items live in
/// append-only slots, removal tombstones the slot without shifting, and
/// the index maps vm → slot so teardown/resize are O(1). The control
/// loop fully [`VmQueue::drain`]s each queue every epoch, which resets
/// the slot storage, so tombstones never accumulate past one epoch's
/// churn.
#[derive(Debug)]
pub struct VmQueue<T> {
    slots: Vec<Option<T>>,
    /// vm id → index into `slots`. Only live (non-tombstoned) slots are
    /// indexed.
    index: HashMap<u64, u32>,
    live: usize,
}

impl<T> Default for VmQueue<T> {
    fn default() -> Self {
        VmQueue {
            slots: Vec::new(),
            index: HashMap::new(),
            live: 0,
        }
    }
}

impl<T> VmQueue<T> {
    /// An empty queue.
    pub fn new() -> VmQueue<T> {
        VmQueue::default()
    }

    /// Appends `item` for `vm` at the back of the queue. A vm id may be
    /// queued at most once (the conservation invariant guarantees this
    /// for the control plane's queues).
    pub fn push(&mut self, vm: u64, item: T) {
        debug_assert!(!self.index.contains_key(&vm), "vm {vm} queued twice");
        let slot = self.slots.len() as u32;
        self.slots.push(Some(item));
        self.index.insert(vm, slot);
        self.live += 1;
    }

    /// Removes and returns `vm`'s record, if queued. O(1): the slot is
    /// tombstoned in place, preserving every other record's order.
    pub fn remove(&mut self, vm: u64) -> Option<T> {
        let slot = self.index.remove(&vm)?;
        let item = self.slots[slot as usize].take();
        debug_assert!(item.is_some(), "index pointed at a tombstone");
        self.live -= 1;
        item
    }

    /// Mutable access to `vm`'s record, if queued. O(1).
    pub fn get_mut(&mut self, vm: u64) -> Option<&mut T> {
        let slot = *self.index.get(&vm)?;
        self.slots[slot as usize].as_mut()
    }

    /// `true` if `vm` is queued.
    pub fn contains(&self, vm: u64) -> bool {
        self.index.contains_key(&vm)
    }

    /// The live records in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no record is queued.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Removes every record, returned in FIFO order, and resets the slot
    /// storage (dropping accumulated tombstones).
    pub fn drain(&mut self) -> Vec<T> {
        self.index.clear();
        self.live = 0;
        self.slots.drain(..).flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_survives_indexed_removal() {
        let mut q = VmQueue::new();
        for vm in [5u64, 3, 9, 1, 7] {
            q.push(vm, vm * 10);
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.remove(9), Some(90));
        assert_eq!(q.remove(9), None, "double removal is a clean miss");
        assert_eq!(q.len(), 4);
        assert!(!q.contains(9));
        assert!(q.contains(3));
        // Remaining records keep arrival order across the tombstone.
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![50, 30, 10, 70]);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut q = VmQueue::new();
        q.push(4, "a".to_string());
        q.push(8, "b".to_string());
        *q.get_mut(8).unwrap() = "patched".to_string();
        assert!(q.get_mut(5).is_none());
        assert_eq!(
            q.iter().cloned().collect::<Vec<_>>(),
            vec!["a".to_string(), "patched".to_string()]
        );
    }

    #[test]
    fn drain_returns_fifo_and_resets() {
        let mut q = VmQueue::new();
        for vm in 0..6u64 {
            q.push(vm, vm);
        }
        q.remove(2);
        q.remove(4);
        assert_eq!(q.drain(), vec![0, 1, 3, 5]);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        // Reusable after the drain, including previously seen ids.
        q.push(2, 20);
        q.push(0, 0);
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![20, 0]);
        assert_eq!(q.len(), 2);
    }
}
