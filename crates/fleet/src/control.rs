//! The fleet controller: placement, evacuation, backpressure, installs.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use rtsched::time::Nanos;
use tableau_core::audit::{corrupt_table, CorruptionKind, TableAuditor};
use tableau_core::cache::SharedPlanCache;
use tableau_core::plan_delta;
use tableau_core::planner::{plan_with_fallback, Plan, PlanError, PlannerOptions, ReplanPath};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec};
use workloads::churn::Flavor;
use workloads::Histogram;
use xensim::fault::{CorruptionEvent, FaultWindow, HostFaultConfig, HostFaultEngine};
use xensim::{Machine, RecoveryStats};

use crate::host::{mask_table, probe_config, push_tenant, FleetHost, HostState, Tenant};
use crate::queue::VmQueue;
use crate::{AdmissionRejected, FleetError};

/// Fleet-wide configuration. `FleetConfig::new(n_hosts, cores_per_host)`
/// gives the defaults the chaos soak uses.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of hosts.
    pub n_hosts: usize,
    /// Cores per host (all hosts are identically shaped — the premise of
    /// plan-cache sharing).
    pub cores_per_host: usize,
    /// Per-core probe reservation (the dom0/agent stand-in).
    pub probe_utilization: Utilization,
    /// Uniform latency goal for probes and tenants. One goal keeps every
    /// plan's hyperperiod identical, which the install protocol requires.
    pub latency_goal: Nanos,
    /// Fraction of post-probe capacity the placement front-end will
    /// commit; the rest is evacuation headroom.
    pub max_tenant_utilization: f64,
    /// Planner tunables (shared by every host and the cache key).
    pub planner: PlannerOptions,
    /// Shared plan-cache capacity (distinct host shapes held at once).
    pub cache_capacity: usize,
    /// Control-plane backlog (dirty hosts + evacuating + parked) above
    /// which admission drops from best-fit to first-fit.
    pub backlog_first_fit_threshold: usize,
    /// Hysteresis band of the backpressure ladder: once first-fit engages,
    /// best-fit resumes only when the backlog falls back to
    /// `backlog_first_fit_threshold - backlog_hysteresis`. A backlog
    /// oscillating ±1 around the threshold therefore cannot flap the
    /// placement policy. Zero restores the bare threshold comparison.
    pub backlog_hysteresis: usize,
    /// Speculative pre-planner: how many of the most-admitted flavors to
    /// pre-plan each control epoch. For each, the shape the placement
    /// ladder would request next (current policy, current fill) is warmed
    /// into the shared plan cache off the admission path. Zero disables.
    pub prewarm_flavors: usize,
    /// Candidate hosts each placement rung tries before falling through.
    pub placement_candidates: usize,
    /// Failed placement attempts before an evacuating VM is parked.
    pub evac_retry_budget: u32,
    /// Base/cap of the evacuation retry backoff (exponential, capped).
    pub evac_backoff_base: Nanos,
    /// Cap of the evacuation retry backoff.
    pub evac_backoff_cap: Nanos,
    /// Retry cadence for parked VMs (slow background re-placement).
    pub parked_retry_interval: Nanos,
    /// Interrupted install attempts before the backoff pins at its cap.
    pub install_retry_budget: u32,
    /// Base of the install retry backoff (exponential, capped).
    pub install_backoff_base: Nanos,
    /// Cap of the install retry backoff.
    pub install_backoff_cap: Nanos,
}

impl FleetConfig {
    /// Defaults: 20% probes, 20 ms goal, 75% committable capacity,
    /// guardian-style backoffs.
    pub fn new(n_hosts: usize, cores_per_host: usize) -> FleetConfig {
        FleetConfig {
            n_hosts,
            cores_per_host,
            probe_utilization: Utilization::from_percent(20),
            latency_goal: Nanos::from_millis(20),
            max_tenant_utilization: 0.75,
            planner: PlannerOptions::default(),
            cache_capacity: 256,
            backlog_first_fit_threshold: 8,
            backlog_hysteresis: 2,
            prewarm_flavors: 2,
            placement_candidates: 4,
            evac_retry_budget: 5,
            evac_backoff_base: Nanos::from_millis(50),
            evac_backoff_cap: Nanos::from_millis(800),
            parked_retry_interval: Nanos::from_millis(1_600),
            install_retry_budget: 5,
            install_backoff_base: Nanos::from_millis(50),
            install_backoff_cap: Nanos::from_millis(400),
        }
    }

    /// Tenant capacity one host offers the placement front-end, in ppm of
    /// one core: post-probe capacity scaled by `max_tenant_utilization`.
    pub fn host_budget_ppm(&self) -> u64 {
        let total = self.cores_per_host as u64 * 1_000_000;
        let probes = self.cores_per_host as u64 * self.probe_utilization.ppm() as u64;
        ((total - probes) as f64 * self.max_tenant_utilization.clamp(0.0, 1.0)) as u64
    }
}

/// Fleet control-plane counters (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetCounters {
    /// VMs admitted (any rung).
    pub admissions: u64,
    /// Admissions placed by the best-fit rung.
    pub admissions_best_fit: u64,
    /// Admissions placed by the first-fit rung (backpressure engaged).
    pub admissions_first_fit: u64,
    /// Admissions shed with a typed rejection.
    pub admissions_shed: u64,
    /// VMs torn down.
    pub teardowns: u64,
    /// In-place resizes applied.
    pub resizes: u64,
    /// Resizes rejected (replan infeasible; old flavor kept).
    pub resize_rejections: u64,
    /// Host crashes injected.
    pub crashes: u64,
    /// Host restarts completed.
    pub restarts: u64,
    /// Online→Degraded transitions.
    pub degradations: u64,
    /// VMs re-placed off a crashed host.
    pub evacuated_vms: u64,
    /// Evacuation placement attempts that failed and backed off.
    pub evacuation_retries: u64,
    /// Evacuating VMs parked after exhausting their retry budget.
    pub parked: u64,
    /// Parked VMs later re-placed.
    pub unparked: u64,
    /// Table installs committed across the fleet.
    pub installs: u64,
    /// Install attempts interrupted (storms) and retried with backoff.
    pub install_retries: u64,
    /// Hosts whose install retries exhausted the budget (backoff pinned
    /// at the cap; the host keeps retrying, nothing is lost).
    pub install_budget_exhaustions: u64,
    /// Installs rejected by the dispatcher with a typed error (table
    /// shape drift; the plan is dropped, the old table keeps running).
    pub installs_rejected: u64,
    /// Table corruptions injected into live hosts (chaos).
    #[serde(default)]
    pub corruptions_injected: u64,
    /// Injected corruptions the continuous audit flagged (each one is
    /// detected exactly once, the epoch it lands).
    #[serde(default)]
    pub corruptions_detected: u64,
    /// Audit violations on hosts with no outstanding corruption. Must
    /// stay zero: a nonzero value means the audit flagged a table the
    /// control plane installed itself.
    #[serde(default)]
    pub audit_false_positives: u64,
}

/// Which rung produced each committed replan (provenance; the PR 3
/// pattern extended with the cache rungs placement runs through first).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RungCounters {
    /// Served from the shared fingerprint cache.
    pub cache_hit: u64,
    /// Delta replan: the previous table was patched in place (single-VM
    /// churn), either directly by the control plane or by the fallback
    /// ladder's delta rung.
    #[serde(default)]
    pub delta: u64,
    /// Cache miss: the cache planned (full path) and memoized.
    pub cache_plan: u64,
    /// Fallback ladder: incremental replan.
    pub incremental: u64,
    /// Fallback ladder: full replan.
    pub full: u64,
    /// Fallback ladder: conservative full replan.
    pub full_conservative: u64,
}

impl RungCounters {
    fn bump(&mut self, rung: Rung) {
        match rung {
            Rung::CacheHit => self.cache_hit += 1,
            Rung::Delta | Rung::Ladder(ReplanPath::Delta) => self.delta += 1,
            Rung::CachePlan => self.cache_plan += 1,
            Rung::Ladder(ReplanPath::Incremental) => self.incremental += 1,
            Rung::Ladder(ReplanPath::Full) => self.full += 1,
            Rung::Ladder(ReplanPath::FullConservative) => self.full_conservative += 1,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Rung {
    CacheHit,
    Delta,
    CachePlan,
    Ladder(ReplanPath),
}

/// Where a live VM currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmLocation {
    /// Placed on (and planned into) the given host.
    Placed(usize),
    /// In the crash-evacuation queue, awaiting re-placement.
    Evacuating,
    /// Retry budget exhausted; parked, retried at a slow cadence.
    Parked,
}

/// A VM displaced by a host crash.
#[derive(Debug, Clone, Copy)]
struct EvacVm {
    vm: u64,
    flavor: Flavor,
    /// Original admission time, when the VM was still awaiting its first
    /// committed install (latency attribution survives the crash).
    requested_at: Option<Nanos>,
    attempts: u32,
    next_try: Nanos,
}

/// Bounded exponential backoff: `base * 2^(attempt-1)`, capped. The shift
/// exponent is clamped (not just the product) so retry counts past 63 —
/// which would overflow the `u64` shift — still pin at the cap.
fn backoff(base: Nanos, cap: Nanos, attempt: u32) -> Nanos {
    let mult = 1u64 << (attempt.saturating_sub(1)).min(20);
    Nanos(base.as_nanos().saturating_mul(mult).min(cap.as_nanos()))
}

/// One transition of the backpressure hysteresis band: enter first-fit when
/// the backlog exceeds `threshold`; return to best-fit only once it falls
/// to `threshold - hysteresis` or below. Kept free of `Fleet` so the
/// no-flapping property is testable in isolation.
fn pressured_next(prev: bool, backlog: usize, threshold: usize, hysteresis: usize) -> bool {
    if prev {
        backlog > threshold.saturating_sub(hysteresis)
    } else {
        backlog > threshold
    }
}

/// The fleet control plane. See the crate docs for the architecture.
pub struct Fleet {
    cfg: FleetConfig,
    machine: Machine,
    hosts: Vec<FleetHost>,
    /// Lock-striped: the parallel phases of [`Fleet::step`] never touch
    /// it, but admission bursts from concurrent front-ends may.
    cache: SharedPlanCache,
    engine: Option<HostFaultEngine>,
    crash_windows: Vec<Vec<FaultWindow>>,
    crash_cursor: Vec<usize>,
    degrade_windows: Vec<Vec<FaultWindow>>,
    storm_windows: Vec<FaultWindow>,
    corruption_events: Vec<Vec<CorruptionEvent>>,
    corruption_cursor: Vec<usize>,
    evacuating: VmQueue<EvacVm>,
    parked: VmQueue<EvacVm>,
    /// The ownership ledger: every admitted, not-torn-down VM, with its
    /// current location. The conservation invariant is stated against it.
    locations: BTreeMap<u64, VmLocation>,
    /// Backpressure state: whether the admission ladder is currently in
    /// first-fit mode (sticky across the hysteresis band).
    pressured: bool,
    /// Admission frequency per flavor `(vcpus, utilization_ppm)` — the
    /// churn-stream signal the speculative pre-planner ranks by.
    flavor_freq: BTreeMap<(usize, u32), u64>,
    counters: FleetCounters,
    rungs: RungCounters,
    admit_to_install: Histogram,
    boot_cfg: HostConfig,
    boot_plan: Arc<Plan>,
    table_len: Nanos,
}

impl Fleet {
    /// Builds the fleet with every host booted (probe-only) and online.
    pub fn new(cfg: FleetConfig) -> Result<Fleet, PlanError> {
        // Hosts with an even core count model two sockets so the host
        // simulators can run the partitioned (per-socket PDES) engine.
        // `ipi_cross_latency` stays `None` — cross-socket IPIs cost the
        // same as intra-socket ones — so every simulated timing is
        // byte-identical to the historical flat machine; only the engine's
        // internal execution strategy (and its `stats.pdes` counters)
        // changes.
        let machine = {
            let mut m = Machine::small(cfg.cores_per_host);
            if cfg.cores_per_host >= 2 && cfg.cores_per_host.is_multiple_of(2) {
                m.n_sockets = 2;
                m.cores_per_socket = cfg.cores_per_host / 2;
            }
            m
        };
        let probe = VcpuSpec::capped(cfg.probe_utilization, cfg.latency_goal);
        let boot_cfg = probe_config(cfg.cores_per_host, probe);
        let cache = SharedPlanCache::new(cfg.cache_capacity);
        let boot_plan = cache.get_or_plan(&boot_cfg, &cfg.planner)?;
        let table_len = boot_plan.table.len();
        let hosts = (0..cfg.n_hosts)
            .map(|i| FleetHost::boot(i, &machine, &boot_cfg, &boot_plan, Nanos::ZERO))
            .collect();
        Ok(Fleet {
            crash_windows: vec![Vec::new(); cfg.n_hosts],
            crash_cursor: vec![0; cfg.n_hosts],
            degrade_windows: vec![Vec::new(); cfg.n_hosts],
            storm_windows: Vec::new(),
            corruption_events: vec![Vec::new(); cfg.n_hosts],
            corruption_cursor: vec![0; cfg.n_hosts],
            cfg,
            machine,
            hosts,
            cache,
            engine: None,
            evacuating: VmQueue::new(),
            parked: VmQueue::new(),
            locations: BTreeMap::new(),
            pressured: false,
            flavor_freq: BTreeMap::new(),
            counters: FleetCounters::default(),
            rungs: RungCounters::default(),
            admit_to_install: Histogram::new(),
            boot_cfg,
            boot_plan,
            table_len,
        })
    }

    /// Arms host-level fault injection over `[0, horizon)`. A config with
    /// every class at rate zero installs no engine and pre-computes no
    /// windows — the zero-intensity replay contract.
    pub fn arm_faults(&mut self, cfg: HostFaultConfig, horizon: Nanos) {
        self.engine = HostFaultEngine::new(cfg);
        if let Some(e) = &self.engine {
            self.crash_windows = (0..self.cfg.n_hosts)
                .map(|h| e.crash_windows(h, horizon))
                .collect();
            self.degrade_windows = (0..self.cfg.n_hosts)
                .map(|h| e.degrade_windows(h, horizon))
                .collect();
            self.storm_windows = e.storm_windows(horizon);
            self.corruption_events = (0..self.cfg.n_hosts)
                .map(|h| e.corruption_events(h, horizon))
                .collect();
        }
    }

    // --- front-end -------------------------------------------------------

    /// Admits a VM through the backpressure ladder: best-fit (healthy),
    /// first-fit (backlogged), typed shed. Returns the placed host.
    pub fn admit(
        &mut self,
        now: Nanos,
        vm: u64,
        flavor: Flavor,
    ) -> Result<usize, AdmissionRejected> {
        debug_assert!(
            !self.locations.contains_key(&vm),
            "admitting an already-owned vm"
        );
        *self
            .flavor_freq
            .entry((flavor.vcpus, flavor.utilization_ppm))
            .or_insert(0) += 1;
        let demand = flavor.vcpus as u64 * flavor.utilization_ppm as u64;
        let budget = self.cfg.host_budget_ppm();
        let mut candidates: Vec<usize> = self
            .hosts
            .iter()
            .filter(|h| h.placeable() && h.committed_ppm + demand <= budget)
            .map(|h| h.id)
            .collect();
        if candidates.is_empty() {
            self.counters.admissions_shed += 1;
            return Err(AdmissionRejected::NoCapacity { demand_ppm: demand });
        }

        self.pressured = pressured_next(
            self.pressured,
            self.backlog(),
            self.cfg.backlog_first_fit_threshold,
            self.cfg.backlog_hysteresis,
        );
        let pressured = self.pressured;
        if !pressured {
            // Best fit: tightest remaining headroom first (ties: lowest id,
            // which the stable sort preserves from the id-ordered scan).
            candidates.sort_by_key(|&i| budget - self.hosts[i].committed_ppm - demand);
        }
        // else: first fit — candidates are already in ascending host id.

        let mut tried = 0usize;
        let k = self.cfg.placement_candidates.max(1);
        let mut best_fit_exhausted = pressured;
        // First pass in the chosen order; if best-fit candidates all fail
        // to plan, degrade to first-fit order over the untried remainder.
        let first_pass: Vec<usize> = candidates.iter().copied().take(k).collect();
        for &h in &first_pass {
            tried += 1;
            if self.try_place(now, h, vm, flavor, Some(now)) {
                self.counters.admissions += 1;
                if pressured {
                    self.counters.admissions_first_fit += 1;
                } else {
                    self.counters.admissions_best_fit += 1;
                }
                self.locations.insert(vm, VmLocation::Placed(h));
                return Ok(h);
            }
        }
        if !best_fit_exhausted {
            best_fit_exhausted = true;
            let mut rest: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|h| !first_pass.contains(h))
                .collect();
            rest.sort_unstable();
            for h in rest.into_iter().take(k) {
                tried += 1;
                if self.try_place(now, h, vm, flavor, Some(now)) {
                    self.counters.admissions += 1;
                    self.counters.admissions_first_fit += 1;
                    self.locations.insert(vm, VmLocation::Placed(h));
                    return Ok(h);
                }
            }
        }
        let _ = best_fit_exhausted;
        self.counters.admissions_shed += 1;
        Err(AdmissionRejected::NoFeasiblePlan {
            candidates_tried: tried,
        })
    }

    /// Tears a VM down wherever it currently is.
    pub fn teardown(&mut self, now: Nanos, vm: u64) -> Result<(), FleetError> {
        match self.locations.remove(&vm) {
            None => Err(FleetError::UnknownVm(vm)),
            Some(VmLocation::Evacuating) => {
                self.evacuating.remove(vm);
                self.counters.teardowns += 1;
                Ok(())
            }
            Some(VmLocation::Parked) => {
                self.parked.remove(vm);
                self.counters.teardowns += 1;
                Ok(())
            }
            Some(VmLocation::Placed(h)) => {
                self.remove_tenant(now, h, vm);
                self.counters.teardowns += 1;
                Ok(())
            }
        }
    }

    /// Resizes a VM in place. For a placed VM the host is replanned with
    /// the new flavor; an infeasible replan keeps the old flavor and
    /// returns a typed error. Queued VMs just update their request.
    pub fn resize(&mut self, now: Nanos, vm: u64, flavor: Flavor) -> Result<(), FleetError> {
        match self.locations.get(&vm).copied() {
            None => Err(FleetError::UnknownVm(vm)),
            Some(VmLocation::Evacuating) => {
                if let Some(e) = self.evacuating.get_mut(vm) {
                    e.flavor = flavor;
                }
                self.counters.resizes += 1;
                Ok(())
            }
            Some(VmLocation::Parked) => {
                if let Some(e) = self.parked.get_mut(vm) {
                    e.flavor = flavor;
                }
                self.counters.resizes += 1;
                Ok(())
            }
            Some(VmLocation::Placed(h)) => self.resize_in_place(now, h, vm, flavor),
        }
    }

    /// Chaos hook: crashes `host` at `now`, restarting (empty) once `until`
    /// passes. The seeded fault engine drives the same path; tests and
    /// experiments use this for targeted interleavings. A no-op while the
    /// host is already down.
    pub fn inject_crash(&mut self, host: usize, now: Nanos, until: Nanos) {
        if !matches!(self.hosts[host].state, HostState::Down { .. }) {
            self.crash_host(host, now, until);
        }
    }

    // --- control loop ----------------------------------------------------

    /// One control epoch at absolute fleet time `now`: fire host fault
    /// transitions (including table corruptions), audit every live host's
    /// installed table, drive evacuations and parked retries, push pending
    /// installs, and advance every live host's simulator. Corruptions land
    /// before the audit and the audit before installs, so an injected
    /// corruption is detected — and its repair install issued — within the
    /// same epoch.
    ///
    /// **Parallelism.** The phase order above is the control plane's
    /// semantics and never changes; what shards across worker threads is
    /// the per-host work *inside* a phase: audit verdicts, install mask
    /// prep, speculative warm planning, and — dominating the wall clock —
    /// the host simulators, each of which owns its state exclusively.
    /// Every fleet-level mutation (counters, queues, RNG draws, cache
    /// installs) stays sequential in host order, so a step is bit-for-bit
    /// identical under any thread count, including
    /// `rayon::force_sequential`.
    pub fn step(&mut self, now: Nanos) {
        self.apply_host_faults(now);
        self.inject_corruptions(now);
        self.audit_tables();
        self.process_evacuations(now);
        self.process_parked(now);
        self.process_installs(now);
        self.prewarm_cache();
        rayon::par_map_mut(&mut self.hosts, |_, h| {
            let local = now - h.epoch_base;
            if let Some(sim) = h.sim.as_mut() {
                sim.run_until(local);
            }
        });
    }

    /// Verifies the conservation invariant: the ledger and the physical
    /// state (host tenant lists + queues) describe exactly the same VM
    /// set, with no VM in two places.
    pub fn check_conservation(&self) -> Result<(), String> {
        let mut seen: BTreeMap<u64, String> = BTreeMap::new();
        let mut place = |vm: u64, at: String, want: VmLocation| -> Result<(), String> {
            if let Some(prev) = seen.insert(vm, at.clone()) {
                return Err(format!("vm {vm} duplicated: {prev} and {at}"));
            }
            match self.locations.get(&vm) {
                Some(&loc) if loc == want => Ok(()),
                Some(&loc) => Err(format!("vm {vm} at {at} but ledger says {loc:?}")),
                None => Err(format!("vm {vm} at {at} but not in the ledger")),
            }
        };
        for h in &self.hosts {
            for t in &h.tenants {
                place(t.vm, format!("host{}", h.id), VmLocation::Placed(h.id))?;
            }
        }
        for e in self.evacuating.iter() {
            place(e.vm, "evacuating".into(), VmLocation::Evacuating)?;
        }
        for e in self.parked.iter() {
            place(e.vm, "parked".into(), VmLocation::Parked)?;
        }
        for &vm in self.locations.keys() {
            if !seen.contains_key(&vm) {
                return Err(format!(
                    "vm {vm} is in the ledger but placed nowhere (lost)"
                ));
            }
        }
        Ok(())
    }

    // --- accessors -------------------------------------------------------

    /// Control-plane counters.
    pub fn counters(&self) -> &FleetCounters {
        &self.counters
    }

    /// Replan-rung provenance counters.
    pub fn rungs(&self) -> &RungCounters {
        &self.rungs
    }

    /// The shared plan cache (hit/miss accounting).
    pub fn cache(&self) -> &SharedPlanCache {
        &self.cache
    }

    /// Aggregate dense-batching counters across the live host simulators.
    /// Counters die with a crashed host's simulator, so this reports the
    /// currently running fleet, not a lifetime total.
    pub fn batch_stats(&self) -> xensim::stats::BatchStats {
        let mut total = xensim::stats::BatchStats::default();
        for h in &self.hosts {
            if let Some(sim) = &h.sim {
                let b = sim.stats().batch;
                total.batched_events += b.batched_events;
                total.batch_entries += b.batch_entries;
                total.batch_exits += b.batch_exits;
                total.fallback_horizon += b.fallback_horizon;
                total.fallback_block += b.fallback_block;
                total.fallback_window += b.fallback_window;
            }
        }
        total
    }

    /// Aggregate partitioned-engine (PDES) counters across the live host
    /// simulators; same lifetime caveat as [`Fleet::batch_stats`].
    pub fn pdes_stats(&self) -> xensim::stats::PdesStats {
        let mut total = xensim::stats::PdesStats::default();
        for h in &self.hosts {
            if let Some(sim) = &h.sim {
                total.absorb(&sim.stats().pdes);
            }
        }
        total
    }

    /// Admission-to-committed-install latency distribution (fleet time).
    pub fn admit_to_install(&self) -> &Histogram {
        &self.admit_to_install
    }

    /// Current location of a live VM.
    pub fn location(&self, vm: u64) -> Option<VmLocation> {
        self.locations.get(&vm).copied()
    }

    /// Number of VMs the fleet currently owns.
    pub fn live_vms(&self) -> usize {
        self.locations.len()
    }

    /// Per-host control-plane states.
    pub fn states(&self) -> Vec<HostState> {
        self.hosts.iter().map(|h| h.state).collect()
    }

    /// Control-plane backlog: dirty hosts plus queued VMs. Drives the
    /// backpressure ladder and the experiment's convergence assertion.
    pub fn backlog(&self) -> usize {
        self.evacuating.len() + self.parked.len() + self.hosts.iter().filter(|h| h.dirty).count()
    }

    /// VMs awaiting re-placement (evacuating + parked).
    pub fn displaced(&self) -> usize {
        self.evacuating.len() + self.parked.len()
    }

    /// The fleet counters mirrored into the single-host recovery schema
    /// (the PR 3 pattern: damage and repairs travel in one record).
    pub fn recovery_stats(&self) -> RecoveryStats {
        RecoveryStats {
            violations_seen: self.counters.corruptions_detected,
            evacuations: self.counters.crashes,
            install_retries: self.counters.install_retries,
            quarantines: 0,
            evacuated_vms: self.counters.evacuated_vms,
            evacuation_retries: self.counters.evacuation_retries,
            admissions: self.counters.admissions,
            admission_rejections: self.counters.admissions_shed,
            parked_vms: self.counters.parked,
        }
    }

    // --- internals -------------------------------------------------------

    /// Plans `next` for a host: the shared cache first (identically shaped
    /// hosts resolve to one entry), then a delta patch of the host's
    /// running plan (single-VM churn touches one bin), then a full plan
    /// memoized through the cache, then the fallback ladder. A successful
    /// delta is inserted into the cache under the *new* shape, so sibling
    /// hosts walking the same churn sequence hit it. Returns the plan and
    /// the rung that produced it.
    fn replan(
        cache: &SharedPlanCache,
        prev: Option<(&HostConfig, &Plan)>,
        next: &HostConfig,
        opts: &PlannerOptions,
    ) -> Option<(Arc<Plan>, Rung)> {
        if let Some(p) = cache.lookup(next, opts) {
            return Some((p, Rung::CacheHit));
        }
        if let Some((prev_cfg, prev_plan)) = prev {
            if let Ok((plan, _report)) = plan_delta(prev_cfg, prev_plan, next, opts) {
                let plan = Arc::new(plan);
                cache.insert(next, opts, Arc::clone(&plan));
                return Some((plan, Rung::Delta));
            }
        }
        match cache.get_or_plan(next, opts) {
            Ok(p) => Some((p, Rung::CachePlan)),
            // The straight planner rejected the shape; climb the ladder
            // (conservative options may still fit it).
            Err(_) => plan_with_fallback(prev, next, opts)
                .ok()
                .map(|o| (Arc::new(o.plan), Rung::Ladder(o.path))),
        }
    }

    /// The speculative pre-planner (one pass per control epoch): for each
    /// of the `prewarm_flavors` most-admitted flavors, predict the host the
    /// placement ladder would pick for the *next* admission of that flavor
    /// — same candidate filter, same best-fit/first-fit policy the current
    /// backpressure state selects — and warm the shared cache with the
    /// resulting host shape. The predicted shapes are gathered sequentially
    /// and warmed as one batch, so the uncached ones run the planner in
    /// parallel; an already-cached shape costs one lookup.
    fn prewarm_cache(&mut self) {
        if self.cfg.prewarm_flavors == 0 {
            return;
        }
        // One warm budget per control epoch: a prediction storm cannot
        // monopolize the epoch with speculative planner runs.
        self.cache.begin_warm_epoch();
        let mut ranked: Vec<((usize, u32), u64)> =
            self.flavor_freq.iter().map(|(&k, &n)| (k, n)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let budget = self.cfg.host_budget_ppm();
        let mut shapes: Vec<HostConfig> = Vec::new();
        for &((vcpus, ppm), _) in ranked.iter().take(self.cfg.prewarm_flavors) {
            let flavor = Flavor {
                vcpus,
                utilization_ppm: ppm,
            };
            let demand = vcpus as u64 * ppm as u64;
            let candidates = self
                .hosts
                .iter()
                .filter(|h| h.placeable() && h.committed_ppm + demand <= budget)
                .map(|h| h.id);
            let target = if self.pressured {
                // First-fit: lowest id wins.
                candidates.min()
            } else {
                // Best-fit: tightest remaining headroom (ties: lowest id,
                // which min_by_key resolves via the ascending scan).
                candidates.min_by_key(|&i| budget - self.hosts[i].committed_ppm - demand)
            };
            let Some(h) = target else { continue };
            let mut next = self.hosts[h].host_cfg.clone();
            // The cache key ignores VM names, so the placeholder id aliases
            // whatever vm number the real admission arrives with.
            let tenant = Tenant {
                vm: u64::MAX,
                flavor,
            };
            push_tenant(&mut next, &tenant, self.cfg.latency_goal);
            shapes.push(next);
        }
        if !shapes.is_empty() {
            let _ = self.cache.warm_batch(&shapes, &self.cfg.planner);
        }
    }

    /// Tentatively places `vm` on `host`; commits bookkeeping only if the
    /// replan succeeds and keeps the table shape installable.
    fn try_place(
        &mut self,
        _now: Nanos,
        host: usize,
        vm: u64,
        flavor: Flavor,
        requested_at: Option<Nanos>,
    ) -> bool {
        let tenant = Tenant { vm, flavor };
        let h = &mut self.hosts[host];
        let mut next = h.host_cfg.clone();
        push_tenant(&mut next, &tenant, self.cfg.latency_goal);
        let Some((plan, rung)) = Self::replan(
            &self.cache,
            Some((&h.host_cfg, &h.plan)),
            &next,
            &self.cfg.planner,
        ) else {
            return false;
        };
        // A plan whose hyperperiod or width drifted cannot reach the
        // dispatcher (the install protocol would reject it); treat the
        // candidate as infeasible rather than wedging the host.
        if plan.table.len() != self.table_len || plan.table.n_cores() != self.cfg.cores_per_host {
            return false;
        }
        h.tenants.push(tenant);
        h.committed_ppm += flavor.vcpus as u64 * flavor.utilization_ppm as u64;
        h.host_cfg = next;
        h.plan = plan;
        h.dirty = true;
        if let Some(t) = requested_at {
            h.awaiting.push((vm, t));
        }
        self.rungs.bump(rung);
        true
    }

    /// Removes a tenant from a host and replans the shrunk config. A
    /// (practically impossible) failed shrink replan keeps the old table:
    /// the departed VM's slots idle until the next successful replan.
    fn remove_tenant(&mut self, _now: Nanos, host: usize, vm: u64) {
        let h = &mut self.hosts[host];
        let Some(pos) = h.tenants.iter().position(|t| t.vm == vm) else {
            return;
        };
        let t = h.tenants.remove(pos);
        h.committed_ppm -= t.flavor.vcpus as u64 * t.flavor.utilization_ppm as u64;
        h.awaiting.retain(|&(w, _)| w != vm);
        let mut next = self.boot_cfg.clone();
        for t in &h.tenants {
            push_tenant(&mut next, t, self.cfg.latency_goal);
        }
        if let Some((plan, rung)) = Self::replan(
            &self.cache,
            Some((&h.host_cfg, &h.plan)),
            &next,
            &self.cfg.planner,
        ) {
            if plan.table.len() == self.table_len {
                h.host_cfg = next;
                h.plan = plan;
                h.dirty = true;
                self.rungs.bump(rung);
            }
        }
    }

    fn resize_in_place(
        &mut self,
        _now: Nanos,
        host: usize,
        vm: u64,
        flavor: Flavor,
    ) -> Result<(), FleetError> {
        let h = &mut self.hosts[host];
        let Some(pos) = h.tenants.iter().position(|t| t.vm == vm) else {
            return Err(FleetError::UnknownVm(vm));
        };
        let old = h.tenants[pos].flavor;
        let mut next = self.boot_cfg.clone();
        for (i, t) in h.tenants.iter().enumerate() {
            let t = if i == pos { Tenant { vm, flavor } } else { *t };
            push_tenant(&mut next, &t, self.cfg.latency_goal);
        }
        match plan_with_fallback(Some((&h.host_cfg, &h.plan)), &next, &self.cfg.planner) {
            Ok(out) if out.plan.table.len() == self.table_len => {
                h.tenants[pos].flavor = flavor;
                h.committed_ppm = h.committed_ppm - old.vcpus as u64 * old.utilization_ppm as u64
                    + flavor.vcpus as u64 * flavor.utilization_ppm as u64;
                self.rungs.bump(Rung::Ladder(out.path));
                h.host_cfg = next;
                h.plan = Arc::new(out.plan);
                h.dirty = true;
                self.counters.resizes += 1;
                Ok(())
            }
            Ok(_) | Err(_) => {
                self.counters.resize_rejections += 1;
                match plan_with_fallback(Some((&h.host_cfg, &h.plan)), &next, &self.cfg.planner) {
                    Err(error) => Err(FleetError::ResizeInfeasible { vm, error }),
                    Ok(_) => Err(FleetError::UnknownVm(vm)), // unreachable shape drift
                }
            }
        }
    }

    fn apply_host_faults(&mut self, now: Nanos) {
        for i in 0..self.hosts.len() {
            // Restarts first: a host whose outage elapsed comes back empty.
            if let HostState::Down { until } = self.hosts[i].state {
                if now >= until {
                    self.hosts[i] =
                        FleetHost::boot(i, &self.machine, &self.boot_cfg, &self.boot_plan, now);
                    self.counters.restarts += 1;
                }
            }
            // Crashes: fire the next un-processed window that has started.
            let cur = self.crash_cursor[i];
            if let Some(&(from, until)) = self.crash_windows[i].get(cur) {
                if from <= now && self.hosts[i].state != (HostState::Down { until }) {
                    self.crash_cursor[i] = cur + 1;
                    if !matches!(self.hosts[i].state, HostState::Down { .. }) {
                        self.crash_host(i, now, until);
                    }
                }
            }
            // Degradation windows (only state-relevant while up).
            if !matches!(self.hosts[i].state, HostState::Down { .. }) {
                let degraded = self.degrade_windows[i]
                    .iter()
                    .any(|&(from, until)| from <= now && now < until);
                let was = self.hosts[i].state;
                self.hosts[i].state = if degraded {
                    HostState::Degraded
                } else {
                    HostState::Online
                };
                if was == HostState::Online && degraded {
                    self.counters.degradations += 1;
                }
            }
        }
    }

    /// Fires every corruption event due at `now` on a live host: the
    /// host's installed table is overwritten in place with a seeded
    /// mutation, underneath the install protocol. Events due while a host
    /// is down are consumed without effect (the table they would have
    /// corrupted no longer exists).
    fn inject_corruptions(&mut self, now: Nanos) {
        for i in 0..self.hosts.len() {
            while let Some(&ev) = self.corruption_events[i].get(self.corruption_cursor[i]) {
                if ev.at > now {
                    break;
                }
                self.corruption_cursor[i] += 1;
                if self.hosts[i].sim.is_none() {
                    continue;
                }
                let kind = CorruptionKind::ALL[(ev.class % 3) as usize];
                let Some(tab) = self.hosts[i].tableau_mut() else {
                    continue;
                };
                let live = tab.dispatcher().newest_table().clone();
                // The event's salt seeds the mutation; salts that pick a
                // no-op (e.g. a swap of two identical probe ids) slide to
                // the next one.
                let corrupted =
                    (0..16u64).find_map(|k| corrupt_table(&live, kind, ev.salt.wrapping_add(k)));
                let Some(bad) = corrupted else {
                    continue;
                };
                if tab.dispatcher_mut().corrupt_newest_table(bad).is_ok() {
                    self.counters.corruptions_injected += 1;
                    self.hosts[i].pending_corruptions += 1;
                }
            }
        }
    }

    /// Re-checks every live host's installed table against its
    /// install-time fingerprints. A violation on a host with outstanding
    /// corruptions counts them detected, marks the host dirty, and lets
    /// the ordinary install pipeline repair it (the target plan is still
    /// sound — only the installed copy was damaged). A violation with no
    /// outstanding corruption is an audit false positive and must never
    /// happen.
    fn audit_tables(&mut self) {
        // The full-table audit dominates this phase and is per-host pure,
        // so verdicts shard across workers; flagging and counters drain
        // sequentially in host order.
        let verdicts = rayon::par_map_mut(&mut self.hosts, |_, h| {
            if h.sim.is_none() {
                return false;
            }
            let Some(tab) = h.tableau_mut() else {
                return false;
            };
            let live = tab.dispatcher().newest_table().clone();
            !h.auditor.audit_full(&live).is_empty()
        });
        for (i, violated) in verdicts.into_iter().enumerate() {
            if !violated {
                continue;
            }
            let h = &mut self.hosts[i];
            if h.audit_flagged {
                // Already flagged; the repair install is pending (backoff,
                // degradation, or a storm is deferring it).
                continue;
            }
            if h.pending_corruptions == 0 {
                self.counters.audit_false_positives += 1;
                continue;
            }
            self.counters.corruptions_detected += h.pending_corruptions;
            h.pending_corruptions = 0;
            h.audit_flagged = true;
            // Re-install the (sound) target plan over the damaged copy.
            h.dirty = true;
        }
    }

    /// Kills a host: its simulator is gone, its tenants enter the
    /// evacuation queue (latency attribution preserved for VMs still
    /// awaiting their first install), and it will restart empty.
    fn crash_host(&mut self, i: usize, now: Nanos, until: Nanos) {
        self.counters.crashes += 1;
        let h = &mut self.hosts[i];
        let awaiting: BTreeMap<u64, Nanos> = h.awaiting.drain(..).collect();
        for t in h.tenants.drain(..) {
            self.locations.insert(t.vm, VmLocation::Evacuating);
            self.evacuating.push(
                t.vm,
                EvacVm {
                    vm: t.vm,
                    flavor: t.flavor,
                    requested_at: awaiting.get(&t.vm).copied(),
                    attempts: 0,
                    next_try: now,
                },
            );
        }
        h.committed_ppm = 0;
        h.sim = None;
        h.dirty = false;
        h.install_attempts = 0;
        h.next_install_try = Nanos::ZERO;
        // The corrupted copy (if any) died with the simulator; the reboot
        // re-baselines the auditor.
        h.pending_corruptions = 0;
        h.audit_flagged = false;
        h.host_cfg = self.boot_cfg.clone();
        h.plan = self.boot_plan.clone();
        h.state = HostState::Down {
            until: until.max(now + Nanos(1)),
        };
    }

    /// Re-places a displaced VM through the same candidate ladder as
    /// admission (without touching the admission counters).
    fn place_displaced(&mut self, now: Nanos, e: &EvacVm) -> Option<usize> {
        let demand = e.flavor.vcpus as u64 * e.flavor.utilization_ppm as u64;
        let budget = self.cfg.host_budget_ppm();
        let mut candidates: Vec<usize> = self
            .hosts
            .iter()
            .filter(|h| h.placeable() && h.committed_ppm + demand <= budget)
            .map(|h| h.id)
            .collect();
        candidates.sort_by_key(|&i| budget - self.hosts[i].committed_ppm - demand);
        candidates
            .into_iter()
            .take(self.cfg.placement_candidates.max(1))
            .find(|&h| self.try_place(now, h, e.vm, e.flavor, e.requested_at))
    }

    fn process_evacuations(&mut self, now: Nanos) {
        // Drain and re-queue: survivors keep FIFO order, and the drain
        // resets the queue's tombstoned slots from this epoch's teardowns.
        for mut e in self.evacuating.drain() {
            if now < e.next_try {
                self.evacuating.push(e.vm, e);
                continue;
            }
            if let Some(h) = self.place_displaced(now, &e) {
                self.counters.evacuated_vms += 1;
                self.locations.insert(e.vm, VmLocation::Placed(h));
                continue;
            }
            e.attempts += 1;
            self.counters.evacuation_retries += 1;
            if e.attempts > self.cfg.evac_retry_budget {
                self.counters.parked += 1;
                self.locations.insert(e.vm, VmLocation::Parked);
                e.next_try = now + self.cfg.parked_retry_interval;
                self.parked.push(e.vm, e);
            } else {
                e.next_try = now
                    + backoff(
                        self.cfg.evac_backoff_base,
                        self.cfg.evac_backoff_cap,
                        e.attempts,
                    );
                self.evacuating.push(e.vm, e);
            }
        }
    }

    fn process_parked(&mut self, now: Nanos) {
        for mut e in self.parked.drain() {
            if now < e.next_try {
                self.parked.push(e.vm, e);
                continue;
            }
            if let Some(h) = self.place_displaced(now, &e) {
                self.counters.unparked += 1;
                self.locations.insert(e.vm, VmLocation::Placed(h));
                continue;
            }
            self.counters.evacuation_retries += 1;
            e.next_try = now + self.cfg.parked_retry_interval;
            self.parked.push(e.vm, e);
        }
    }

    fn process_installs(&mut self, now: Nanos) {
        let in_storm = self
            .storm_windows
            .iter()
            .any(|&(from, until)| from <= now && now < until);
        let n_probes = self.cfg.cores_per_host as u32;
        // Masking the staged table and fingerprinting it for the audit are
        // per-host pure work — prep them in parallel. The drain below runs
        // in host order, so the storm RNG draws one value per *eligible*
        // host in ascending id order, exactly as sequentially.
        let prep = rayon::par_map_mut(&mut self.hosts, |_, h| {
            if h.state != HostState::Online
                || !h.dirty
                || now < h.next_install_try
                || h.sim.is_none()
            {
                return None;
            }
            Some(
                mask_table(&h.plan.table, n_probes)
                    .map(|masked| {
                        let staged_auditor = TableAuditor::new(&masked);
                        (masked, staged_auditor)
                    })
                    .map_err(|_| ()),
            )
        });
        for (i, p) in prep.into_iter().enumerate() {
            let Some(p) = p else { continue };
            let Ok((masked, staged_auditor)) = p else {
                // Cannot happen (filtering keeps allocations sorted and
                // in range), but never panic the control plane.
                self.counters.installs_rejected += 1;
                self.hosts[i].dirty = false;
                continue;
            };
            let interrupted = in_storm
                && self
                    .engine
                    .as_mut()
                    .is_some_and(|e| e.storm_interrupts_install());
            let h = &mut self.hosts[i];
            let local = h.local(now);
            let epoch_base = h.epoch_base;
            let Some(tab) = h.tableau_mut() else {
                continue;
            };
            match tab.try_install_table(masked, local, interrupted) {
                Ok(Some(switch_local)) => {
                    let switch_at = switch_local + epoch_base;
                    let h = &mut self.hosts[i];
                    h.dirty = false;
                    h.install_attempts = 0;
                    h.next_install_try = Nanos::ZERO;
                    h.auditor = staged_auditor;
                    h.audit_flagged = false;
                    self.counters.installs += 1;
                    for (_, req) in h.awaiting.drain(..) {
                        self.admit_to_install.record(switch_at - req);
                    }
                }
                Ok(None) => {
                    let h = &mut self.hosts[i];
                    h.install_attempts += 1;
                    self.counters.install_retries += 1;
                    if h.install_attempts > self.cfg.install_retry_budget {
                        self.counters.install_budget_exhaustions += 1;
                        h.next_install_try = now + self.cfg.install_backoff_cap;
                    } else {
                        h.next_install_try = now
                            + backoff(
                                self.cfg.install_backoff_base,
                                self.cfg.install_backoff_cap,
                                h.install_attempts,
                            );
                    }
                }
                Err(_) => {
                    // Typed rejection (shape drift / staged race): drop the
                    // plan, keep the old table running. The VMs stay placed
                    // and the next successful replan re-dirties the host.
                    let h = &mut self.hosts[i];
                    self.counters.installs_rejected += 1;
                    h.dirty = false;
                    h.awaiting.clear();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flavor(vcpus: usize, ppm: u32) -> Flavor {
        Flavor {
            vcpus,
            utilization_ppm: ppm,
        }
    }

    fn small_fleet(n_hosts: usize) -> Fleet {
        Fleet::new(FleetConfig::new(n_hosts, 2)).expect("boot plan")
    }

    fn epochs(fleet: &mut Fleet, from: Nanos, n: u64) -> Nanos {
        let epoch = Nanos::from_millis(50);
        let mut now = from;
        for _ in 0..n {
            now += epoch;
            fleet.step(now);
            fleet.check_conservation().expect("conservation");
        }
        now
    }

    #[test]
    fn admission_places_installs_and_records_latency() {
        let mut fleet = small_fleet(2);
        let t0 = Nanos::from_millis(1);
        let h = fleet.admit(t0, 1, flavor(1, 250_000)).expect("admits");
        assert_eq!(fleet.location(1), Some(VmLocation::Placed(h)));
        assert_eq!(fleet.counters().admissions, 1);
        epochs(&mut fleet, Nanos::ZERO, 4);
        assert_eq!(fleet.counters().installs, 1);
        assert_eq!(fleet.admit_to_install().count(), 1);
        assert!(fleet.admit_to_install().max() > Nanos::ZERO);
        let r = *fleet.rungs();
        assert!(r.cache_plan + r.cache_hit + r.delta >= 1);
    }

    #[test]
    fn identically_shaped_hosts_share_the_plan_cache() {
        // Best-fit consolidates, so host 0 fills through four shapes
        // (probes+1 … probes+4 tenants), each produced by delta-patching
        // the previous plan and memoized under the new shape. Host 1 then
        // walks the *same* shape sequence: the second host's replans are
        // all cache hits, even though the tenant names differ.
        let mut fleet = small_fleet(2);
        for vm in 0..8u64 {
            fleet
                .admit(Nanos(1), vm, flavor(1, 250_000))
                .expect("admits");
        }
        let hosts: std::collections::BTreeSet<usize> = (0..8u64)
            .map(|vm| match fleet.location(vm) {
                Some(VmLocation::Placed(h)) => h,
                other => panic!("vm {vm} not placed: {other:?}"),
            })
            .collect();
        assert_eq!(hosts.len(), 2, "the budget forces a spill to host 1");
        assert_eq!(fleet.rungs().delta, 4);
        assert_eq!(fleet.rungs().cache_hit, 4);
        assert_eq!(fleet.rungs().cache_plan, 0, "delta pre-empts full plans");
    }

    #[test]
    fn prewarming_fills_the_cache_from_the_churn_stream() {
        // One admission teaches the pre-planner the dominant flavor; the
        // next control epoch warms the shape the ladder would request
        // next, so the following admission is a pure cache hit.
        let mut fleet = small_fleet(2);
        fleet
            .admit(Nanos(1), 0, flavor(1, 250_000))
            .expect("admits");
        assert_eq!(fleet.cache().warmed(), 0);
        epochs(&mut fleet, Nanos::ZERO, 1);
        assert!(fleet.cache().warmed() >= 1, "step must prewarm");
        let hits_before = fleet.rungs().cache_hit;
        fleet
            .admit(Nanos(2), 1, flavor(1, 250_000))
            .expect("admits");
        assert_eq!(
            fleet.rungs().cache_hit,
            hits_before + 1,
            "the predicted shape was warmed, so admission hits the cache"
        );
    }

    #[test]
    fn prewarming_disabled_warms_nothing() {
        let mut cfg = FleetConfig::new(2, 2);
        cfg.prewarm_flavors = 0;
        let mut fleet = Fleet::new(cfg).expect("boot plan");
        fleet
            .admit(Nanos(1), 0, flavor(1, 250_000))
            .expect("admits");
        epochs(&mut fleet, Nanos::ZERO, 4);
        assert_eq!(fleet.cache().warmed(), 0);
    }

    #[test]
    fn backoff_is_bounded_at_extreme_retry_counts() {
        let base = Nanos::from_millis(50);
        let cap = Nanos::from_millis(800);
        assert_eq!(backoff(base, cap, 0), base);
        assert_eq!(backoff(base, cap, 1), base);
        assert_eq!(backoff(base, cap, 2), Nanos::from_millis(100));
        // Past the cap the curve pins — including shift exponents that
        // would overflow a u64 without the clamp.
        for attempt in [6, 20, 21, 63, 64, 65, 1_000, u32::MAX] {
            assert_eq!(backoff(base, cap, attempt), cap, "attempt {attempt}");
        }
        // A cap below the base still wins.
        assert_eq!(backoff(base, Nanos(7), u32::MAX), Nanos(7));
    }

    #[test]
    fn backpressure_hysteresis_does_not_flap_around_the_threshold() {
        let (threshold, hysteresis) = (8, 2);
        // Climbing to the threshold never engages first-fit.
        let mut p = false;
        for backlog in [7, 8, 7, 8, 8] {
            p = pressured_next(p, backlog, threshold, hysteresis);
            assert!(!p, "backlog {backlog} must not engage first-fit");
        }
        // One excursion engages it; oscillating ±1 around the threshold
        // afterwards keeps the policy pinned (no alternation).
        p = pressured_next(p, 9, threshold, hysteresis);
        assert!(p);
        for backlog in [8, 9, 8, 7, 9, 8, 7] {
            p = pressured_next(p, backlog, threshold, hysteresis);
            assert!(p, "backlog {backlog} inside the band must stay pinned");
        }
        // Only falling through the band releases it...
        p = pressured_next(p, 6, threshold, hysteresis);
        assert!(!p);
        // ...and re-engaging needs a full threshold crossing again.
        p = pressured_next(p, 8, threshold, hysteresis);
        assert!(!p);
        // Zero hysteresis degenerates to the bare comparison.
        assert!(pressured_next(true, 9, 8, 0));
        assert!(!pressured_next(true, 8, 8, 0));
        // A band wider than the threshold saturates at zero backlog.
        assert!(pressured_next(true, 1, 3, 10));
        assert!(!pressured_next(true, 0, 3, 10));
    }

    #[test]
    fn teardown_returns_capacity() {
        let mut fleet = small_fleet(1);
        fleet
            .admit(Nanos(1), 7, flavor(2, 500_000))
            .expect("admits");
        assert!(matches!(
            fleet.teardown(Nanos(2), 99),
            Err(FleetError::UnknownVm(99))
        ));
        fleet.teardown(Nanos(2), 7).expect("tears down");
        assert_eq!(fleet.live_vms(), 0);
        fleet.check_conservation().expect("conservation");
        // The capacity is admittable again.
        fleet
            .admit(Nanos(3), 8, flavor(2, 500_000))
            .expect("re-admits");
    }

    #[test]
    fn overload_sheds_with_typed_rejection_and_loses_nothing() {
        let mut fleet = small_fleet(1);
        let mut placed = 0u64;
        let mut shed = 0u64;
        for vm in 0..64 {
            match fleet.admit(Nanos(1), vm, flavor(1, 250_000)) {
                Ok(_) => placed += 1,
                Err(AdmissionRejected::NoCapacity { .. }) => shed += 1,
                Err(e) => panic!("unexpected rejection kind: {e}"),
            }
        }
        assert!(placed > 0 && shed > 0, "{placed} placed, {shed} shed");
        assert_eq!(fleet.counters().admissions_shed, shed);
        assert_eq!(fleet.live_vms() as u64, placed);
        fleet.check_conservation().expect("conservation");
    }

    #[test]
    fn crash_evacuates_every_vm_and_converges() {
        let mut fleet = small_fleet(3);
        for vm in 0..6u64 {
            fleet
                .admit(Nanos(1), vm, flavor(1, 125_000))
                .expect("admits");
        }
        let now = epochs(&mut fleet, Nanos::ZERO, 4);
        // Crash host 0 by hand (windows injected directly).
        let until = now + Nanos::from_millis(500);
        fleet.crash_windows[0] = vec![(now, until)];
        let now = epochs(&mut fleet, now, 12);
        assert_eq!(fleet.counters().crashes, 1);
        assert_eq!(fleet.displaced(), 0, "evacuation must converge");
        assert_eq!(fleet.live_vms(), 6, "no VM lost across the crash");
        for vm in 0..6u64 {
            match fleet.location(vm) {
                Some(VmLocation::Placed(h)) => assert_ne!(
                    fleet.states()[h],
                    HostState::Down { until },
                    "vm {vm} on a dead host"
                ),
                other => panic!("vm {vm} not placed after evacuation: {other:?}"),
            }
        }
        // The crashed host restarts empty and serves again.
        let _ = epochs(&mut fleet, now, 12);
        assert_eq!(fleet.counters().restarts, 1);
        assert!(matches!(fleet.states()[0], HostState::Online));
    }

    #[test]
    fn evacuation_overflow_parks_instead_of_losing() {
        // Two hosts, both nearly full; crash one. The displaced VMs cannot
        // all fit and must end up parked — owned, not lost.
        let mut fleet = small_fleet(2);
        let mut vms = Vec::new();
        for vm in 0..64u64 {
            if fleet.admit(Nanos(1), vm, flavor(1, 250_000)).is_ok() {
                vms.push(vm);
            }
        }
        let now = epochs(&mut fleet, Nanos::ZERO, 4);
        fleet.crash_windows[0] = vec![(now, now + Nanos::from_secs(3600))];
        let _ = epochs(&mut fleet, now, 40);
        assert!(fleet.counters().parked > 0, "some VMs must park");
        assert_eq!(fleet.live_vms(), vms.len(), "every admitted VM still owned");
    }

    #[test]
    fn parked_vms_resume_when_capacity_returns() {
        let mut fleet = small_fleet(2);
        for vm in 0..64u64 {
            let _ = fleet.admit(Nanos(1), vm, flavor(1, 250_000));
        }
        let live = fleet.live_vms();
        let now = epochs(&mut fleet, Nanos::ZERO, 4);
        // A short outage: the host comes back while VMs are still parked.
        fleet.crash_windows[0] = vec![(now, now + Nanos::from_millis(400))];
        let _ = epochs(&mut fleet, now, 120);
        assert_eq!(fleet.live_vms(), live);
        assert_eq!(fleet.displaced(), 0, "parked VMs must eventually re-place");
        assert!(fleet.counters().unparked > 0 || fleet.counters().parked == 0);
        assert_eq!(fleet.counters().restarts, 1);
    }

    #[test]
    fn resize_in_place_replans_or_rejects_typed() {
        let mut fleet = small_fleet(1);
        fleet
            .admit(Nanos(1), 1, flavor(1, 125_000))
            .expect("admits");
        fleet
            .resize(Nanos(2), 1, flavor(1, 250_000))
            .expect("resizes up");
        assert_eq!(fleet.counters().resizes, 1);
        // An impossible resize (past total capacity) is rejected and the
        // old flavor survives.
        let err = fleet.resize(Nanos(3), 1, flavor(8, 900_000));
        assert!(matches!(
            err,
            Err(FleetError::ResizeInfeasible { vm: 1, .. })
        ));
        assert_eq!(fleet.counters().resize_rejections, 1);
        fleet.check_conservation().expect("conservation");
        epochs(&mut fleet, Nanos::ZERO, 4);
    }

    #[test]
    fn install_storms_retry_with_backoff_and_commit_eventually() {
        use xensim::fault::{HostFaultConfig, InstallStormFaults};
        let mut fleet = small_fleet(2);
        let horizon = Nanos::from_secs(30);
        fleet.arm_faults(
            HostFaultConfig {
                seed: 5,
                storm: InstallStormFaults {
                    interval: Nanos::from_millis(400),
                    duration: Nanos::from_millis(300),
                    interrupt_prob: 0.9,
                },
                ..HostFaultConfig::none()
            },
            horizon,
        );
        // Sustained churn: one admission per epoch, teardowns six epochs
        // behind, so installs keep landing inside storm windows.
        let epoch = Nanos::from_millis(50);
        let mut now = Nanos::ZERO;
        for k in 0..200u64 {
            now += epoch;
            let _ = fleet.admit(now, k, flavor(1, 125_000));
            if k >= 6 {
                let _ = fleet.teardown(now, k - 6);
            }
            fleet.step(now);
            fleet.check_conservation().expect("conservation");
        }
        let c = *fleet.counters();
        assert!(c.install_retries > 0, "storms must interrupt installs");
        assert!(c.installs > 0, "installs must still commit");
        assert!(
            fleet.admit_to_install().count() > 0,
            "admissions eventually measure a committed install"
        );
    }

    #[test]
    fn zero_rate_fault_config_arms_nothing() {
        let mut fleet = small_fleet(2);
        fleet.arm_faults(HostFaultConfig::chaos(9, 0.0), Nanos::from_secs(10));
        assert!(fleet.engine.is_none());
        assert!(fleet.crash_windows.iter().all(|w| w.is_empty()));
        assert!(fleet.storm_windows.is_empty());
        assert!(fleet.corruption_events.iter().all(|e| e.is_empty()));
    }

    #[test]
    fn every_corruption_class_is_detected_and_repaired_within_an_epoch() {
        for class in 0..3u8 {
            let mut fleet = small_fleet(1);
            fleet
                .admit(Nanos(1), 1, flavor(1, 250_000))
                .expect("admits");
            let now = epochs(&mut fleet, Nanos::ZERO, 4);
            let installs_before = fleet.counters().installs;
            assert!(installs_before >= 1);
            // Inject one event of this class by hand (the seeded engine
            // drives the same path).
            fleet.corruption_events[0] = vec![CorruptionEvent {
                at: now + Nanos(1),
                class,
                salt: 7,
            }];
            // Epoch 1: inject -> audit flags -> repair install commits.
            let now = epochs(&mut fleet, now, 1);
            let c = *fleet.counters();
            assert_eq!(c.corruptions_injected, 1, "class {class} injected");
            assert_eq!(c.corruptions_detected, 1, "class {class} detected");
            assert_eq!(
                c.installs,
                installs_before + 1,
                "class {class} repaired through the install pipeline"
            );
            // Later epochs: the repaired table audits clean.
            let _ = epochs(&mut fleet, now, 4);
            let c = *fleet.counters();
            assert_eq!(c.corruptions_detected, 1, "detected exactly once");
            assert_eq!(c.audit_false_positives, 0);
            assert!(!fleet.hosts[0].audit_flagged);
        }
    }

    #[test]
    fn corruption_on_a_down_host_is_consumed_without_effect() {
        let mut fleet = small_fleet(1);
        fleet
            .admit(Nanos(1), 1, flavor(1, 250_000))
            .expect("admits");
        let now = epochs(&mut fleet, Nanos::ZERO, 4);
        fleet.crash_windows[0] = vec![(now, now + Nanos::from_secs(3600))];
        fleet.corruption_events[0] = vec![CorruptionEvent {
            at: now + Nanos::from_millis(100),
            class: 0,
            salt: 1,
        }];
        let _ = epochs(&mut fleet, now, 8);
        let c = *fleet.counters();
        assert_eq!(c.crashes, 1);
        assert_eq!(c.corruptions_injected, 0, "no table to corrupt");
        assert_eq!(c.corruptions_detected, 0);
        assert_eq!(c.audit_false_positives, 0);
        assert_eq!(
            fleet.corruption_cursor[0], 1,
            "the event is consumed, not replayed after the restart"
        );
    }

    #[test]
    fn queued_vms_teardown_and_resize_by_index() {
        // Regression for the O(n)-scan queues: teardown and resize must
        // find evacuating/parked VMs through the vm-id index, keep the
        // survivors' FIFO order, and preserve conservation.
        let mut fleet = small_fleet(2);
        let mut vms = Vec::new();
        for vm in 0..64u64 {
            if fleet.admit(Nanos(1), vm, flavor(1, 250_000)).is_ok() {
                vms.push(vm);
            }
        }
        let now = epochs(&mut fleet, Nanos::ZERO, 4);
        // An outage with the fleet nearly full: the displaced VMs cannot
        // re-place while the host is down, so the queues stay populated
        // for several epochs.
        fleet.crash_windows[0] = vec![(now, now + Nanos::from_millis(900))];
        let now = epochs(&mut fleet, now, 8);
        let queued: Vec<u64> = vms
            .iter()
            .copied()
            .filter(|&vm| {
                matches!(
                    fleet.location(vm),
                    Some(VmLocation::Evacuating | VmLocation::Parked)
                )
            })
            .collect();
        assert!(queued.len() >= 2, "outage must leave VMs queued");

        // Tear one down mid-queue and resize another in place.
        fleet.teardown(now, queued[0]).expect("queued teardown");
        assert_eq!(fleet.location(queued[0]), None);
        fleet
            .resize(now, queued[1], flavor(1, 125_000))
            .expect("queued resize");
        fleet.check_conservation().expect("conservation");
        assert_eq!(fleet.live_vms(), vms.len() - 1);
        assert_eq!(fleet.counters().teardowns, 1);
        assert_eq!(fleet.counters().resizes, 1);

        // The resized (smaller) flavor re-places once the host restarts...
        let _ = epochs(&mut fleet, now, 100);
        assert_eq!(fleet.displaced(), 0, "queues must drain after recovery");
        assert!(matches!(
            fleet.location(queued[1]),
            Some(VmLocation::Placed(_))
        ));
        // ...and the torn-down VM never re-appears.
        assert_eq!(fleet.location(queued[0]), None);
    }

    #[test]
    fn continuous_audit_is_silent_under_churn_without_corruption() {
        let mut fleet = small_fleet(2);
        let epoch = Nanos::from_millis(50);
        let mut now = Nanos::ZERO;
        for k in 0..40u64 {
            now += epoch;
            let _ = fleet.admit(now, k, flavor(1, 125_000));
            if k >= 4 {
                let _ = fleet.teardown(now, k - 4);
            }
            fleet.step(now);
        }
        let c = *fleet.counters();
        assert!(c.installs > 0);
        assert_eq!(c.audit_false_positives, 0, "installs re-baseline the audit");
        assert_eq!(c.corruptions_detected, 0);
    }
}
