//! Property-based test of the fleet conservation invariant.
//!
//! Under an arbitrary interleaving of admissions, teardowns, resizes, and
//! host crashes, the fleet must never lose or duplicate a VM: at every
//! control epoch the set of VMs the fleet owns (placed ∪ evacuating ∪
//! parked, pairwise disjoint) equals exactly the admitted-minus-torn-down
//! set the test tracks independently. Once the chaos stops and every host
//! has restarted, every surviving VM must converge back to *placed*.

use std::collections::BTreeSet;

use proptest::prelude::*;

use fleet::{Fleet, FleetConfig, VmLocation};
use rtsched::time::Nanos;
use workloads::churn::Flavor;

const FLAVORS: [Flavor; 4] = [
    Flavor {
        vcpus: 1,
        utilization_ppm: 125_000,
    },
    Flavor {
        vcpus: 1,
        utilization_ppm: 250_000,
    },
    Flavor {
        vcpus: 2,
        utilization_ppm: 125_000,
    },
    Flavor {
        vcpus: 2,
        utilization_ppm: 250_000,
    },
];

const N_HOSTS: usize = 6;
const EPOCH: Nanos = Nanos::from_millis(50);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Ops are `(kind, randomness, host)` triples, one per control epoch:
    /// kind 0/1 admit, 2 teardown, 3 resize, 4 crash.
    #[test]
    fn no_vm_lost_or_duplicated_under_crash_churn(
        ops in proptest::collection::vec((0u8..5, 0u64..u32::MAX as u64, 0usize..N_HOSTS), 1..60),
    ) {
        let mut fleet = Fleet::new(FleetConfig::new(N_HOSTS, 2)).expect("boot plan");
        let mut now = Nanos::ZERO;
        let mut next_vm = 0u64;
        // The oracle: admitted minus torn-down, tracked independently.
        let mut expected: BTreeSet<u64> = BTreeSet::new();

        for &(kind, r, h) in &ops {
            now += EPOCH;
            match kind {
                0 | 1 => {
                    let f = FLAVORS[(r % 4) as usize];
                    if fleet.admit(now, next_vm, f).is_ok() {
                        expected.insert(next_vm);
                    }
                    next_vm += 1;
                }
                2 => {
                    if !expected.is_empty() {
                        let idx = (r as usize) % expected.len();
                        let vm = *expected.iter().nth(idx).expect("idx in range");
                        fleet.teardown(now, vm).expect("tearing down a live vm");
                        expected.remove(&vm);
                    }
                }
                3 => {
                    if !expected.is_empty() {
                        let idx = (r as usize) % expected.len();
                        let vm = *expected.iter().nth(idx).expect("idx in range");
                        // Either applied or rejected with a typed error;
                        // both preserve ownership.
                        let _ = fleet.resize(now, vm, FLAVORS[((r >> 8) % 4) as usize]);
                    }
                }
                4 => {
                    let outage = Nanos::from_millis(100 + r % 900);
                    fleet.inject_crash(h, now, now + outage);
                }
                _ => unreachable!(),
            }
            fleet.step(now);

            if let Err(e) = fleet.check_conservation() {
                prop_assert!(false, "conservation violated at {now:?}: {e}");
            }
            prop_assert_eq!(
                fleet.live_vms(),
                expected.len(),
                "ledger diverged from the oracle at {:?}",
                now
            );
            for &vm in &expected {
                prop_assert!(fleet.location(vm).is_some(), "vm {} lost", vm);
            }
        }

        // Chaos over: drain long enough for every outage to end, every
        // parked VM to retry, and every evacuation to converge.
        for _ in 0..200 {
            now += EPOCH;
            fleet.step(now);
        }
        if let Err(e) = fleet.check_conservation() {
            prop_assert!(false, "conservation violated after drain: {e}");
        }
        prop_assert_eq!(fleet.live_vms(), expected.len());
        prop_assert_eq!(
            fleet.displaced(),
            0,
            "evacuations/parked VMs failed to converge"
        );
        for &vm in &expected {
            prop_assert!(
                matches!(fleet.location(vm), Some(VmLocation::Placed(_))),
                "vm {} not placed after convergence",
                vm
            );
        }
    }
}
