//! The determinism gate for the sharded fleet control plane.
//!
//! [`Fleet::step`] shards its per-host work (simulators, audit verdicts,
//! install prep, speculative warm planning) across worker threads; the
//! contract is that every fleet-level observable — counters, rung
//! provenance, recovery stats, the admit-to-install histogram, the shared
//! plan cache's counters and per-key stats, every VM's location, and the
//! aggregated dense-batching counters — is **bit-for-bit identical** to
//! the sequential execution, for any thread count. This drives one chaos
//! scenario (crashes, degradations, install storms, table corruptions,
//! sustained churn) through `rayon::force_sequential` and
//! `rayon::with_threads(3)` and compares everything.

use fleet::{Fleet, FleetConfig, VmLocation};
use rtsched::time::Nanos;
use workloads::churn::Flavor;
use xensim::fault::HostFaultConfig;
use xensim::stats::BatchStats;
use xensim::RecoveryStats;

/// Every observable the control plane exposes, in one comparable record.
#[derive(Debug, PartialEq)]
struct FleetObservation {
    counters: fleet::FleetCounters,
    rungs: fleet::RungCounters,
    recovery: RecoveryStats,
    batch: BatchStats,
    live_vms: usize,
    backlog: usize,
    displaced: usize,
    states: Vec<fleet::HostState>,
    locations: Vec<(u64, Option<VmLocation>)>,
    histogram: (u64, Nanos, Nanos, Nanos, Option<Nanos>),
    cache: (u64, u64, u64, tableau_core::cache::CacheStats),
}

fn run_chaos_scenario() -> FleetObservation {
    let mut fleet = Fleet::new(FleetConfig::new(8, 2)).expect("boot plan");
    let horizon = Nanos::from_secs(20);
    fleet.arm_faults(HostFaultConfig::chaos(42, 0.6), horizon);

    let epoch = Nanos::from_millis(50);
    let mut now = Nanos::ZERO;
    let mut vm = 0u64;
    for k in 0..120u64 {
        now += epoch;
        // Sustained churn: two admissions per epoch with alternating
        // flavors, teardowns and resizes trailing behind.
        for _ in 0..2 {
            let flavor = if vm.is_multiple_of(3) {
                Flavor {
                    vcpus: 2,
                    utilization_ppm: 125_000,
                }
            } else {
                Flavor {
                    vcpus: 1,
                    utilization_ppm: 250_000,
                }
            };
            let _ = fleet.admit(now, vm, flavor);
            vm += 1;
        }
        if k % 2 == 0 && vm > 12 {
            let _ = fleet.teardown(now, vm - 12);
        }
        if k % 5 == 0 && vm > 8 {
            let _ = fleet.resize(
                now,
                vm - 8,
                Flavor {
                    vcpus: 1,
                    utilization_ppm: 125_000,
                },
            );
        }
        // Guaranteed outages on top of the seeded chaos, so evacuation,
        // parking, and restart paths run regardless of the fault draw.
        if k == 40 {
            fleet.inject_crash(0, now, now + Nanos::from_millis(800));
        }
        if k == 70 {
            fleet.inject_crash(3, now, now + Nanos::from_millis(400));
            fleet.inject_crash(5, now, now + Nanos::from_millis(1_200));
        }
        fleet.step(now);
        fleet.check_conservation().expect("conservation");
    }

    let h = fleet.admit_to_install();
    FleetObservation {
        counters: *fleet.counters(),
        rungs: *fleet.rungs(),
        recovery: fleet.recovery_stats(),
        batch: fleet.batch_stats(),
        live_vms: fleet.live_vms(),
        backlog: fleet.backlog(),
        displaced: fleet.displaced(),
        states: fleet.states(),
        locations: (0..vm).map(|v| (v, fleet.location(v))).collect(),
        histogram: (h.count(), h.min(), h.max(), h.mean(), h.p99()),
        cache: (
            fleet.cache().hits(),
            fleet.cache().misses(),
            fleet.cache().warmed(),
            fleet.cache().stats(),
        ),
    }
}

#[test]
fn parallel_fleet_step_is_bit_identical_to_sequential() {
    let sequential = rayon::force_sequential(run_chaos_scenario);
    let parallel = rayon::with_threads(3, run_chaos_scenario);
    assert_eq!(
        sequential, parallel,
        "sharded control plane diverged from the sequential reference"
    );
    // The scenario must actually exercise the sharded phases.
    assert!(
        sequential.counters.crashes > 0,
        "chaos never crashed a host"
    );
    assert!(sequential.counters.installs > 0, "no installs committed");
    assert!(sequential.counters.admissions > 0, "no admissions");
    assert!(sequential.cache.0 > 0, "the plan cache never served a hit");
}

#[test]
fn thread_count_does_not_change_the_outcome() {
    // Two different worker counts (one of which does not divide the host
    // count) still agree — chunking must not leak into results.
    let two = rayon::with_threads(2, run_chaos_scenario);
    let five = rayon::with_threads(5, run_chaos_scenario);
    assert_eq!(two, five);
}
