//! The Tableau dispatcher: the hypervisor-side hot path (Secs. 4 and 6).
//!
//! A scheduling decision under Tableau is little more than a table lookup:
//!
//! 1. find the slot covering "now" in the current table (O(1) via the slice
//!    table);
//! 2. if the slot is reserved and its vCPU is runnable (and not still
//!    running on another core — see below), dispatch it until the slot ends;
//! 3. otherwise invoke the second-level scheduler for a core-local,
//!    uncapped, runnable vCPU;
//! 4. otherwise idle until the slot expires.
//!
//! **Cross-core migrations.** A vCPU split across cores may have one
//! allocation end on core A a few cycles before (or after — timer skew) the
//! next begins on core B. Core B must not run the vCPU until A has fully
//! de-scheduled it, or the vCPU's stack would be corrupted. Tableau tracks a
//! per-vCPU *owner* core; a core that finds the designated vCPU still owned
//! elsewhere records an IPI request and falls through to the second level.
//! When the owner de-schedules the vCPU, the pending request is turned into
//! an IPI to the waiting core. In the real implementation these are atomic
//! fields in the vCPU control block (no locks, no globally shared cache
//! lines); this crate models the protocol for a single-threaded simulator,
//! so plain fields suffice — the *logic* is what the reproduction preserves.

use std::sync::Arc;

use rtsched::time::Nanos;

use crate::guardian::SlaMonitor;
use crate::level2::Level2;
use crate::switch::{InstallError, StagedInstall, TableManager};
use crate::table::{Slot, Table};
use crate::vcpu::VcpuId;

/// A scheduling decision for one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Run `vcpu` until the absolute time `until` (then re-invoke).
    Run {
        /// The vCPU to dispatch.
        vcpu: VcpuId,
        /// Absolute expiry of the decision.
        until: Nanos,
        /// `true` if the pick came from the second-level scheduler.
        level2: bool,
    },
    /// Nothing to run; re-invoke at `until` (or earlier on a wake-up IPI).
    Idle {
        /// Absolute expiry of the decision.
        until: Nanos,
    },
}

impl Decision {
    /// Absolute time at which this decision expires.
    pub fn until(&self) -> Nanos {
        match *self {
            Decision::Run { until, .. } | Decision::Idle { until } => until,
        }
    }

    /// The vCPU to run, if any.
    pub fn vcpu(&self) -> Option<VcpuId> {
        match *self {
            Decision::Run { vcpu, .. } => Some(vcpu),
            Decision::Idle { .. } => None,
        }
    }
}

/// Tableau's per-host dispatcher state.
///
/// One instance serves all cores; every method takes the acting core as a
/// parameter. State is partitioned per core (second level) or per vCPU
/// (ownership), mirroring the core-local design of the Xen implementation.
/// Per-core memo of the last dispatch lookup: which table round and segment
/// the core was in. Per-core time moves forward, so the next lookup resumes
/// from here — the steady state is a few compares and one forward step over
/// the flattened segment array, with no division and no re-scan.
#[derive(Debug, Clone, Copy)]
struct SlotCursor {
    /// Epoch index the cursor was built against (`usize::MAX` = invalid).
    epoch: usize,
    /// Absolute start of the table round the cursor is in.
    round_base: Nanos,
    /// Segment index within the core's flattened table.
    seg: usize,
}

impl SlotCursor {
    const INVALID: SlotCursor = SlotCursor {
        epoch: usize::MAX,
        round_base: Nanos::ZERO,
        seg: 0,
    };
}

#[derive(Debug)]
pub struct Dispatcher {
    tables: TableManager,
    /// Per-core dispatch-lookup cursor (the "next boundary" hint).
    cursor: Vec<SlotCursor>,
    /// Per-core second-level scheduler.
    level2: Vec<Level2>,
    /// Epoch each core's second level was built against (refreshed lazily
    /// when the core adopts a new table).
    level2_epoch: Vec<usize>,
    /// Per-vCPU capped flag (capped vCPUs never run at the second level).
    capped: Vec<bool>,
    /// Which core currently has each vCPU context-loaded, if any.
    owner: Vec<Option<usize>>,
    /// Pending "tell me when this vCPU is de-scheduled" IPI requests.
    ipi_request: Vec<Option<usize>>,
    /// Per-vCPU quarantine flags (source of truth; demotions are re-applied
    /// to each core's second level on its next lazy rebuild).
    quarantined: Vec<bool>,
    /// Optional SLA monitor fed from the dispatch path.
    monitor: Option<SlaMonitor>,
}

impl Dispatcher {
    /// Creates a dispatcher from an initial table.
    ///
    /// `capped` is indexed by vCPU id; vCPUs not covered default to capped
    /// (the conservative choice: they never consume spare cycles).
    pub fn new(table: impl Into<Arc<Table>>, capped: Vec<bool>, l2_epoch_len: Nanos) -> Dispatcher {
        let table = table.into();
        let n_cores = table.n_cores();
        let mut d = Dispatcher {
            tables: TableManager::new(table),
            cursor: vec![SlotCursor::INVALID; n_cores],
            level2: Vec::with_capacity(n_cores),
            level2_epoch: vec![0; n_cores],
            capped,
            owner: Vec::new(),
            ipi_request: Vec::new(),
            quarantined: Vec::new(),
            monitor: None,
        };
        for core in 0..n_cores {
            let eligible = d.level2_eligible(d.tables.epoch_table(0), core);
            d.level2.push(Level2::new(l2_epoch_len, &eligible));
        }
        d
    }

    fn level2_eligible(&self, table: &Table, core: usize) -> Vec<VcpuId> {
        table
            .vcpus_homed_on(core)
            .iter()
            .copied()
            .filter(|v| !self.is_capped(*v))
            .collect()
    }

    /// Whether `vcpu` is capped (defaults to `true` when unknown).
    pub fn is_capped(&self, vcpu: VcpuId) -> bool {
        self.capped.get(vcpu.0 as usize).copied().unwrap_or(true)
    }

    /// Number of cores the dispatcher serves.
    pub fn n_cores(&self) -> usize {
        self.level2.len()
    }

    /// The core currently owning (running) `vcpu`, if any.
    pub fn owner_of(&self, vcpu: VcpuId) -> Option<usize> {
        self.owner.get(vcpu.0 as usize).copied().flatten()
    }

    fn ensure_vcpu_slots(&mut self, vcpu: VcpuId) {
        let need = vcpu.0 as usize + 1;
        if self.owner.len() < need {
            self.owner.resize(need, None);
            self.ipi_request.resize(need, None);
        }
    }

    /// Makes a scheduling decision for `core` at absolute time `now`.
    ///
    /// `is_runnable` reports guest state (runnable vs. blocked); the
    /// dispatcher handles ownership itself. The returned decision holds
    /// until `until`, a wake-up IPI, or the guest blocking — whichever
    /// comes first; the caller re-invokes on each of those events.
    pub fn decide(
        &mut self,
        core: usize,
        now: Nanos,
        mut is_runnable: impl FnMut(VcpuId) -> bool,
    ) -> Decision {
        let epoch = self.tables.confirm(core, now);

        // Refresh second-level eligibility if this core adopted a new table.
        if epoch != self.level2_epoch[core] {
            let eligible = self.level2_eligible(self.tables.epoch_table(epoch), core);
            self.level2[core].set_eligible(&eligible);
            if self.quarantined.iter().any(|&q| q) {
                let demoted: Vec<VcpuId> = eligible
                    .iter()
                    .copied()
                    .filter(|&v| self.is_quarantined(v))
                    .collect();
                if !demoted.is_empty() {
                    self.level2[core].set_demoted(&demoted);
                }
            }
            self.level2_epoch[core] = epoch;
        }

        // Slot lookup via the per-core cursor: resume from the last
        // segment; division only on a table wrap or an epoch change.
        let (slot, until) = {
            let table = self.tables.epoch_table(epoch);
            let len = table.len();
            let cpu = table.cpu(core);
            let cur = &mut self.cursor[core];
            if cur.epoch != epoch || now < cur.round_base || now - cur.round_base >= len {
                cur.epoch = epoch;
                cur.round_base = now - now % len;
                cur.seg = 0;
            }
            let t = now - cur.round_base;
            cur.seg = cpu.seek_segment(cur.seg, t);
            let slot = cpu.segment_slot(cur.seg);
            (slot, cur.round_base + slot.until())
        };

        // First level: the reserved vCPU, if it can actually run here.
        if let Slot::Reserved { vcpu, .. } = slot {
            self.ensure_vcpu_slots(vcpu);
            if is_runnable(vcpu) {
                match self.owner[vcpu.0 as usize] {
                    Some(other) if other != core => {
                        // Still context-loaded elsewhere: request an IPI on
                        // de-schedule and fall through to the second level.
                        self.ipi_request[vcpu.0 as usize] = Some(core);
                    }
                    _ => {
                        self.owner[vcpu.0 as usize] = Some(core);
                        if let Some(m) = &mut self.monitor {
                            m.note_dispatched(vcpu, now);
                        }
                        return Decision::Run {
                            vcpu,
                            until,
                            level2: false,
                        };
                    }
                }
            }
        }

        // Second level: core-local, uncapped, runnable, not owned elsewhere.
        let owner = &self.owner;
        let pick = self.level2[core].pick(|v| {
            is_runnable(v)
                && owner
                    .get(v.0 as usize)
                    .copied()
                    .flatten()
                    .map(|o| o == core)
                    .unwrap_or(true)
        });
        if let Some(vcpu) = pick {
            self.ensure_vcpu_slots(vcpu);
            self.owner[vcpu.0 as usize] = Some(core);
            if let Some(m) = &mut self.monitor {
                m.note_dispatched(vcpu, now);
            }
            return Decision::Run {
                vcpu,
                until,
                level2: true,
            };
        }

        Decision::Idle { until }
    }

    /// Records that `core` de-scheduled `vcpu` (context fully saved).
    ///
    /// Returns the core to IPI, if one was waiting for this vCPU (the
    /// cross-core migration hand-off of Sec. 6).
    pub fn on_descheduled(&mut self, vcpu: VcpuId, core: usize) -> Option<usize> {
        self.ensure_vcpu_slots(vcpu);
        if self.owner[vcpu.0 as usize] == Some(core) {
            self.owner[vcpu.0 as usize] = None;
        }
        self.ipi_request[vcpu.0 as usize].take()
    }

    /// Charges second-level execution time (the caller knows how long the
    /// level-2 pick actually ran).
    pub fn charge_level2(&mut self, core: usize, vcpu: VcpuId, amount: Nanos) {
        self.level2[core].charge(vcpu, amount);
    }

    /// Precomputes `core`'s dispatch decisions over `[from, horizon]` as a
    /// dense window — the read-only half of the dense-phase fast path.
    ///
    /// Emits one `(vcpu, absolute until)` pair per table segment, starting
    /// with the segment containing `from` and continuing (wrapping rounds)
    /// until a segment ends strictly after `horizon`. Returns `false` —
    /// mutating nothing — unless the window is provably equivalent to
    /// calling [`Dispatcher::decide`] at every slice boundary:
    ///
    /// * the table manager is settled: nothing staged, and `core` is (or
    ///   would confirm onto) the newest epoch, so no switch lands
    ///   mid-window;
    /// * `core`'s second level is in sync with that epoch (no lazy refresh
    ///   pending from `set_capped` / `set_quarantined` / a table switch)
    ///   and its eligible set is empty, so every level-2 pick is a
    ///   side-effect-free `None` and every level-2 charge a no-op;
    /// * no SLA monitor is attached (dispatches would feed it);
    /// * no IPI request is pending anywhere (a de-schedule would consume
    ///   one and trigger a hand-off IPI);
    /// * every runnable reserved vCPU in the window is single-homed on
    ///   `core`, so the owner protocol cannot defer a dispatch.
    ///
    /// Runnability is sampled once per slot at build time; the caller
    /// guarantees guest state cannot change inside the window (the
    /// simulator abandons a batch on any block or wake). On `false`,
    /// slices already emitted must be discarded by the caller.
    pub fn dense_plan(
        &self,
        core: usize,
        from: Nanos,
        horizon: Nanos,
        mut is_runnable: impl FnMut(VcpuId) -> bool,
        mut emit: impl FnMut(Option<VcpuId>, Nanos),
    ) -> bool {
        if self.monitor.is_some() || self.tables.has_staged() {
            return false;
        }
        let epoch = self.tables.peek_epoch(core, from);
        if epoch + 1 != self.tables.n_epochs() || self.level2_epoch[core] != epoch {
            return false;
        }
        let table = self.tables.epoch_table(epoch);
        if !table
            .vcpus_homed_on(core)
            .iter()
            .all(|&v| self.is_capped(v))
        {
            return false;
        }
        if self.ipi_request.iter().any(|r| r.is_some()) {
            return false;
        }
        let len = table.len();
        let cpu = table.cpu(core);
        let n_segs = cpu.n_segments();
        let mut round_base = from - from % len;
        let mut seg = cpu.segment_at(from - round_base);
        // Slots and the runnability snapshot are time-invariant inside a
        // window, so a segment's decision (and its single-homed proof) is
        // computed once on first visit and replayed on every later round —
        // long windows cost O(segments) checks, not O(slices).
        let mut memo: Vec<Option<(Option<VcpuId>, Nanos)>> = vec![None; n_segs];
        loop {
            let (vcpu, rel_until) = match memo[seg] {
                Some(d) => d,
                None => {
                    let slot = cpu.segment_slot(seg);
                    let vcpu = match slot.vcpu() {
                        Some(v) if is_runnable(v) => {
                            let single_homed = table
                                .placement(v)
                                .is_some_and(|p| p.allocations.iter().all(|&(c, _, _)| c == core));
                            if !single_homed {
                                return false;
                            }
                            Some(v)
                        }
                        _ => None,
                    };
                    let d = (vcpu, slot.until());
                    memo[seg] = Some(d);
                    d
                }
            };
            let until = round_base + rel_until;
            emit(vcpu, until);
            if until > horizon {
                return true;
            }
            seg += 1;
            if seg == n_segs {
                seg = 0;
                round_base += len;
            }
        }
    }

    /// Applies the net state effect of executing a dense window on `core`
    /// — the mutating half of the dense-phase fast path.
    ///
    /// `at` is the time of the window's last committed decision and
    /// `running` the vCPU that decision left dispatched (if any). Under
    /// the [`Dispatcher::dense_plan`] guards the generic boundary
    /// callbacks would have: cleared `core`'s ownership at every
    /// de-schedule and re-asserted it at every dispatch (net: only the
    /// final dispatch survives), advanced the table view once per decision
    /// (net: the last decision's confirm), and rebuilt the slot cursor
    /// (net: the cursor of the last decision). Level-2 state is untouched
    /// — its eligible set was empty for the whole window.
    pub fn dense_commit(&mut self, core: usize, at: Nanos, running: Option<VcpuId>) {
        let epoch = self.tables.confirm(core, at);
        for o in &mut self.owner {
            if *o == Some(core) {
                *o = None;
            }
        }
        if let Some(vcpu) = running {
            self.ensure_vcpu_slots(vcpu);
            self.owner[vcpu.0 as usize] = Some(core);
        }
        let (round_base, seg) = {
            let table = self.tables.epoch_table(epoch);
            let round_base = at - at % table.len();
            (round_base, table.cpu(core).segment_at(at - round_base))
        };
        self.cursor[core] = SlotCursor {
            epoch,
            round_base,
            seg,
        };
    }

    /// The core to IPI when `vcpu` wakes at `now` (Sec. 6, "Efficient
    /// wake-ups"): the core of its current-or-next allocation; capped vCPUs
    /// with no current allocation can safely be left for their next slot.
    ///
    /// Returns `None` when no IPI is needed.
    pub fn wakeup_target(&mut self, vcpu: VcpuId, now: Nanos) -> Option<usize> {
        // Core 0's view only nominates a candidate. Mid-switch, per-core
        // epoch views diverge (a core that looked at its pointer more
        // recently holds a newer epoch), so whether the vCPU's slot is
        // active must be judged by the table the *target* core is actually
        // running — else a capped vCPU's needed IPI can be suppressed (or a
        // useless one sent) based on a table that core isn't executing.
        let epoch0 = self.tables.confirm(0, now);
        let candidate = self.tables.epoch_table(epoch0).wakeup_target(vcpu, now)?;
        let epoch = self.tables.confirm(candidate, now);
        let table = self.tables.epoch_table(epoch);
        let target = table.wakeup_target(vcpu, now)?;
        if self.is_capped(vcpu) {
            // Only worth interrupting if the vCPU's slot is active now.
            let t = now % table.len();
            let active = table
                .placement(vcpu)?
                .allocations
                .iter()
                .any(|&(c, s, e)| c == target && s <= t && t < e);
            return active.then_some(target);
        }
        Some(target)
    }

    /// Installs a table pushed by the planner; returns the absolute time at
    /// which every core will have switched (see [`TableManager::install`]).
    ///
    /// Accepts an owned [`Table`] or a shared `Arc<Table>`; the latter is
    /// allocation-free — the planner-built slice index is shared as-is.
    ///
    /// # Errors
    ///
    /// The typed install errors of [`TableManager::begin_install`]; a
    /// rejected push leaves the running table untouched.
    pub fn install_table(
        &mut self,
        table: impl Into<Arc<Table>>,
        now: Nanos,
    ) -> Result<Nanos, InstallError> {
        self.tables.install(table, now)
    }

    /// Phase one of a two-phase table install: validates and stages the
    /// table without exposing it to any core (see
    /// [`TableManager::begin_install`]).
    pub fn begin_table_switch(
        &mut self,
        table: impl Into<Arc<Table>>,
        now: Nanos,
    ) -> Result<StagedInstall, InstallError> {
        self.tables.begin_install(table, now)
    }

    /// Phase two: atomically publishes the staged table; returns the time
    /// all cores will have switched.
    ///
    /// # Errors
    ///
    /// [`InstallError::NothingStaged`] when nothing is staged (commit
    /// without begin, double commit, or commit after abort); the running
    /// table is untouched.
    pub fn commit_table_switch(&mut self, staged: StagedInstall) -> Result<Nanos, InstallError> {
        self.tables.commit_install(staged)
    }

    /// Rolls back a staged table install (the push was interrupted); the
    /// dispatcher keeps running the old table as if nothing happened.
    pub fn abort_table_switch(&mut self) {
        self.tables.abort_install();
    }

    /// Whether a table install is currently staged.
    pub fn has_staged_table(&self) -> bool {
        self.tables.has_staged()
    }

    /// The most recently committed table (see
    /// [`TableManager::newest_table`]) — what the continuous audit
    /// re-checks against its install-time fact store.
    pub fn newest_table(&self) -> &Table {
        self.tables.newest_table()
    }

    /// Fault-injection hook: see [`TableManager::corrupt_newest_table`].
    pub fn corrupt_newest_table(&mut self, table: Table) -> Result<(), String> {
        self.tables.corrupt_newest_table(table)
    }

    /// Replaces the capped flags (on VM reconfiguration).
    pub fn set_capped(&mut self, capped: Vec<bool>) {
        self.capped = capped;
        // Eligibility is refreshed lazily per core on the next decision.
        for e in &mut self.level2_epoch {
            *e = usize::MAX;
        }
    }

    /// Runs table garbage collection; returns the number of tables freed.
    pub fn collect_garbage(&mut self) -> usize {
        self.tables.collect_garbage()
    }

    /// Quarantines `vcpu` (demotes it at the second level so it only
    /// scavenges otherwise-idle time) or lifts the quarantine.
    ///
    /// Takes effect on each core's next decision via the lazy second-level
    /// rebuild; the table reservation of the vCPU is untouched.
    pub fn set_quarantined(&mut self, vcpu: VcpuId, quarantined: bool) {
        let need = vcpu.0 as usize + 1;
        if self.quarantined.len() < need {
            self.quarantined.resize(need, false);
        }
        if self.quarantined[vcpu.0 as usize] == quarantined {
            return;
        }
        self.quarantined[vcpu.0 as usize] = quarantined;
        // Demotions are re-applied lazily per core on the next decision.
        for e in &mut self.level2_epoch {
            *e = usize::MAX;
        }
    }

    /// Whether `vcpu` is currently quarantined.
    pub fn is_quarantined(&self, vcpu: VcpuId) -> bool {
        self.quarantined
            .get(vcpu.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Whether the table-switch protocol is fully quiescent (nothing
    /// staged, every core on the newest epoch) — a precondition for
    /// partitioned (PDES) execution: only then is each core's table view
    /// independent of when the other cores confirm.
    pub fn tables_settled(&self) -> bool {
        self.tables.is_settled()
    }

    /// Clones the dispatcher for one PDES partition. The clone carries the
    /// full state (tables, cursors, second levels, ownership) so the
    /// partition's owned cores behave bit-identically to the sequential
    /// run; the SLA monitor is never cloned — partitioned runs are
    /// declined while one is attached (it needs the global dispatch
    /// order).
    pub fn clone_for_partition(&self) -> Dispatcher {
        debug_assert!(self.monitor.is_none(), "cannot partition with a monitor");
        Dispatcher {
            tables: self.tables.clone(),
            cursor: self.cursor.clone(),
            level2: self.level2.clone(),
            level2_epoch: self.level2_epoch.clone(),
            capped: self.capped.clone(),
            owner: self.owner.clone(),
            ipi_request: self.ipi_request.clone(),
            quarantined: self.quarantined.clone(),
            monitor: None,
        }
    }

    /// Merges a PDES partition's state back: per-core state (cursor,
    /// second level, table view) for the owned core range, per-vCPU state
    /// (ownership, pending hand-off IPI requests) for the vCPUs the
    /// partition owned. Capped and quarantine flags are configuration,
    /// unchanged during a run.
    pub fn absorb_partition(
        &mut self,
        part: &Dispatcher,
        core_lo: usize,
        core_hi: usize,
        owns_vcpu: &dyn Fn(usize) -> bool,
    ) {
        for core in core_lo..core_hi {
            self.cursor[core] = part.cursor[core];
            self.level2[core] = part.level2[core].clone();
            self.level2_epoch[core] = part.level2_epoch[core];
            self.tables.adopt_core_view(core, &part.tables);
        }
        let need = part.owner.len();
        if self.owner.len() < need {
            self.owner.resize(need, None);
            self.ipi_request.resize(need, None);
        }
        for v in 0..need {
            if owns_vcpu(v) {
                self.owner[v] = part.owner[v];
                self.ipi_request[v] = part.ipi_request[v];
            }
        }
    }

    /// Attaches an SLA monitor; subsequent dispatches feed it. Replaces any
    /// previously attached monitor.
    pub fn attach_sla_monitor(&mut self, monitor: SlaMonitor) {
        self.monitor = Some(monitor);
    }

    /// The attached SLA monitor, if any.
    pub fn sla_monitor(&self) -> Option<&SlaMonitor> {
        self.monitor.as_ref()
    }

    /// Mutable access to the attached SLA monitor, if any.
    pub fn sla_monitor_mut(&mut self) -> Option<&mut SlaMonitor> {
        self.monitor.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Allocation;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn alloc(s: u64, e: u64, v: u32) -> Allocation {
        Allocation {
            start: ms(s),
            end: ms(e),
            vcpu: VcpuId(v),
        }
    }

    /// Two cores; vCPU 0 on core 0 [0,3), vCPU 1 on core 0 [5,8),
    /// vCPU 2 on core 1 [0,10). Table length 10 ms.
    fn two_core_dispatcher(capped: Vec<bool>) -> Dispatcher {
        let table = Table::new(
            ms(10),
            vec![vec![alloc(0, 3, 0), alloc(5, 8, 1)], vec![alloc(0, 10, 2)]],
        )
        .unwrap();
        Dispatcher::new(table, capped, ms(10))
    }

    #[test]
    fn first_level_dispatch() {
        let mut d = two_core_dispatcher(vec![false; 3]);
        let dec = d.decide(0, ms(1), |_| true);
        assert_eq!(
            dec,
            Decision::Run {
                vcpu: VcpuId(0),
                until: ms(3),
                level2: false
            }
        );
    }

    #[test]
    fn blocked_reserved_vcpu_falls_to_level2() {
        let mut d = two_core_dispatcher(vec![false; 3]);
        // vCPU 0 blocked; vCPU 1 (homed on core 0, uncapped) takes over.
        let dec = d.decide(0, ms(1), |v| v != VcpuId(0));
        assert_eq!(dec.vcpu(), Some(VcpuId(1)));
        assert!(matches!(dec, Decision::Run { level2: true, .. }));
    }

    #[test]
    fn idle_gap_used_by_level2() {
        let mut d = two_core_dispatcher(vec![false; 3]);
        // [3, 5) is idle in the table; level 2 picks a core-local vCPU.
        let dec = d.decide(0, ms(3), |_| true);
        assert!(matches!(dec, Decision::Run { level2: true, .. }));
        assert_eq!(dec.until(), ms(5));
    }

    #[test]
    fn capped_vcpus_never_run_level2() {
        let mut d = two_core_dispatcher(vec![true; 3]);
        let dec = d.decide(0, ms(3), |_| true);
        assert_eq!(dec, Decision::Idle { until: ms(5) });
    }

    #[test]
    fn level2_is_core_local() {
        let mut d = two_core_dispatcher(vec![false; 3]);
        // Core 1's reserved vCPU 2 blocked; vCPUs 0/1 are homed on core 0,
        // so core 1 idles.
        let dec = d.decide(1, ms(1), |v| v != VcpuId(2));
        assert_eq!(dec, Decision::Idle { until: ms(10) });
    }

    #[test]
    fn migration_handoff_protocol() {
        // vCPU 0 split: core 0 [0,3), core 1 [3,6).
        let table = Table::new(ms(10), vec![vec![alloc(0, 3, 0)], vec![alloc(3, 6, 0)]]).unwrap();
        let mut d = Dispatcher::new(table, vec![true], ms(10));
        // Core 0 runs it.
        let dec = d.decide(0, ms(0), |_| true);
        assert_eq!(dec.vcpu(), Some(VcpuId(0)));
        // Core 1's slot begins but core 0 has not de-scheduled yet (timer
        // skew): core 1 must NOT run the vCPU.
        let dec = d.decide(1, ms(3), |_| true);
        assert_eq!(dec.vcpu(), None);
        // When core 0 de-schedules, the hand-off IPI targets core 1.
        assert_eq!(d.on_descheduled(VcpuId(0), 0), Some(1));
        // Now core 1 can claim it.
        let dec = d.decide(1, ms(3), |_| true);
        assert_eq!(dec.vcpu(), Some(VcpuId(0)));
        assert_eq!(d.owner_of(VcpuId(0)), Some(1));
    }

    #[test]
    fn wakeup_routing() {
        let mut d = two_core_dispatcher(vec![false, false, false]);
        // vCPU 2 has a current allocation on core 1.
        assert_eq!(d.wakeup_target(VcpuId(2), ms(4)), Some(1));
        // vCPU 1's next allocation is on core 0.
        assert_eq!(d.wakeup_target(VcpuId(1), ms(1)), Some(0));
    }

    #[test]
    fn capped_wakeup_outside_slot_needs_no_ipi() {
        let mut d = two_core_dispatcher(vec![true, true, true]);
        // vCPU 1 capped, current time outside its [5, 8) slot.
        assert_eq!(d.wakeup_target(VcpuId(1), ms(1)), None);
        // Inside its slot the IPI goes to core 0.
        assert_eq!(d.wakeup_target(VcpuId(1), ms(6)), Some(0));
    }

    #[test]
    fn capped_wakeup_mid_switch_routes_by_target_cores_view() {
        // Table A: capped vCPU 1 on core 1 at [5,10). Table B (installed
        // at t=5ms, pointer armed mid-round at 15ms) moves that slot to
        // [0,3).
        let a = Table::new(ms(10), vec![vec![alloc(0, 3, 0)], vec![alloc(5, 10, 1)]]).unwrap();
        let b = Table::new(ms(10), vec![vec![alloc(0, 3, 0)], vec![alloc(0, 3, 1)]]).unwrap();
        let mut d = Dispatcher::new(a, vec![true, true], ms(10));
        d.install_table(b, ms(5)).expect("installs");
        // Core 0 decides just past the 20ms wrap and adopts B ...
        let _ = d.decide(0, ms(21), |_| true);
        // ... but a wakeup for vCPU 1 carries a pre-wrap timestamp (timer
        // skew): core 1 is still executing A, whose [5,10) slot is active
        // at t=19ms. Judged by core 0's post-wrap view (B, where [0,3) is
        // inactive) the IPI would be suppressed and the capped vCPU would
        // silently lose the rest of its slot.
        assert_eq!(d.wakeup_target(VcpuId(1), ms(19)), Some(1));
        // Post-wrap wakeups agree with B: slot [0,3) inactive at t=24ms.
        assert_eq!(d.wakeup_target(VcpuId(1), ms(24)), None);
        assert_eq!(d.wakeup_target(VcpuId(1), ms(22)), Some(1));
    }

    #[test]
    fn table_switch_refreshes_level2() {
        let mut d = two_core_dispatcher(vec![false; 3]);
        // New table moves vCPU 1 to core 1.
        let new = Table::new(
            ms(10),
            vec![vec![alloc(0, 3, 0)], vec![alloc(0, 5, 2), alloc(5, 8, 1)]],
        )
        .unwrap();
        let switch_at = d.install_table(new, ms(1)).expect("installs");
        // After the switch, core 1's level 2 includes vCPU 1: during core
        // 1's idle tail [8, 10) it can pick vCPU 1 or 2.
        let dec = d.decide(1, switch_at + ms(8), |v| v == VcpuId(1));
        assert_eq!(dec.vcpu(), Some(VcpuId(1)));
        // And core 0 no longer second-levels vCPU 1.
        let dec = d.decide(0, switch_at + ms(4), |v| v == VcpuId(1));
        assert_eq!(dec.vcpu(), None);
    }

    #[test]
    fn level2_budgets_rotate_fairly() {
        let mut d = two_core_dispatcher(vec![false; 3]);
        // During the idle gap, repeatedly pick and charge: both uncapped
        // core-0 vCPUs get turns.
        let mut seen = Vec::new();
        for _ in 0..4 {
            if let Decision::Run { vcpu, .. } = d.decide(0, ms(3), |_| true) {
                d.charge_level2(0, vcpu, ms(2));
                d.on_descheduled(vcpu, 0);
                seen.push(vcpu);
            }
        }
        assert!(seen.contains(&VcpuId(0)));
        assert!(seen.contains(&VcpuId(1)));
    }

    #[test]
    fn quarantined_vcpu_yields_level2_to_good_standing() {
        let mut d = two_core_dispatcher(vec![false; 3]);
        d.set_quarantined(VcpuId(0), true);
        // In the idle gap [3, 5) both vCPU 0 and 1 are ready; quarantine
        // makes vCPU 1 win every time.
        for _ in 0..3 {
            let dec = d.decide(0, ms(3), |_| true);
            assert_eq!(dec.vcpu(), Some(VcpuId(1)));
            d.charge_level2(0, VcpuId(1), ms(2));
            d.on_descheduled(VcpuId(1), 0);
        }
        // The quarantined vCPU still scavenges when nothing else is ready.
        let dec = d.decide(0, ms(3), |v| v == VcpuId(0));
        assert_eq!(dec.vcpu(), Some(VcpuId(0)));
        d.on_descheduled(VcpuId(0), 0);
        // Lifting the quarantine restores fair rotation.
        d.set_quarantined(VcpuId(0), false);
        assert!(!d.is_quarantined(VcpuId(0)));
        let mut seen = Vec::new();
        for _ in 0..4 {
            if let Decision::Run { vcpu, .. } = d.decide(0, ms(3), |_| true) {
                d.charge_level2(0, vcpu, ms(2));
                d.on_descheduled(vcpu, 0);
                seen.push(vcpu);
            }
        }
        assert!(seen.contains(&VcpuId(0)));
        assert!(seen.contains(&VcpuId(1)));
    }

    #[test]
    fn quarantine_survives_table_switch() {
        let mut d = two_core_dispatcher(vec![false; 3]);
        d.set_quarantined(VcpuId(0), true);
        let _ = d.decide(0, ms(3), |_| true);
        // Reinstall the same layout: the switch rebuilds level 2, which
        // must re-apply the demotion.
        let new = Table::new(
            ms(10),
            vec![vec![alloc(0, 3, 0), alloc(5, 8, 1)], vec![alloc(0, 10, 2)]],
        )
        .unwrap();
        let switch_at = d.install_table(new, ms(1)).expect("installs");
        let dec = d.decide(0, switch_at + ms(3), |_| true);
        assert_eq!(dec.vcpu(), Some(VcpuId(1)));
    }

    #[test]
    fn attached_monitor_sees_dispatches() {
        use crate::guardian::SlaMonitor;
        let mut d = two_core_dispatcher(vec![false; 3]);
        let mut m = SlaMonitor::new(vec![(VcpuId(0), ms(2))]);
        m.note_runnable(VcpuId(0), ms(0));
        d.attach_sla_monitor(m);
        // Dispatched at 1 ms after becoming runnable at 0: within bound.
        let _ = d.decide(0, ms(1), |_| true);
        assert!(d.sla_monitor_mut().unwrap().drain_violations().is_empty());
        d.on_descheduled(VcpuId(0), 0);
        // Runnable again at 3 ms but only dispatched at 10 ms (its next
        // table slot round): 7 ms delay blows the 2 ms bound.
        d.sla_monitor_mut().unwrap().note_runnable(VcpuId(0), ms(3));
        let _ = d.decide(0, ms(10), |_| true);
        let violations = d.sla_monitor_mut().unwrap().drain_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].vcpu, VcpuId(0));
        assert_eq!(violations[0].observed, ms(7));
        assert_eq!(violations[0].bound, ms(2));
    }

    #[test]
    fn decision_accessors() {
        let r = Decision::Run {
            vcpu: VcpuId(1),
            until: ms(5),
            level2: false,
        };
        assert_eq!(r.until(), ms(5));
        assert_eq!(r.vcpu(), Some(VcpuId(1)));
        let i = Decision::Idle { until: ms(2) };
        assert_eq!(i.vcpu(), None);
    }
}
