//! Plan caching for recurring configurations (Sec. 7.1).
//!
//! "It is trivially possible to centrally cache tables for common
//! configurations that are frequently reused" — cloud providers sell a
//! handful of regular VM sizes, so hosts across a fleet keep asking the
//! planner for the same table. [`PlanCache`] memoizes plans keyed by the
//! *semantic* configuration: core count, the positional list of
//! `(utilization, latency, capped)` specs, **and** a canonical encoding of
//! the [`PlannerOptions`] the plan was computed under. VM names are
//! irrelevant (vCPU ids are positional), so renaming a fleet hits the
//! cache; changing the options (a conservative fallback rung, the peephole
//! pass, a different coalescing threshold) must *miss* — a plan computed
//! under different options is a different table, and serving it would
//! silently change the guarantees the tenant was sold.
//!
//! Entries are shared via [`Arc`]; eviction is least-recently-used with a
//! fixed capacity. [`PlanCache::stats`] reports aggregate and per-key
//! hit/miss counts for fleet observability.

use std::collections::HashMap;
use std::sync::Arc;

use rtsched::generator::Stage;

use crate::planner::{plan, Plan, PlanError, PlannerOptions};
use crate::vcpu::HostConfig;

/// Canonical, hashable encoding of [`PlannerOptions`].
///
/// Every field that can change the produced table participates; two option
/// values encode equal iff they drive the planner identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct OptionsKey {
    /// Hyperperiod of the candidate set.
    hyperperiod: u64,
    /// The candidate periods themselves (ascending, as stored).
    periods: Vec<u64>,
    /// Coalescing threshold in nanoseconds.
    coalesce_threshold: u64,
    /// `GenOptions::min_piece` in nanoseconds.
    min_piece: u64,
    /// `GenOptions::first_stage`, discretized.
    first_stage: u8,
    /// Whether the peephole pass runs.
    peephole: bool,
}

impl OptionsKey {
    fn of(opts: &PlannerOptions) -> OptionsKey {
        OptionsKey {
            hyperperiod: opts.candidates.hyperperiod().as_nanos(),
            periods: opts
                .candidates
                .periods()
                .iter()
                .map(|p| p.as_nanos())
                .collect(),
            coalesce_threshold: opts.coalesce_threshold.as_nanos(),
            min_piece: opts.gen.min_piece.as_nanos(),
            first_stage: match opts.gen.first_stage {
                Stage::Partitioned => 0,
                Stage::SemiPartitioned => 1,
                Stage::Clustered => 2,
            },
            peephole: opts.peephole,
        }
    }
}

/// Semantic cache key of a `(host configuration, planner options)` pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    n_cores: usize,
    /// Positional `(ppm, latency_ns, capped)` triples — positional because
    /// vCPU ids (and hence table contents) are positional.
    specs: Vec<(u32, u64, bool)>,
    /// The options the plan must have been computed under.
    opts: OptionsKey,
}

impl Key {
    fn of(host: &HostConfig, opts: &PlannerOptions) -> Key {
        Key {
            n_cores: host.n_cores,
            specs: host
                .vcpus()
                .into_iter()
                .map(|(_, s)| (s.utilization.ppm(), s.latency.as_nanos(), s.capped))
                .collect(),
            opts: OptionsKey::of(opts),
        }
    }

    /// Human-readable label for stats (`cores=2 vcpus=8 peephole coalesce=50us`).
    fn label(&self) -> String {
        let mut s = format!("cores={} vcpus={}", self.n_cores, self.specs.len());
        if self.opts.peephole {
            s.push_str(" peephole");
        }
        s.push_str(&format!(
            " coalesce={}ns first_stage={}",
            self.opts.coalesce_threshold, self.opts.first_stage
        ));
        s
    }
}

/// Hit/miss counters for one cache key, as reported by [`PlanCache::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyStats {
    /// Human-readable key label (core count, vCPU count, options summary).
    pub key: String,
    /// Hits served for this key.
    pub hits: u64,
    /// Misses (planner invocations) charged to this key.
    pub misses: u64,
}

/// Aggregate and per-key cache statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Total hits across all keys.
    pub hits: u64,
    /// Total misses across all keys.
    pub misses: u64,
    /// Per-key counters, most-hit first. Keys survive eviction of their
    /// entry (counters track the key's lifetime, not the entry's).
    pub per_key: Vec<KeyStats>,
}

/// An LRU cache of planner outputs.
#[derive(Debug)]
pub struct PlanCache {
    entries: HashMap<Key, (Arc<Plan>, u64)>,
    /// Per-key hit/miss counters; kept separate from `entries` so eviction
    /// does not erase a key's history.
    counters: HashMap<Key, (u64, u64)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates a cache holding up to `capacity` plans.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            entries: HashMap::new(),
            counters: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the cached plan for `(host, opts)`, planning (and caching)
    /// on miss. Plans computed under different [`PlannerOptions`] never
    /// alias, even for the same host shape.
    ///
    /// # Errors
    ///
    /// Propagates [`plan`]'s admission errors; failures are not cached.
    pub fn get_or_plan(
        &mut self,
        host: &HostConfig,
        opts: &PlannerOptions,
    ) -> Result<Arc<Plan>, PlanError> {
        self.tick += 1;
        let key = Key::of(host, opts);
        if let Some((cached, used)) = self.entries.get_mut(&key) {
            *used = self.tick;
            self.hits += 1;
            self.counters.entry(key).or_insert((0, 0)).0 += 1;
            return Ok(cached.clone());
        }
        self.misses += 1;
        self.counters.entry(key.clone()).or_insert((0, 0)).1 += 1;
        let fresh = Arc::new(plan(host, opts)?);
        if self.entries.len() >= self.capacity {
            // Evict the least-recently-used entry.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, (fresh.clone(), self.tick));
        Ok(fresh)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Aggregate plus per-key hit/miss statistics, most-hit keys first
    /// (ties broken by label for a stable report).
    pub fn stats(&self) -> CacheStats {
        let mut per_key: Vec<KeyStats> = self
            .counters
            .iter()
            .map(|(k, &(hits, misses))| KeyStats {
                key: k.label(),
                hits,
                misses,
            })
            .collect();
        per_key.sort_by(|a, b| b.hits.cmp(&a.hits).then_with(|| a.key.cmp(&b.key)));
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            per_key,
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached plan (per-key statistics are retained).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postprocess::DEFAULT_THRESHOLD;
    use crate::vcpu::{Utilization, VcpuSpec, VmSpec};
    use rtsched::time::Nanos;

    fn host(n: usize, name_prefix: &str) -> HostConfig {
        let mut h = HostConfig::new(2);
        let spec = VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20));
        for i in 0..n {
            h.add_vm(VmSpec::uniform(format!("{name_prefix}{i}"), 1, spec));
        }
        h
    }

    #[test]
    fn repeat_configurations_hit() {
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        let a = cache.get_or_plan(&host(8, "a"), &opts).unwrap();
        let b = cache.get_or_plan(&host(8, "a"), &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn names_do_not_matter_specs_do() {
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        let _ = cache.get_or_plan(&host(8, "prod"), &opts).unwrap();
        // Same shape, different names: hit.
        let _ = cache.get_or_plan(&host(8, "canary"), &opts).unwrap();
        assert_eq!(cache.hits(), 1);
        // Different VM count: miss.
        let _ = cache.get_or_plan(&host(6, "prod"), &opts).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn different_options_never_alias() {
        // The regression for the stale-plan collision: the same host under
        // two option sets must produce two distinct cache entries — the
        // peephole pass and a different coalescing threshold both change
        // the table, so serving the default-options plan would be wrong.
        let mut cache = PlanCache::new(8);
        let defaults = PlannerOptions::default();
        let peephole = PlannerOptions {
            peephole: true,
            ..PlannerOptions::default()
        };
        let coarse = PlannerOptions {
            coalesce_threshold: DEFAULT_THRESHOLD * 4,
            ..PlannerOptions::default()
        };

        let h = host(8, "vm");
        let a = cache.get_or_plan(&h, &defaults).unwrap();
        let b = cache.get_or_plan(&h, &peephole).unwrap();
        let c = cache.get_or_plan(&h, &coarse).unwrap();
        assert_eq!(cache.misses(), 3, "an option set aliased a cached plan");
        assert_eq!(cache.len(), 3);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));

        // And each option set hits its own entry on re-query.
        let b2 = cache.get_or_plan(&h, &peephole).unwrap();
        assert!(Arc::ptr_eq(&b, &b2));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn per_key_stats_surface_hits_and_misses() {
        let mut cache = PlanCache::new(4);
        let defaults = PlannerOptions::default();
        let peephole = PlannerOptions {
            peephole: true,
            ..PlannerOptions::default()
        };
        let h = host(4, "vm");
        let _ = cache.get_or_plan(&h, &defaults).unwrap();
        let _ = cache.get_or_plan(&h, &defaults).unwrap();
        let _ = cache.get_or_plan(&h, &defaults).unwrap();
        let _ = cache.get_or_plan(&h, &peephole).unwrap();

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 2));
        assert_eq!(stats.per_key.len(), 2, "one counter per distinct key");
        // Most-hit first: the defaults key (2 hits, 1 miss).
        assert_eq!((stats.per_key[0].hits, stats.per_key[0].misses), (2, 1));
        assert_eq!((stats.per_key[1].hits, stats.per_key[1].misses), (0, 1));
        assert!(stats.per_key[1].key.contains("peephole"));
        assert!(!stats.per_key[0].key.contains("peephole"));
    }

    #[test]
    fn lru_eviction_keeps_the_hot_entry() {
        let mut cache = PlanCache::new(2);
        let opts = PlannerOptions::default();
        let _ = cache.get_or_plan(&host(2, "a"), &opts).unwrap(); // A
        let _ = cache.get_or_plan(&host(4, "b"), &opts).unwrap(); // B
        let _ = cache.get_or_plan(&host(2, "a"), &opts).unwrap(); // touch A
        let _ = cache.get_or_plan(&host(6, "c"), &opts).unwrap(); // evicts B
        assert_eq!(cache.len(), 2);
        let _ = cache.get_or_plan(&host(2, "a"), &opts).unwrap();
        assert_eq!(cache.hits(), 2, "A was evicted instead of B");
    }

    #[test]
    fn failures_are_not_cached() {
        let mut cache = PlanCache::new(2);
        let opts = PlannerOptions::default();
        let over = host(9, "x"); // 9 * 25% on 2 cores
        assert!(cache.get_or_plan(&over, &opts).is_err());
        assert!(cache.is_empty());
        // The failed attempt still shows up as a per-key miss.
        assert_eq!(cache.stats().per_key.len(), 1);
        assert_eq!(cache.stats().per_key[0].misses, 1);
    }

    #[test]
    fn positional_order_is_part_of_the_key() {
        // Same multiset of specs, different order: the tables differ (vCPU
        // ids are positional), so these must be distinct entries.
        let mut h1 = HostConfig::new(2);
        h1.add_vm(VmSpec::uniform(
            "a",
            1,
            VcpuSpec::capped(Utilization::from_percent(50), Nanos::from_millis(20)),
        ));
        h1.add_vm(VmSpec::uniform(
            "b",
            1,
            VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20)),
        ));
        let mut h2 = HostConfig::new(2);
        h2.add_vm(VmSpec::uniform(
            "a",
            1,
            VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20)),
        ));
        h2.add_vm(VmSpec::uniform(
            "b",
            1,
            VcpuSpec::capped(Utilization::from_percent(50), Nanos::from_millis(20)),
        ));
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        let _ = cache.get_or_plan(&h1, &opts).unwrap();
        let _ = cache.get_or_plan(&h2, &opts).unwrap();
        assert_eq!(cache.misses(), 2);
    }
}
