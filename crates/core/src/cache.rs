//! Plan caching for recurring configurations (Sec. 7.1).
//!
//! "It is trivially possible to centrally cache tables for common
//! configurations that are frequently reused" — cloud providers sell a
//! handful of regular VM sizes, so hosts across a fleet keep asking the
//! planner for the same table. [`PlanCache`] memoizes plans keyed by the
//! *semantic* configuration: core count, NUMA layout, per-VM vCPU grouping
//! and node pinning, the positional list of `(utilization, latency,
//! capped)` specs, **and** a canonical encoding of the [`PlannerOptions`]
//! the plan was computed under. VM names are irrelevant (vCPU ids are
//! positional), so renaming a fleet hits the cache; changing the options (a
//! conservative fallback rung, the peephole pass, a different coalescing
//! threshold) or the NUMA pinning must *miss* — a plan computed under a
//! different configuration is a different table, and serving it would
//! silently change the guarantees the tenant was sold.
//!
//! **Hit-path cost.** A hit performs no allocation and builds no key: the
//! request is reduced to a 64-bit FNV fingerprint of its cheap scalars
//! (core/NUMA counts, per-VM shape, option scalars), the fingerprint
//! indexes a bucket map hashed by identity, and the few candidate slots are
//! confirmed by a *streaming* comparison directly against the live
//! `HostConfig`/`PlannerOptions`. The full canonical [`Key`] — which owns
//! vectors — is materialized only when a brand-new slot is inserted on a
//! miss, where its cost disappears behind the planner run.
//!
//! Entries are shared via [`Arc`]; eviction is least-recently-used with a
//! fixed capacity and clears only the plan — the slot's key and counters
//! survive, so [`PlanCache::stats`] reports each key's lifetime hit/miss
//! history for fleet observability.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex, MutexGuard};

use rtsched::generator::Stage;

use crate::planner::{plan, Plan, PlanError, PlannerOptions};
use crate::vcpu::HostConfig;

/// Canonical encoding of [`PlannerOptions`].
///
/// Every field that can change the produced table participates; two option
/// values encode equal iff they drive the planner identically.
#[derive(Debug, Clone)]
struct OptionsKey {
    /// Hyperperiod of the candidate set.
    hyperperiod: u64,
    /// The candidate periods themselves (ascending, as stored).
    periods: Vec<u64>,
    /// Coalescing threshold in nanoseconds.
    coalesce_threshold: u64,
    /// `GenOptions::min_piece` in nanoseconds.
    min_piece: u64,
    /// `GenOptions::first_stage`, discretized.
    first_stage: u8,
    /// Whether the peephole pass runs.
    peephole: bool,
}

fn stage_code(stage: Stage) -> u8 {
    match stage {
        Stage::Partitioned => 0,
        Stage::SemiPartitioned => 1,
        Stage::Clustered => 2,
    }
}

impl OptionsKey {
    fn of(opts: &PlannerOptions) -> OptionsKey {
        OptionsKey {
            hyperperiod: opts.candidates.hyperperiod().as_nanos(),
            periods: opts
                .candidates
                .periods()
                .iter()
                .map(|p| p.as_nanos())
                .collect(),
            coalesce_threshold: opts.coalesce_threshold.as_nanos(),
            min_piece: opts.gen.min_piece.as_nanos(),
            first_stage: stage_code(opts.gen.first_stage),
            peephole: opts.peephole,
        }
    }
}

/// Semantic cache key of a `(host configuration, planner options)` pair.
///
/// Built only on slot insertion; the hit path compares requests against it
/// via [`key_matches`] without constructing one.
#[derive(Debug, Clone)]
struct Key {
    n_cores: usize,
    /// NUMA node count — it changes core striping and hence placement.
    numa_nodes: usize,
    /// Per-VM `(vcpu_count, numa_node)` shape: node pinning drives soft
    /// placement preferences, and grouping determines which vCPUs share a
    /// pin, so hosts with the same flat spec list but different VM
    /// boundaries or pins must not alias.
    vms: Vec<(usize, Option<usize>)>,
    /// Positional `(ppm, latency_ns, capped)` triples — positional because
    /// vCPU ids (and hence table contents) are positional.
    specs: Vec<(u32, u64, bool)>,
    /// The options the plan must have been computed under.
    opts: OptionsKey,
}

impl Key {
    fn of(host: &HostConfig, opts: &PlannerOptions) -> Key {
        Key {
            n_cores: host.n_cores,
            numa_nodes: host.numa_nodes,
            vms: host
                .vms
                .iter()
                .map(|vm| (vm.vcpus.len(), vm.numa_node))
                .collect(),
            specs: host
                .vcpus()
                .into_iter()
                .map(|(_, s)| (s.utilization.ppm(), s.latency.as_nanos(), s.capped))
                .collect(),
            opts: OptionsKey::of(opts),
        }
    }

    /// Human-readable label for stats (`cores=2 vcpus=8 peephole coalesce=50us`).
    fn label(&self) -> String {
        let mut s = format!("cores={} vcpus={}", self.n_cores, self.specs.len());
        if self.opts.peephole {
            s.push_str(" peephole");
        }
        s.push_str(&format!(
            " coalesce={}ns first_stage={}",
            self.opts.coalesce_threshold, self.opts.first_stage
        ));
        s
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_word(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(FNV_PRIME)
}

/// 64-bit fingerprint of a request's cheap scalars — one multiply per word,
/// no allocation, and deliberately *not* a walk of the per-VM data: FNV's
/// xor-multiply chain is serial, so every extra word adds multiplier
/// latency to the hit path. Hosts that agree on all scalars but differ in
/// VM shape simply share a bucket and are split by [`key_matches`].
fn fingerprint(host: &HostConfig, opts: &PlannerOptions) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv_word(h, host.n_cores as u64);
    h = fnv_word(h, host.numa_nodes as u64);
    h = fnv_word(h, host.vms.len() as u64);
    h = fnv_word(h, opts.candidates.hyperperiod().as_nanos());
    h = fnv_word(h, opts.candidates.periods().len() as u64);
    h = fnv_word(h, opts.coalesce_threshold.as_nanos());
    h = fnv_word(h, opts.gen.min_piece.as_nanos());
    h = fnv_word(h, stage_code(opts.gen.first_stage) as u64);
    h = fnv_word(h, opts.peephole as u64);
    h
}

/// Full equality between a stored key and a live request, streamed directly
/// off the request without building a [`Key`].
fn key_matches(key: &Key, host: &HostConfig, opts: &PlannerOptions) -> bool {
    let o = &key.opts;
    if key.n_cores != host.n_cores
        || key.numa_nodes != host.numa_nodes
        || key.vms.len() != host.vms.len()
        || o.hyperperiod != opts.candidates.hyperperiod().as_nanos()
        || o.coalesce_threshold != opts.coalesce_threshold.as_nanos()
        || o.min_piece != opts.gen.min_piece.as_nanos()
        || o.first_stage != stage_code(opts.gen.first_stage)
        || o.peephole != opts.peephole
        || o.periods.len() != opts.candidates.periods().len()
    {
        return false;
    }
    // Branchless accumulate (no early exit) so the compiler can vectorize:
    // the standard candidate set has 186 entries and this runs on every hit.
    let periods_differ = o
        .periods
        .iter()
        .zip(opts.candidates.periods())
        .fold(0u64, |acc, (a, b)| acc | (a ^ b.as_nanos()));
    if periods_differ != 0 {
        return false;
    }
    // Single pass over the VMs covers both the grouping/pinning shape and
    // the flat positional spec list.
    let mut specs = key.specs.iter();
    for (k, vm) in key.vms.iter().zip(&host.vms) {
        if k.0 != vm.vcpus.len() || k.1 != vm.numa_node {
            return false;
        }
        for s in &vm.vcpus {
            match specs.next() {
                Some(&(ppm, latency, capped))
                    if ppm == s.utilization.ppm()
                        && latency == s.latency.as_nanos()
                        && capped == s.capped => {}
                _ => return false,
            }
        }
    }
    specs.next().is_none()
}

/// Pass-through hasher for the fingerprint bucket map: the key *is* already
/// a 64-bit hash, re-hashing it would only slow the hit path down.
#[derive(Default)]
struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("identity hasher only takes u64 keys");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type BucketMap = HashMap<u64, Vec<u32>, BuildHasherDefault<IdentityHasher>>;

/// One cache slot. Slots are append-only: eviction clears `plan` but keeps
/// the key and its lifetime counters.
#[derive(Debug)]
struct Slot {
    key: Key,
    plan: Option<Arc<Plan>>,
    used: u64,
    hits: u64,
    misses: u64,
}

/// Hit/miss counters for one cache key, as reported by [`PlanCache::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyStats {
    /// Human-readable key label (core count, vCPU count, options summary).
    pub key: String,
    /// Hits served for this key.
    pub hits: u64,
    /// Misses (planner invocations) charged to this key.
    pub misses: u64,
}

/// Aggregate and per-key cache statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStats {
    /// Total hits across all keys.
    pub hits: u64,
    /// Total misses across all keys.
    pub misses: u64,
    /// Per-key counters, most-hit first. Keys survive eviction of their
    /// entry (counters track the key's lifetime, not the entry's).
    pub per_key: Vec<KeyStats>,
}

/// Speculative planner runs [`PlanCache::warm`] may spend per warm epoch
/// (see [`PlanCache::begin_warm_epoch`]) before declining further warms.
pub const DEFAULT_WARM_BUDGET: usize = 8;

/// An LRU cache of planner outputs.
#[derive(Debug)]
pub struct PlanCache {
    slots: Vec<Slot>,
    /// fingerprint -> indices into `slots` (collisions share a bucket).
    buckets: BucketMap,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    warmed: u64,
    warm_budget: usize,
    /// Planner runs spent by `warm` since the last `begin_warm_epoch`.
    warm_spent: usize,
}

impl PlanCache {
    /// Creates a cache holding up to `capacity` plans.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            slots: Vec::new(),
            buckets: BucketMap::default(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            warmed: 0,
            warm_budget: DEFAULT_WARM_BUDGET,
            warm_spent: 0,
        }
    }

    /// Caps the speculative planner runs each warm epoch may spend.
    pub fn set_warm_budget(&mut self, budget: usize) {
        self.warm_budget = budget;
    }

    /// Opens a new warm epoch: [`PlanCache::warm`] may again spend up to
    /// the warm budget in planner runs. Callers draw the epoch boundary —
    /// the fleet control plane calls this once per control epoch, so a
    /// prediction storm can never monopolize an epoch with speculative
    /// planning.
    pub fn begin_warm_epoch(&mut self) {
        self.warm_spent = 0;
    }

    /// Index of the slot matching `(host, opts)`, if one exists.
    fn find(&self, host: &HostConfig, opts: &PlannerOptions) -> Option<usize> {
        let fp = fingerprint(host, opts);
        self.buckets.get(&fp).and_then(|bucket| {
            bucket
                .iter()
                .copied()
                .map(|i| i as usize)
                .find(|&i| key_matches(&self.slots[i].key, host, opts))
        })
    }

    /// Hit-only probe: returns the cached plan for `(host, opts)` without
    /// ever invoking the planner. A hit refreshes recency and counts toward
    /// the hit statistics; an absence counts nothing — misses are charged
    /// by the entry points that actually plan ([`PlanCache::get_or_plan`],
    /// [`PlanCache::warm`]).
    pub fn lookup(&mut self, host: &HostConfig, opts: &PlannerOptions) -> Option<Arc<Plan>> {
        self.tick += 1;
        let i = self.find(host, opts)?;
        let tick = self.tick;
        let slot = &mut self.slots[i];
        let cached = slot.plan.clone()?;
        slot.used = tick;
        slot.hits += 1;
        self.hits += 1;
        Some(cached)
    }

    /// Stores `plan` under the key of `(host, opts)` without counting a
    /// request — the insert-without-request API for plans produced *outside*
    /// the cache (the delta-replanning path).
    ///
    /// The entry is keyed by the host's **new** shape: a delta-patched table
    /// never overwrites (or serves from) the pre-delta shape's entry, whose
    /// key still describes the old configuration. Inserting for a shape
    /// that already has an entry replaces that entry's plan.
    pub fn insert(&mut self, host: &HostConfig, opts: &PlannerOptions, plan: Arc<Plan>) {
        self.tick += 1;
        self.install(host, opts, plan, false);
    }

    /// Shared insertion path. A speculative install (`warm`) may only
    /// evict entries that have never served a hit; a demanded install
    /// evicts the least-recently-used filled slot unconditionally.
    fn install(&mut self, host: &HostConfig, opts: &PlannerOptions, plan: Arc<Plan>, warm: bool) {
        let idx = match self.find(host, opts) {
            Some(i) => i,
            None => {
                let fp = fingerprint(host, opts);
                let idx = self.slots.len();
                self.slots.push(Slot {
                    key: Key::of(host, opts),
                    plan: None,
                    used: 0,
                    hits: 0,
                    misses: 0,
                });
                self.buckets.entry(fp).or_default().push(idx as u32);
                idx
            }
        };
        if self.slots[idx].plan.is_none() && self.len() >= self.capacity {
            // Evict the least-recently-used filled slot, as on a miss.
            if let Some(victim) = self
                .slots
                .iter_mut()
                .filter(|s| s.plan.is_some() && (!warm || s.hits == 0))
                .min_by_key(|s| s.used)
            {
                victim.plan = None;
            }
        }
        let tick = self.tick;
        let slot = &mut self.slots[idx];
        slot.plan = Some(plan);
        slot.used = tick;
    }

    /// Speculatively pre-plans `(host, opts)` so the predicted request hits.
    ///
    /// If the shape is already cached this only refreshes its recency (the
    /// warmed entry must survive until the request it anticipates) and
    /// returns it; nothing is counted as a hit or miss either way — warming
    /// is not a request. Planner invocations are tallied in
    /// [`PlanCache::warmed`] and bounded: once the per-epoch budget is
    /// spent (see [`PlanCache::begin_warm_epoch`]) the warm is declined
    /// with `Ok(None)` before any planning happens. A warm is likewise
    /// declined when caching its result could only evict an entry with
    /// demonstrated demand — speculation never displaces a plan that has
    /// served a real request.
    ///
    /// # Errors
    ///
    /// Propagates [`plan`]'s admission errors; failures are not cached.
    pub fn warm(
        &mut self,
        host: &HostConfig,
        opts: &PlannerOptions,
    ) -> Result<Option<Arc<Plan>>, PlanError> {
        self.tick += 1;
        if let Some(i) = self.find(host, opts) {
            let tick = self.tick;
            let slot = &mut self.slots[i];
            if let Some(cached) = slot.plan.clone() {
                slot.used = tick;
                return Ok(Some(cached));
            }
        }
        if self.warm_spent >= self.warm_budget {
            return Ok(None);
        }
        if self.len() >= self.capacity
            && !self.slots.iter().any(|s| s.plan.is_some() && s.hits == 0)
        {
            // Every cached plan has proven demand; decline before spending
            // the planner run on a table we could not keep.
            return Ok(None);
        }
        let fresh = Arc::new(plan(host, opts)?);
        self.warm_spent += 1;
        self.warmed += 1;
        self.install(host, opts, fresh.clone(), true);
        Ok(Some(fresh))
    }

    /// Returns the cached plan for `(host, opts)`, planning (and caching)
    /// on miss. Plans computed under different [`PlannerOptions`] or NUMA
    /// layouts never alias, even for the same flat spec list.
    ///
    /// # Errors
    ///
    /// Propagates [`plan`]'s admission errors; failures are not cached (the
    /// key's miss counter still records the attempt).
    pub fn get_or_plan(
        &mut self,
        host: &HostConfig,
        opts: &PlannerOptions,
    ) -> Result<Arc<Plan>, PlanError> {
        self.tick += 1;
        let fp = fingerprint(host, opts);
        let found = self.buckets.get(&fp).and_then(|bucket| {
            bucket
                .iter()
                .copied()
                .find(|&i| key_matches(&self.slots[i as usize].key, host, opts))
        });
        if let Some(i) = found {
            let slot = &mut self.slots[i as usize];
            if let Some(cached) = &slot.plan {
                let cached = cached.clone();
                slot.used = self.tick;
                slot.hits += 1;
                self.hits += 1;
                return Ok(cached);
            }
        }

        // Miss: materialize the slot first so even a failed planner run is
        // charged to the key's counters.
        let idx = match found {
            Some(i) => i as usize,
            None => {
                let idx = self.slots.len();
                self.slots.push(Slot {
                    key: Key::of(host, opts),
                    plan: None,
                    used: 0,
                    hits: 0,
                    misses: 0,
                });
                self.buckets.entry(fp).or_default().push(idx as u32);
                idx
            }
        };
        self.slots[idx].misses += 1;
        self.misses += 1;

        let fresh = Arc::new(plan(host, opts)?);
        if self.len() >= self.capacity {
            // Evict the least-recently-used filled slot (clearing only the
            // plan; the key keeps its counters).
            if let Some(victim) = self
                .slots
                .iter_mut()
                .filter(|s| s.plan.is_some())
                .min_by_key(|s| s.used)
            {
                victim.plan = None;
            }
        }
        let slot = &mut self.slots[idx];
        slot.plan = Some(fresh.clone());
        slot.used = self.tick;
        Ok(fresh)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Planner runs performed by [`PlanCache::warm`] (speculative, not
    /// counted as misses).
    pub fn warmed(&self) -> u64 {
        self.warmed
    }

    /// Aggregate plus per-key hit/miss statistics, most-hit keys first
    /// (ties broken by label for a stable report).
    pub fn stats(&self) -> CacheStats {
        let mut per_key: Vec<KeyStats> = self
            .slots
            .iter()
            .map(|s| KeyStats {
                key: s.key.label(),
                hits: s.hits,
                misses: s.misses,
            })
            .collect();
        per_key.sort_by(|a, b| b.hits.cmp(&a.hits).then_with(|| a.key.cmp(&b.key)));
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            per_key,
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.plan.is_some()).count()
    }

    /// `true` if the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (per-key statistics are retained).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            s.plan = None;
        }
    }
}

/// Lock stripes in a [`SharedPlanCache`] — a power of two so the
/// fingerprint's low bits route uniformly.
const SHARDS: usize = 8;

/// A lock-striped, shareable [`PlanCache`].
///
/// The fleet control plane shards its per-host work across worker threads;
/// the plan cache is the one structure every host's replan path touches, so
/// a single `&mut PlanCache` would serialize the whole control plane (or
/// force unsafe sharing). `SharedPlanCache` stripes the key space over
/// [`SHARDS`] independently locked [`PlanCache`]s, routed by the same
/// request [`fingerprint`] the hit path computes anyway: every method takes
/// `&self`, two requests for different stripes never contend, and two
/// requests for the *same* shape serialize on one stripe — exactly the
/// ordering a correct cache needs.
///
/// The speculative warm budget stays **global** (one counter behind its own
/// mutex, not per stripe): `begin_warm_epoch` opens a fleet-wide allowance
/// exactly as the sequential cache did, so sharding cannot multiply the
/// planner runs a prediction storm may spend.
#[derive(Debug)]
pub struct SharedPlanCache {
    shards: Vec<Mutex<PlanCache>>,
    warm: Mutex<SharedWarmState>,
}

#[derive(Debug)]
struct SharedWarmState {
    budget: usize,
    spent: usize,
}

impl SharedPlanCache {
    /// Creates a shared cache holding up to `capacity` plans overall. The
    /// capacity is divided evenly across stripes (rounded up, minimum one
    /// plan per stripe), so eviction pressure is per-stripe rather than
    /// global — a hot stripe can evict while a cold one has room.
    pub fn new(capacity: usize) -> SharedPlanCache {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        let shards = (0..SHARDS)
            .map(|_| {
                let mut c = PlanCache::new(per_shard);
                // Stripes never decline on budget themselves; the global
                // warm state is the only budget authority.
                c.set_warm_budget(usize::MAX);
                Mutex::new(c)
            })
            .collect();
        SharedPlanCache {
            shards,
            warm: Mutex::new(SharedWarmState {
                budget: DEFAULT_WARM_BUDGET,
                spent: 0,
            }),
        }
    }

    fn shard(&self, host: &HostConfig, opts: &PlannerOptions) -> MutexGuard<'_, PlanCache> {
        let i = (fingerprint(host, opts) as usize) & (SHARDS - 1);
        self.shards[i].lock().expect("plan cache stripe poisoned")
    }

    /// Caps the speculative planner runs each warm epoch may spend,
    /// fleet-wide (see [`PlanCache::set_warm_budget`]).
    pub fn set_warm_budget(&self, budget: usize) {
        self.warm.lock().expect("warm state poisoned").budget = budget;
    }

    /// Opens a new warm epoch (see [`PlanCache::begin_warm_epoch`]).
    pub fn begin_warm_epoch(&self) {
        self.warm.lock().expect("warm state poisoned").spent = 0;
    }

    /// Reserves one planner run against the global warm budget.
    fn try_spend_warm(&self) -> bool {
        let mut w = self.warm.lock().expect("warm state poisoned");
        if w.spent >= w.budget {
            return false;
        }
        w.spent += 1;
        true
    }

    /// Returns a reserved planner run that was declined or failed.
    fn refund_warm(&self) {
        let mut w = self.warm.lock().expect("warm state poisoned");
        w.spent = w.spent.saturating_sub(1);
    }

    /// Hit-only probe (see [`PlanCache::lookup`]).
    pub fn lookup(&self, host: &HostConfig, opts: &PlannerOptions) -> Option<Arc<Plan>> {
        self.shard(host, opts).lookup(host, opts)
    }

    /// Insert-without-request (see [`PlanCache::insert`]).
    pub fn insert(&self, host: &HostConfig, opts: &PlannerOptions, plan: Arc<Plan>) {
        self.shard(host, opts).insert(host, opts, plan);
    }

    /// Returns the cached plan, planning on miss (see
    /// [`PlanCache::get_or_plan`]). The planner runs under the stripe lock,
    /// so concurrent requests for the same shape plan once and hit once.
    ///
    /// # Errors
    ///
    /// Propagates [`plan`]'s admission errors; failures are not cached.
    pub fn get_or_plan(
        &self,
        host: &HostConfig,
        opts: &PlannerOptions,
    ) -> Result<Arc<Plan>, PlanError> {
        self.shard(host, opts).get_or_plan(host, opts)
    }

    /// Speculatively pre-plans one shape (see [`PlanCache::warm`]), charged
    /// against the **global** warm budget. Already-cached shapes refresh
    /// for free past the budget, exactly as sequentially.
    ///
    /// # Errors
    ///
    /// Propagates [`plan`]'s admission errors; failures are not cached and
    /// do not consume budget.
    pub fn warm(
        &self,
        host: &HostConfig,
        opts: &PlannerOptions,
    ) -> Result<Option<Arc<Plan>>, PlanError> {
        let mut shard = self.shard(host, opts);
        if let Some(i) = shard.find(host, opts) {
            if shard.slots[i].plan.is_some() {
                // Cached: the stripe's own warm path is a free refresh.
                return shard.warm(host, opts);
            }
        }
        if !self.try_spend_warm() {
            return Ok(None);
        }
        let before = shard.warmed;
        let out = shard.warm(host, opts);
        if shard.warmed == before {
            // The stripe declined (capacity) or the planner failed: the
            // reserved run was never spent.
            self.refund_warm();
        }
        out
    }

    /// Warms a batch of shapes, running the planner for the uncached ones
    /// **in parallel** (the planner is pure; every cache mutation stays
    /// sequential in request order, so the outcome is deterministic and
    /// thread-count independent). Per shape the result is the warmed plan,
    /// or `None` when the shape was declined (budget, capacity) or its
    /// planner run failed — speculative failures are not actionable, so
    /// they are not surfaced as errors.
    ///
    /// Decline decisions are taken up-front against the pre-batch stripe
    /// state; duplicate shapes in one batch plan once, with later
    /// occurrences served from the first one's install.
    pub fn warm_batch(
        &self,
        shapes: &[HostConfig],
        opts: &PlannerOptions,
    ) -> Vec<Option<Arc<Plan>>> {
        enum Triage {
            Done(Option<Arc<Plan>>),
            /// Plan this shape (budget already reserved).
            Plan,
            /// Duplicate of an earlier `Plan` entry; resolve after install.
            Dup,
        }
        let mut triage: Vec<Triage> = Vec::with_capacity(shapes.len());
        let mut planned_keys: Vec<Key> = Vec::new();
        for host in shapes {
            let mut shard = self.shard(host, opts);
            shard.tick += 1;
            if let Some(i) = shard.find(host, opts) {
                let tick = shard.tick;
                let slot = &mut shard.slots[i];
                if let Some(cached) = slot.plan.clone() {
                    // Cached: free recency refresh, as in `warm`.
                    slot.used = tick;
                    triage.push(Triage::Done(Some(cached)));
                    continue;
                }
            }
            if planned_keys.iter().any(|k| key_matches(k, host, opts)) {
                triage.push(Triage::Dup);
                continue;
            }
            if !self.try_spend_warm() {
                triage.push(Triage::Done(None));
                continue;
            }
            if shard.len() >= shard.capacity
                && !shard.slots.iter().any(|s| s.plan.is_some() && s.hits == 0)
            {
                // Caching the result could only evict proven demand.
                self.refund_warm();
                triage.push(Triage::Done(None));
                continue;
            }
            planned_keys.push(Key::of(host, opts));
            triage.push(Triage::Plan);
        }

        // Parallel phase: pure planner runs, reassembled in input order.
        let jobs: Vec<usize> = triage
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, Triage::Plan))
            .map(|(i, _)| i)
            .collect();
        let fresh = rayon::par_map_indices(jobs.len(), |k| plan(&shapes[jobs[k]], opts));

        // Sequential install phase, in request order.
        for (&i, result) in jobs.iter().zip(fresh) {
            match result {
                Ok(p) => {
                    let p = Arc::new(p);
                    let mut shard = self.shard(&shapes[i], opts);
                    shard.tick += 1;
                    shard.warmed += 1;
                    shard.install(&shapes[i], opts, Arc::clone(&p), true);
                    triage[i] = Triage::Done(Some(p));
                }
                Err(_) => {
                    self.refund_warm();
                    triage[i] = Triage::Done(None);
                }
            }
        }
        triage
            .into_iter()
            .enumerate()
            .map(|(i, t)| match t {
                Triage::Done(p) => p,
                // Duplicates resolve against the now-installed first copy.
                Triage::Dup => self.shard(&shapes[i], opts).lookup(&shapes[i], opts),
                Triage::Plan => unreachable!("every planned shape was installed"),
            })
            .collect()
    }

    /// Cache hits so far, across all stripes.
    pub fn hits(&self) -> u64 {
        self.fold(|c| c.hits())
    }

    /// Cache misses so far, across all stripes.
    pub fn misses(&self) -> u64 {
        self.fold(|c| c.misses())
    }

    /// Speculative planner runs performed, across all stripes.
    pub fn warmed(&self) -> u64 {
        self.fold(|c| c.warmed())
    }

    fn fold(&self, f: impl Fn(&PlanCache) -> u64) -> u64 {
        self.shards
            .iter()
            .map(|s| f(&s.lock().expect("plan cache stripe poisoned")))
            .sum()
    }

    /// Aggregate plus per-key statistics merged across stripes, most-hit
    /// keys first (ties broken by label, as sequentially).
    pub fn stats(&self) -> CacheStats {
        let mut hits = 0;
        let mut misses = 0;
        let mut per_key = Vec::new();
        for s in &self.shards {
            let st = s.lock().expect("plan cache stripe poisoned").stats();
            hits += st.hits;
            misses += st.misses;
            per_key.extend(st.per_key);
        }
        per_key.sort_by(|a, b| b.hits.cmp(&a.hits).then_with(|| a.key.cmp(&b.key)));
        CacheStats {
            hits,
            misses,
            per_key,
        }
    }

    /// Number of cached plans across all stripes.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache stripe poisoned").len())
            .sum()
    }

    /// `true` if no stripe holds a plan.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (per-key statistics are retained).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("plan cache stripe poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postprocess::DEFAULT_THRESHOLD;
    use crate::vcpu::{Utilization, VcpuSpec, VmSpec};
    use rtsched::time::Nanos;

    fn host(n: usize, name_prefix: &str) -> HostConfig {
        let mut h = HostConfig::new(2);
        let spec = VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20));
        for i in 0..n {
            h.add_vm(VmSpec::uniform(format!("{name_prefix}{i}"), 1, spec));
        }
        h
    }

    #[test]
    fn repeat_configurations_hit() {
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        let a = cache.get_or_plan(&host(8, "a"), &opts).unwrap();
        let b = cache.get_or_plan(&host(8, "a"), &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn names_do_not_matter_specs_do() {
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        let _ = cache.get_or_plan(&host(8, "prod"), &opts).unwrap();
        // Same shape, different names: hit.
        let _ = cache.get_or_plan(&host(8, "canary"), &opts).unwrap();
        assert_eq!(cache.hits(), 1);
        // Different VM count: miss.
        let _ = cache.get_or_plan(&host(6, "prod"), &opts).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn different_options_never_alias() {
        // The regression for the stale-plan collision: the same host under
        // two option sets must produce two distinct cache entries — the
        // peephole pass and a different coalescing threshold both change
        // the table, so serving the default-options plan would be wrong.
        let mut cache = PlanCache::new(8);
        let defaults = PlannerOptions::default();
        let peephole = PlannerOptions {
            peephole: true,
            ..PlannerOptions::default()
        };
        let coarse = PlannerOptions {
            coalesce_threshold: DEFAULT_THRESHOLD * 4,
            ..PlannerOptions::default()
        };

        let h = host(8, "vm");
        let a = cache.get_or_plan(&h, &defaults).unwrap();
        let b = cache.get_or_plan(&h, &peephole).unwrap();
        let c = cache.get_or_plan(&h, &coarse).unwrap();
        assert_eq!(cache.misses(), 3, "an option set aliased a cached plan");
        assert_eq!(cache.len(), 3);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));

        // And each option set hits its own entry on re-query.
        let b2 = cache.get_or_plan(&h, &peephole).unwrap();
        assert!(Arc::ptr_eq(&b, &b2));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn numa_layout_is_part_of_the_key() {
        // Same flat spec list, same core count — but different NUMA pinning
        // produces different placements, so these must not alias. This is a
        // regression test: the original key ignored NUMA entirely.
        let spec = VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20));
        let mut pinned0 = HostConfig::with_numa(4, 2);
        let mut pinned1 = HostConfig::with_numa(4, 2);
        for i in 0..4 {
            pinned0.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec).on_node(0));
            pinned1.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec).on_node(1));
        }
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        let _ = cache.get_or_plan(&pinned0, &opts).unwrap();
        let _ = cache.get_or_plan(&pinned1, &opts).unwrap();
        assert_eq!(cache.misses(), 2, "NUMA pinning aliased a cached plan");

        // Node count alone also discriminates (striping changes).
        let mut flat = HostConfig::new(4);
        for i in 0..4 {
            flat.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec).on_node(0));
        }
        let _ = cache.get_or_plan(&flat, &opts).unwrap();
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn vm_grouping_is_part_of_the_key() {
        // One VM with two vCPUs vs two single-vCPU VMs: the flat spec lists
        // are identical, but grouping determines which vCPUs share a NUMA
        // pin, so the cache keys them apart (conservatively, even unpinned).
        let spec = VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20));
        let mut grouped = HostConfig::new(2);
        grouped.add_vm(VmSpec::uniform("a", 2, spec));
        let mut split = HostConfig::new(2);
        split.add_vm(VmSpec::uniform("a", 1, spec));
        split.add_vm(VmSpec::uniform("b", 1, spec));
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        let _ = cache.get_or_plan(&grouped, &opts).unwrap();
        let _ = cache.get_or_plan(&split, &opts).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn per_key_stats_surface_hits_and_misses() {
        let mut cache = PlanCache::new(4);
        let defaults = PlannerOptions::default();
        let peephole = PlannerOptions {
            peephole: true,
            ..PlannerOptions::default()
        };
        let h = host(4, "vm");
        let _ = cache.get_or_plan(&h, &defaults).unwrap();
        let _ = cache.get_or_plan(&h, &defaults).unwrap();
        let _ = cache.get_or_plan(&h, &defaults).unwrap();
        let _ = cache.get_or_plan(&h, &peephole).unwrap();

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 2));
        assert_eq!(stats.per_key.len(), 2, "one counter per distinct key");
        // Most-hit first: the defaults key (2 hits, 1 miss).
        assert_eq!((stats.per_key[0].hits, stats.per_key[0].misses), (2, 1));
        assert_eq!((stats.per_key[1].hits, stats.per_key[1].misses), (0, 1));
        assert!(stats.per_key[1].key.contains("peephole"));
        assert!(!stats.per_key[0].key.contains("peephole"));
    }

    #[test]
    fn lru_eviction_keeps_the_hot_entry() {
        let mut cache = PlanCache::new(2);
        let opts = PlannerOptions::default();
        let _ = cache.get_or_plan(&host(2, "a"), &opts).unwrap(); // A
        let _ = cache.get_or_plan(&host(4, "b"), &opts).unwrap(); // B
        let _ = cache.get_or_plan(&host(2, "a"), &opts).unwrap(); // touch A
        let _ = cache.get_or_plan(&host(6, "c"), &opts).unwrap(); // evicts B
        assert_eq!(cache.len(), 2);
        let _ = cache.get_or_plan(&host(2, "a"), &opts).unwrap();
        assert_eq!(cache.hits(), 2, "A was evicted instead of B");
    }

    #[test]
    fn evicted_keys_replan_but_keep_their_counters() {
        let mut cache = PlanCache::new(1);
        let opts = PlannerOptions::default();
        let _ = cache.get_or_plan(&host(2, "a"), &opts).unwrap(); // A
        let _ = cache.get_or_plan(&host(4, "b"), &opts).unwrap(); // evicts A
        assert_eq!(cache.len(), 1);
        // A was evicted: this is a miss, charged to A's surviving counters.
        let _ = cache.get_or_plan(&host(2, "a"), &opts).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 3));
        let stats = cache.stats();
        assert_eq!(stats.per_key.len(), 2);
        let a = stats
            .per_key
            .iter()
            .find(|k| k.key.contains("vcpus=2"))
            .unwrap();
        assert_eq!(a.misses, 2, "eviction erased the key's history");
    }

    #[test]
    fn failures_are_not_cached() {
        let mut cache = PlanCache::new(2);
        let opts = PlannerOptions::default();
        let over = host(9, "x"); // 9 * 25% on 2 cores
        assert!(cache.get_or_plan(&over, &opts).is_err());
        assert!(cache.is_empty());
        // The failed attempt still shows up as a per-key miss.
        assert_eq!(cache.stats().per_key.len(), 1);
        assert_eq!(cache.stats().per_key[0].misses, 1);
    }

    #[test]
    fn delta_patched_plans_rekey_and_never_serve_the_stale_shape() {
        // Satellite regression: after a delta replan changes a host's shape,
        // the cache must serve the *new* shape from the delta-patched plan
        // and must never hand the pre-delta table back for it.
        let opts = PlannerOptions::default();
        let mut cache = PlanCache::new(8);
        let before = host(6, "vm");
        let mut after = before.clone();
        after.add_vm(VmSpec::uniform(
            "newcomer",
            1,
            VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20)),
        ));

        let pre = cache.get_or_plan(&before, &opts).unwrap();
        let (patched, _) = crate::delta::plan_delta(&before, &pre, &after, &opts).unwrap();
        let patched = Arc::new(patched);
        cache.insert(&after, &opts, patched.clone());

        // The new shape resolves to the delta-patched plan...
        let got = cache.lookup(&after, &opts).unwrap();
        assert!(Arc::ptr_eq(&got, &patched));
        assert!(
            !Arc::ptr_eq(&got, &pre),
            "post-delta lookup served the pre-delta table"
        );
        // ...and the old shape's entry is intact, still serving its own plan.
        let old = cache.lookup(&before, &opts).unwrap();
        assert!(Arc::ptr_eq(&old, &pre));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lookup_is_hit_only_and_counts_no_misses() {
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        assert!(cache.lookup(&host(4, "vm"), &opts).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        let _ = cache.get_or_plan(&host(4, "vm"), &opts).unwrap();
        let _ = cache.lookup(&host(4, "vm"), &opts).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn warming_prefills_without_counting_requests() {
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        let warmed = cache.warm(&host(6, "vm"), &opts).unwrap().unwrap();
        assert_eq!((cache.hits(), cache.misses(), cache.warmed()), (0, 0, 1));
        // Re-warming an already-cached shape plans nothing.
        let again = cache.warm(&host(6, "vm"), &opts).unwrap().unwrap();
        assert!(Arc::ptr_eq(&warmed, &again));
        assert_eq!(cache.warmed(), 1);
        // The predicted request is a plain hit.
        let served = cache.get_or_plan(&host(6, "vm"), &opts).unwrap();
        assert!(Arc::ptr_eq(&warmed, &served));
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
    }

    #[test]
    fn warming_respects_capacity() {
        let mut cache = PlanCache::new(1);
        let opts = PlannerOptions::default();
        let _ = cache.warm(&host(2, "a"), &opts).unwrap();
        // The never-hit entry for "a" is fair game for a warm eviction.
        assert!(cache.warm(&host(4, "b"), &opts).unwrap().is_some());
        assert_eq!(cache.len(), 1, "warming must evict, not grow unbounded");
    }

    #[test]
    fn warm_budget_caps_speculative_planning_per_epoch() {
        let mut cache = PlanCache::new(8);
        cache.set_warm_budget(2);
        let opts = PlannerOptions::default();
        assert!(cache.warm(&host(2, "a"), &opts).unwrap().is_some());
        assert!(cache.warm(&host(4, "b"), &opts).unwrap().is_some());
        // Budget spent: the third distinct shape is declined, unplanned.
        assert!(cache.warm(&host(6, "c"), &opts).unwrap().is_none());
        assert_eq!(cache.warmed(), 2);
        // Already-cached shapes still warm for free past the budget.
        assert!(cache.warm(&host(2, "a"), &opts).unwrap().is_some());
        assert_eq!(cache.warmed(), 2);
        // A new epoch refills the budget.
        cache.begin_warm_epoch();
        assert!(cache.warm(&host(6, "c"), &opts).unwrap().is_some());
        assert_eq!(cache.warmed(), 3);
    }

    #[test]
    fn warm_never_evicts_an_entry_with_lifetime_hits() {
        let mut cache = PlanCache::new(1);
        let opts = PlannerOptions::default();
        let served = cache.get_or_plan(&host(2, "a"), &opts).unwrap();
        let _ = cache.get_or_plan(&host(2, "a"), &opts).unwrap(); // 1 hit
                                                                  // The only evictable slot has proven demand: the warm is declined
                                                                  // before planning, and the hot entry survives.
        assert!(cache.warm(&host(4, "b"), &opts).unwrap().is_none());
        assert_eq!(cache.warmed(), 0, "the declined warm spent no planner run");
        let still = cache.lookup(&host(2, "a"), &opts).unwrap();
        assert!(Arc::ptr_eq(&served, &still));
        // A demanded insert (get_or_plan) may still evict it — only
        // speculation is restricted.
        let _ = cache.get_or_plan(&host(4, "b"), &opts).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&host(2, "a"), &opts).is_none());
    }

    #[test]
    fn positional_order_is_part_of_the_key() {
        // Same multiset of specs, different order: the tables differ (vCPU
        // ids are positional), so these must be distinct entries.
        let mut h1 = HostConfig::new(2);
        h1.add_vm(VmSpec::uniform(
            "a",
            1,
            VcpuSpec::capped(Utilization::from_percent(50), Nanos::from_millis(20)),
        ));
        h1.add_vm(VmSpec::uniform(
            "b",
            1,
            VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20)),
        ));
        let mut h2 = HostConfig::new(2);
        h2.add_vm(VmSpec::uniform(
            "a",
            1,
            VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20)),
        ));
        h2.add_vm(VmSpec::uniform(
            "b",
            1,
            VcpuSpec::capped(Utilization::from_percent(50), Nanos::from_millis(20)),
        ));
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        let _ = cache.get_or_plan(&h1, &opts).unwrap();
        let _ = cache.get_or_plan(&h2, &opts).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn shared_cache_hits_and_counts_like_the_sequential_one() {
        let cache = SharedPlanCache::new(16);
        let opts = PlannerOptions::default();
        let a = cache.get_or_plan(&host(8, "a"), &opts).unwrap();
        let b = cache.get_or_plan(&host(8, "b"), &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "names must not split the key");
        let _ = cache.get_or_plan(&host(6, "c"), &opts).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
        // lookup is hit-only; insert stores without counting.
        assert!(cache.lookup(&host(4, "d"), &opts).is_none());
        cache.insert(&host(4, "d"), &opts, a.clone());
        assert!(cache.lookup(&host(4, "d"), &opts).is_some());
        assert_eq!(cache.misses(), 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (cache.hits(), cache.misses()));
        assert_eq!(stats.per_key.len(), 3);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_cache_is_usable_from_threads() {
        // Eight threads hammer two shapes through `&self`; totals must come
        // out exact (each shape plans once, every other request hits).
        let cache = SharedPlanCache::new(16);
        let opts = PlannerOptions::default();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let cache = &cache;
                let opts = &opts;
                s.spawn(move || {
                    let shape = if t % 2 == 0 { 4 } else { 6 };
                    for _ in 0..4 {
                        let _ = cache.get_or_plan(&host(shape, "vm"), opts).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.misses(), 2, "each shape plans exactly once");
        assert_eq!(cache.hits(), 30);
    }

    #[test]
    fn shared_warm_budget_is_global_across_stripes() {
        let cache = SharedPlanCache::new(64);
        cache.set_warm_budget(2);
        let opts = PlannerOptions::default();
        assert!(cache.warm(&host(2, "a"), &opts).unwrap().is_some());
        assert!(cache.warm(&host(4, "b"), &opts).unwrap().is_some());
        // Distinct shapes land on distinct stripes, but the global budget
        // still declines the third.
        assert!(cache.warm(&host(6, "c"), &opts).unwrap().is_none());
        assert_eq!(cache.warmed(), 2);
        // Cached shapes refresh for free past the budget.
        assert!(cache.warm(&host(2, "a"), &opts).unwrap().is_some());
        assert_eq!(cache.warmed(), 2);
        cache.begin_warm_epoch();
        assert!(cache.warm(&host(6, "c"), &opts).unwrap().is_some());
        assert_eq!(cache.warmed(), 3);
    }

    #[test]
    fn warm_batch_plans_uncached_shapes_and_respects_the_budget() {
        let cache = SharedPlanCache::new(64);
        cache.set_warm_budget(2);
        let opts = PlannerOptions::default();
        // Pre-cache one shape: it must resolve without spending budget.
        let cached = cache.get_or_plan(&host(2, "a"), &opts).unwrap();
        let shapes = vec![host(2, "a"), host(4, "b"), host(4, "x"), host(6, "c")];
        let out = cache.warm_batch(&shapes, &opts);
        assert_eq!(out.len(), 4);
        assert!(Arc::ptr_eq(out[0].as_ref().unwrap(), &cached));
        // "b" plans; "x" is the same shape (a duplicate) and resolves from
        // b's install without a second planner run; "c" then still fits
        // the budget.
        assert!(out[1].is_some() && out[2].is_some() && out[3].is_some());
        assert!(Arc::ptr_eq(
            out[1].as_ref().unwrap(),
            out[2].as_ref().unwrap()
        ));
        assert_eq!(cache.warmed(), 2);
        // The budget is spent: a further distinct shape declines.
        assert!(cache.warm(&host(8, "d"), &opts).unwrap().is_none());
        // And batch results serve later requests as plain hits.
        let hits_before = cache.hits();
        let _ = cache.get_or_plan(&host(4, "b"), &opts).unwrap();
        assert_eq!(cache.hits(), hits_before + 1);
    }

    #[test]
    fn warm_batch_failures_refund_the_budget() {
        let cache = SharedPlanCache::new(64);
        cache.set_warm_budget(1);
        let opts = PlannerOptions::default();
        // 9 * 25% on 2 cores is infeasible: the run fails, nothing is
        // cached, and the reserved budget comes back.
        let out = cache.warm_batch(&[host(9, "x")], &opts);
        assert_eq!(out, vec![None]);
        assert_eq!(cache.warmed(), 0);
        assert!(cache.is_empty());
        assert!(cache.warm(&host(2, "a"), &opts).unwrap().is_some());
    }
}
