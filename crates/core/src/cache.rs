//! Plan caching for recurring configurations (Sec. 7.1).
//!
//! "It is trivially possible to centrally cache tables for common
//! configurations that are frequently reused" — cloud providers sell a
//! handful of regular VM sizes, so hosts across a fleet keep asking the
//! planner for the same table. [`PlanCache`] memoizes plans keyed by the
//! *semantic* configuration: core count plus the positional list of
//! `(utilization, latency, capped)` specs. VM names are irrelevant (vCPU
//! ids are positional), so renaming a fleet hits the cache.
//!
//! Entries are shared via [`Arc`]; eviction is least-recently-used with a
//! fixed capacity.

use std::collections::HashMap;
use std::sync::Arc;

use crate::planner::{plan, Plan, PlanError, PlannerOptions};
use crate::vcpu::HostConfig;

/// Semantic cache key of a host configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    n_cores: usize,
    /// Positional `(ppm, latency_ns, capped)` triples — positional because
    /// vCPU ids (and hence table contents) are positional.
    specs: Vec<(u32, u64, bool)>,
}

impl Key {
    fn of(host: &HostConfig) -> Key {
        Key {
            n_cores: host.n_cores,
            specs: host
                .vcpus()
                .into_iter()
                .map(|(_, s)| (s.utilization.ppm(), s.latency.as_nanos(), s.capped))
                .collect(),
        }
    }
}

/// An LRU cache of planner outputs.
#[derive(Debug)]
pub struct PlanCache {
    entries: HashMap<Key, (Arc<Plan>, u64)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates a cache holding up to `capacity` plans.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the cached plan for `host`, planning (and caching) on miss.
    ///
    /// # Errors
    ///
    /// Propagates [`plan`]'s admission errors; failures are not cached.
    pub fn get_or_plan(
        &mut self,
        host: &HostConfig,
        opts: &PlannerOptions,
    ) -> Result<Arc<Plan>, PlanError> {
        self.tick += 1;
        let key = Key::of(host);
        if let Some((cached, used)) = self.entries.get_mut(&key) {
            *used = self.tick;
            self.hits += 1;
            return Ok(cached.clone());
        }
        self.misses += 1;
        let fresh = Arc::new(plan(host, opts)?);
        if self.entries.len() >= self.capacity {
            // Evict the least-recently-used entry.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, (fresh.clone(), self.tick));
        Ok(fresh)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached plan.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcpu::{Utilization, VcpuSpec, VmSpec};
    use rtsched::time::Nanos;

    fn host(n: usize, name_prefix: &str) -> HostConfig {
        let mut h = HostConfig::new(2);
        let spec = VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20));
        for i in 0..n {
            h.add_vm(VmSpec::uniform(format!("{name_prefix}{i}"), 1, spec));
        }
        h
    }

    #[test]
    fn repeat_configurations_hit() {
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        let a = cache.get_or_plan(&host(8, "a"), &opts).unwrap();
        let b = cache.get_or_plan(&host(8, "a"), &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn names_do_not_matter_specs_do() {
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        let _ = cache.get_or_plan(&host(8, "prod"), &opts).unwrap();
        // Same shape, different names: hit.
        let _ = cache.get_or_plan(&host(8, "canary"), &opts).unwrap();
        assert_eq!(cache.hits(), 1);
        // Different VM count: miss.
        let _ = cache.get_or_plan(&host(6, "prod"), &opts).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn lru_eviction_keeps_the_hot_entry() {
        let mut cache = PlanCache::new(2);
        let opts = PlannerOptions::default();
        let _ = cache.get_or_plan(&host(2, "a"), &opts).unwrap(); // A
        let _ = cache.get_or_plan(&host(4, "b"), &opts).unwrap(); // B
        let _ = cache.get_or_plan(&host(2, "a"), &opts).unwrap(); // touch A
        let _ = cache.get_or_plan(&host(6, "c"), &opts).unwrap(); // evicts B
        assert_eq!(cache.len(), 2);
        let _ = cache.get_or_plan(&host(2, "a"), &opts).unwrap();
        assert_eq!(cache.hits(), 2, "A was evicted instead of B");
    }

    #[test]
    fn failures_are_not_cached() {
        let mut cache = PlanCache::new(2);
        let opts = PlannerOptions::default();
        let over = host(9, "x"); // 9 * 25% on 2 cores
        assert!(cache.get_or_plan(&over, &opts).is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn positional_order_is_part_of_the_key() {
        // Same multiset of specs, different order: the tables differ (vCPU
        // ids are positional), so these must be distinct entries.
        let mut h1 = HostConfig::new(2);
        h1.add_vm(VmSpec::uniform(
            "a",
            1,
            VcpuSpec::capped(Utilization::from_percent(50), Nanos::from_millis(20)),
        ));
        h1.add_vm(VmSpec::uniform(
            "b",
            1,
            VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20)),
        ));
        let mut h2 = HostConfig::new(2);
        h2.add_vm(VmSpec::uniform(
            "a",
            1,
            VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20)),
        ));
        h2.add_vm(VmSpec::uniform(
            "b",
            1,
            VcpuSpec::capped(Utilization::from_percent(50), Nanos::from_millis(20)),
        ));
        let mut cache = PlanCache::new(4);
        let opts = PlannerOptions::default();
        let _ = cache.get_or_plan(&h1, &opts).unwrap();
        let _ = cache.get_or_plan(&h2, &opts).unwrap();
        assert_eq!(cache.misses(), 2);
    }
}
