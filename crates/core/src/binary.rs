//! The compiled binary table format (the "hypercall payload").
//!
//! In the Xen implementation the userspace planner compiles tables into a
//! binary format and pushes them to the hypervisor via a hypercall; the
//! dispatcher uses the buffer directly. This module reproduces that format:
//! a deterministic little-endian layout with a magic/version header,
//! per-CPU allocation arrays, and the per-CPU slice parameters needed to
//! rebuild the O(1) lookup index. Its size is what Fig. 4 of the paper
//! measures ("Generated table size for a varying number of VMs").
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   u32  = 0x54424C4F ("TBLO")
//! version u32  = 1
//! n_cpus  u32
//! len     u64  table length in ns
//! per cpu:
//!   n_allocs  u32
//!   slice_len u64
//!   n_slices  u32
//!   allocs: n_allocs * { start u64, end u64, vcpu u32 }
//!   slices: n_slices * { first u32 }
//! ```
//!
//! The slice arrays are redundant with the allocations (the decoder could
//! rebuild them), but the real system ships them precomputed so the
//! hypervisor does no work on the upload path — and their bytes are part of
//! the memory footprint the paper reports, so the format keeps them.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use rtsched::time::Nanos;

use crate::table::{Allocation, Table};
use crate::vcpu::VcpuId;

/// Format magic: "TBLO".
pub const MAGIC: u32 = 0x5442_4C4F;

/// Current format version.
pub const VERSION: u32 = 1;

/// Plan-payload version: a table plus the per-vCPU capped bitmap and the
/// second-level epoch — everything the hypervisor-side dispatcher needs.
pub const PLAN_VERSION: u32 = 2;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer too short for the declared contents.
    Truncated,
    /// Wrong magic number.
    BadMagic(u32),
    /// Unsupported version.
    BadVersion(u32),
    /// Structurally invalid table contents.
    Invalid(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::Invalid(e) => write!(f, "invalid table: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a table into the hypercall wire format.
pub fn encode(table: &Table) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_size(table));
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(table.n_cores() as u32);
    buf.put_u64_le(table.len().as_nanos());
    for core in 0..table.n_cores() {
        let cpu = table.cpu(core);
        buf.put_u32_le(cpu.allocations().len() as u32);
        buf.put_u64_le(cpu.slice_len().as_nanos());
        buf.put_u32_le(cpu.n_slices() as u32);
        for a in cpu.allocations() {
            buf.put_u64_le(a.start.as_nanos());
            buf.put_u64_le(a.end.as_nanos());
            buf.put_u32_le(a.vcpu.0);
        }
        // Slice records: re-derive `first` exactly as CpuTable does; the
        // bytes must match what the hypervisor-side index would contain.
        for s in 0..cpu.n_slices() {
            let slice_start = cpu.slice_len() * s as u64;
            let idx = cpu.allocations().partition_point(|a| a.end <= slice_start);
            let first = if idx < cpu.allocations().len() {
                idx as u32
            } else {
                u32::MAX
            };
            buf.put_u32_le(first);
        }
    }
    buf.freeze()
}

/// The exact encoded size of `table` in bytes (Fig. 4's metric).
pub fn encoded_size(table: &Table) -> usize {
    let mut size = 4 + 4 + 4 + 8; // header
    for core in 0..table.n_cores() {
        let cpu = table.cpu(core);
        size += 4 + 8 + 4; // per-cpu header
        size += cpu.allocations().len() * (8 + 8 + 4);
        size += cpu.n_slices() * 4;
    }
    size
}

/// Deserializes a table from the wire format.
///
/// The slice records are validated against the recomputed index rather than
/// trusted — the hypervisor must not follow corrupt indices.
pub fn decode(mut buf: Bytes) -> Result<Table, DecodeError> {
    fn need(buf: &Bytes, n: usize) -> Result<(), DecodeError> {
        if buf.remaining() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    }

    need(&buf, 20)?;
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let n_cpus = buf.get_u32_le() as usize;
    let len = Nanos(buf.get_u64_le());

    let mut per_core = Vec::with_capacity(n_cpus);
    for _ in 0..n_cpus {
        need(&buf, 16)?;
        let n_allocs = buf.get_u32_le() as usize;
        let _slice_len = buf.get_u64_le();
        let n_slices = buf.get_u32_le() as usize;
        need(&buf, n_allocs * 20 + n_slices * 4)?;
        let mut allocs = Vec::with_capacity(n_allocs);
        for _ in 0..n_allocs {
            let start = Nanos(buf.get_u64_le());
            let end = Nanos(buf.get_u64_le());
            let vcpu = VcpuId(buf.get_u32_le());
            allocs.push(Allocation { start, end, vcpu });
        }
        for _ in 0..n_slices {
            let _ = buf.get_u32_le();
        }
        per_core.push(allocs);
    }
    Table::new(len, per_core).map_err(DecodeError::Invalid)
}

/// A decoded plan payload: everything the dispatcher needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanPayload {
    /// The dispatch table.
    pub table: Table,
    /// Per-vCPU capped flags (indexed by vCPU id; missing ids are capped).
    pub capped: Vec<bool>,
    /// Second-level epoch length.
    pub l2_epoch: Nanos,
}

/// Serializes a complete plan payload (version [`PLAN_VERSION`]): header,
/// second-level epoch, capped bitmap, then the table in the v1 layout.
///
/// This is the full "hypercall" a planner daemon would push: enough to
/// construct a [`crate::dispatch::Dispatcher`] on the receiving side with
/// no other channel.
pub fn encode_plan(plan: &crate::planner::Plan, l2_epoch: Nanos) -> Bytes {
    let n_vcpus = plan
        .params
        .iter()
        .map(|p| p.vcpu.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut capped_bits = vec![0u8; n_vcpus.div_ceil(8)];
    for p in &plan.params {
        if p.capped {
            capped_bits[p.vcpu.0 as usize / 8] |= 1 << (p.vcpu.0 % 8);
        }
    }
    let table_bytes = encode(&plan.table);
    let mut buf = BytesMut::with_capacity(24 + capped_bits.len() + table_bytes.len());
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(PLAN_VERSION);
    buf.put_u64_le(l2_epoch.as_nanos());
    buf.put_u32_le(n_vcpus as u32);
    buf.put_slice(&capped_bits);
    buf.put_slice(&table_bytes);
    buf.freeze()
}

/// Deserializes a plan payload produced by [`encode_plan`].
pub fn decode_plan(mut buf: Bytes) -> Result<PlanPayload, DecodeError> {
    if buf.remaining() < 20 {
        return Err(DecodeError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = buf.get_u32_le();
    if version != PLAN_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let l2_epoch = Nanos(buf.get_u64_le());
    let n_vcpus = buf.get_u32_le() as usize;
    let n_bytes = n_vcpus.div_ceil(8);
    if buf.remaining() < n_bytes {
        return Err(DecodeError::Truncated);
    }
    let mut capped = Vec::with_capacity(n_vcpus);
    let bits = buf.copy_to_bytes(n_bytes);
    for v in 0..n_vcpus {
        capped.push(bits[v / 8] & (1 << (v % 8)) != 0);
    }
    let table = decode(buf)?;
    Ok(PlanPayload {
        table,
        capped,
        l2_epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn alloc(s: u64, e: u64, v: u32) -> Allocation {
        Allocation {
            start: ms(s),
            end: ms(e),
            vcpu: VcpuId(v),
        }
    }

    fn sample_table() -> Table {
        Table::new(
            ms(10),
            vec![
                vec![alloc(0, 2, 0), alloc(2, 5, 1), alloc(7, 9, 2)],
                vec![alloc(0, 10, 3)],
                vec![],
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_table() {
        let t = sample_table();
        let decoded = decode(encode(&t)).unwrap();
        assert_eq!(t, decoded);
    }

    #[test]
    fn encoded_size_matches_buffer() {
        let t = sample_table();
        assert_eq!(encode(&t).len(), encoded_size(&t));
    }

    #[test]
    fn bad_magic_rejected() {
        let t = sample_table();
        let mut bytes = BytesMut::from(&encode(&t)[..]);
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode(bytes.freeze()),
            Err(DecodeError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let t = sample_table();
        let mut bytes = BytesMut::from(&encode(&t)[..]);
        bytes[4] = 99;
        assert!(matches!(
            decode(bytes.freeze()),
            Err(DecodeError::BadVersion(99))
        ));
    }

    #[test]
    fn truncated_buffer_rejected() {
        let t = sample_table();
        let bytes = encode(&t);
        for cut in [0, 10, 19, bytes.len() - 1] {
            assert!(
                matches!(decode(bytes.slice(..cut)), Err(DecodeError::Truncated)),
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn corrupted_allocations_rejected() {
        let t = Table::new(ms(10), vec![vec![alloc(0, 5, 0)]]).unwrap();
        let mut bytes = BytesMut::from(&encode(&t)[..]);
        // Overwrite the allocation end (offset: 20 header + 16 cpu header +
        // 8 start) with a value before its start.
        let off = 20 + 16 + 8;
        bytes[off..off + 8].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            decode(bytes.freeze()),
            Err(DecodeError::Invalid(_))
        ));
    }

    #[test]
    fn plan_payload_round_trip_builds_a_dispatcher() {
        use crate::planner::{plan, PlannerOptions};
        use crate::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};

        // Mixed capped/uncapped host.
        let mut host = HostConfig::new(2);
        for i in 0..4 {
            let u = Utilization::from_percent(25);
            let spec = if i % 2 == 0 {
                VcpuSpec::capped(u, ms(20))
            } else {
                VcpuSpec::new(u, ms(20))
            };
            host.add_vm(VmSpec::uniform(format!("vm{i}"), 2, spec));
        }
        let p = plan(&host, &PlannerOptions::default()).unwrap();
        let bytes = encode_plan(&p, ms(10));
        let payload = decode_plan(bytes).unwrap();
        assert_eq!(payload.table, p.table);
        assert_eq!(payload.l2_epoch, ms(10));
        for params in &p.params {
            assert_eq!(
                payload.capped[params.vcpu.0 as usize], params.capped,
                "{}",
                params.vcpu
            );
        }
        // The decoded payload is sufficient to stand up the dispatcher.
        let d = crate::dispatch::Dispatcher::new(payload.table, payload.capped, payload.l2_epoch);
        assert_eq!(d.n_cores(), 2);
    }

    #[test]
    fn plan_payload_rejects_v1_tables() {
        let t = sample_table();
        assert!(matches!(
            decode_plan(encode(&t)),
            Err(DecodeError::BadVersion(1))
        ));
    }

    #[test]
    fn truncated_plan_payload_rejected() {
        use crate::planner::{plan, PlannerOptions};
        use crate::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
        let mut host = HostConfig::new(1);
        host.add_vm(VmSpec::uniform(
            "a",
            1,
            VcpuSpec::new(Utilization::from_percent(25), ms(20)),
        ));
        let p = plan(&host, &PlannerOptions::default()).unwrap();
        let bytes = encode_plan(&p, ms(10));
        for cut in [0, 10, 19, 21, bytes.len() - 1] {
            assert!(decode_plan(bytes.slice(..cut)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn size_grows_with_allocations() {
        let small = Table::new(ms(10), vec![vec![alloc(0, 5, 0)]]).unwrap();
        let big = Table::new(
            ms(10),
            vec![(0..10)
                .map(|i| alloc(i, i + 1, i as u32))
                .collect::<Vec<_>>()],
        )
        .unwrap();
        assert!(encoded_size(&big) > encoded_size(&small));
    }
}
