//! The runtime SLA guardian: online violation detection and self-healing.
//!
//! Tableau's contract is *static*: the planner proves every capped vCPU a
//! worst-case scheduling blackout of `2·(1−U)·T ≤ L` and the dispatcher is
//! too simple to break it. The guardian closes the loop at *runtime*, for
//! the faults the proof does not cover — a core dropping out of service, a
//! table push that keeps getting interrupted, a guest that persistently
//! overruns its declared demand:
//!
//! * [`SlaMonitor`] rides the dispatch path and measures each vCPU's
//!   observed scheduling latency against its declared bound `L`, raising
//!   typed [`SlaViolation`] events (including for vCPUs still waiting —
//!   a vCPU stranded on an offline core must not need a dispatch to be
//!   noticed).
//! * [`Guardian`] consumes violations, core-loss events and overrun
//!   counters and drives recovery: it **evacuates** vCPUs from offline
//!   cores by replanning onto the surviving cores (down the
//!   [`plan_with_fallback`] ladder), installs the new table with the
//!   two-phase protocol and **bounded exponential backoff** on interrupted
//!   pushes, and **quarantines** persistent overrunners by demoting them
//!   in the level-2 fair-share scheduler.
//!
//! Every action is recorded as a [`RecoveryRecord`] with provenance (which
//! ladder rung produced the installed plan, how many install attempts it
//! took), so experiment artifacts can distinguish degraded runs.

use rtsched::time::Nanos;
use serde::{Deserialize, Serialize};

use crate::audit::{AuditViolation, TableAuditor};
use crate::dispatch::Dispatcher;
use crate::planner::{plan_with_fallback, Plan, PlannerOptions, ReplanPath};
use crate::table::Table;
use crate::vcpu::{HostConfig, VcpuId};

/// A capped vCPU's observed scheduling latency exceeded its declared bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlaViolation {
    /// The affected vCPU.
    pub vcpu: VcpuId,
    /// The observed runnable-to-dispatch latency.
    pub observed: Nanos,
    /// The vCPU's declared latency bound `L`.
    pub bound: Nanos,
    /// When the violation was detected.
    pub at: Nanos,
}

/// Per-vCPU blackout monitor on the dispatch path.
///
/// Fed by the scheduler adapter (`note_runnable` / `note_blocked`) and the
/// dispatcher (`note_dispatched`); a control loop calls
/// [`SlaMonitor::scan_overdue`] periodically so that a vCPU *stuck* waiting
/// (e.g. homed on an offline core) is reported without ever being
/// dispatched. Each waiting spell reports at most one violation.
#[derive(Debug, Clone, Default)]
pub struct SlaMonitor {
    /// Declared latency bound per vCPU id (`None` = unmonitored).
    bounds: Vec<Option<Nanos>>,
    /// When each vCPU last became runnable without being dispatched yet.
    runnable_since: Vec<Option<Nanos>>,
    /// Whether the current waiting spell already reported a violation.
    flagged: Vec<bool>,
    /// Worst observed runnable-to-dispatch latency per vCPU.
    worst: Vec<Nanos>,
    pending: Vec<SlaViolation>,
    seen: u64,
}

impl SlaMonitor {
    /// Creates a monitor for the given `(vcpu, latency bound)` pairs.
    pub fn new(bounds: Vec<(VcpuId, Nanos)>) -> SlaMonitor {
        let mut m = SlaMonitor::default();
        for (v, b) in bounds {
            let i = m.slot(v);
            m.bounds[i] = Some(b);
        }
        m
    }

    /// Creates a monitor covering every vCPU of `host`, bounded by its
    /// declared latency goal.
    pub fn from_host(host: &HostConfig) -> SlaMonitor {
        SlaMonitor::new(
            host.vcpus()
                .into_iter()
                .map(|(v, spec)| (v, spec.latency))
                .collect(),
        )
    }

    fn slot(&mut self, vcpu: VcpuId) -> usize {
        let i = vcpu.0 as usize;
        if self.bounds.len() <= i {
            self.bounds.resize(i + 1, None);
            self.runnable_since.resize(i + 1, None);
            self.flagged.resize(i + 1, false);
            self.worst.resize(i + 1, Nanos::ZERO);
        }
        i
    }

    /// The declared bound of `vcpu`, if monitored.
    pub fn bound_of(&self, vcpu: VcpuId) -> Option<Nanos> {
        self.bounds.get(vcpu.0 as usize).copied().flatten()
    }

    /// Worst observed runnable-to-dispatch latency of `vcpu` so far.
    pub fn worst_of(&self, vcpu: VcpuId) -> Nanos {
        self.worst
            .get(vcpu.0 as usize)
            .copied()
            .unwrap_or(Nanos::ZERO)
    }

    /// Total violations raised since creation.
    pub fn violations_seen(&self) -> u64 {
        self.seen
    }

    /// `vcpu` became runnable at `now` (wake-up or preemption). Idempotent
    /// within one waiting spell: the earliest timestamp wins.
    pub fn note_runnable(&mut self, vcpu: VcpuId, now: Nanos) {
        let i = self.slot(vcpu);
        if self.runnable_since[i].is_none() {
            self.runnable_since[i] = Some(now);
            self.flagged[i] = false;
        }
    }

    /// `vcpu` blocked voluntarily; the waiting spell (if any) is abandoned.
    pub fn note_blocked(&mut self, vcpu: VcpuId, now: Nanos) {
        let _ = now;
        let i = self.slot(vcpu);
        self.runnable_since[i] = None;
        self.flagged[i] = false;
    }

    /// `vcpu` was dispatched at `now`; closes the waiting spell and raises
    /// a violation if the delay exceeded the bound (unless
    /// [`SlaMonitor::scan_overdue`] already reported this spell).
    pub fn note_dispatched(&mut self, vcpu: VcpuId, now: Nanos) {
        let i = self.slot(vcpu);
        if let Some(since) = self.runnable_since[i].take() {
            let delay = now.saturating_sub(since);
            if delay > self.worst[i] {
                self.worst[i] = delay;
            }
            if !self.flagged[i] {
                if let Some(bound) = self.bounds[i] {
                    if delay > bound {
                        self.seen += 1;
                        self.pending.push(SlaViolation {
                            vcpu,
                            observed: delay,
                            bound,
                            at: now,
                        });
                    }
                }
            }
            self.flagged[i] = false;
        }
    }

    /// Reports vCPUs that have been waiting past their bound without being
    /// dispatched (at most once per waiting spell).
    pub fn scan_overdue(&mut self, now: Nanos) {
        for i in 0..self.runnable_since.len() {
            let (Some(since), Some(bound), false) =
                (self.runnable_since[i], self.bounds[i], self.flagged[i])
            else {
                continue;
            };
            let waited = now.saturating_sub(since);
            if waited > bound {
                self.flagged[i] = true;
                if waited > self.worst[i] {
                    self.worst[i] = waited;
                }
                self.seen += 1;
                self.pending.push(SlaViolation {
                    vcpu: VcpuId(i as u32),
                    observed: waited,
                    bound,
                    at: now,
                });
            }
        }
    }

    /// Takes all violations raised since the last drain.
    pub fn drain_violations(&mut self) -> Vec<SlaViolation> {
        std::mem::take(&mut self.pending)
    }
}

/// A core dropped out of, or returned to, service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreEvent {
    /// `core` stopped executing at `at`.
    Offline {
        /// The lost core.
        core: usize,
        /// When it was lost.
        at: Nanos,
    },
    /// `core` resumed executing at `at`.
    Online {
        /// The recovered core.
        core: usize,
        /// When it returned.
        at: Nanos,
    },
}

/// Tunables for the guardian's recovery policy.
#[derive(Debug, Clone)]
pub struct GuardianConfig {
    /// Give up on a pending install after this many interrupted attempts
    /// and re-run the planning ladder instead.
    pub max_install_retries: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Nanos,
    /// Retry delay ceiling.
    pub backoff_cap: Nanos,
    /// Quarantine an uncapped guest once its cumulative overrun count
    /// reaches this threshold.
    pub quarantine_overruns: u64,
    /// Continuous-audit cadence: at most one incremental audit step (one
    /// core's facts re-checked) per this much time. Low by design — the
    /// audit guards against corruption of an *installed* table, which has
    /// no deadline, so it must never compete with the dispatch path.
    pub audit_interval: Nanos,
    /// Planner options for evacuation/restore replans.
    pub planner: PlannerOptions,
}

impl Default for GuardianConfig {
    fn default() -> GuardianConfig {
        GuardianConfig {
            max_install_retries: 5,
            backoff_base: Nanos::from_millis(1),
            backoff_cap: Nanos::from_millis(100),
            quarantine_overruns: 50,
            audit_interval: Nanos::from_millis(100),
            planner: PlannerOptions::default(),
        }
    }
}

/// One recovery action taken by the guardian, for provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// The monitor reported a blackout past a vCPU's bound.
    ViolationObserved {
        /// The affected vCPU.
        vcpu: VcpuId,
        /// Observed latency.
        observed: Nanos,
        /// Declared bound.
        bound: Nanos,
    },
    /// A core dropped out of service.
    CoreLost {
        /// The lost core.
        core: usize,
    },
    /// An offline core returned to service.
    CoreRestored {
        /// The recovered core.
        core: usize,
    },
    /// The planning ladder produced an evacuation/restore plan.
    Replanned {
        /// Ladder rung that produced the plan ([`ReplanPath::label`]).
        path: String,
        /// Cores the plan targets.
        online_cores: usize,
        /// Rungs that failed before this one.
        fallback_attempts: usize,
    },
    /// Every rung of the planning ladder failed; retried on the next
    /// core-set change.
    ReplanFailed {
        /// The per-rung diagnostic trail.
        error: String,
    },
    /// A two-phase install was interrupted and rolled back; the dispatcher
    /// stays on the old table until the retry.
    InstallRetried {
        /// 1-based attempt number.
        attempt: u32,
        /// Earliest time of the next attempt (exponential backoff).
        next_try: Nanos,
    },
    /// The retry budget ran out; the guardian re-runs the planning ladder.
    InstallRetriesExhausted {
        /// Attempts made.
        attempts: u32,
    },
    /// The install was rejected outright (e.g. hyperperiod mismatch).
    InstallFailed {
        /// Why.
        error: String,
    },
    /// The staged table was committed; recovery for the triggering event
    /// is complete once every core switches.
    Installed {
        /// Ladder rung of the installed plan.
        path: String,
        /// When every core will have switched.
        switch_at: Nanos,
        /// Interrupted attempts before this one succeeded.
        attempts: u32,
    },
    /// The continuous audit found the installed table diverged from the
    /// facts recorded when it was installed; recovery replans and
    /// reinstalls through the ordinary ladder.
    AuditViolation {
        /// What diverged.
        violation: AuditViolation,
    },
    /// A persistently overrunning guest was demoted at the second level.
    Quarantined {
        /// The demoted vCPU.
        vcpu: VcpuId,
        /// Its cumulative overrun count at demotion time.
        overruns: u64,
    },
}

/// A timestamped [`RecoveryAction`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// When the action was taken.
    pub at: Nanos,
    /// What was done.
    pub action: RecoveryAction,
}

/// Aggregate recovery counters (mirrors `xensim`'s `RecoveryStats` without
/// depending on the simulator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardianCounters {
    /// SLA violations consumed from the monitor.
    pub violations_seen: u64,
    /// Evacuation/restore replans that produced an installable plan.
    pub evacuations: u64,
    /// Interrupted installs that were rolled back and retried.
    pub install_retries: u64,
    /// Guests demoted at the second level.
    pub quarantines: u64,
    /// Incremental audit steps performed over installed tables.
    #[serde(default)]
    pub audit_checks: u64,
    /// Audit discrepancies detected (each triggers a replan).
    #[serde(default)]
    pub audit_violations: u64,
}

/// An evacuation/restore plan awaiting a successful two-phase install.
#[derive(Debug, Clone)]
struct PendingInstall {
    host: HostConfig,
    plan: Plan,
    /// The plan's table remapped to the full core width (empty lanes for
    /// offline cores) so it matches the dispatcher's core count.
    table: Table,
    path: ReplanPath,
    attempts: u32,
    next_try: Nanos,
}

/// The self-healing control loop.
///
/// Owns the recovery policy, not the mechanism: the dispatcher keeps making
/// decisions on whatever table is installed; the guardian only ever changes
/// state through the dispatcher's public install/quarantine interfaces. Call
/// [`Guardian::step`] periodically (each control epoch).
#[derive(Debug)]
pub struct Guardian {
    cfg: GuardianConfig,
    /// The full-width host the deployment was admitted with.
    base_host: HostConfig,
    /// Per-vCPU capped flags of the base host (capped guests are never
    /// quarantined: the table already clamps them).
    capped: Vec<bool>,
    /// The host/plan pair behind the currently installed table (previous
    /// plan for the incremental rung of the next replan).
    installed: (HostConfig, Plan),
    offline: Vec<bool>,
    replan_needed: bool,
    pending: Option<PendingInstall>,
    /// Latest cumulative overrun count per vCPU id.
    overruns_seen: Vec<u64>,
    /// Fact store snapshotted from the installed table, re-checked by the
    /// continuous audit.
    auditor: TableAuditor,
    /// Earliest time of the next audit step.
    next_audit: Nanos,
    counters: GuardianCounters,
    log: Vec<RecoveryRecord>,
}

impl Guardian {
    /// Creates a guardian for a deployment admitted as `base_host` with
    /// `initial` installed.
    pub fn new(base_host: HostConfig, initial: Plan, cfg: GuardianConfig) -> Guardian {
        let capped = base_host
            .vcpus()
            .into_iter()
            .map(|(_, spec)| spec.capped)
            .collect();
        let auditor = TableAuditor::new(&initial.table);
        Guardian {
            cfg,
            capped,
            installed: (base_host.clone(), initial),
            offline: vec![false; base_host.n_cores],
            base_host,
            replan_needed: false,
            pending: None,
            overruns_seen: Vec::new(),
            auditor,
            next_audit: Nanos::ZERO,
            counters: GuardianCounters::default(),
            log: Vec::new(),
        }
    }

    /// A monitor covering every vCPU of the guarded host.
    pub fn monitor(&self) -> SlaMonitor {
        SlaMonitor::from_host(&self.base_host)
    }

    /// Feeds a core offline/online event. Out-of-range cores are ignored.
    pub fn on_core_event(&mut self, event: CoreEvent) {
        let (core, at, offline) = match event {
            CoreEvent::Offline { core, at } => (core, at, true),
            CoreEvent::Online { core, at } => (core, at, false),
        };
        let Some(flag) = self.offline.get_mut(core) else {
            return;
        };
        if *flag == offline {
            return;
        }
        *flag = offline;
        self.replan_needed = true;
        // A plan built for the previous core set is stale; rebuild.
        self.pending = None;
        self.log.push(RecoveryRecord {
            at,
            action: if offline {
                RecoveryAction::CoreLost { core }
            } else {
                RecoveryAction::CoreRestored { core }
            },
        });
    }

    /// Records `vcpu`'s cumulative overrun count (monotone; from the
    /// hypervisor's per-vCPU statistics). Quarantine is decided at the next
    /// [`Guardian::step`].
    pub fn observe_overruns(&mut self, vcpu: VcpuId, total: u64) {
        let i = vcpu.0 as usize;
        if self.overruns_seen.len() <= i {
            self.overruns_seen.resize(i + 1, 0);
        }
        self.overruns_seen[i] = total;
    }

    /// Runs one control epoch at `now`: drains the monitor, quarantines
    /// persistent overrunners, replans after core-set changes, and drives
    /// any pending install (`install_interrupted` reports whether a push
    /// attempted *this* epoch would be interrupted — in a live system this
    /// is the outcome of the push itself).
    ///
    /// Returns the recovery records produced by this step.
    pub fn step(
        &mut self,
        dispatcher: &mut Dispatcher,
        now: Nanos,
        install_interrupted: bool,
    ) -> Vec<RecoveryRecord> {
        let mark = self.log.len();

        if let Some(m) = dispatcher.sla_monitor_mut() {
            m.scan_overdue(now);
            for v in m.drain_violations() {
                self.counters.violations_seen += 1;
                self.log.push(RecoveryRecord {
                    at: v.at,
                    action: RecoveryAction::ViolationObserved {
                        vcpu: v.vcpu,
                        observed: v.observed,
                        bound: v.bound,
                    },
                });
            }
        }

        // Continuous audit: one incremental step per cadence interval,
        // re-checking the live table against the install-time fact store.
        // Silent when clean; a discrepancy is typed into the log and routed
        // through the ordinary replan ladder (the corrupted copy is
        // replaced by a freshly planned, freshly verified install).
        if now >= self.next_audit {
            self.next_audit = now + self.cfg.audit_interval;
            self.counters.audit_checks += 1;
            let found = self.auditor.audit_step(dispatcher.newest_table());
            if !found.is_empty() {
                self.counters.audit_violations += found.len() as u64;
                for violation in found {
                    self.log.push(RecoveryRecord {
                        at: now,
                        action: RecoveryAction::AuditViolation { violation },
                    });
                }
                self.replan_needed = true;
                // The pending install (if any) predates the discrepancy.
                self.pending = None;
            }
        }

        for i in 0..self.overruns_seen.len() {
            let vcpu = VcpuId(i as u32);
            if self.overruns_seen[i] >= self.cfg.quarantine_overruns
                && !self.capped.get(i).copied().unwrap_or(true)
                && !dispatcher.is_quarantined(vcpu)
            {
                dispatcher.set_quarantined(vcpu, true);
                self.counters.quarantines += 1;
                self.log.push(RecoveryRecord {
                    at: now,
                    action: RecoveryAction::Quarantined {
                        vcpu,
                        overruns: self.overruns_seen[i],
                    },
                });
            }
        }

        if self.replan_needed && self.pending.is_none() {
            self.replan(now);
        }

        if self.pending.as_ref().is_some_and(|p| now >= p.next_try) {
            self.try_install(dispatcher, now, install_interrupted);
        }

        self.log[mark..].to_vec()
    }

    fn replan(&mut self, now: Nanos) {
        self.replan_needed = false;
        let online: Vec<usize> = (0..self.base_host.n_cores)
            .filter(|&c| !self.offline[c])
            .collect();
        if online.is_empty() {
            self.log.push(RecoveryRecord {
                at: now,
                action: RecoveryAction::ReplanFailed {
                    error: "no cores online".to_string(),
                },
            });
            return;
        }
        // Evacuation target: the same guests on the surviving cores. vCPU
        // ids stay dense and identical (same VMs in the same order), so the
        // compact plan's lanes can be remapped onto the full core width.
        let mut target = HostConfig::new(online.len());
        for vm in &self.base_host.vms {
            let mut vm = vm.clone();
            // NUMA placement hints may reference lost cores; evacuation
            // trades placement quality for service.
            vm.numa_node = None;
            target.add_vm(vm);
        }
        match plan_with_fallback(
            Some((&self.installed.0, &self.installed.1)),
            &target,
            &self.cfg.planner,
        ) {
            Ok(outcome) => {
                match remap_to_width(&outcome.plan.table, &online, self.base_host.n_cores) {
                    Ok(full) => {
                        self.counters.evacuations += 1;
                        self.log.push(RecoveryRecord {
                            at: now,
                            action: RecoveryAction::Replanned {
                                path: outcome.path.label().to_string(),
                                online_cores: online.len(),
                                fallback_attempts: outcome.attempts.len(),
                            },
                        });
                        self.pending = Some(PendingInstall {
                            host: target,
                            plan: outcome.plan,
                            table: full,
                            path: outcome.path,
                            attempts: 0,
                            next_try: now,
                        });
                    }
                    Err(error) => self.log.push(RecoveryRecord {
                        at: now,
                        action: RecoveryAction::ReplanFailed { error },
                    }),
                }
            }
            Err(e) => self.log.push(RecoveryRecord {
                at: now,
                action: RecoveryAction::ReplanFailed {
                    error: e.to_string(),
                },
            }),
        }
    }

    fn try_install(&mut self, dispatcher: &mut Dispatcher, now: Nanos, interrupted: bool) {
        let Some(mut p) = self.pending.take() else {
            return;
        };
        if dispatcher.has_staged_table() {
            // Defensive: never stack on a foreign staged install.
            dispatcher.abort_table_switch();
        }
        let staged = match dispatcher.begin_table_switch(p.table.clone(), now) {
            Ok(staged) => staged,
            Err(e) => {
                self.log.push(RecoveryRecord {
                    at: now,
                    action: RecoveryAction::InstallFailed {
                        error: e.to_string(),
                    },
                });
                self.replan_needed = true;
                return;
            }
        };
        if interrupted {
            // Torn push: roll back, keep the old table, retry with backoff.
            dispatcher.abort_table_switch();
            self.counters.install_retries += 1;
            p.attempts += 1;
            if p.attempts > self.cfg.max_install_retries {
                self.log.push(RecoveryRecord {
                    at: now,
                    action: RecoveryAction::InstallRetriesExhausted {
                        attempts: p.attempts,
                    },
                });
                // Escalate: rebuild the plan down the ladder next step.
                self.replan_needed = true;
            } else {
                p.next_try = now + backoff(self.cfg.backoff_base, self.cfg.backoff_cap, p.attempts);
                self.log.push(RecoveryRecord {
                    at: now,
                    action: RecoveryAction::InstallRetried {
                        attempt: p.attempts,
                        next_try: p.next_try,
                    },
                });
                self.pending = Some(p);
            }
            return;
        }
        match dispatcher.commit_table_switch(staged) {
            Ok(switch_at) => {
                self.log.push(RecoveryRecord {
                    at: now,
                    action: RecoveryAction::Installed {
                        path: p.path.label().to_string(),
                        switch_at,
                        attempts: p.attempts,
                    },
                });
                // Rebase the audit facts on the table just committed (the
                // full-width remap, which is what the dispatcher now runs).
                self.auditor.refresh(&p.table);
                self.installed = (p.host, p.plan);
            }
            Err(e) => {
                self.log.push(RecoveryRecord {
                    at: now,
                    action: RecoveryAction::InstallFailed {
                        error: e.to_string(),
                    },
                });
                self.replan_needed = true;
            }
        }
    }

    /// Aggregate recovery counters.
    pub fn counters(&self) -> GuardianCounters {
        self.counters
    }

    /// Every recovery record since creation, in order.
    pub fn log(&self) -> &[RecoveryRecord] {
        &self.log
    }

    /// The plan behind the currently installed table.
    pub fn installed_plan(&self) -> &Plan {
        &self.installed.1
    }

    /// Whether `core` is believed online.
    pub fn is_core_online(&self, core: usize) -> bool {
        self.offline.get(core).is_some_and(|&off| !off)
    }

    /// Cores currently believed online.
    pub fn online_cores(&self) -> usize {
        self.offline.iter().filter(|&&off| !off).count()
    }

    /// Whether an evacuation/restore install is still pending.
    pub fn recovery_pending(&self) -> bool {
        self.pending.is_some() || self.replan_needed
    }
}

/// Remaps a compact `table` (one lane per online core) onto `width` cores,
/// leaving offline cores' lanes empty (a whole-table idle slice).
fn remap_to_width(table: &Table, online: &[usize], width: usize) -> Result<Table, String> {
    let mut per_core = vec![Vec::new(); width];
    for (compact, &full) in online.iter().enumerate() {
        per_core[full] = table.cpu(compact).allocations().to_vec();
    }
    Table::new(table.len(), per_core)
}

fn backoff(base: Nanos, cap: Nanos, attempt: u32) -> Nanos {
    let shift = attempt.saturating_sub(1).min(32);
    Nanos(base.0.saturating_mul(1u64 << shift).min(cap.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::Decision;
    use crate::level2::DEFAULT_EPOCH;
    use crate::planner::plan;
    use crate::vcpu::{Utilization, VcpuSpec, VmSpec};

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    /// Two cores, four single-vCPU VMs at 25% each: two capped (20 ms
    /// latency goal), two uncapped. One core's worth of load fits on the
    /// survivor when the other core dies.
    fn host() -> HostConfig {
        let mut h = HostConfig::new(2);
        let capped = VcpuSpec::capped(Utilization::from_percent(25), ms(20));
        let uncapped = VcpuSpec::new(Utilization::from_percent(25), ms(20));
        h.add_vm(VmSpec::uniform("c0", 1, capped));
        h.add_vm(VmSpec::uniform("c1", 1, capped));
        h.add_vm(VmSpec::uniform("u0", 1, uncapped));
        h.add_vm(VmSpec::uniform("u1", 1, uncapped));
        h
    }

    fn setup() -> (Guardian, Dispatcher) {
        let h = host();
        let p = plan(&h, &PlannerOptions::default()).unwrap();
        let capped: Vec<bool> = h.vcpus().into_iter().map(|(_, s)| s.capped).collect();
        let mut d = Dispatcher::new(p.table.clone(), capped, DEFAULT_EPOCH);
        let g = Guardian::new(h, p, GuardianConfig::default());
        d.attach_sla_monitor(g.monitor());
        (g, d)
    }

    fn find(
        records: &[RecoveryRecord],
        pred: impl Fn(&RecoveryAction) -> bool,
    ) -> Option<&RecoveryRecord> {
        records.iter().find(|r| pred(&r.action))
    }

    #[test]
    fn monitor_reports_once_per_waiting_spell() {
        let mut m = SlaMonitor::new(vec![(VcpuId(0), ms(2))]);
        m.note_runnable(VcpuId(0), ms(0));
        m.scan_overdue(ms(5)); // overdue: flags the spell
        m.scan_overdue(ms(6)); // same spell: no second report
        m.note_dispatched(VcpuId(0), ms(7)); // already flagged: no report
        let v = m.drain_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].observed, ms(5));
        assert_eq!(m.worst_of(VcpuId(0)), ms(7));
        assert_eq!(m.violations_seen(), 1);
        // A fresh spell within bound reports nothing.
        m.note_runnable(VcpuId(0), ms(10));
        m.note_dispatched(VcpuId(0), ms(11));
        assert!(m.drain_violations().is_empty());
    }

    #[test]
    fn monitor_ignores_unbounded_and_blocked_vcpus() {
        let mut m = SlaMonitor::new(vec![(VcpuId(0), ms(2))]);
        // vCPU 9 has no declared bound: tracked for worst-case only.
        m.note_runnable(VcpuId(9), ms(0));
        m.note_dispatched(VcpuId(9), ms(50));
        assert_eq!(m.worst_of(VcpuId(9)), ms(50));
        // Blocking abandons the spell.
        m.note_runnable(VcpuId(0), ms(0));
        m.note_blocked(VcpuId(0), ms(1));
        m.scan_overdue(ms(100));
        assert!(m.drain_violations().is_empty());
    }

    #[test]
    fn core_loss_evacuates_onto_survivor() {
        let (mut g, mut d) = setup();
        g.on_core_event(CoreEvent::Offline { core: 1, at: ms(1) });
        assert_eq!(g.online_cores(), 1);
        assert!(find(g.log(), |a| matches!(
            a,
            RecoveryAction::CoreLost { core: 1 }
        ))
        .is_some());
        let records = g.step(&mut d, ms(1), false);
        let installed = find(&records, |a| matches!(a, RecoveryAction::Installed { .. }))
            .expect("evacuation plan installed");
        let RecoveryAction::Installed { switch_at, .. } = installed.action else {
            unreachable!()
        };
        assert_eq!(g.counters().evacuations, 1);
        assert!(!g.recovery_pending());
        // After the switch the lost core's lane is empty: it idles for the
        // whole table round while the survivor serves all four vCPUs.
        let dec = d.decide(1, switch_at, |_| true);
        assert!(matches!(dec, Decision::Idle { .. }));
        let len = g.installed_plan().table.len();
        let mut served = std::collections::BTreeSet::new();
        let mut t = switch_at;
        while t < switch_at + len {
            let dec = d.decide(0, t, |_| true);
            if let Some(v) = dec.vcpu() {
                served.insert(v);
                d.on_descheduled(v, 0);
            }
            t = dec.until();
        }
        for v in 0..2 {
            assert!(served.contains(&VcpuId(v)), "capped v{v} lost service");
        }
    }

    #[test]
    fn restore_returns_to_full_width() {
        let (mut g, mut d) = setup();
        g.on_core_event(CoreEvent::Offline { core: 1, at: ms(1) });
        g.step(&mut d, ms(1), false);
        g.on_core_event(CoreEvent::Online {
            core: 1,
            at: ms(30),
        });
        assert!(find(g.log(), |a| matches!(
            a,
            RecoveryAction::CoreRestored { core: 1 }
        ))
        .is_some());
        let records = g.step(&mut d, ms(30), false);
        let installed = find(&records, |a| matches!(a, RecoveryAction::Installed { .. }))
            .expect("restore plan installed");
        let RecoveryAction::Installed { switch_at, .. } = installed.action else {
            unreachable!()
        };
        // Core 1 serves again after the restore switch.
        let len = g.installed_plan().table.len();
        let mut t = switch_at;
        let mut served_any = false;
        while t < switch_at + len {
            let dec = d.decide(1, t, |_| true);
            if let Some(v) = dec.vcpu() {
                served_any = true;
                d.on_descheduled(v, 1);
            }
            t = dec.until();
        }
        assert!(served_any, "restored core never served a vCPU");
        assert_eq!(g.counters().evacuations, 2);
    }

    #[test]
    fn interrupted_installs_back_off_and_eventually_commit() {
        let (mut g, mut d) = setup();
        g.on_core_event(CoreEvent::Offline { core: 1, at: ms(0) });
        // Two interrupted pushes: rolled back, old table intact.
        let r1 = g.step(&mut d, ms(0), true);
        let retry1 = find(&r1, |a| matches!(a, RecoveryAction::InstallRetried { .. }))
            .expect("first retry recorded");
        let RecoveryAction::InstallRetried { next_try, .. } = retry1.action else {
            unreachable!()
        };
        assert!(!d.has_staged_table());
        assert_eq!(next_try, ms(0) + ms(1));
        // Before the backoff expires nothing is attempted.
        let quiet = g.step(&mut d, Nanos::from_micros(500), true);
        assert!(find(&quiet, |a| matches!(
            a,
            RecoveryAction::InstallRetried { .. }
        ))
        .is_none());
        let r2 = g.step(&mut d, ms(1), true);
        let retry2 = find(&r2, |a| matches!(a, RecoveryAction::InstallRetried { .. })).unwrap();
        let RecoveryAction::InstallRetried { next_try, attempt } = retry2.action else {
            unreachable!()
        };
        assert_eq!(attempt, 2);
        assert_eq!(next_try, ms(1) + ms(2)); // doubled
        assert_eq!(g.counters().install_retries, 2);
        assert!(g.recovery_pending());
        // A clean push commits exactly once.
        let r3 = g.step(&mut d, ms(3), false);
        let installed =
            find(&r3, |a| matches!(a, RecoveryAction::Installed { .. })).expect("committed");
        let RecoveryAction::Installed { attempts, .. } = &installed.action else {
            unreachable!()
        };
        assert_eq!(*attempts, 2);
        assert!(!g.recovery_pending());
    }

    #[test]
    fn exhausted_retries_rebuild_the_plan() {
        let (_, mut d) = setup();
        let cfg = GuardianConfig {
            max_install_retries: 1,
            ..GuardianConfig::default()
        };
        let h = host();
        let p = plan(&h, &PlannerOptions::default()).unwrap();
        let mut g = Guardian::new(h, p, cfg);
        g.on_core_event(CoreEvent::Offline { core: 1, at: ms(0) });
        g.step(&mut d, ms(0), true); // attempt 1: retry scheduled
        let r = g.step(&mut d, ms(5), true); // attempt 2: budget exhausted
        assert!(find(&r, |a| matches!(
            a,
            RecoveryAction::InstallRetriesExhausted { .. }
        ))
        .is_some());
        // The next step re-runs the ladder and installs cleanly.
        let r = g.step(&mut d, ms(10), false);
        assert!(find(&r, |a| matches!(a, RecoveryAction::Replanned { .. })).is_some());
        assert!(find(&r, |a| matches!(a, RecoveryAction::Installed { .. })).is_some());
    }

    #[test]
    fn persistent_overrunner_is_quarantined_once() {
        let (mut g, mut d) = setup();
        // vCPU 2 is uncapped ("u0"); vCPU 0 is capped.
        g.observe_overruns(VcpuId(2), 49);
        g.step(&mut d, ms(1), false);
        assert!(!d.is_quarantined(VcpuId(2)));
        g.observe_overruns(VcpuId(2), 50);
        let r = g.step(&mut d, ms(2), false);
        assert!(find(&r, |a| matches!(a, RecoveryAction::Quarantined { .. })).is_some());
        assert!(d.is_quarantined(VcpuId(2)));
        assert_eq!(g.counters().quarantines, 1);
        // Idempotent: no second quarantine of the same guest.
        let r = g.step(&mut d, ms(3), false);
        assert!(find(&r, |a| matches!(a, RecoveryAction::Quarantined { .. })).is_none());
        assert_eq!(g.counters().quarantines, 1);
        // Capped guests are never quarantined, however much they overrun.
        g.observe_overruns(VcpuId(0), 1_000);
        g.step(&mut d, ms(4), false);
        assert!(!d.is_quarantined(VcpuId(0)));
    }

    #[test]
    fn violations_flow_from_monitor_to_log() {
        let (mut g, mut d) = setup();
        d.sla_monitor_mut().unwrap().note_runnable(VcpuId(0), ms(0));
        // 25 ms without a dispatch blows the 20 ms bound.
        let r = g.step(&mut d, ms(25), false);
        let v = find(&r, |a| {
            matches!(a, RecoveryAction::ViolationObserved { .. })
        })
        .expect("violation logged");
        let RecoveryAction::ViolationObserved { vcpu, observed, .. } = v.action else {
            unreachable!()
        };
        assert_eq!(vcpu, VcpuId(0));
        assert_eq!(observed, ms(25));
        assert_eq!(g.counters().violations_seen, 1);
    }

    #[test]
    fn continuous_audit_is_silent_on_a_clean_table() {
        let (mut g, mut d) = setup();
        for i in 0..6 {
            let r = g.step(&mut d, ms(100 * i), false);
            assert!(r.is_empty(), "clean audit must not log: {r:?}");
        }
        // One audit step per cadence interval, none mid-interval.
        assert_eq!(g.counters().audit_checks, 6);
        let quiet = g.step(&mut d, ms(500) + Nanos::from_micros(1), false);
        assert!(quiet.is_empty());
        assert_eq!(g.counters().audit_checks, 6);
        assert_eq!(g.counters().audit_violations, 0);
    }

    #[test]
    fn audit_detects_corruption_and_repairs_through_the_ladder() {
        use crate::audit::{corrupt_table_any, CorruptionKind};
        let h = host();
        let p = plan(&h, &PlannerOptions::default()).unwrap();
        // The dispatcher boots on a corrupted copy of the approved table —
        // the in-memory fault the continuous audit exists to catch.
        let (_, bad) = corrupt_table_any(&p.table, CorruptionKind::SwapPlacement, 64).unwrap();
        let capped: Vec<bool> = h.vcpus().into_iter().map(|(_, s)| s.capped).collect();
        let mut d = Dispatcher::new(bad, capped, DEFAULT_EPOCH);
        let mut g = Guardian::new(h, p, GuardianConfig::default());
        d.attach_sla_monitor(g.monitor());

        let r = g.step(&mut d, ms(0), false);
        assert!(
            find(&r, |a| matches!(a, RecoveryAction::AuditViolation { .. })).is_some(),
            "corruption not flagged: {r:?}"
        );
        // The same step replans and installs a repaired table.
        assert!(find(&r, |a| matches!(a, RecoveryAction::Installed { .. })).is_some());
        assert!(g.counters().audit_violations >= 1);
        let seen = g.counters().audit_violations;

        // A full audit rotation over the repaired table stays silent.
        for i in 1..=2 * d.n_cores() as u64 {
            let r = g.step(&mut d, ms(100 * i), false);
            assert!(
                find(&r, |a| matches!(a, RecoveryAction::AuditViolation { .. })).is_none(),
                "repaired table re-flagged: {r:?}"
            );
        }
        assert_eq!(g.counters().audit_violations, seen);
    }

    #[test]
    fn backoff_is_bounded() {
        let base = Nanos::from_millis(1);
        let cap = Nanos::from_millis(100);
        assert_eq!(backoff(base, cap, 1), Nanos::from_millis(1));
        assert_eq!(backoff(base, cap, 3), Nanos::from_millis(4));
        assert_eq!(backoff(base, cap, 8), Nanos::from_millis(100)); // capped
        assert_eq!(backoff(base, cap, 64), Nanos::from_millis(100)); // no overflow
    }
}
