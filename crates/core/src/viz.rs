//! Text visualization of scheduling tables (a debugging/ops aid).
//!
//! Renders a [`Table`] as a per-core ASCII Gantt strip, one character per
//! time bucket: a vCPU's symbol where it holds the whole bucket, `.` for
//! idle, `▒` where the bucket mixes owners. Used by the examples and handy
//! when eyeballing planner output (a 102 ms table fits in a terminal line).

use std::fmt::Write as _;

use rtsched::time::Nanos;

use crate::table::Table;
use crate::vcpu::VcpuId;

/// Symbol assigned to a vCPU id (cycles through `0-9a-zA-Z`).
pub fn symbol_for(vcpu: VcpuId) -> char {
    const ALPHABET: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    ALPHABET[vcpu.0 as usize % ALPHABET.len()] as char
}

/// Renders `table` as one Gantt strip per core, `width` buckets wide.
///
/// # Examples
///
/// ```
/// use rtsched::time::Nanos;
/// use tableau_core::table::{Allocation, Table};
/// use tableau_core::vcpu::VcpuId;
/// use tableau_core::viz::render_gantt;
///
/// let ms = Nanos::from_millis;
/// let table = Table::new(
///     ms(10),
///     vec![vec![
///         Allocation { start: ms(0), end: ms(5), vcpu: VcpuId(0) },
///         Allocation { start: ms(5), end: ms(8), vcpu: VcpuId(1) },
///     ]],
/// )
/// .unwrap();
/// let strip = render_gantt(&table, 10);
/// assert!(strip.contains("0000011"));
/// assert!(strip.trim_end().ends_with("..|")); // idle tail
/// ```
pub fn render_gantt(table: &Table, width: usize) -> String {
    let width = width.max(1);
    let len = table.len().as_nanos();
    let mut out = String::new();
    for core in 0..table.n_cores() {
        let _ = write!(out, "core {core:>2} |");
        for b in 0..width {
            let lo = Nanos(len * b as u64 / width as u64);
            let hi = Nanos((len * (b as u64 + 1) / width as u64).max(lo.as_nanos() + 1));
            // Sample the owner at the bucket's start, then check whether it
            // holds the entire bucket.
            let owner = table.lookup(core, lo).vcpu();
            let uniform = {
                let slot = table.lookup(core, lo);
                let slot_end = lo + (slot.until() - lo % table.len());
                slot_end >= hi
            };
            let ch = match (owner, uniform) {
                (Some(v), true) => symbol_for(v),
                (None, true) => '.',
                _ => '▒',
            };
            out.push(ch);
        }
        out.push_str("|\n");
    }
    out
}

/// Renders a legend mapping symbols to the vCPUs used in `table`.
pub fn render_legend(table: &Table) -> String {
    let mut seen: Vec<VcpuId> = (0..table.n_cores())
        .flat_map(|c| table.cpu(c).allocations().iter().map(|a| a.vcpu))
        .collect();
    seen.sort_unstable();
    seen.dedup();
    let mut out = String::from("legend: ");
    for (i, v) in seen.iter().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        let _ = write!(out, "{}={}", symbol_for(*v), v);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Allocation;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn table() -> Table {
        Table::new(
            ms(10),
            vec![
                vec![
                    Allocation {
                        start: ms(0),
                        end: ms(5),
                        vcpu: VcpuId(0),
                    },
                    Allocation {
                        start: ms(5),
                        end: ms(10),
                        vcpu: VcpuId(1),
                    },
                ],
                vec![],
            ],
        )
        .unwrap()
    }

    #[test]
    fn strips_show_owners_and_idle() {
        let g = render_gantt(&table(), 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("0000011111"));
        assert!(lines[1].contains(".........."));
    }

    #[test]
    fn mixed_buckets_are_marked() {
        // 3 buckets over a 10 ms table: the middle bucket spans the 5 ms
        // ownership change.
        let g = render_gantt(&table(), 3);
        let first = g.lines().next().unwrap();
        assert!(first.contains('▒'), "no mixed marker in {first}");
    }

    #[test]
    fn legend_lists_each_vcpu_once() {
        let l = render_legend(&table());
        assert_eq!(l.matches("v0").count(), 1);
        assert_eq!(l.matches("v1").count(), 1);
    }

    #[test]
    fn symbols_cycle_safely() {
        assert_eq!(symbol_for(VcpuId(0)), '0');
        assert_eq!(symbol_for(VcpuId(10)), 'a');
        assert_eq!(symbol_for(VcpuId(62)), '0'); // wraps
    }

    #[test]
    fn renders_real_planner_output() {
        use crate::planner::{plan, PlannerOptions};
        use crate::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
        let mut host = HostConfig::new(2);
        let spec = VcpuSpec::capped(Utilization::from_percent(25), ms(20));
        for i in 0..8 {
            host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
        }
        let p = plan(&host, &PlannerOptions::default()).unwrap();
        let g = render_gantt(&p.table, 64);
        assert_eq!(g.lines().count(), 2);
        // Fully reserved table: no idle dots.
        assert!(!g.contains('.'), "unexpected idle in a full table:\n{g}");
    }
}
