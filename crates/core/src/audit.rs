//! Continuous table audit: a compact fact store snapshotted from a trusted
//! plan at install time, re-checked incrementally against the live table.
//!
//! The planner verifies every schedule before it becomes a table, and the
//! rule engine (`rtsched::rules`) re-verifies deltas in O(delta) — but both
//! run *before* install. Once a table is live, nothing re-examines it: a
//! bad splice that slipped past verification, or an in-memory corruption of
//! the installed copy, would go unnoticed until a vCPU misses its SLA. The
//! [`TableAuditor`] closes that gap. At install time it snapshots per-core
//! fingerprints and a placement fingerprint from the table the verifier
//! approved; afterwards a low-cadence audit loop (the guardian's) re-derives
//! the same facts from the live table and compares. Each [`audit_step`]
//! checks one core — O(one core), not O(host) — so the audit amortizes to
//! a full sweep every `n_cores` steps without ever stalling the hot path.
//!
//! The module also carries the *corruption injector* used by chaos soaks
//! and the mutation-kill harness: [`corrupt_table`] applies one of three
//! seeded fault classes (bit-flipped slot ids, swapped placements, stale
//! truncated slots) to a table, deterministically per salt, so end-to-end
//! detect→repair can be exercised and every undetected corruption counted.
//!
//! [`audit_step`]: TableAuditor::audit_step

use std::fmt;

use serde::{Deserialize, Serialize};

use rtsched::time::Nanos;

use crate::table::{Allocation, Table};
use crate::vcpu::VcpuId;

/// A discrepancy between the live table and the facts recorded at install.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditViolation {
    /// The table's shape (length or core count) differs from the baseline.
    ShapeMismatch {
        /// Core count recorded at install time.
        expected_cores: usize,
        /// Core count observed in the live table.
        got_cores: usize,
    },
    /// Core `core`'s allocation list no longer matches its fingerprint.
    SlotMismatch {
        /// The core whose slots diverged.
        core: usize,
    },
    /// The per-vCPU placement metadata diverged from the baseline.
    PlacementMismatch,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AuditViolation::ShapeMismatch {
                expected_cores,
                got_cores,
            } => write!(
                f,
                "table shape mismatch: expected {expected_cores} cores, got {got_cores}"
            ),
            AuditViolation::SlotMismatch { core } => {
                write!(f, "slot fingerprint mismatch on core {core}")
            }
            AuditViolation::PlacementMismatch => {
                write!(f, "placement metadata diverged from installed baseline")
            }
        }
    }
}

/// FNV-1a over a stream of `u64` words.
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Fingerprint of one core's allocation list.
fn core_fingerprint(core: usize, allocs: &[Allocation]) -> u64 {
    fnv1a(
        std::iter::once(core as u64).chain(
            allocs
                .iter()
                .flat_map(|a| [a.start.as_nanos(), a.end.as_nanos(), a.vcpu.0 as u64]),
        ),
    )
}

/// Fingerprint of the whole placement map (home cores and allocation
/// triples, in vCPU-id order).
fn placement_fingerprint(table: &Table) -> u64 {
    let mut words: Vec<u64> = Vec::new();
    for core in 0..table.n_cores() {
        for &v in table.vcpus_homed_on(core) {
            let Some(p) = table.placement(v) else {
                continue;
            };
            words.push(v.0 as u64);
            words.push(p.home_core as u64);
            for &(c, s, e) in &p.allocations {
                words.push(c as u64);
                words.push(s.as_nanos());
                words.push(e.as_nanos());
            }
        }
    }
    fnv1a(words)
}

/// The audit fact store: fingerprints of a table known-good at install
/// time, plus a cursor for incremental sweeps.
///
/// # Examples
///
/// ```
/// use rtsched::time::Nanos;
/// use tableau_core::audit::TableAuditor;
/// use tableau_core::table::{Allocation, Table};
/// use tableau_core::vcpu::VcpuId;
///
/// let ms = Nanos::from_millis;
/// let table = Table::new(
///     ms(10),
///     vec![vec![Allocation { start: ms(0), end: ms(4), vcpu: VcpuId(0) }]],
/// )
/// .unwrap();
/// let mut auditor = TableAuditor::new(&table);
/// assert!(auditor.audit_full(&table).is_empty());
/// assert!(auditor.audit_step(&table).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TableAuditor {
    len: Nanos,
    core_fp: Vec<u64>,
    placement_fp: u64,
    cursor: usize,
}

impl TableAuditor {
    /// Snapshots audit facts from a table the verifier has approved.
    pub fn new(table: &Table) -> TableAuditor {
        TableAuditor {
            len: table.len(),
            core_fp: (0..table.n_cores())
                .map(|c| core_fingerprint(c, table.cpu(c).allocations()))
                .collect(),
            placement_fp: placement_fingerprint(table),
            cursor: 0,
        }
    }

    /// Rebases the fact store on a newly installed table.
    pub fn refresh(&mut self, table: &Table) {
        *self = TableAuditor::new(table);
    }

    /// Number of cores in the baseline.
    pub fn n_cores(&self) -> usize {
        self.core_fp.len()
    }

    /// Checks the live table's shape against the baseline.
    fn check_shape(&self, table: &Table) -> Option<AuditViolation> {
        if table.n_cores() != self.core_fp.len() || table.len() != self.len {
            return Some(AuditViolation::ShapeMismatch {
                expected_cores: self.core_fp.len(),
                got_cores: table.n_cores(),
            });
        }
        None
    }

    /// Re-derives and compares the facts for one core.
    pub fn audit_core(&self, table: &Table, core: usize) -> Option<AuditViolation> {
        if core >= table.n_cores() || core >= self.core_fp.len() {
            return Some(AuditViolation::ShapeMismatch {
                expected_cores: self.core_fp.len(),
                got_cores: table.n_cores(),
            });
        }
        (core_fingerprint(core, table.cpu(core).allocations()) != self.core_fp[core])
            .then_some(AuditViolation::SlotMismatch { core })
    }

    /// Full audit: shape, every core, and the placement map.
    pub fn audit_full(&self, table: &Table) -> Vec<AuditViolation> {
        if let Some(v) = self.check_shape(table) {
            return vec![v];
        }
        let mut out: Vec<AuditViolation> = (0..self.core_fp.len())
            .filter_map(|c| self.audit_core(table, c))
            .collect();
        if placement_fingerprint(table) != self.placement_fp {
            out.push(AuditViolation::PlacementMismatch);
        }
        out
    }

    /// One incremental audit step: shape, then the cursor's core, plus the
    /// placement map each time the cursor wraps. Cost is O(one core), and
    /// `n_cores` consecutive steps cover everything [`audit_full`] covers.
    ///
    /// [`audit_full`]: TableAuditor::audit_full
    pub fn audit_step(&mut self, table: &Table) -> Vec<AuditViolation> {
        if let Some(v) = self.check_shape(table) {
            return vec![v];
        }
        let core = self.cursor;
        self.cursor = (self.cursor + 1) % self.core_fp.len().max(1);
        let mut out: Vec<AuditViolation> = self.audit_core(table, core).into_iter().collect();
        if core == 0 && placement_fingerprint(table) != self.placement_fp {
            out.push(AuditViolation::PlacementMismatch);
        }
        out
    }
}

/// The seeded table-corruption fault classes (chaos soaks, mutation kill).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// XOR a low bit of one allocation's vCPU id: the slot now names the
    /// wrong vCPU (or nobody that exists).
    BitFlipSlot,
    /// Swap the vCPU ids of two allocations: both slots remain well-formed
    /// but serve the wrong tenants.
    SwapPlacement,
    /// Truncate one allocation to half its length: a stale, partially
    /// written slot record that silently under-serves its vCPU.
    StaleStamp,
}

impl CorruptionKind {
    /// All fault classes, for sweeps.
    pub const ALL: [CorruptionKind; 3] = [
        CorruptionKind::BitFlipSlot,
        CorruptionKind::SwapPlacement,
        CorruptionKind::StaleStamp,
    ];
}

impl fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CorruptionKind::BitFlipSlot => "bit_flip_slot",
            CorruptionKind::SwapPlacement => "swap_placement",
            CorruptionKind::StaleStamp => "stale_stamp",
        })
    }
}

/// Deterministic 64-bit mix (splitmix64 finalizer).
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// Applies one corruption of class `kind` to `table`, deterministically per
/// `salt`.
///
/// Returns `None` when the mutation is a no-op for this salt (e.g. a swap
/// picked two slots of the same vCPU) or produces a structurally invalid
/// table (the corrupted copy is rebuilt through [`Table::new`], which
/// rejects e.g. a bit flip that creates a cross-core overlap) — callers
/// retry with another salt. A `Some` result is guaranteed to differ from
/// the input table.
pub fn corrupt_table(table: &Table, kind: CorruptionKind, salt: u64) -> Option<Table> {
    let mut per_core: Vec<Vec<Allocation>> = (0..table.n_cores())
        .map(|c| table.cpu(c).allocations().to_vec())
        .collect();
    // Flat index over every allocation slot in the table.
    let slots: Vec<(usize, usize)> = per_core
        .iter()
        .enumerate()
        .flat_map(|(c, list)| (0..list.len()).map(move |i| (c, i)))
        .collect();
    if slots.is_empty() {
        return None;
    }
    let pick = |stream: u64| slots[(mix(salt.wrapping_add(stream)) % slots.len() as u64) as usize];
    match kind {
        CorruptionKind::BitFlipSlot => {
            let (c, i) = pick(1);
            let bit = mix(salt.wrapping_add(2)) % 6;
            per_core[c][i].vcpu = VcpuId(per_core[c][i].vcpu.0 ^ (1 << bit));
        }
        CorruptionKind::SwapPlacement => {
            let (c1, i1) = pick(3);
            let (c2, i2) = pick(4);
            let (a, b) = (per_core[c1][i1].vcpu, per_core[c2][i2].vcpu);
            if a == b {
                return None;
            }
            per_core[c1][i1].vcpu = b;
            per_core[c2][i2].vcpu = a;
        }
        CorruptionKind::StaleStamp => {
            let (c, i) = pick(5);
            let a = per_core[c][i];
            let stale_end = a.start + (a.end - a.start + Nanos::from_nanos(1)) / 2;
            if stale_end == a.end {
                return None;
            }
            per_core[c][i].end = stale_end;
        }
    }
    let corrupted = Table::new(table.len(), per_core).ok()?;
    (&corrupted != table).then_some(corrupted)
}

/// Finds the first salt in `[0, tries)` for which [`corrupt_table`]
/// produces a corrupted table, and returns it with the table.
pub fn corrupt_table_any(table: &Table, kind: CorruptionKind, tries: u64) -> Option<(u64, Table)> {
    (0..tries).find_map(|salt| corrupt_table(table, kind, salt).map(|t| (salt, t)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn alloc(s: u64, e: u64, v: u32) -> Allocation {
        Allocation {
            start: ms(s),
            end: ms(e),
            vcpu: VcpuId(v),
        }
    }

    fn host_table() -> Table {
        Table::new(
            ms(10),
            vec![
                vec![alloc(0, 2, 0), alloc(2, 5, 1), alloc(7, 9, 2)],
                vec![alloc(0, 4, 3), alloc(5, 8, 4)],
                vec![alloc(1, 6, 5)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn clean_table_audits_clean() {
        let t = host_table();
        let mut a = TableAuditor::new(&t);
        assert!(a.audit_full(&t).is_empty());
        // A full cursor rotation (plus one) also finds nothing.
        for _ in 0..=t.n_cores() {
            assert!(a.audit_step(&t).is_empty());
        }
    }

    #[test]
    fn every_corruption_class_is_detected_by_full_and_stepped_audit() {
        let t = host_table();
        let a = TableAuditor::new(&t);
        for kind in CorruptionKind::ALL {
            let (salt, bad) =
                corrupt_table_any(&t, kind, 64).unwrap_or_else(|| panic!("{kind}: no salt"));
            let found = a.audit_full(&bad);
            assert!(!found.is_empty(), "{kind} (salt {salt}) undetected by full");
            // The stepped audit reaches the same verdict within one sweep.
            let mut stepped = a.clone();
            let step_found: Vec<_> = (0..t.n_cores())
                .flat_map(|_| stepped.audit_step(&bad))
                .collect();
            assert!(!step_found.is_empty(), "{kind} undetected by stepped sweep");
        }
    }

    #[test]
    fn corruption_is_deterministic_per_salt() {
        let t = host_table();
        for kind in CorruptionKind::ALL {
            let (salt, bad) = corrupt_table_any(&t, kind, 64).unwrap();
            assert_eq!(corrupt_table(&t, kind, salt), Some(bad));
        }
    }

    #[test]
    fn refresh_rebases_the_fact_store() {
        let t = host_table();
        let (_, bad) = corrupt_table_any(&t, CorruptionKind::SwapPlacement, 64).unwrap();
        let mut a = TableAuditor::new(&t);
        assert!(!a.audit_full(&bad).is_empty());
        a.refresh(&bad);
        assert!(a.audit_full(&bad).is_empty());
        assert!(!a.audit_full(&t).is_empty());
    }

    #[test]
    fn shape_mismatch_reported_before_core_facts() {
        let t = host_table();
        let a = TableAuditor::new(&t);
        let narrower = Table::new(ms(10), vec![vec![alloc(0, 2, 0)]]).unwrap();
        assert_eq!(
            a.audit_full(&narrower),
            vec![AuditViolation::ShapeMismatch {
                expected_cores: 3,
                got_cores: 1
            }]
        );
        let stretched = Table::new(ms(20), vec![vec![], vec![], vec![]]).unwrap();
        assert!(matches!(
            a.audit_full(&stretched)[0],
            AuditViolation::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn swap_placement_flips_both_slot_and_placement_facts() {
        let t = host_table();
        let a = TableAuditor::new(&t);
        let (_, bad) = corrupt_table_any(&t, CorruptionKind::SwapPlacement, 64).unwrap();
        let found = a.audit_full(&bad);
        assert!(found
            .iter()
            .any(|v| matches!(v, AuditViolation::SlotMismatch { .. })));
        assert!(found.contains(&AuditViolation::PlacementMismatch));
    }

    #[test]
    fn empty_table_cannot_be_corrupted() {
        let t = Table::new(ms(10), vec![vec![], vec![]]).unwrap();
        for kind in CorruptionKind::ALL {
            assert_eq!(corrupt_table_any(&t, kind, 64), None);
        }
    }

    #[test]
    fn violation_display_is_stable() {
        assert_eq!(
            AuditViolation::SlotMismatch { core: 3 }.to_string(),
            "slot fingerprint mismatch on core 3"
        );
        assert_eq!(
            AuditViolation::ShapeMismatch {
                expected_cores: 2,
                got_cores: 4
            }
            .to_string(),
            "table shape mismatch: expected 2 cores, got 4"
        );
        assert_eq!(CorruptionKind::StaleStamp.to_string(), "stale_stamp");
    }
}
