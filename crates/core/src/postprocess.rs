//! Table post-processing: coalescing un-enforceable slivers (Sec. 5,
//! "Post-processing").
//!
//! Context-switching a vCPU costs a few microseconds; an allocation shorter
//! than that cannot be meaningfully enforced — by the time the vCPU is
//! switched in, the interval is over. The planner therefore coalesces
//! allocations below a threshold into a neighboring allocation: a contiguous
//! neighbor absorbs the sliver's interval (the neighbor's vCPU gets a few
//! extra microseconds; the sliver's vCPU loses them), and isolated slivers
//! are dropped to idle time (where the second-level scheduler can still use
//! them). The lost service per vCPU is tracked and reported — it is bounded
//! by `threshold` per occurrence and is orders of magnitude below the
//! reservation granularity.
//!
//! Coalescing also merges adjacent allocations of the same vCPU, which both
//! shrinks the table and *lengthens* the shortest allocation — and the
//! shortest allocation determines the slice width, so coalescing directly
//! reduces slice-table memory (Fig. 4's table sizes include this effect).

use rtsched::time::Nanos;

use crate::table::Allocation;
use crate::vcpu::VcpuId;

/// Default coalescing threshold: allocations shorter than 20 µs are
/// impossible to enforce given context-switch costs of a few µs.
pub const DEFAULT_THRESHOLD: Nanos = Nanos(20_000);

/// What coalescing did to one core's allocation list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoalesceReport {
    /// Service lost per vCPU (donated to a neighbor or dropped to idle).
    pub lost: Vec<(VcpuId, Nanos)>,
    /// Number of allocations removed (merged or dropped).
    pub removed: usize,
}

impl CoalesceReport {
    fn record_loss(&mut self, vcpu: VcpuId, amount: Nanos) {
        match self.lost.iter_mut().find(|(v, _)| *v == vcpu) {
            Some((_, t)) => *t += amount,
            None => self.lost.push((vcpu, amount)),
        }
    }

    /// Total service lost across all vCPUs.
    pub fn total_lost(&self) -> Nanos {
        self.lost.iter().map(|&(_, t)| t).sum()
    }

    /// Merges another report into this one.
    pub fn absorb(&mut self, other: CoalesceReport) {
        for (v, t) in other.lost {
            self.record_loss(v, t);
        }
        self.removed += other.removed;
    }

    /// The same report with every vCPU id substituted through `f`.
    ///
    /// Used when a core's coalescing result is reused for another core that
    /// runs the identical schedule under an id substitution (see the
    /// planner's schedule-sharing fast path): the donated/dropped intervals
    /// are positionally the same, only the owners differ. Returns `None` if
    /// `f` has no substitute for some vCPU — the caller then falls back to
    /// coalescing that core directly.
    pub fn relabel(&self, f: impl Fn(VcpuId) -> Option<VcpuId>) -> Option<CoalesceReport> {
        Some(CoalesceReport {
            lost: self
                .lost
                .iter()
                .map(|&(v, t)| f(v).map(|v2| (v2, t)))
                .collect::<Option<_>>()?,
            removed: self.removed,
        })
    }
}

/// Merges adjacent allocations of the same vCPU in place.
fn merge_adjacent(allocs: &mut Vec<Allocation>) -> usize {
    let before = allocs.len();
    let mut merged: Vec<Allocation> = Vec::with_capacity(allocs.len());
    for a in allocs.drain(..) {
        match merged.last_mut() {
            Some(last) if last.end == a.start && last.vcpu == a.vcpu => last.end = a.end,
            _ => merged.push(a),
        }
    }
    *allocs = merged;
    before - allocs.len()
}

/// Coalesces sub-threshold allocations on one core, donating only to
/// vCPUs for which `may_extend` returns `true`.
///
/// Extending an allocation is only safe for vCPUs whose service lives
/// entirely on this core: a vCPU split across cores has another piece
/// starting exactly where this one ends, and growing this one would make
/// the vCPU "run" on two cores at once. The planner passes
/// `|v| !split.contains(v)`; slivers that cannot be donated are dropped to
/// idle time instead.
pub fn coalesce_with(
    allocs: &mut Vec<Allocation>,
    threshold: Nanos,
    may_extend: impl Fn(VcpuId) -> bool,
) -> CoalesceReport {
    let mut report = CoalesceReport::default();
    report.removed += merge_adjacent(allocs);

    while let Some(idx) = allocs.iter().position(|a| a.len() < threshold) {
        let sliver = allocs[idx];

        // Contiguous neighbors may absorb the interval; prefer the longer
        // one (it is the more established reservation and keeps slice sizes
        // large). Split vCPUs may never be extended (see docs).
        let prev_adjacent =
            idx > 0 && allocs[idx - 1].end == sliver.start && may_extend(allocs[idx - 1].vcpu);
        let next_adjacent = idx + 1 < allocs.len()
            && allocs[idx + 1].start == sliver.end
            && may_extend(allocs[idx + 1].vcpu);

        let donate_to_prev = match (prev_adjacent, next_adjacent) {
            (true, true) => allocs[idx - 1].len() >= allocs[idx + 1].len(),
            (true, false) => true,
            (false, _) => false,
        };

        if donate_to_prev {
            allocs[idx - 1].end = sliver.end;
        } else if next_adjacent {
            allocs[idx + 1].start = sliver.start;
        }
        // Isolated (or undonatable) slivers simply become idle time.
        allocs.remove(idx);
        report.record_loss(sliver.vcpu, sliver.len());
        report.removed += 1;
        report.removed += merge_adjacent(allocs);
    }
    report
}

/// Coalesces sub-threshold allocations on one core, donating to any
/// neighbor (safe when no vCPU on the core is split across cores).
///
/// The list must be sorted and non-overlapping (as produced by the
/// generators). Runs to a fixed point: donations can create new adjacency,
/// so passes repeat until nothing changes (each pass removes at least one
/// allocation, so at most `allocs.len()` passes happen).
///
/// # Examples
///
/// ```
/// use rtsched::time::Nanos;
/// use tableau_core::postprocess::{coalesce, DEFAULT_THRESHOLD};
/// use tableau_core::table::Allocation;
/// use tableau_core::vcpu::VcpuId;
///
/// let us = Nanos::from_micros;
/// let mut allocs = vec![
///     Allocation { start: us(0), end: us(500), vcpu: VcpuId(0) },
///     Allocation { start: us(500), end: us(510), vcpu: VcpuId(1) }, // 10 us sliver
///     Allocation { start: us(510), end: us(900), vcpu: VcpuId(2) },
/// ];
/// let report = coalesce(&mut allocs, DEFAULT_THRESHOLD);
/// assert_eq!(allocs.len(), 2);
/// assert_eq!(report.total_lost(), us(10));
/// ```
pub fn coalesce(allocs: &mut Vec<Allocation>, threshold: Nanos) -> CoalesceReport {
    coalesce_with(allocs, threshold, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Nanos {
        Nanos::from_micros(v)
    }

    fn alloc(s: u64, e: u64, v: u32) -> Allocation {
        Allocation {
            start: us(s),
            end: us(e),
            vcpu: VcpuId(v),
        }
    }

    #[test]
    fn merges_adjacent_same_vcpu() {
        let mut a = vec![alloc(0, 100, 0), alloc(100, 200, 0), alloc(200, 300, 1)];
        let r = coalesce(&mut a, us(20));
        assert_eq!(a, vec![alloc(0, 200, 0), alloc(200, 300, 1)]);
        assert_eq!(r.total_lost(), Nanos::ZERO);
        assert_eq!(r.removed, 1);
    }

    #[test]
    fn sliver_donated_to_longer_neighbor() {
        let mut a = vec![alloc(0, 300, 0), alloc(300, 310, 1), alloc(310, 400, 2)];
        let r = coalesce(&mut a, us(20));
        // Prev (300 us) is longer than next (90 us): prev absorbs.
        assert_eq!(a, vec![alloc(0, 310, 0), alloc(310, 400, 2)]);
        assert_eq!(r.lost, vec![(VcpuId(1), us(10))]);
    }

    #[test]
    fn sliver_donated_to_next_when_longer() {
        let mut a = vec![alloc(0, 50, 0), alloc(50, 60, 1), alloc(60, 400, 2)];
        coalesce(&mut a, us(20));
        assert_eq!(a, vec![alloc(0, 50, 0), alloc(50, 400, 2)]);
    }

    #[test]
    fn isolated_sliver_dropped_to_idle() {
        let mut a = vec![alloc(0, 100, 0), alloc(500, 510, 1), alloc(900, 1000, 2)];
        let r = coalesce(&mut a, us(20));
        assert_eq!(a.len(), 2);
        assert_eq!(r.lost, vec![(VcpuId(1), us(10))]);
    }

    #[test]
    fn donation_can_trigger_same_vcpu_merge() {
        // After vCPU 0 absorbs the sliver, it becomes adjacent to its own
        // next allocation and the two merge.
        let mut a = vec![alloc(0, 300, 0), alloc(300, 310, 1), alloc(310, 500, 0)];
        let r = coalesce(&mut a, us(20));
        assert_eq!(a, vec![alloc(0, 500, 0)]);
        assert!(r.removed >= 2);
    }

    #[test]
    fn threshold_boundary_is_exclusive() {
        let mut a = vec![alloc(0, 20, 0), alloc(20, 39, 1)];
        coalesce(&mut a, us(20));
        // 20 us survives (not < threshold), 19 us is coalesced.
        assert_eq!(a, vec![alloc(0, 39, 0)]);
    }

    #[test]
    fn empty_and_singleton_lists() {
        let mut a: Vec<Allocation> = vec![];
        assert_eq!(coalesce(&mut a, us(20)).removed, 0);
        let mut b = vec![alloc(0, 5, 0)];
        let r = coalesce(&mut b, us(20));
        // Isolated sub-threshold allocation is dropped even if alone.
        assert!(b.is_empty());
        assert_eq!(r.lost, vec![(VcpuId(0), us(5))]);
    }

    #[test]
    fn protected_vcpus_are_never_extended() {
        // vCPU 2 is split across cores: its allocation must not absorb the
        // adjacent sliver (the sliver drops to idle instead).
        let mut a = vec![alloc(0, 10, 1), alloc(10, 300, 2)];
        let r = coalesce_with(&mut a, us(20), |v| v != VcpuId(2));
        assert_eq!(a, vec![alloc(10, 300, 2)]);
        assert_eq!(r.lost, vec![(VcpuId(1), us(10))]);
    }

    #[test]
    fn protection_prefers_the_unprotected_neighbor() {
        // Both neighbors adjacent; the longer one (vCPU 2) is protected, so
        // the sliver goes to the shorter, unprotected vCPU 0.
        let mut a = vec![alloc(0, 50, 0), alloc(50, 60, 1), alloc(60, 400, 2)];
        coalesce_with(&mut a, us(20), |v| v != VcpuId(2));
        assert_eq!(a, vec![alloc(0, 60, 0), alloc(60, 400, 2)]);
    }

    #[test]
    fn report_relabel_substitutes_all_or_nothing() {
        let mut r = CoalesceReport::default();
        r.record_loss(VcpuId(0), us(5));
        r.record_loss(VcpuId(1), us(3));
        r.removed = 2;
        let mapped = r
            .relabel(|v| Some(VcpuId(v.0 + 10)))
            .expect("total substitution");
        assert_eq!(mapped.lost, vec![(VcpuId(10), us(5)), (VcpuId(11), us(3))]);
        assert_eq!(mapped.removed, 2);
        // A partial substitution refuses rather than dropping entries.
        assert!(r
            .relabel(|v| (v == VcpuId(0)).then_some(VcpuId(10)))
            .is_none());
    }

    #[test]
    fn report_absorb_accumulates() {
        let mut r1 = CoalesceReport::default();
        r1.record_loss(VcpuId(0), us(5));
        let mut r2 = CoalesceReport::default();
        r2.record_loss(VcpuId(0), us(3));
        r2.record_loss(VcpuId(1), us(2));
        r2.removed = 2;
        r1.absorb(r2);
        assert_eq!(r1.total_lost(), us(10));
        assert_eq!(r1.lost.len(), 2);
        assert_eq!(r1.removed, 2);
    }
}
