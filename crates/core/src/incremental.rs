//! Incremental replanning: per-core table recomputation (Sec. 7.1).
//!
//! The paper notes that table-generation time could be cut by recomputing
//! tables "incrementally on a per-core basis" — most reconfigurations touch
//! a few VMs, while the tables of untouched cores are still valid. This
//! module implements that optimization:
//!
//! 1. VMs are identified by `(VM name, vCPU index)`, so vCPU-id shifts
//!    caused by removals do not defeat reuse;
//! 2. the **affected core set** is the closure of cores holding allocations
//!    of removed/changed vCPUs (closure: a split vCPU pulls in every core
//!    it touches), plus enough spare cores to host additions;
//! 3. only the affected cores are re-planned (through the same three-stage
//!    generator); unaffected cores keep their existing, already-coalesced
//!    allocations verbatim, with vCPU ids remapped.
//!
//! Anything structurally global — core-count changes, dedicated-core
//! (U = 1) membership changes — falls back to a full replan, reported in
//! the [`IncrementalReport`].

use std::collections::HashMap;

use rtsched::generator::{generate_schedule_with_preferences, Stage};
use rtsched::task::{PeriodicTask, TaskId};
use rtsched::time::Nanos;
use rtsched::verify::task_max_blackout;

use crate::planner::{period_for, plan, Plan, PlanError, PlannerOptions, VcpuParams};
use crate::postprocess::{coalesce_with, CoalesceReport};
use crate::table::{Allocation, Table};
use crate::vcpu::{HostConfig, VcpuId};

/// How an incremental replan went.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncrementalReport {
    /// Cores whose tables were kept verbatim.
    pub reused_cores: Vec<usize>,
    /// Cores that were re-planned.
    pub replanned_cores: Vec<usize>,
    /// `true` if the incremental path was abandoned for a full replan.
    pub full_replan: bool,
}

/// Stable vCPU identity across host revisions.
type Key = (String, usize);

fn keys_of(host: &HostConfig) -> Vec<(Key, crate::vcpu::VcpuSpec)> {
    let mut out = Vec::new();
    for vm in &host.vms {
        for (i, spec) in vm.vcpus.iter().enumerate() {
            out.push(((vm.name.clone(), i), *spec));
        }
    }
    out
}

/// Plans `host` incrementally against a previous plan of `prev_host`.
///
/// Returns the new plan plus a report of what was reused. Correctness is
/// identical to a full [`plan`] — only the work differs; the fallback path
/// *is* `plan`.
///
/// # Errors
///
/// Exactly the same admission errors as [`plan`].
pub fn plan_incremental(
    prev_host: &HostConfig,
    prev: &Plan,
    host: &HostConfig,
    opts: &PlannerOptions,
) -> Result<(Plan, IncrementalReport), PlanError> {
    let full = |report_full: &mut IncrementalReport| -> Result<Plan, PlanError> {
        report_full.full_replan = true;
        report_full.reused_cores.clear();
        report_full.replanned_cores = (0..host.n_cores).collect();
        plan(host, opts)
    };
    let mut report = IncrementalReport::default();

    if prev_host.n_cores != host.n_cores {
        let p = full(&mut report)?;
        return Ok((p, report));
    }

    let prev_keys = keys_of(prev_host);
    let new_keys = keys_of(host);
    let prev_by_key: HashMap<&Key, usize> = prev_keys
        .iter()
        .enumerate()
        .map(|(i, (k, _))| (k, i))
        .collect();
    let new_by_key: HashMap<&Key, usize> = new_keys
        .iter()
        .enumerate()
        .map(|(i, (k, _))| (k, i))
        .collect();

    // Classify vCPUs.
    let mut removed_old_ids: Vec<u32> = Vec::new(); // removed or spec-changed
    let mut unchanged: Vec<(u32, u32)> = Vec::new(); // (old id, new id)
    for (old_id, (key, spec)) in prev_keys.iter().enumerate() {
        match new_by_key.get(key) {
            Some(&new_id) if new_keys[new_id].1 == *spec => {
                unchanged.push((old_id as u32, new_id as u32));
            }
            _ => removed_old_ids.push(old_id as u32),
        }
    }
    let added: Vec<u32> = new_keys
        .iter()
        .enumerate()
        .filter(|(_, (key, spec))| {
            prev_by_key
                .get(key)
                .map(|&oid| prev_keys[oid].1 != *spec)
                .unwrap_or(true)
        })
        .map(|(i, _)| i as u32)
        .collect();

    // Dedicated-core membership changes restructure the whole layout.
    let dedicated_changed = removed_old_ids
        .iter()
        .any(|&oid| prev_keys[oid as usize].1.utilization.is_full_core())
        || added
            .iter()
            .any(|&nid| new_keys[nid as usize].1.utilization.is_full_core());
    if dedicated_changed {
        let p = full(&mut report)?;
        return Ok((p, report));
    }

    // Affected cores: closure over allocations of removed vCPUs and of any
    // unchanged vCPU co-located with them across cores (split vCPUs).
    let n_cores = host.n_cores;
    let mut affected = vec![false; n_cores];
    for &oid in &removed_old_ids {
        if let Some(p) = prev.table.placement(VcpuId(oid)) {
            for &(core, _, _) in &p.allocations {
                affected[core] = true;
            }
        }
    }
    // Closure: unchanged vCPUs with any allocation on an affected core must
    // be replanned wholesale, pulling in their other cores.
    loop {
        let mut grew = false;
        for &(oid, _) in &unchanged {
            if let Some(p) = prev.table.placement(VcpuId(oid)) {
                let touches = p.allocations.iter().any(|&(c, _, _)| affected[c]);
                if touches {
                    for &(c, _, _) in &p.allocations {
                        if !affected[c] {
                            affected[c] = true;
                            grew = true;
                        }
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }

    let hyperperiod = prev.table.len();
    let min_budget = opts.coalesce_threshold * 2;

    // Task parameters for the new configuration: reuse previous parameters
    // for unchanged vCPUs, derive fresh ones for additions.
    let mut params_by_new_id: HashMap<u32, (Nanos, Nanos, bool)> = HashMap::new();
    for &(oid, nid) in &unchanged {
        let p = prev
            .params
            .iter()
            .find(|p| p.vcpu == VcpuId(oid))
            .expect("previous plan covers previous host");
        params_by_new_id.insert(nid, (p.cost, p.period, p.capped));
    }
    for &nid in &added {
        let spec = new_keys[nid as usize].1;
        let period = period_for(&spec, &opts.candidates);
        let cost = spec
            .utilization
            .budget_in(period)
            .max(min_budget)
            .min(period);
        params_by_new_id.insert(nid, (cost, period, spec.capped));
    }

    // Tasks the affected cores must host: additions plus every unchanged
    // vCPU currently homed on an affected core (which, by the closure, has
    // *all* of its allocations there).
    let mut tasks: Vec<PeriodicTask> = Vec::new();
    for &(oid, nid) in &unchanged {
        let on_affected = prev
            .table
            .placement(VcpuId(oid))
            .map(|p| p.allocations.iter().any(|&(c, _, _)| affected[c]))
            .unwrap_or(false);
        if on_affected {
            let (cost, period, _) = params_by_new_id[&nid];
            tasks.push(PeriodicTask::implicit(TaskId(nid), cost, period));
        }
    }
    for &nid in &added {
        let (cost, period, _) = params_by_new_id[&nid];
        tasks.push(PeriodicTask::implicit(TaskId(nid), cost, period));
    }

    // Try to fit the work on the affected cores, widening with the
    // least-loaded unaffected cores as needed.
    let mut stage = Stage::Partitioned;
    let generated = loop {
        let affected_list: Vec<usize> = (0..n_cores).filter(|&c| affected[c]).collect();
        if !affected_list.is_empty() || tasks.is_empty() {
            // NUMA preferences, remapped from physical cores to the
            // generator's dense affected-core index space.
            let prefs: Vec<Vec<usize>> = tasks
                .iter()
                .map(|t| {
                    let nid = t.id.0;
                    let key = &new_keys[nid as usize];
                    let vm_node = host
                        .vms
                        .iter()
                        .find(|vm| vm.name == key.0 .0)
                        .and_then(|vm| vm.numa_node);
                    vm_node
                        .map(|node| {
                            let node_cores = host.cores_of_node(node);
                            affected_list
                                .iter()
                                .enumerate()
                                .filter(|(_, &phys)| node_cores.contains(&phys))
                                .map(|(local, _)| local)
                                .collect()
                        })
                        .unwrap_or_default()
                })
                .collect();
            if let Ok(g) = generate_schedule_with_preferences(
                &tasks,
                affected_list.len(),
                hyperperiod,
                &opts.gen,
                &prefs,
            ) {
                stage = g.stage;
                break Some((g, affected_list));
            }
        }
        // Widen: add the unaffected core with the most idle time — among
        // the pending tasks' preferred NUMA cores first, so pinned VMs are
        // offered their own node before anything else. Falls back to a
        // full replan when no core is left.
        let preferred_physical: Vec<usize> = tasks
            .iter()
            .flat_map(|t| {
                let key = &new_keys[t.id.0 as usize];
                host.vms
                    .iter()
                    .find(|vm| vm.name == key.0 .0)
                    .and_then(|vm| vm.numa_node)
                    .map(|node| host.cores_of_node(node))
                    .unwrap_or_default()
            })
            .collect();
        let next = (0..n_cores)
            .filter(|&c| !affected[c] && preferred_physical.contains(&c))
            .min_by_key(|&c| prev.table.cpu(c).busy_time())
            .or_else(|| {
                (0..n_cores)
                    .filter(|&c| !affected[c])
                    .min_by_key(|&c| prev.table.cpu(c).busy_time())
            });
        match next {
            Some(c) => {
                affected[c] = true;
                // The widened core's unchanged vCPUs join the task set (and
                // the closure over splits is re-established).
                for &(oid, nid) in &unchanged {
                    let homed = prev
                        .table
                        .placement(VcpuId(oid))
                        .map(|p| p.allocations.iter().any(|&(cc, _, _)| cc == c))
                        .unwrap_or(false);
                    if homed && !tasks.iter().any(|t| t.id == TaskId(nid)) {
                        let (cost, period, _) = params_by_new_id[&nid];
                        tasks.push(PeriodicTask::implicit(TaskId(nid), cost, period));
                        if let Some(p) = prev.table.placement(VcpuId(oid)) {
                            for &(cc, _, _) in &p.allocations {
                                affected[cc] = true;
                            }
                        }
                    }
                }
            }
            None => break None,
        }
    };

    let Some((generated, affected_list)) = generated else {
        let p = full(&mut report)?;
        return Ok((p, report));
    };

    // Splice: reused cores keep their allocations with remapped ids;
    // affected cores take the fresh (coalesced) schedules.
    let old_to_new: HashMap<u32, u32> = unchanged.iter().copied().collect();
    let mut per_core: Vec<Vec<Allocation>> = Vec::with_capacity(n_cores);
    let mut coalesce_report = CoalesceReport::default();
    let mut fresh_iter = 0usize;
    for (core, &core_affected) in affected.iter().enumerate().take(n_cores) {
        if core_affected {
            let mut allocs: Vec<Allocation> = generated.schedule.cores[fresh_iter]
                .segments()
                .iter()
                .map(|s| Allocation {
                    start: s.start,
                    end: s.end,
                    vcpu: VcpuId(s.task.0),
                })
                .collect();
            fresh_iter += 1;
            let split = &generated.split_tasks;
            coalesce_report.absorb(coalesce_with(&mut allocs, opts.coalesce_threshold, |v| {
                !split.contains(&TaskId(v.0))
            }));
            per_core.push(allocs);
        } else {
            let allocs: Vec<Allocation> = prev
                .table
                .cpu(core)
                .allocations()
                .iter()
                .map(|a| Allocation {
                    start: a.start,
                    end: a.end,
                    vcpu: VcpuId(old_to_new[&a.vcpu.0]),
                })
                .collect();
            per_core.push(allocs);
        }
    }
    debug_assert_eq!(fresh_iter, affected_list.len());

    let table = Table::new(hyperperiod, per_core).map_err(PlanError::Table)?;

    // Assemble the plan metadata for the new id space.
    let mut params: Vec<VcpuParams> = Vec::new();
    for (nid, (_key, spec)) in new_keys.iter().enumerate() {
        let (cost, period, capped) = params_by_new_id[&(nid as u32)];
        params.push(VcpuParams {
            vcpu: VcpuId(nid as u32),
            cost,
            period,
            dedicated: spec.utilization.is_full_core(),
            capped,
        });
    }
    let mut worst_blackout = Vec::with_capacity(new_keys.len());
    for nid in 0..new_keys.len() as u32 {
        let vcpu = VcpuId(nid);
        let blackout = match table.placement(vcpu) {
            None => hyperperiod,
            Some(p) => {
                let mut sched = rtsched::MultiCoreSchedule::idle(hyperperiod, 1);
                let mut ivs: Vec<(Nanos, Nanos)> =
                    p.allocations.iter().map(|&(_, s, e)| (s, e)).collect();
                ivs.sort_unstable();
                for (s, e) in ivs {
                    sched.cores[0].push(rtsched::Segment::new(s, e, TaskId(nid)));
                }
                task_max_blackout(TaskId(nid), &sched)
            }
        };
        worst_blackout.push((vcpu, blackout));
    }
    let mut split_vcpus: Vec<VcpuId> = Vec::new();
    for nid in 0..new_keys.len() as u32 {
        if let Some(p) = table.placement(VcpuId(nid)) {
            let mut cores: Vec<usize> = p.allocations.iter().map(|&(c, _, _)| c).collect();
            cores.sort_unstable();
            cores.dedup();
            if cores.len() > 1 {
                split_vcpus.push(VcpuId(nid));
            }
        }
    }

    report.reused_cores = (0..n_cores).filter(|&c| !affected[c]).collect();
    report.replanned_cores = affected_list;
    Ok((
        Plan {
            table,
            stage,
            params,
            split_vcpus,
            coalesce: coalesce_report,
            worst_blackout,
            // An incrementally patched plan carries no stage-1 bin record —
            // the next replan of this host starts at the incremental rung.
            core_bins: Vec::new(),
            coalesce_by_core: Vec::new(),
        },
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcpu::{Utilization, VcpuSpec, VmSpec};

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn spec() -> VcpuSpec {
        VcpuSpec::capped(Utilization::from_percent(25), ms(20))
    }

    fn host_named(cores: usize, names: &[&str]) -> HostConfig {
        let mut h = HostConfig::new(cores);
        for n in names {
            h.add_vm(VmSpec::uniform(*n, 1, spec()));
        }
        h
    }

    #[test]
    fn adding_a_vm_reuses_untouched_cores() {
        let opts = PlannerOptions::default();
        // 4 cores, 12 VMs (3 per core): every core has 25% slack.
        let names: Vec<String> = (0..12).map(|i| format!("vm{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let prev_host = host_named(4, &refs);
        let prev = plan(&prev_host, &opts).unwrap();

        let mut new_names = refs.clone();
        new_names.push("newcomer");
        let host = host_named(4, &new_names);
        let (p, report) = plan_incremental(&prev_host, &prev, &host, &opts).unwrap();

        assert!(!report.full_replan);
        assert!(
            report.reused_cores.len() >= 2,
            "too few cores reused: {report:?}"
        );
        // All 13 vCPUs placed with their guarantees.
        for (vcpu, s) in host.vcpus() {
            assert!(p.blackout_of(vcpu).unwrap() <= s.latency);
        }
    }

    #[test]
    fn removing_a_vm_touches_only_its_core() {
        let opts = PlannerOptions::default();
        let names: Vec<String> = (0..16).map(|i| format!("vm{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let prev_host = host_named(4, &refs);
        let prev = plan(&prev_host, &opts).unwrap();

        // Remove one VM.
        let survivors: Vec<&str> = refs.iter().copied().filter(|&n| n != "vm5").collect();
        let host = host_named(4, &survivors);
        let (p, report) = plan_incremental(&prev_host, &prev, &host, &opts).unwrap();

        assert!(!report.full_replan);
        assert_eq!(report.replanned_cores.len(), 1, "{report:?}");
        assert_eq!(p.table.n_cores(), 4);
        for (vcpu, s) in host.vcpus() {
            assert!(p.blackout_of(vcpu).unwrap() <= s.latency);
        }
    }

    #[test]
    fn unchanged_vcpu_ids_are_remapped_correctly() {
        let opts = PlannerOptions::default();
        let prev_host = host_named(2, &["a", "b", "c", "d"]);
        let prev = plan(&prev_host, &opts).unwrap();
        // Removing "a" shifts every id down by one.
        let host = host_named(2, &["b", "c", "d"]);
        let (p, _report) = plan_incremental(&prev_host, &prev, &host, &opts).unwrap();
        // Each surviving vCPU (now ids 0..3) has allocations.
        for (vcpu, _) in host.vcpus() {
            assert!(
                p.table.placement(vcpu).is_some(),
                "{vcpu} lost its allocations in the remap"
            );
        }
        // And no allocation refers to a stale id.
        for core in 0..2 {
            for a in p.table.cpu(core).allocations() {
                assert!(a.vcpu.0 < 3, "stale id {}", a.vcpu);
            }
        }
    }

    #[test]
    fn spec_change_is_remove_plus_add() {
        let opts = PlannerOptions::default();
        let prev_host = host_named(2, &["a", "b", "c", "d"]);
        let prev = plan(&prev_host, &opts).unwrap();
        // Tighten "b"'s latency goal.
        let mut host = HostConfig::new(2);
        for n in ["a", "b", "c", "d"] {
            let s = if n == "b" {
                VcpuSpec::capped(Utilization::from_percent(25), ms(2))
            } else {
                spec()
            };
            host.add_vm(VmSpec::uniform(n, 1, s));
        }
        let (p, report) = plan_incremental(&prev_host, &prev, &host, &opts).unwrap();
        assert!(!report.full_replan);
        let b = VcpuId(1);
        assert!(
            p.blackout_of(b).unwrap() <= ms(2),
            "{}",
            p.blackout_of(b).unwrap()
        );
        // b's period shrank to honour the 2 ms goal.
        assert!(p.params_of(b).unwrap().period < ms(2));
    }

    #[test]
    fn core_count_change_falls_back_to_full_replan() {
        let opts = PlannerOptions::default();
        let prev_host = host_named(2, &["a", "b"]);
        let prev = plan(&prev_host, &opts).unwrap();
        let host = host_named(3, &["a", "b"]);
        let (_p, report) = plan_incremental(&prev_host, &prev, &host, &opts).unwrap();
        assert!(report.full_replan);
    }

    #[test]
    fn over_admission_is_still_rejected() {
        let opts = PlannerOptions::default();
        let names: Vec<String> = (0..8).map(|i| format!("vm{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let prev_host = host_named(2, &refs);
        let prev = plan(&prev_host, &opts).unwrap();
        // A 9th 25% VM on a full 2-core host must fail, as in plan().
        let mut more = refs.clone();
        more.push("overflow");
        let host = host_named(2, &more);
        assert!(plan_incremental(&prev_host, &prev, &host, &opts).is_err());
    }

    #[test]
    fn numa_pinning_survives_incremental_replans() {
        // Node-1-pinned VMs stay on node 1 when a sibling is added.
        let opts = PlannerOptions::default();
        let build = |names: &[&str]| {
            let mut h = HostConfig::with_numa(4, 2);
            for n in names {
                h.add_vm(VmSpec::uniform(*n, 1, spec()).on_node(1));
            }
            h
        };
        let prev_host = build(&["a", "b"]);
        let prev = plan(&prev_host, &opts).unwrap();
        let host = build(&["a", "b", "c"]);
        let (p, _report) = plan_incremental(&prev_host, &prev, &host, &opts).unwrap();
        let node1 = host.cores_of_node(1);
        for v in 0..3u32 {
            let placement = p.table.placement(VcpuId(v)).unwrap();
            for &(core, _, _) in &placement.allocations {
                assert!(node1.contains(&core), "v{v} off-node on core {core}");
            }
        }
    }

    #[test]
    fn incremental_equals_full_in_guarantees() {
        // Whatever the reuse pattern, the guarantees of the incremental
        // plan match a from-scratch plan's.
        let opts = PlannerOptions::default();
        let names: Vec<String> = (0..10).map(|i| format!("vm{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let prev_host = host_named(3, &refs);
        let prev = plan(&prev_host, &opts).unwrap();
        let mut new_names: Vec<&str> = refs.iter().copied().filter(|&n| n != "vm3").collect();
        new_names.push("fresh1");
        new_names.push("fresh2");
        let host = host_named(3, &new_names);

        let (inc, _) = plan_incremental(&prev_host, &prev, &host, &opts).unwrap();
        let scratch = plan(&host, &opts).unwrap();
        for (vcpu, _) in host.vcpus() {
            let a = inc.blackout_of(vcpu).unwrap();
            let b = scratch.blackout_of(vcpu).unwrap();
            assert!(a <= ms(20) && b <= ms(20), "{vcpu}: {a} vs {b}");
        }
    }
}
