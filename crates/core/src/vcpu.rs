//! vCPU and VM performance specifications.
//!
//! Under Tableau every vCPU is configured with two SLA parameters (Sec. 5):
//!
//! * a **reserved utilization** `U` — the guaranteed minimum share of one
//!   physical core; and
//! * a **maximum scheduling latency** `L` — an upper bound on how long the
//!   vCPU may go without processor service while runnable.
//!
//! Both may come from an explicit SLA, from price-differentiated service
//! tiers, or from a simple fair-share default (`U = m / n`). Utilization is
//! stored in parts-per-million so planner arithmetic stays exact.

use serde::{Deserialize, Serialize};

use rtsched::time::Nanos;

/// Identifies a vCPU within a host configuration.
///
/// Ids are dense indices assigned at VM admission; the planner uses them as
/// `rtsched` task ids, and the dispatch tables refer to vCPUs by this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VcpuId(pub u32);

impl std::fmt::Display for VcpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A reserved CPU share, in parts per million of one core.
///
/// # Examples
///
/// ```
/// use tableau_core::vcpu::Utilization;
///
/// let quarter = Utilization::from_percent(25);
/// assert_eq!(quarter.ppm(), 250_000);
/// assert!(!quarter.is_full_core());
/// assert!(Utilization::FULL.is_full_core());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Utilization(u32);

impl Utilization {
    /// A full dedicated core (`U = 1`).
    pub const FULL: Utilization = Utilization(1_000_000);

    /// Creates a utilization from parts per million, clamped to `[1, 1e6]`.
    pub fn from_ppm(ppm: u32) -> Utilization {
        Utilization(ppm.clamp(1, 1_000_000))
    }

    /// Creates a utilization from whole percent, clamped to `[1, 100]`.
    pub fn from_percent(pct: u32) -> Utilization {
        Utilization::from_ppm(pct.saturating_mul(10_000))
    }

    /// Creates a utilization from a float ratio, clamped to `(0, 1]`.
    pub fn from_ratio(ratio: f64) -> Utilization {
        Utilization::from_ppm((ratio * 1e6).round() as u32)
    }

    /// The fair-share default for `n_vcpus` vCPUs on `n_cores` cores
    /// (`U = m / n`, capped at a full core).
    pub fn fair_share(n_cores: usize, n_vcpus: usize) -> Utilization {
        if n_vcpus == 0 {
            return Utilization::FULL;
        }
        let ppm = (n_cores as u64 * 1_000_000 / n_vcpus as u64).min(1_000_000) as u32;
        Utilization::from_ppm(ppm)
    }

    /// Returns the share in parts per million.
    pub fn ppm(self) -> u32 {
        self.0
    }

    /// Returns the share as a float in `(0, 1]`.
    pub fn as_ratio(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` for a dedicated full core.
    pub fn is_full_core(self) -> bool {
        self.0 == 1_000_000
    }

    /// The guaranteed execution budget within a period of length `t`.
    ///
    /// Rounded *down* to whole nanoseconds (but at least 1 ns): rounding up
    /// would make exactly-full configurations — e.g. the paper's four 25%
    /// VMs per core — inadmissible by a few nanoseconds. The resulting
    /// deficit is below one nanosecond per period (under 100 ns/s), far
    /// beneath enforcement granularity.
    pub fn budget_in(self, t: Nanos) -> Nanos {
        let num = t.as_nanos() as u128 * self.0 as u128;
        Nanos(((num / 1_000_000) as u64).max(1))
    }
}

/// The SLA of a single vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcpuSpec {
    /// Reserved minimum share of one core.
    pub utilization: Utilization,
    /// Maximum tolerable scheduling latency.
    pub latency: Nanos,
    /// `true` if the vCPU is *capped*: it may never exceed its reservation,
    /// and does not take part in second-level (work-conserving) scheduling.
    pub capped: bool,
}

impl VcpuSpec {
    /// Creates an uncapped vCPU spec.
    pub fn new(utilization: Utilization, latency: Nanos) -> VcpuSpec {
        VcpuSpec {
            utilization,
            latency,
            capped: false,
        }
    }

    /// Creates a capped vCPU spec.
    pub fn capped(utilization: Utilization, latency: Nanos) -> VcpuSpec {
        VcpuSpec {
            utilization,
            latency,
            capped: true,
        }
    }
}

/// A VM: a named bundle of vCPUs sharing one configuration.
///
/// The paper evaluates single-vCPU VMs (four per core); multi-vCPU VMs are
/// supported by giving each vCPU its own task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmSpec {
    /// Human-readable VM name (used in reports and traces).
    pub name: String,
    /// Per-vCPU SLAs.
    pub vcpus: Vec<VcpuSpec>,
    /// NUMA node whose memory this VM's pages live on, if pinned. The
    /// planner treats it as a *soft* placement preference for the node's
    /// cores (Sec. 5: partitioning "can easily incorporate" memory
    /// locality).
    #[serde(default)]
    pub numa_node: Option<usize>,
}

impl VmSpec {
    /// Creates a VM with `n` identical vCPUs and no NUMA pinning.
    pub fn uniform(name: impl Into<String>, n: usize, spec: VcpuSpec) -> VmSpec {
        VmSpec {
            name: name.into(),
            vcpus: vec![spec; n],
            numa_node: None,
        }
    }

    /// Pins the VM's memory to a NUMA node (builder style).
    pub fn on_node(mut self, node: usize) -> VmSpec {
        self.numa_node = Some(node);
        self
    }
}

/// A complete host configuration handed to the planner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Number of physical cores available for guest vCPUs.
    pub n_cores: usize,
    /// Admitted VMs.
    pub vms: Vec<VmSpec>,
    /// Number of NUMA nodes; cores are striped contiguously across nodes
    /// (node of core `c` is `c / (n_cores / numa_nodes)`).
    #[serde(default = "default_numa_nodes")]
    pub numa_nodes: usize,
}

fn default_numa_nodes() -> usize {
    1
}

impl HostConfig {
    /// Creates an empty host with `n_cores` cores on one NUMA node.
    pub fn new(n_cores: usize) -> HostConfig {
        HostConfig {
            n_cores,
            vms: Vec::new(),
            numa_nodes: 1,
        }
    }

    /// Creates an empty host with `n_cores` striped across `numa_nodes`.
    pub fn with_numa(n_cores: usize, numa_nodes: usize) -> HostConfig {
        HostConfig {
            n_cores,
            vms: Vec::new(),
            numa_nodes: numa_nodes.max(1),
        }
    }

    /// The cores belonging to `node`.
    pub fn cores_of_node(&self, node: usize) -> Vec<usize> {
        let per = (self.n_cores / self.numa_nodes.max(1)).max(1);
        (0..self.n_cores).filter(|c| c / per == node).collect()
    }

    /// Adds a VM and returns its index.
    pub fn add_vm(&mut self, vm: VmSpec) -> usize {
        self.vms.push(vm);
        self.vms.len() - 1
    }

    /// Flattens the configuration into `(VcpuId, VcpuSpec)` pairs in VM
    /// order; this is the id assignment used by the planner and tables.
    pub fn vcpus(&self) -> Vec<(VcpuId, VcpuSpec)> {
        let mut out = Vec::new();
        let mut id = 0u32;
        for vm in &self.vms {
            for spec in &vm.vcpus {
                out.push((VcpuId(id), *spec));
                id += 1;
            }
        }
        out
    }

    /// Total reserved utilization across all vCPUs (in cores).
    pub fn total_utilization(&self) -> f64 {
        self.vms
            .iter()
            .flat_map(|vm| vm.vcpus.iter())
            .map(|v| v.utilization.as_ratio())
            .sum()
    }

    /// The VM index owning a given vCPU id, if it exists.
    pub fn vm_of(&self, vcpu: VcpuId) -> Option<usize> {
        let mut id = 0u32;
        for (vm_idx, vm) in self.vms.iter().enumerate() {
            id += vm.vcpus.len() as u32;
            if vcpu.0 < id {
                return Some(vm_idx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_constructors() {
        assert_eq!(Utilization::from_percent(25).ppm(), 250_000);
        assert_eq!(Utilization::from_ratio(0.5).ppm(), 500_000);
        assert_eq!(Utilization::from_percent(200), Utilization::FULL);
        assert_eq!(Utilization::from_ppm(0).ppm(), 1); // clamped up
    }

    #[test]
    fn fair_share_matches_paper_default() {
        // U = m / n: 16 cores, 64 vCPUs => 25%.
        assert_eq!(Utilization::fair_share(16, 64).ppm(), 250_000);
        // More cores than vCPUs caps at a full core.
        assert_eq!(Utilization::fair_share(8, 4), Utilization::FULL);
        assert_eq!(Utilization::fair_share(8, 0), Utilization::FULL);
    }

    #[test]
    fn budget_rounds_down_but_never_to_zero() {
        let u = Utilization::from_ppm(333_333);
        let b = u.budget_in(Nanos::from_millis(10));
        assert_eq!(b, Nanos(3_333_330));
        // Floor rounding: 25% of a non-multiple-of-4 period.
        let quarter = Utilization::from_percent(25);
        assert_eq!(quarter.budget_in(Nanos(12_837_825)), Nanos(3_209_456));
        // A sliver reservation still gets at least 1 ns.
        assert_eq!(Utilization::from_ppm(1).budget_in(Nanos(1)), Nanos(1));
    }

    #[test]
    fn host_config_id_assignment() {
        let mut host = HostConfig::new(4);
        let spec = VcpuSpec::new(Utilization::from_percent(25), Nanos::from_millis(20));
        host.add_vm(VmSpec::uniform("a", 2, spec));
        host.add_vm(VmSpec::uniform("b", 1, spec));
        let vcpus = host.vcpus();
        assert_eq!(vcpus.len(), 3);
        assert_eq!(vcpus[2].0, VcpuId(2));
        assert_eq!(host.vm_of(VcpuId(0)), Some(0));
        assert_eq!(host.vm_of(VcpuId(1)), Some(0));
        assert_eq!(host.vm_of(VcpuId(2)), Some(1));
        assert_eq!(host.vm_of(VcpuId(3)), None);
        assert!((host.total_utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn capped_flag_round_trip() {
        let u = Utilization::from_percent(25);
        let l = Nanos::from_millis(20);
        assert!(!VcpuSpec::new(u, l).capped);
        assert!(VcpuSpec::capped(u, l).capped);
    }
}
