//! Lock-free, time-synchronized table switches (Sec. 6).
//!
//! The dispatcher's hot path must not take locks, yet all cores must agree
//! on which table is current — a core picking up a new table while another
//! still runs the old one would produce an inconsistent schedule (e.g., a
//! migrating vCPU double-scheduled). Tableau solves this without barriers by
//! exploiting time: each core re-reads its `next_table` pointer only when
//! its table wraps around, and the planner *times* the setting of the
//! pointers to the middle of a table round — safely away from any wrap. All
//! cores therefore observe the pointer by the next wrap and switch at the
//! same table boundary. Two rounds after the upload, every core has
//! switched, and the old table is garbage-collected.
//!
//! This module models that protocol exactly (arm time = middle of the next
//! round; adoption at the following wrap; GC two rounds after upload); the
//! simulator drives it per-core and the unit tests cover the race the
//! protocol is designed to avoid.

use std::sync::Arc;

use rtsched::time::Nanos;

use crate::table::Table;

/// Why a table install was rejected before commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallError {
    /// The new table's hyperperiod differs from the installed one's.
    LengthMismatch {
        /// Length of the tables already installed.
        expected: Nanos,
        /// Length of the rejected table.
        got: Nanos,
    },
    /// The new table's core count differs from the installed one's.
    CoreCountMismatch {
        /// Core count of the tables already installed.
        expected: usize,
        /// Core count of the rejected table.
        got: usize,
    },
    /// Another install is already staged and neither committed nor aborted.
    AlreadyStaged,
    /// Commit was requested but nothing is staged (commit without begin, or
    /// a double commit after the stage was already consumed).
    NothingStaged,
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "table length changed across install ({expected} -> {got})"
                )
            }
            InstallError::CoreCountMismatch { expected, got } => {
                write!(f, "core count changed across install ({expected} -> {got})")
            }
            InstallError::AlreadyStaged => write!(f, "an install is already staged"),
            InstallError::NothingStaged => write!(f, "no install is staged to commit"),
        }
    }
}

impl std::error::Error for InstallError {}

/// Handle to a staged (validated but uncommitted) table install.
///
/// Produced by [`TableManager::begin_install`]; consumed by
/// [`TableManager::commit_install`] or [`TableManager::abort_install`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedInstall {
    /// Absolute time the `next_table` pointers would be set.
    pub arm: Nanos,
    /// Absolute time all cores would have switched.
    pub switch_at: Nanos,
}

/// Per-core view of the table switch protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CoreView {
    /// Index (into [`TableManager::epochs`]) of the table this core runs.
    epoch: usize,
    /// Table-round boundary up to which this core has confirmed its view.
    confirmed_at: Nanos,
}

/// Manages the current and pending scheduling tables for all cores.
///
/// All tables share the same length (one hyperperiod) by construction; the
/// manager asserts this on install.
#[derive(Debug, Clone)]
pub struct TableManager {
    /// All tables ever installed and not yet collected, oldest first.
    epochs: Vec<Arc<Table>>,
    /// Absolute times at which each epoch becomes adoptable (cores adopt at
    /// their first wrap at/after this time). `activation[0]` is zero.
    activations: Vec<Nanos>,
    /// Per-core adoption state.
    cores: Vec<CoreView>,
    /// A validated install awaiting commit (two-phase protocol). Invisible
    /// to [`TableManager::table_for`] until committed.
    staged: Option<(Arc<Table>, Nanos)>,
    len: Nanos,
}

impl TableManager {
    /// Creates a manager with an initial table active from time zero.
    pub fn new(initial: impl Into<Arc<Table>>) -> TableManager {
        let initial = initial.into();
        let len = initial.len();
        let n_cores = initial.n_cores();
        TableManager {
            epochs: vec![initial],
            activations: vec![Nanos::ZERO],
            cores: vec![
                CoreView {
                    epoch: 0,
                    confirmed_at: Nanos::ZERO,
                };
                n_cores
            ],
            staged: None,
            len,
        }
    }

    /// The table length (identical for all epochs).
    pub fn table_len(&self) -> Nanos {
        self.len
    }

    /// Installs a new table pushed by the planner at time `now`.
    ///
    /// Per the protocol, the `next_table` pointers are timed to be set in
    /// the middle of the *next* round of the current table; every core then
    /// adopts at its first wrap after that point — i.e., at the end of the
    /// next round. Returns the absolute time at which all cores will have
    /// switched.
    ///
    /// # Errors
    ///
    /// The same typed errors as [`TableManager::begin_install`]: a length
    /// or core-count mismatch, or an install arriving while another is
    /// staged. Control planes that push tables from recovery paths (a
    /// guardian, a fleet placement loop) must get an error value back, not
    /// a panic — a malformed push degrades to a rejected install and the
    /// old table keeps running.
    pub fn install(
        &mut self,
        table: impl Into<Arc<Table>>,
        now: Nanos,
    ) -> Result<Nanos, InstallError> {
        let staged = self.begin_install(table, now)?;
        self.commit_install(staged)
    }

    /// Phase one of a two-phase install: validates the table and stages it
    /// without making it visible to any core. An interrupted planner push
    /// (crash, fault injection) between begin and commit is undone with
    /// [`TableManager::abort_install`], leaving the manager exactly as it
    /// was — no core can ever adopt a half-pushed table.
    ///
    /// Accepts anything convertible into an `Arc<Table>`; passing an
    /// already-shared `Arc` makes staging allocation-free — the planner's
    /// built slice index is shared, never rebuilt or deep-copied.
    pub fn begin_install(
        &mut self,
        table: impl Into<Arc<Table>>,
        now: Nanos,
    ) -> Result<StagedInstall, InstallError> {
        let table = table.into();
        if table.len() != self.len {
            return Err(InstallError::LengthMismatch {
                expected: self.len,
                got: table.len(),
            });
        }
        if table.n_cores() != self.cores.len() {
            return Err(InstallError::CoreCountMismatch {
                expected: self.cores.len(),
                got: table.n_cores(),
            });
        }
        if self.staged.is_some() {
            return Err(InstallError::AlreadyStaged);
        }
        let round = now / self.len;
        // Pointer set mid-way through round `round + 1`; cores notice at
        // their wrap ending that round.
        let arm = self.len * (round + 1) + self.len / 2;
        let switch_at = self.len * (round + 2);
        debug_assert!(arm < switch_at && arm > now);
        self.staged = Some((table, arm));
        Ok(StagedInstall { arm, switch_at })
    }

    /// Phase two: atomically publishes the staged table. Cores adopt at
    /// their first wrap at/after the arm time, exactly as with
    /// [`TableManager::install`]. Returns the switch-complete time.
    ///
    /// # Errors
    ///
    /// [`InstallError::NothingStaged`] when no install is staged (commit
    /// without begin, double commit, or commit after an abort). The manager
    /// is untouched — consistent with the graceful-degradation contract, a
    /// mis-sequenced planner push never takes down the dispatcher.
    pub fn commit_install(&mut self, staged: StagedInstall) -> Result<Nanos, InstallError> {
        let (table, arm) = self.staged.take().ok_or(InstallError::NothingStaged)?;
        debug_assert_eq!(arm, staged.arm);
        self.epochs.push(table);
        self.activations.push(arm);
        Ok(staged.switch_at)
    }

    /// Rolls back a staged install. The manager is left bit-identical to
    /// its pre-[`TableManager::begin_install`] state; a no-op if nothing is
    /// staged.
    pub fn abort_install(&mut self) {
        self.staged = None;
    }

    /// Whether an install is currently staged (diagnostics/tests).
    pub fn has_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// Whether the switch protocol is fully quiescent: nothing staged and
    /// every core's view already on the newest epoch. In this state no
    /// core's future confirmations can change which table it runs, so the
    /// manager can be cloned per partition and advanced independently
    /// (the PDES engine's precondition).
    pub fn is_settled(&self) -> bool {
        self.staged.is_none() && self.cores.iter().all(|c| c.epoch + 1 == self.epochs.len())
    }

    /// Adopts `core`'s view (epoch + confirmation boundary) from another
    /// manager — merging a PDES partition's per-core progress back into
    /// the master after a partitioned run.
    pub(crate) fn adopt_core_view(&mut self, core: usize, other: &TableManager) {
        self.cores[core] = other.cores[core];
    }

    /// The table `core` must use for a scheduling decision at `now`.
    ///
    /// A convenience wrapper over [`TableManager::confirm`] +
    /// [`TableManager::epoch_table`] that hands out a shared handle.
    pub fn table_for(&mut self, core: usize, now: Nanos) -> Arc<Table> {
        let epoch = self.confirm(core, now);
        self.epochs[epoch].clone()
    }

    /// Advances `core`'s table view to `now` and returns the epoch index of
    /// the table it runs (pass to [`TableManager::epoch_table`]).
    ///
    /// Models the per-core wrap check: the core's view advances only at
    /// table-round boundaries, adopting the newest epoch whose pointer was
    /// armed before the boundary. The steady state (no boundary crossed
    /// since the last confirmation) is a pair of compares — no division, no
    /// reference-count traffic.
    pub fn confirm(&mut self, core: usize, now: Nanos) -> usize {
        let view = &mut self.cores[core];
        // `confirmed_at` is always a round boundary: while `now` stays
        // within [confirmed_at, confirmed_at + len) no new wrap happened.
        if now >= view.confirmed_at && now - view.confirmed_at < self.len {
            return view.epoch;
        }
        let boundary = self.len * (now / self.len);
        if boundary > view.confirmed_at {
            // The core crossed at least one wrap since it last looked: it
            // re-read next_table at each wrap; the epoch it now runs is the
            // newest one armed strictly before the *latest* boundary.
            let newest = self
                .activations
                .iter()
                .rposition(|&a| a < boundary)
                .unwrap_or(view.epoch);
            view.epoch = view.epoch.max(newest);
            view.confirmed_at = boundary;
        }
        view.epoch
    }

    /// The epoch `core` would confirm at `now`, without advancing its
    /// view — the read-only twin of [`TableManager::confirm`].
    ///
    /// Dense-phase batching probes this (per core, before building a
    /// window) so a declined batch leaves the manager byte-identical to
    /// an untouched one; the matching mutation happens in the commit.
    pub fn peek_epoch(&self, core: usize, now: Nanos) -> usize {
        let view = &self.cores[core];
        if now >= view.confirmed_at && now - view.confirmed_at < self.len {
            return view.epoch;
        }
        let boundary = self.len * (now / self.len);
        if boundary > view.confirmed_at {
            let newest = self
                .activations
                .iter()
                .rposition(|&a| a < boundary)
                .unwrap_or(view.epoch);
            return view.epoch.max(newest);
        }
        view.epoch
    }

    /// Number of committed epochs; `n_epochs() - 1` is the newest index.
    pub fn n_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// The table at epoch index `epoch` (as returned by
    /// [`TableManager::confirm`]), borrowed — the dispatcher's hot path
    /// never touches the reference count.
    pub fn epoch_table(&self, epoch: usize) -> &Table {
        &self.epochs[epoch]
    }

    /// Garbage-collects epochs that no core will ever use again; returns
    /// how many were freed. Old epochs are replaced by the oldest still
    /// reachable one (indices stay stable).
    pub fn collect_garbage(&mut self) -> usize {
        let min_epoch = self.cores.iter().map(|c| c.epoch).min().unwrap_or(0);
        let mut freed = 0;
        for i in 0..min_epoch {
            if !Arc::ptr_eq(&self.epochs[i], &self.epochs[min_epoch]) {
                self.epochs[i] = self.epochs[min_epoch].clone();
                freed += 1;
            }
        }
        freed
    }

    /// The most recently committed table — the one every core is on, or
    /// converging to (the continuous audit re-checks this copy).
    pub fn newest_table(&self) -> &Table {
        self.epochs.last().expect("manager always has an epoch")
    }

    /// Fault-injection hook: overwrites the newest committed table in
    /// place, bypassing the two-phase install protocol — the model of a
    /// stray write corrupting the installed table underneath the control
    /// plane. Nothing in the product path calls this; chaos harnesses use
    /// it to prove the continuous audit detects and repairs. The
    /// replacement must keep the epoch's shape (length and core count).
    pub fn corrupt_newest_table(&mut self, table: Table) -> Result<(), String> {
        let cur = self.newest_table();
        if table.len() != cur.len() || table.n_cores() != cur.n_cores() {
            return Err(format!(
                "corruption changed the table shape: {}x{:?} -> {}x{:?}",
                cur.n_cores(),
                cur.len(),
                table.n_cores(),
                table.len()
            ));
        }
        *self.epochs.last_mut().expect("manager always has an epoch") = Arc::new(table);
        Ok(())
    }

    /// The epoch index `core` currently runs (diagnostics/tests).
    pub fn core_epoch(&self, core: usize) -> usize {
        self.cores[core].epoch
    }

    /// Number of distinct live tables (diagnostics/tests).
    pub fn live_tables(&self) -> usize {
        let mut seen: Vec<*const Table> = self.epochs.iter().map(Arc::as_ptr).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Allocation;
    use crate::vcpu::VcpuId;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn table(len_ms: u64, vcpu: u32) -> Table {
        Table::new(
            ms(len_ms),
            vec![
                vec![Allocation {
                    start: Nanos::ZERO,
                    end: ms(1),
                    vcpu: VcpuId(vcpu),
                }],
                vec![],
            ],
        )
        .unwrap()
    }

    #[test]
    fn switch_lands_at_end_of_next_round() {
        let mut m = TableManager::new(table(10, 0));
        // Install at t = 3 ms (round 0): arm at 15 ms, switch at 20 ms.
        let at = m.install(table(10, 1), ms(3)).expect("installs");
        assert_eq!(at, ms(20));
    }

    #[test]
    fn cores_use_old_table_until_switch_time() {
        let mut m = TableManager::new(table(10, 0));
        m.install(table(10, 1), ms(3)).expect("installs");
        // Mid-round 1 (pointer armed at 15 ms but adoption only at wrap).
        let t = m.table_for(0, ms(17));
        assert_eq!(t.lookup(0, Nanos::ZERO).vcpu(), Some(VcpuId(0)));
        // After the wrap at 20 ms both cores see the new table.
        let t = m.table_for(0, ms(21));
        assert_eq!(t.lookup(0, Nanos::ZERO).vcpu(), Some(VcpuId(1)));
        let t = m.table_for(1, ms(20));
        assert_eq!(t.lookup(0, Nanos::ZERO).vcpu(), Some(VcpuId(1)));
    }

    #[test]
    fn all_cores_switch_at_the_same_boundary() {
        let mut m = TableManager::new(table(10, 0));
        let at = m.install(table(10, 1), ms(9)).expect("installs"); // just before a wrap
        assert_eq!(at, ms(20)); // arm at 15 ms, adopt at wrap 20 ms
                                // At 19.9 ms neither core has switched (pointer armed mid-round 1).
        assert_eq!(
            m.table_for(0, Nanos(19_900_000))
                .lookup(0, Nanos::ZERO)
                .vcpu(),
            Some(VcpuId(0))
        );
        assert_eq!(
            m.table_for(1, ms(20)).lookup(0, Nanos::ZERO).vcpu(),
            Some(VcpuId(1))
        );
    }

    #[test]
    fn install_near_wrap_never_splits_cores() {
        // The race the protocol avoids: an install "during" a wrap must not
        // let one core switch a round earlier than another. Whatever cores
        // query at any time >= switch point sees one consistent table.
        let mut m = TableManager::new(table(10, 0));
        let switch = m.install(table(10, 1), Nanos(9_999_999)).expect("installs");
        for query in [switch, switch + Nanos(1), switch + ms(5)] {
            let a = m.table_for(0, query);
            let b = m.table_for(1, query);
            assert!(Arc::ptr_eq(&a, &b));
        }
    }

    #[test]
    fn garbage_collection_after_all_cores_switch() {
        let mut m = TableManager::new(table(10, 0));
        m.install(table(10, 1), ms(3)).expect("installs");
        assert_eq!(m.live_tables(), 2);
        // Nothing collectible while a core still runs the old epoch.
        assert_eq!(m.collect_garbage(), 0);
        let _ = m.table_for(0, ms(25));
        assert_eq!(m.collect_garbage(), 0); // core 1 still on epoch 0
        let _ = m.table_for(1, ms(25));
        assert_eq!(m.collect_garbage(), 1);
        assert_eq!(m.live_tables(), 1);
    }

    #[test]
    fn back_to_back_installs_resolve_to_newest() {
        let mut m = TableManager::new(table(10, 0));
        m.install(table(10, 1), ms(1)).expect("installs");
        m.install(table(10, 2), ms(2)).expect("installs");
        // Both armed mid-round 1; the wrap at 20 ms adopts the newest.
        let t = m.table_for(0, ms(20));
        assert_eq!(t.lookup(0, Nanos::ZERO).vcpu(), Some(VcpuId(2)));
    }

    #[test]
    fn length_change_rejected_with_typed_error() {
        // Regression: a hyperperiod drift used to panic the one-phase
        // install; it must surface as the same typed error the two-phase
        // path reports, with the running table untouched.
        let mut m = TableManager::new(table(10, 0));
        assert_eq!(
            m.install(table(20, 1), ms(1)),
            Err(InstallError::LengthMismatch {
                expected: ms(10),
                got: ms(20),
            })
        );
        assert_eq!(m.live_tables(), 1);
        let t = m.table_for(0, ms(40));
        assert_eq!(t.lookup(0, Nanos::ZERO).vcpu(), Some(VcpuId(0)));
    }

    #[test]
    fn core_count_change_rejected_with_typed_error() {
        let mut m = TableManager::new(table(10, 0));
        let narrow = Table::new(
            ms(10),
            vec![vec![Allocation {
                start: Nanos::ZERO,
                end: ms(1),
                vcpu: VcpuId(1),
            }]],
        )
        .unwrap();
        assert_eq!(
            m.install(narrow, ms(1)),
            Err(InstallError::CoreCountMismatch {
                expected: 2,
                got: 1,
            })
        );
        assert_eq!(m.live_tables(), 1);
    }

    #[test]
    fn staged_install_is_invisible_until_commit() {
        let mut m = TableManager::new(table(10, 0));
        let staged = m.begin_install(table(10, 1), ms(3)).unwrap();
        assert!(m.has_staged());
        // Way past the would-be switch time, cores still run the old table.
        let t = m.table_for(0, ms(40));
        assert_eq!(t.lookup(0, Nanos::ZERO).vcpu(), Some(VcpuId(0)));
        assert_eq!(m.live_tables(), 1);
        // Commit publishes with the originally computed timing.
        assert_eq!(m.commit_install(staged), Ok(ms(20)));
        let t = m.table_for(1, ms(20));
        assert_eq!(t.lookup(0, Nanos::ZERO).vcpu(), Some(VcpuId(1)));
    }

    #[test]
    fn aborted_install_leaves_no_trace() {
        let mut m = TableManager::new(table(10, 0));
        let before = (m.live_tables(), m.core_epoch(0), m.core_epoch(1));
        let _staged = m.begin_install(table(10, 1), ms(3)).unwrap();
        m.abort_install();
        assert!(!m.has_staged());
        assert_eq!((m.live_tables(), m.core_epoch(0), m.core_epoch(1)), before);
        let t = m.table_for(0, ms(50));
        assert_eq!(t.lookup(0, Nanos::ZERO).vcpu(), Some(VcpuId(0)));
        // The manager accepts a fresh install afterwards.
        let at = m.install(table(10, 2), ms(50)).expect("installs");
        assert_eq!(at, ms(70));
    }

    #[test]
    fn begin_install_validates_shape() {
        let mut m = TableManager::new(table(10, 0));
        assert_eq!(
            m.begin_install(table(20, 1), ms(1)).unwrap_err(),
            InstallError::LengthMismatch {
                expected: ms(10),
                got: ms(20)
            }
        );
        assert!(!m.has_staged());
        let _ = m.begin_install(table(10, 1), ms(1)).unwrap();
        assert_eq!(
            m.begin_install(table(10, 2), ms(1)).unwrap_err(),
            InstallError::AlreadyStaged
        );
    }

    #[test]
    fn one_phase_install_rejects_pending_stage_with_typed_error() {
        // Regression: an install racing a staged two-phase push used to
        // panic; it must report `AlreadyStaged` and leave the stage intact.
        let mut m = TableManager::new(table(10, 0));
        let staged = m.begin_install(table(10, 1), ms(1)).unwrap();
        assert_eq!(
            m.install(table(10, 2), ms(2)),
            Err(InstallError::AlreadyStaged)
        );
        assert!(m.has_staged());
        assert_eq!(m.commit_install(staged), Ok(ms(20)));
    }

    #[test]
    fn commit_without_begin_is_a_typed_error_not_a_panic() {
        let mut m = TableManager::new(table(10, 0));
        // A StagedInstall that was never (or no longer is) staged: commit
        // must fail gracefully, leaving the manager untouched.
        let phantom = StagedInstall {
            arm: ms(15),
            switch_at: ms(20),
        };
        assert_eq!(m.commit_install(phantom), Err(InstallError::NothingStaged));
        assert_eq!(m.live_tables(), 1);

        // Double commit: the first consumes the stage, the second errors.
        let staged = m.begin_install(table(10, 1), ms(3)).unwrap();
        assert_eq!(m.commit_install(staged), Ok(ms(20)));
        assert_eq!(m.commit_install(staged), Err(InstallError::NothingStaged));

        // Commit after abort likewise.
        let staged = m.begin_install(table(10, 2), ms(25)).unwrap();
        m.abort_install();
        assert_eq!(m.commit_install(staged), Err(InstallError::NothingStaged));
        // The manager still works afterwards.
        let at = m.install(table(10, 3), ms(30)).expect("installs");
        assert_eq!(at, ms(50));
    }

    #[test]
    fn epochs_are_monotonic_per_core() {
        let mut m = TableManager::new(table(10, 0));
        m.install(table(10, 1), ms(1)).expect("installs");
        let _ = m.table_for(0, ms(25));
        assert_eq!(m.core_epoch(0), 1);
        // A late query for an *earlier* time must not roll the core back.
        let _ = m.table_for(0, ms(24));
        assert_eq!(m.core_epoch(0), 1);
    }
}
