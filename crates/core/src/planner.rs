//! The Tableau planner: from vCPU SLAs to a verified dispatch table
//! (Sec. 5 of the paper).
//!
//! The planner runs outside the dispatcher's hot path — in the paper it is
//! a userspace daemon in dom0, invoked only on VM creation, teardown, or
//! reconfiguration. Its pipeline:
//!
//! 1. **Dedicated cores** — vCPUs with `U = 1` each get a whole physical
//!    core and are excluded from packing.
//! 2. **SLA → periodic task** — each remaining vCPU `(U, L)` becomes a task
//!    `(C, T)`: the worst-case blackout of a periodic task is
//!    `2 * (1 - U) * T`, so the planner picks the **largest** hyperperiod
//!    divisor `T` with `2 * (1 - U) * T <= L` (maximizing the period
//!    minimizes preemptions), and `C = ceil(U * T)` (rounding in the
//!    tenant's favor).
//! 3. **Table generation** — the three-stage `rtsched` generator
//!    (partitioned EDF → C=D splitting → clustered DP-Fair).
//! 4. **Post-processing** — coalescing of un-enforceable slivers, then
//!    slice-table construction (inside [`Table::new`]).
//!
//! With the paper's running configuration — `U = 25%`, `L = 20 ms` — step 2
//! picks `T = H/8 = 12,837,825 ns` (~13 ms) and `C ≈ 3.21 ms`, matching the
//! parameters reported in Sec. 7.2.
//!
//! **Parallel pipeline.** The per-core / per-cluster stages (EDF
//! simulation, DP-Fair generation, verification, coalescing) and the
//! per-vCPU blackout validation operate on disjoint data and run
//! concurrently on scoped worker threads; every fan-out collects results in
//! index order, so the produced [`Plan`] is bit-identical to a sequential
//! run (pinned by `tests/prop_parallel.rs`).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use rtsched::generator::{generate_schedule_instrumented, GenError, GenOptions, Stage};
use rtsched::hyperperiod::PeriodCandidates;
use rtsched::signature::CoreSharing;
use rtsched::task::{PeriodicTask, TaskId};
use rtsched::time::Nanos;
use rtsched::verify::task_max_blackout;

use crate::postprocess::{coalesce_with, CoalesceReport, DEFAULT_THRESHOLD};
use crate::table::{Allocation, Table};
use crate::vcpu::{HostConfig, VcpuId, VcpuSpec};

/// Planner tunables.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Candidate periods (divisors of the hyperperiod above the
    /// enforceability threshold).
    pub candidates: PeriodCandidates,
    /// Allocations shorter than this are coalesced away.
    pub coalesce_threshold: Nanos,
    /// Options forwarded to the schedule generator.
    pub gen: GenOptions,
    /// Run the verified peephole preemption-reduction pass after
    /// generation (the paper's Sec. 5 future-work optimization; off by
    /// default to match the paper's baseline planner).
    pub peephole: bool,
}

impl Default for PlannerOptions {
    fn default() -> PlannerOptions {
        PlannerOptions {
            candidates: PeriodCandidates::standard(),
            coalesce_threshold: DEFAULT_THRESHOLD,
            gen: GenOptions::default(),
            peephole: false,
        }
    }
}

/// The periodic-task parameters chosen for one vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcpuParams {
    /// The vCPU.
    pub vcpu: VcpuId,
    /// Budget per period.
    pub cost: Nanos,
    /// Chosen period (a hyperperiod divisor), or the full table for a
    /// dedicated core.
    pub period: Nanos,
    /// `true` if the vCPU received a dedicated physical core.
    pub dedicated: bool,
    /// `true` if the vCPU is capped (no second-level participation).
    pub capped: bool,
}

/// A complete plan: the dispatch table plus everything the hypervisor-side
/// needs to enact it.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The generated dispatch table (one hyperperiod).
    pub table: Table,
    /// Which generation stage succeeded.
    pub stage: Stage,
    /// Per-vCPU task parameters in vCPU-id order.
    pub params: Vec<VcpuParams>,
    /// vCPUs with allocations on more than one core.
    pub split_vcpus: Vec<VcpuId>,
    /// What coalescing removed.
    pub coalesce: CoalesceReport,
    /// Observed worst-case service gap per vCPU in the final table
    /// (cyclic), for validation against each vCPU's latency goal.
    pub worst_blackout: Vec<(VcpuId, Nanos)>,
    /// Stage-1 packing record: the vCPUs of each *shared* core, in bin
    /// order. Populated only for plain-partitioned, peephole-free plans —
    /// the precondition for delta replanning ([`crate::delta`]); empty
    /// otherwise, which sends the next replan down the ladder instead.
    pub core_bins: Vec<Vec<VcpuId>>,
    /// Per-core coalescing reports (shared cores then dedicated cores, in
    /// table-core order), kept so a delta replan can reproduce the
    /// aggregate [`Plan::coalesce`] for untouched cores. Empty whenever
    /// `core_bins` is empty.
    pub coalesce_by_core: Vec<CoalesceReport>,
}

/// Wall-clock breakdown of one planning run, by pipeline stage.
///
/// Side channel of [`plan_timed`]: [`Plan`] itself stays field-identical
/// across engines and runs so plans can be compared structurally.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanTimings {
    /// Admission checks, SLA translation, partitioning, splitting, cluster
    /// packing.
    pub pack: Duration,
    /// EDF simulation and DP-Fair generation.
    pub simulate: Duration,
    /// Coalescing (including the optional peephole pass).
    pub coalesce: Duration,
    /// Schedule verification, split detection, and blackout validation.
    pub verify: Duration,
    /// Slice-table construction.
    pub slice_build: Duration,
    /// End-to-end planning time (≥ the sum of the buckets).
    pub total: Duration,
}

impl Plan {
    /// The chosen parameters for `vcpu`, if it exists in the plan.
    pub fn params_of(&self, vcpu: VcpuId) -> Option<&VcpuParams> {
        self.params.iter().find(|p| p.vcpu == vcpu)
    }

    /// The observed worst-case blackout of `vcpu` in the table.
    pub fn blackout_of(&self, vcpu: VcpuId) -> Option<Nanos> {
        self.worst_blackout
            .iter()
            .find(|(v, _)| *v == vcpu)
            .map(|&(_, b)| b)
    }
}

/// Why planning failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// More dedicated (`U = 1`) vCPUs than physical cores.
    TooManyDedicated {
        /// Number of vCPUs demanding a full core.
        dedicated: usize,
        /// Available physical cores.
        cores: usize,
    },
    /// Table generation failed (over-utilization or pathological input).
    Generation(GenError),
    /// Internal error constructing the table (generator and post-processing
    /// disagree); never expected, surfaced rather than panicking.
    Table(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::TooManyDedicated { dedicated, cores } => {
                write!(f, "{dedicated} dedicated vCPUs exceed {cores} cores")
            }
            PlanError::Generation(e) => write!(f, "table generation failed: {e}"),
            PlanError::Table(e) => write!(f, "table construction failed: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<GenError> for PlanError {
    fn from(e: GenError) -> PlanError {
        PlanError::Generation(e)
    }
}

/// Which rung of the replanning ladder produced a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanPath {
    /// Delta replanning: only the bins dirtied by the churn were
    /// re-simulated; everything else was spliced from the previous plan.
    Delta,
    /// Incremental per-core replanning against the previous plan.
    Incremental,
    /// Full from-scratch replan (no previous plan, or incremental
    /// abandoned).
    Full,
    /// Full replan under conservative default options after the requested
    /// options failed.
    FullConservative,
}

impl ReplanPath {
    /// Short label for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            ReplanPath::Delta => "delta",
            ReplanPath::Incremental => "incremental",
            ReplanPath::Full => "full",
            ReplanPath::FullConservative => "full-conservative",
        }
    }
}

/// A successful replan, with provenance.
#[derive(Debug, Clone)]
pub struct ReplanOutcome {
    /// The plan to install.
    pub plan: Plan,
    /// Which ladder rung produced it.
    pub path: ReplanPath,
    /// The incremental report, when the incremental rung ran to completion.
    pub incremental: Option<crate::incremental::IncrementalReport>,
    /// The delta report, when the delta rung ran to completion.
    pub delta: Option<crate::delta::DeltaReport>,
    /// Errors from rungs that were tried and failed before this one.
    pub attempts: Vec<(ReplanPath, PlanError)>,
}

/// Every rung of the replanning ladder failed; the reconfiguration must be
/// rejected. Carries one error per attempted rung, newest last.
#[derive(Debug, Clone)]
pub struct ReplanError {
    /// `(rung, why it failed)`, in attempt order.
    pub attempts: Vec<(ReplanPath, PlanError)>,
}

impl std::fmt::Display for ReplanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replanning failed after {} attempt(s):",
            self.attempts.len()
        )?;
        for (path, err) in &self.attempts {
            write!(f, " [{}] {err};", path.label())?;
        }
        Ok(())
    }
}

impl std::error::Error for ReplanError {}

/// Plans `host` with graceful degradation: delta replanning first (patching
/// only the bins the churn dirtied — see [`crate::delta`]), then incremental
/// replanning (both only when a previous plan is available), then a full
/// replan under the requested options, then — if the requested options were
/// non-default — a full replan under conservative defaults. Only when every
/// rung fails is the reconfiguration rejected, with the per-rung diagnostic
/// trail.
///
/// A delta abort is *not* an error: the delta rung declines whenever the
/// previous plan used C=D splits or DP-Fair clusters, the host geometry
/// changed, or the bin metadata is missing — those are exactly the cases the
/// lower rungs exist for, so the abort falls through silently and does not
/// appear in `attempts`.
///
/// This is the planner's fault-tolerance ladder: a planner daemon facing a
/// pathological reconfiguration (or a table push that was rolled back
/// mid-switch) degrades to a slower but safer planning mode instead of
/// leaving the host on a stale table with no explanation.
///
/// # Errors
///
/// [`ReplanError`] with one [`PlanError`] per attempted rung; the host's
/// running table is untouched by any failed attempt.
pub fn plan_with_fallback(
    prev: Option<(&HostConfig, &Plan)>,
    host: &HostConfig,
    opts: &PlannerOptions,
) -> Result<ReplanOutcome, ReplanError> {
    let mut attempts: Vec<(ReplanPath, PlanError)> = Vec::new();

    if let Some((prev_host, prev_plan)) = prev {
        // Rung 0: delta. Inapplicability (split/clustered history, changed
        // geometry, missing bin metadata) is benign — fall through silently.
        if let Ok((plan, report)) = crate::delta::plan_delta(prev_host, prev_plan, host, opts) {
            return Ok(ReplanOutcome {
                plan,
                path: ReplanPath::Delta,
                incremental: None,
                delta: Some(report),
                attempts,
            });
        }

        match crate::incremental::plan_incremental(prev_host, prev_plan, host, opts) {
            Ok((plan, report)) => {
                // The incremental path may itself have decided on a full
                // replan (structural change); report the rung that did the
                // work.
                let path = if report.full_replan {
                    ReplanPath::Full
                } else {
                    ReplanPath::Incremental
                };
                return Ok(ReplanOutcome {
                    plan,
                    path,
                    incremental: Some(report),
                    delta: None,
                    attempts,
                });
            }
            Err(e) => attempts.push((ReplanPath::Incremental, e)),
        }
    }

    match plan(host, opts) {
        Ok(plan) => {
            return Ok(ReplanOutcome {
                plan,
                path: ReplanPath::Full,
                incremental: None,
                delta: None,
                attempts,
            })
        }
        Err(e) => attempts.push((ReplanPath::Full, e)),
    }

    // Conservative rescue: only meaningful when the requested options could
    // have caused the failure (aggressive coalescing inflates minimum
    // budgets; the peephole pass is optional by design).
    let defaults = PlannerOptions::default();
    let non_default = opts.peephole || opts.coalesce_threshold != defaults.coalesce_threshold;
    if non_default {
        match plan(host, &defaults) {
            Ok(plan) => {
                return Ok(ReplanOutcome {
                    plan,
                    path: ReplanPath::FullConservative,
                    incremental: None,
                    delta: None,
                    attempts,
                })
            }
            Err(e) => attempts.push((ReplanPath::FullConservative, e)),
        }
    }

    Err(ReplanError { attempts })
}

/// Chooses a period for a vCPU SLA: the largest candidate `T` such that the
/// worst-case blackout `2 * (1 - U) * T` stays within the latency goal `L`.
///
/// If even the smallest candidate exceeds the goal (an extremely tight
/// latency goal), the smallest candidate is used best-effort — the bound is
/// then as small as the platform can enforce, consistent with the paper's
/// treatment of `L` as an upper bound the tenant may beat.
pub fn period_for(spec: &VcpuSpec, candidates: &PeriodCandidates) -> Nanos {
    let ppm = spec.utilization.ppm() as u128;
    debug_assert!(ppm < 1_000_000, "dedicated vCPUs have no period");
    // 2 * (1 - U) * T <= L  <=>  T <= L * 1e6 / (2 * (1e6 - ppm)).
    let bound = (spec.latency.as_nanos() as u128 * 1_000_000) / (2 * (1_000_000 - ppm));
    let bound = Nanos(bound.min(u64::MAX as u128) as u64);
    candidates
        .largest_at_most(bound)
        .unwrap_or_else(|| candidates.smallest())
}

/// Generates a plan for `host`.
///
/// # Errors
///
/// See [`PlanError`]; over-utilized configurations are rejected, matching
/// the paper's admission rule.
///
/// # Examples
///
/// ```
/// use rtsched::time::Nanos;
/// use tableau_core::planner::{plan, PlannerOptions};
/// use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
///
/// // The paper's evaluation setup: 4 single-vCPU VMs per core, 25% each.
/// let mut host = HostConfig::new(4);
/// let spec = VcpuSpec::new(Utilization::from_percent(25), Nanos::from_millis(20));
/// for i in 0..16 {
///     host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
/// }
/// let plan = plan(&host, &PlannerOptions::default()).unwrap();
/// assert_eq!(plan.table.n_cores(), 4);
/// // Every vCPU's observed blackout respects its 20 ms latency goal.
/// for (_, blackout) in &plan.worst_blackout {
///     assert!(*blackout <= Nanos::from_millis(20));
/// }
/// ```
pub fn plan(host: &HostConfig, opts: &PlannerOptions) -> Result<Plan, PlanError> {
    plan_timed(host, opts).map(|(p, _)| p)
}

/// SLA-translation output (planner stages 0 and 1), shared between the full
/// pipeline and the delta planner so both derive tasks, preferences, and
/// parameters identically.
pub(crate) struct Translation {
    /// All vCPUs of the host, in id order.
    pub vcpus: Vec<(VcpuId, VcpuSpec)>,
    /// vCPUs that received dedicated cores, in id order.
    pub dedicated: Vec<VcpuId>,
    /// Cores available to the packing stages.
    pub shared_cores: usize,
    /// One implicit-deadline task per shared vCPU.
    pub tasks: Vec<PeriodicTask>,
    /// Soft NUMA preferences, aligned with `tasks` by position.
    pub prefs: Vec<Vec<usize>>,
    /// Chosen per-vCPU parameters, in vCPU-id order.
    pub params: Vec<VcpuParams>,
}

/// Planner stages 0 and 1: dedicated-core selection and SLA → `(C, T)`
/// translation.
pub(crate) fn translate(
    host: &HostConfig,
    opts: &PlannerOptions,
) -> Result<Translation, PlanError> {
    let hyperperiod = opts.candidates.hyperperiod();
    let vcpus = host.vcpus();

    // Stage 0: dedicated cores for U = 1 vCPUs, allocated from the highest
    // core ids downward so the generator can use a dense 0..k range.
    let dedicated: Vec<VcpuId> = vcpus
        .iter()
        .filter(|(_, s)| s.utilization.is_full_core())
        .map(|&(v, _)| v)
        .collect();
    if dedicated.len() > host.n_cores {
        return Err(PlanError::TooManyDedicated {
            dedicated: dedicated.len(),
            cores: host.n_cores,
        });
    }
    let shared_cores = host.n_cores - dedicated.len();

    // Stage 1: SLA -> periodic task. Budgets shorter than twice the
    // coalescing threshold are rounded up so the guarantee survives
    // post-processing (providers sell a minimum granularity anyway).
    let min_budget = opts.coalesce_threshold * 2;
    let mut tasks: Vec<PeriodicTask> = Vec::new();
    // Soft NUMA preferences, aligned with `tasks` by position: the cores of
    // the owning VM's node, restricted to the shared-core range.
    let mut prefs: Vec<Vec<usize>> = Vec::new();
    let mut params: Vec<VcpuParams> = Vec::new();
    for &(vcpu, spec) in &vcpus {
        if spec.utilization.is_full_core() {
            params.push(VcpuParams {
                vcpu,
                cost: hyperperiod,
                period: hyperperiod,
                dedicated: true,
                capped: spec.capped,
            });
            continue;
        }
        let period = period_for(&spec, &opts.candidates);
        // Rounding the (floor-rounded) budget up to twice the coalescing
        // threshold can over-commit only configurations that reserve less
        // than ~0.03% per vCPU — rejected as over-utilized, which is fine.
        let cost = spec
            .utilization
            .budget_in(period)
            .max(min_budget)
            .min(period);
        tasks.push(PeriodicTask::implicit(TaskId(vcpu.0), cost, period));
        prefs.push(
            host.vm_of(vcpu)
                .and_then(|vm| host.vms[vm].numa_node)
                .map(|node| {
                    host.cores_of_node(node)
                        .into_iter()
                        .filter(|&c| c < shared_cores)
                        .collect()
                })
                .unwrap_or_default(),
        );
        params.push(VcpuParams {
            vcpu,
            cost,
            period,
            dedicated: false,
            capped: spec.capped,
        });
    }
    Ok(Translation {
        vcpus,
        dedicated,
        shared_cores,
        tasks,
        prefs,
        params,
    })
}

/// Observed worst-case cyclic service gap of `vcpu` in `table` — the
/// blackout the latency-goal validation checks. Pure function of the vCPU's
/// interval set in the table.
pub(crate) fn blackout_in_table(table: &Table, vcpu: VcpuId, hyperperiod: Nanos) -> Nanos {
    let ivs: Vec<(Nanos, Nanos)> = table
        .placement(vcpu)
        .map(|p| p.allocations.iter().map(|&(_, s, e)| (s, e)).collect())
        .unwrap_or_default();
    if ivs.is_empty() {
        hyperperiod
    } else {
        // Reuse the rtsched helper on a synthetic single-task schedule.
        let mut sched = rtsched::MultiCoreSchedule::idle(hyperperiod, 1);
        let mut merged = ivs;
        merged.sort_unstable();
        for (s, e) in merged {
            // Allocations of one vCPU never overlap (checked by
            // Table::new), but cross-core ones can touch; push merges
            // only same-task adjacency, which is what we want.
            sched.cores[0].push(rtsched::Segment::new(s, e, TaskId(vcpu.0)));
        }
        task_max_blackout(TaskId(vcpu.0), &sched)
    }
}

/// Like [`plan`], additionally returning the per-stage wall-clock breakdown.
///
/// The timings are a pure side channel: the returned [`Plan`] is the one
/// [`plan`] would produce.
pub fn plan_timed(
    host: &HostConfig,
    opts: &PlannerOptions,
) -> Result<(Plan, PlanTimings), PlanError> {
    let t_total = Instant::now();
    let mut timings = PlanTimings::default();
    let t0 = Instant::now();
    let hyperperiod = opts.candidates.hyperperiod();
    let Translation {
        vcpus,
        dedicated,
        shared_cores,
        tasks,
        prefs,
        params,
    } = translate(host, opts)?;

    timings.pack += t0.elapsed();

    // Stage 2: three-stage table generation (admission happens inside).
    let outcome =
        generate_schedule_instrumented(&tasks, shared_cores, hyperperiod, &opts.gen, &prefs)?;
    let mut generated = outcome.generated;
    let mut sharing = outcome.sharing;
    let gen_core_bins = outcome.core_bins;
    timings.pack += outcome.timings.pack;
    timings.simulate += outcome.timings.simulate;
    timings.verify += outcome.timings.verify;

    let t0 = Instant::now();
    // Optional peephole pass: merge needlessly sliced allocations where the
    // verifier confirms every guarantee survives. It mutates schedules in
    // place, so any sharing record is stale afterwards and is dropped.
    if opts.peephole {
        rtsched::peephole::peephole(&tasks, &mut generated.schedule);
        sharing = CoreSharing::none(shared_cores);
    }

    // Stage 3: post-processing — translate segments to allocations and
    // coalesce per core. Split vCPUs must never be *extended* by a
    // donation: their pieces on other cores begin exactly where a piece
    // ends, and growing one would schedule the vCPU on two cores at once.
    // Coalescing is core-local, so the direct cores are processed
    // concurrently; stamped cores (identical schedules modulo vCPU ids)
    // reuse their representative's result under the id substitution —
    // coalescing decisions depend only on interval geometry and the
    // may-extend predicate, both of which the stamp preserves (stamped
    // cores carry only whole, unsplit vCPUs). Reports are absorbed in core
    // order to keep the aggregate deterministic.
    let split: Vec<VcpuId> = generated.split_tasks.iter().map(|t| VcpuId(t.0)).collect();
    let coalesce_core = |core: usize| -> (Vec<Allocation>, CoalesceReport) {
        let mut allocs: Vec<Allocation> = generated.schedule.cores[core]
            .segments()
            .iter()
            .map(|s| Allocation {
                start: s.start,
                end: s.end,
                vcpu: VcpuId(s.task.0),
            })
            .collect();
        let report = coalesce_with(&mut allocs, opts.coalesce_threshold, |v| {
            !split.contains(&v)
        });
        (allocs, report)
    };
    let direct: Vec<Option<(Vec<Allocation>, CoalesceReport)>> =
        rayon::par_map_indices(shared_cores, |core| {
            if sharing.stamp_of(core).is_some() {
                None
            } else {
                Some(coalesce_core(core))
            }
        });
    let mut coalesced: Vec<(Vec<Allocation>, CoalesceReport)> = Vec::with_capacity(shared_cores);
    // `table_stamps[core] = Some(rep)` once the remap checked out, so the
    // slice-table build below can reuse the representative's CpuTable too.
    let mut table_stamps: Vec<Option<usize>> = vec![None; host.n_cores];
    for (core, pre) in direct.into_iter().enumerate() {
        if let Some(done) = pre {
            coalesced.push(done);
            continue;
        }
        let stamp = sharing.stamp_of(core).expect("stamped iff not direct");
        let remapped = (stamp.rep < core).then(|| &coalesced[stamp.rep]).and_then(
            |(rep_allocs, rep_report)| {
                let map: HashMap<u32, u32> = stamp.map.iter().map(|&(r, t)| (r.0, t.0)).collect();
                let allocs: Vec<Allocation> = rep_allocs
                    .iter()
                    .map(|a| {
                        map.get(&a.vcpu.0).map(|&v| Allocation {
                            vcpu: VcpuId(v),
                            ..*a
                        })
                    })
                    .collect::<Option<_>>()?;
                let report = rep_report.relabel(|v| map.get(&v.0).copied().map(VcpuId))?;
                Some((allocs, report))
            },
        );
        match remapped {
            Some(done) => {
                table_stamps[core] = Some(stamp.rep);
                coalesced.push(done);
            }
            // Inconsistent stamp (never expected): coalesce directly.
            None => coalesced.push(coalesce_core(core)),
        }
    }
    let mut per_core: Vec<Vec<Allocation>> = Vec::with_capacity(host.n_cores);
    let mut coalesce_report = CoalesceReport::default();
    let mut coalesce_by_core: Vec<CoalesceReport> = Vec::with_capacity(host.n_cores);
    for (allocs, report) in coalesced {
        coalesce_report.absorb(report.clone());
        coalesce_by_core.push(report);
        per_core.push(allocs);
    }
    // Dedicated cores: one wall-to-wall allocation each.
    for &vcpu in &dedicated {
        per_core.push(vec![Allocation {
            start: Nanos::ZERO,
            end: hyperperiod,
            vcpu,
        }]);
        coalesce_by_core.push(CoalesceReport::default());
    }
    timings.coalesce += t0.elapsed();

    let t0 = Instant::now();
    let table =
        Table::new_with_stamps(hyperperiod, per_core, &table_stamps).map_err(PlanError::Table)?;
    timings.slice_build += t0.elapsed();

    let t0 = Instant::now();
    // Observed worst-case blackout per vCPU, for latency-goal validation.
    // Each vCPU's scan only reads the (now immutable) table, so the vCPUs
    // are validated concurrently, collected in vCPU order.
    let worst_blackout: Vec<(VcpuId, Nanos)> = rayon::par_map_indices(vcpus.len(), |i| {
        let (vcpu, _) = vcpus[i];
        (vcpu, blackout_in_table(&table, vcpu, hyperperiod))
    });
    timings.verify += t0.elapsed();
    timings.total = t_total.elapsed();

    // Delta-replanning metadata: the stage-1 packing record, translated to
    // vCPU ids, plus the per-core coalescing reports. Only plain-partitioned
    // peephole-free plans qualify (the peephole pass rewrites allocations
    // out from under the per-bin bookkeeping).
    let core_bins: Vec<Vec<VcpuId>> = if opts.peephole || generated.stage != Stage::Partitioned {
        Vec::new()
    } else {
        gen_core_bins
            .into_iter()
            .map(|bin| bin.into_iter().map(|t| VcpuId(t.0)).collect())
            .collect()
    };
    let coalesce_by_core = if core_bins.is_empty() {
        Vec::new()
    } else {
        coalesce_by_core
    };

    Ok((
        Plan {
            table,
            stage: generated.stage,
            params,
            split_vcpus: generated.split_tasks.iter().map(|t| VcpuId(t.0)).collect(),
            coalesce: coalesce_report,
            worst_blackout,
            core_bins,
            coalesce_by_core,
        },
        timings,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcpu::{Utilization, VmSpec};

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn paper_spec() -> VcpuSpec {
        VcpuSpec::new(Utilization::from_percent(25), ms(20))
    }

    fn dense_host(cores: usize, vms_per_core: usize, spec: VcpuSpec) -> HostConfig {
        let mut host = HostConfig::new(cores);
        for i in 0..cores * vms_per_core {
            host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
        }
        host
    }

    #[test]
    fn paper_parameters_reproduced() {
        // Sec. 7.2: U = 25%, L = 20 ms "results in the planner picking a
        // period of roughly 13 ms with a budget of about 3.2 ms".
        let period = period_for(&paper_spec(), &PeriodCandidates::standard());
        assert_eq!(period, Nanos(12_837_825)); // H / 8
        let cost = Utilization::from_percent(25).budget_in(period);
        assert_eq!(cost, Nanos(3_209_456)); // floor(T / 4)
    }

    #[test]
    fn blackout_respects_latency_goal() {
        let host = dense_host(4, 4, paper_spec());
        let p = plan(&host, &PlannerOptions::default()).unwrap();
        for (v, b) in &p.worst_blackout {
            assert!(*b <= ms(20), "vCPU {v} blackout {b} exceeds goal");
        }
    }

    #[test]
    fn tight_latency_goals_get_small_periods() {
        let spec = VcpuSpec::new(Utilization::from_percent(25), ms(1));
        let period = period_for(&spec, &PeriodCandidates::standard());
        // T <= 1 ms / 1.5 = 666 us.
        assert!(period <= Nanos::from_micros(667));
        assert!(period >= Nanos::from_micros(100));
    }

    #[test]
    fn impossible_latency_goal_falls_back_to_smallest_candidate() {
        let spec = VcpuSpec::new(Utilization::from_percent(25), Nanos::from_micros(10));
        let period = period_for(&spec, &PeriodCandidates::standard());
        assert_eq!(period, PeriodCandidates::standard().smallest());
    }

    #[test]
    fn dedicated_vcpus_get_whole_cores() {
        let mut host = HostConfig::new(2);
        host.add_vm(VmSpec::uniform(
            "dedicated",
            1,
            VcpuSpec::new(Utilization::FULL, ms(100)),
        ));
        host.add_vm(VmSpec::uniform("shared", 1, paper_spec()));
        let p = plan(&host, &PlannerOptions::default()).unwrap();
        let dp = p.params_of(VcpuId(0)).unwrap();
        assert!(dp.dedicated);
        // The dedicated vCPU has zero blackout.
        assert_eq!(p.blackout_of(VcpuId(0)), Some(Nanos::ZERO));
    }

    #[test]
    fn too_many_dedicated_rejected() {
        let mut host = HostConfig::new(1);
        let d = VcpuSpec::new(Utilization::FULL, ms(100));
        host.add_vm(VmSpec::uniform("a", 1, d));
        host.add_vm(VmSpec::uniform("b", 1, d));
        assert!(matches!(
            plan(&host, &PlannerOptions::default()),
            Err(PlanError::TooManyDedicated { .. })
        ));
    }

    #[test]
    fn over_utilization_rejected() {
        // 5 * 25% on one core.
        let host = dense_host(1, 5, paper_spec());
        assert!(matches!(
            plan(&host, &PlannerOptions::default()),
            Err(PlanError::Generation(GenError::OverUtilized { .. }))
        ));
    }

    #[test]
    fn sixteen_core_paper_setup_plans_quickly_and_correctly() {
        // 4 VMs per core on 12 guest cores (the Fig. 7 setup).
        let host = dense_host(12, 4, paper_spec());
        let p = plan(&host, &PlannerOptions::default()).unwrap();
        assert_eq!(p.stage, Stage::Partitioned);
        assert!(p.split_vcpus.is_empty());
        assert_eq!(p.table.n_cores(), 12);
        // Each vCPU is guaranteed its budget every period: check service
        // time in the table equals cost * (H / T).
        for params in &p.params {
            let placement = p.table.placement(params.vcpu).unwrap();
            let total: Nanos = placement.allocations.iter().map(|&(_, s, e)| e - s).sum();
            let periods = p.table.len() / params.period;
            assert_eq!(total, params.cost * periods);
        }
    }

    #[test]
    fn mixed_latency_goals_coexist() {
        let mut host = HostConfig::new(2);
        host.add_vm(VmSpec::uniform(
            "tight",
            1,
            VcpuSpec::new(Utilization::from_percent(25), ms(1)),
        ));
        host.add_vm(VmSpec::uniform(
            "loose",
            2,
            VcpuSpec::new(Utilization::from_percent(50), ms(100)),
        ));
        let p = plan(&host, &PlannerOptions::default()).unwrap();
        let tight = p.params_of(VcpuId(0)).unwrap();
        let loose = p.params_of(VcpuId(1)).unwrap();
        assert!(tight.period < loose.period);
        assert!(p.blackout_of(VcpuId(0)).unwrap() <= ms(1));
    }

    #[test]
    fn numa_pinning_places_vcpus_on_the_node() {
        // 4 cores on 2 nodes; two VMs pinned to node 1 must land on cores
        // {2, 3}.
        let mut host = HostConfig::with_numa(4, 2);
        for i in 0..2 {
            host.add_vm(VmSpec::uniform(format!("pinned{i}"), 1, paper_spec()).on_node(1));
        }
        host.add_vm(VmSpec::uniform("free", 1, paper_spec()));
        let p = plan(&host, &PlannerOptions::default()).unwrap();
        for v in 0..2u32 {
            let placement = p.table.placement(VcpuId(v)).unwrap();
            for &(core, _, _) in &placement.allocations {
                assert!(
                    host.cores_of_node(1).contains(&core),
                    "{} landed off-node on core {core}",
                    VcpuId(v)
                );
            }
        }
    }

    #[test]
    fn numa_preference_is_soft_not_an_admission_constraint() {
        // Five 25% VMs all pinned to a one-core node: one must spill, and
        // the plan still succeeds with every guarantee intact.
        let mut host = HostConfig::with_numa(2, 2);
        for i in 0..5 {
            host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, paper_spec()).on_node(0));
        }
        let p = plan(&host, &PlannerOptions::default()).unwrap();
        for (v, b) in &p.worst_blackout {
            assert!(*b <= ms(20), "{v}: {b}");
        }
        // Node 0 (core 0) holds at most 4 of the 25% VMs.
        let on_core0 = (0..5u32)
            .filter(|&v| {
                p.table
                    .placement(VcpuId(v))
                    .map(|pl| pl.allocations.iter().all(|&(c, _, _)| c == 0))
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(on_core0, 4);
    }

    #[test]
    fn capped_flag_propagates() {
        let mut host = HostConfig::new(1);
        host.add_vm(VmSpec::uniform(
            "c",
            1,
            VcpuSpec::capped(Utilization::from_percent(25), ms(20)),
        ));
        let p = plan(&host, &PlannerOptions::default()).unwrap();
        assert!(p.params_of(VcpuId(0)).unwrap().capped);
    }

    #[test]
    fn peephole_never_fragments_and_keeps_guarantees() {
        // A mixed-period host whose EDF tables contain sliced allocations.
        let mut host = HostConfig::new(2);
        host.add_vm(VmSpec::uniform(
            "fast",
            2,
            VcpuSpec::capped(Utilization::from_percent(20), ms(3)),
        ));
        host.add_vm(VmSpec::uniform(
            "slow",
            2,
            VcpuSpec::capped(Utilization::from_percent(55), ms(80)),
        ));
        let plain = plan(&host, &PlannerOptions::default()).unwrap();
        let opt = plan(
            &host,
            &PlannerOptions {
                peephole: true,
                ..PlannerOptions::default()
            },
        )
        .unwrap();
        let count = |p: &Plan| -> usize {
            (0..p.table.n_cores())
                .map(|c| p.table.cpu(c).allocations().len())
                .sum()
        };
        assert!(
            count(&opt) <= count(&plain),
            "peephole fragmented the table"
        );
        for (vcpu, spec) in host.vcpus() {
            assert!(opt.blackout_of(vcpu).unwrap() <= spec.latency);
        }
    }

    #[test]
    fn fallback_ladder_uses_delta_when_possible() {
        let opts = PlannerOptions::default();
        let mut prev_host = HostConfig::new(4);
        for i in 0..12 {
            prev_host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, paper_spec()));
        }
        let prev = plan(&prev_host, &opts).unwrap();
        let mut host = prev_host.clone();
        host.add_vm(VmSpec::uniform("newcomer", 1, paper_spec()));

        let out = plan_with_fallback(Some((&prev_host, &prev)), &host, &opts).unwrap();
        assert_eq!(out.path, ReplanPath::Delta);
        assert!(out.attempts.is_empty());
        assert!(!out.delta.as_ref().unwrap().clean_cores.is_empty());
        // The delta-produced plan is exactly what a full replan would build.
        assert_eq!(out.plan, plan(&host, &opts).unwrap());
    }

    #[test]
    fn fallback_ladder_uses_incremental_when_delta_declines() {
        let opts = PlannerOptions::default();
        let mut prev_host = HostConfig::new(4);
        for i in 0..12 {
            prev_host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, paper_spec()));
        }
        let mut prev = plan(&prev_host, &opts).unwrap();
        // Strip the bin metadata (as an incrementally produced plan would):
        // the delta rung must decline and the incremental rung take over.
        prev.core_bins.clear();
        prev.coalesce_by_core.clear();
        let mut host = prev_host.clone();
        host.add_vm(VmSpec::uniform("newcomer", 1, paper_spec()));

        let out = plan_with_fallback(Some((&prev_host, &prev)), &host, &opts).unwrap();
        assert_eq!(out.path, ReplanPath::Incremental);
        assert!(out.attempts.is_empty());
        assert!(!out.incremental.as_ref().unwrap().reused_cores.is_empty());
    }

    #[test]
    fn fallback_ladder_without_history_plans_fully() {
        let host = dense_host(2, 4, paper_spec());
        let out = plan_with_fallback(None, &host, &PlannerOptions::default()).unwrap();
        assert_eq!(out.path, ReplanPath::Full);
        assert!(out.incremental.is_none());
    }

    #[test]
    fn fallback_ladder_rescues_bad_options_with_defaults() {
        // A 50 ms coalescing threshold inflates every budget to a full
        // period (over-utilized); the conservative rung with default options
        // must rescue the reconfiguration.
        let host = dense_host(2, 4, paper_spec());
        let aggressive = PlannerOptions {
            coalesce_threshold: ms(50),
            ..PlannerOptions::default()
        };
        let out = plan_with_fallback(None, &host, &aggressive).unwrap();
        assert_eq!(out.path, ReplanPath::FullConservative);
        assert_eq!(out.attempts.len(), 1);
        assert!(matches!(out.attempts[0].0, ReplanPath::Full));
        for (v, b) in &out.plan.worst_blackout {
            assert!(*b <= ms(20), "{v}: {b}");
        }
    }

    #[test]
    fn fallback_ladder_rejects_with_full_diagnostic_trail() {
        // Over-utilized no matter the options: every rung fails, and the
        // error carries one diagnostic per rung on a single line.
        let prev_ok = dense_host(1, 4, paper_spec());
        let prev = plan(&prev_ok, &PlannerOptions::default()).unwrap();
        let host = dense_host(1, 5, paper_spec());
        let aggressive = PlannerOptions {
            coalesce_threshold: ms(50),
            ..PlannerOptions::default()
        };
        let err = plan_with_fallback(Some((&prev_ok, &prev)), &host, &aggressive).unwrap_err();
        assert_eq!(err.attempts.len(), 3, "{err}");
        let msg = err.to_string();
        assert!(!msg.contains('\n'), "multi-line diagnostic: {msg:?}");
        assert!(msg.contains("incremental"), "{msg}");
        assert!(msg.contains("full-conservative"), "{msg}");
    }

    #[test]
    fn tiny_budgets_rounded_up_to_survivable_size() {
        let mut host = HostConfig::new(1);
        host.add_vm(VmSpec::uniform(
            "tiny",
            1,
            VcpuSpec::new(Utilization::from_ppm(100), ms(100)),
        ));
        let p = plan(&host, &PlannerOptions::default()).unwrap();
        let params = p.params_of(VcpuId(0)).unwrap();
        assert!(params.cost >= DEFAULT_THRESHOLD * 2);
        // And the vCPU still has allocations after coalescing.
        assert!(p.table.placement(VcpuId(0)).is_some());
    }
}
