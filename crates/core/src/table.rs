//! Tableau scheduling tables: per-CPU allocations plus the slice table for
//! O(1) dispatch (Fig. 2 of the paper).
//!
//! A table maps one hyperperiod of time to vCPU reservations on each core.
//! Allocations are variable-length, non-overlapping intervals; idle gaps
//! between them belong to the second-level scheduler. To make dispatch
//! constant-time, each per-CPU allocation list is accompanied by a **slice
//! table**: fixed-size windows of length equal to the core's *shortest*
//! allocation. Because no allocation is shorter than a slice, a slice can
//! overlap at most two allocations — so resolving "who runs at time `t`"
//! inspects a bounded number of records regardless of table size, touching
//! at most two cache lines in the hot path.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use rtsched::time::Nanos;

use crate::vcpu::VcpuId;

/// One reserved interval within a core's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Start offset relative to the table start.
    pub start: Nanos,
    /// End offset (exclusive).
    pub end: Nanos,
    /// The vCPU that has priority during this interval.
    pub vcpu: VcpuId,
}

impl Allocation {
    /// Returns the allocation's length.
    pub fn len(&self) -> Nanos {
        self.end - self.start
    }

    /// Returns `true` if `t` falls inside the interval.
    pub fn contains(&self, t: Nanos) -> bool {
        self.start <= t && t < self.end
    }
}

/// The dispatcher's verdict for a point in table-relative time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// The interval `[.., until)` is reserved for `vcpu`.
    Reserved {
        /// The vCPU holding the reservation.
        vcpu: VcpuId,
        /// Table-relative end of the reservation.
        until: Nanos,
    },
    /// No reservation covers the current time; the gap ends at `until`
    /// (table-relative; may equal the table length, i.e. the next table
    /// round starts with the first allocation).
    Idle {
        /// Table-relative end of the idle gap.
        until: Nanos,
    },
}

impl Slot {
    /// Table-relative time at which this verdict expires.
    pub fn until(&self) -> Nanos {
        match *self {
            Slot::Reserved { until, .. } | Slot::Idle { until } => until,
        }
    }

    /// The reserved vCPU, if any.
    pub fn vcpu(&self) -> Option<VcpuId> {
        match *self {
            Slot::Reserved { vcpu, .. } => Some(vcpu),
            Slot::Idle { .. } => None,
        }
    }
}

/// The schedule of one core: allocations plus its slice index.
///
/// Internally the schedule is *flattened* into a gap-free sequence of
/// segments covering `[0, table_len)`, stored as a structure-of-arrays of
/// `(end_offset, vcpu)` pairs: `seg_end[i]` is the exclusive end of segment
/// `i` and `seg_vcpu[i]` its vCPU (or [`NO_VCPU`] for an idle gap). A
/// dispatch lookup is then a single bounded forward walk over one contiguous
/// array — and because per-core time moves forward, the dispatcher carries a
/// segment cursor between decisions so the steady-state lookup never
/// re-scans (see `Dispatcher`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuTable {
    /// Reserved intervals, sorted by start, non-overlapping.
    allocations: Vec<Allocation>,
    /// Fixed slice width for this core (the shortest allocation length, or
    /// the table length for an empty core).
    slice_len: Nanos,
    /// For each slice, the index of the segment containing the slice start
    /// (the random-access entry point into the segment arrays).
    slices: Vec<u32>,
    /// Exclusive end offset of each segment; the last entry equals the
    /// table length.
    seg_end: Vec<Nanos>,
    /// vCPU id of each segment, [`NO_VCPU`] for idle gaps.
    seg_vcpu: Vec<u32>,
}

/// Sentinel for "no vCPU" (an idle segment).
const NO_VCPU: u32 = u32::MAX;

impl CpuTable {
    /// Builds a core table from sorted, non-overlapping allocations.
    ///
    /// # Errors
    ///
    /// Returns a message if allocations are unsorted, overlapping, empty, or
    /// extend past `table_len`.
    pub fn new(allocations: Vec<Allocation>, table_len: Nanos) -> Result<CpuTable, String> {
        for a in &allocations {
            if a.start >= a.end {
                return Err(format!("empty allocation [{}, {})", a.start, a.end));
            }
            if a.end > table_len {
                return Err(format!(
                    "allocation [{}, {}) exceeds table length {table_len}",
                    a.start, a.end
                ));
            }
        }
        for w in allocations.windows(2) {
            if w[0].end > w[1].start {
                return Err(format!(
                    "allocations overlap or unsorted at [{}, {})",
                    w[1].start, w[1].end
                ));
            }
        }

        // Slice length: the shortest allocation (see module docs). An empty
        // core gets a single slice covering the whole table.
        let slice_len = allocations
            .iter()
            .map(|a| a.len())
            .min()
            .unwrap_or(table_len);
        let n_slices = table_len.div_ceil(slice_len) as usize;

        // Flatten into gap-free segments (idle gaps made explicit).
        let mut seg_end = Vec::with_capacity(allocations.len() * 2 + 1);
        let mut seg_vcpu = Vec::with_capacity(seg_end.capacity());
        let mut t = Nanos::ZERO;
        for a in &allocations {
            if a.start > t {
                seg_end.push(a.start);
                seg_vcpu.push(NO_VCPU);
            }
            seg_end.push(a.end);
            seg_vcpu.push(a.vcpu.0);
            t = a.end;
        }
        if t < table_len || seg_end.is_empty() {
            seg_end.push(table_len);
            seg_vcpu.push(NO_VCPU);
        }

        // Slice index: the segment containing each slice start.
        let mut slices = vec![0u32; n_slices];
        for (s, slot) in slices.iter_mut().enumerate() {
            let slice_start = slice_len * s as u64;
            *slot = seg_end.partition_point(|&e| e <= slice_start) as u32;
        }
        Ok(CpuTable {
            allocations,
            slice_len,
            slices,
            seg_end,
            seg_vcpu,
        })
    }

    /// Builds a core table by reusing a representative core's geometry.
    ///
    /// When two cores carry positionally identical allocation lists that
    /// differ only in vCPU ids (the planner's schedule-sharing fast path),
    /// the slice index and segment arrays — the expensive part of
    /// [`CpuTable::new`] — are the same structure; only `seg_vcpu` needs the
    /// ids substituted. The reuse is *checked*, not trusted: every `(start,
    /// end)` pair must match the representative's and the reserved segments
    /// must line up one-to-one with the allocations; any mismatch returns
    /// `None` and the caller builds the table from scratch. The result is
    /// field-for-field what [`CpuTable::new`] would produce (the slice and
    /// segment arrays depend only on interval geometry, which is equal by
    /// the check; `allocations` and `seg_vcpu` carry this core's ids).
    pub fn stamped_from(
        rep: &CpuTable,
        allocations: Vec<Allocation>,
        table_len: Nanos,
    ) -> Option<CpuTable> {
        if rep.allocations.len() != allocations.len() {
            return None;
        }
        if rep.seg_end.last() != Some(&table_len) {
            return None;
        }
        for (a, b) in rep.allocations.iter().zip(&allocations) {
            if a.start != b.start || a.end != b.end {
                return None;
            }
        }
        // Each allocation flattens to exactly one reserved segment, in
        // order; substitute ids positionally.
        let mut seg_vcpu = rep.seg_vcpu.clone();
        let mut next = 0usize;
        for v in seg_vcpu.iter_mut() {
            if *v != NO_VCPU {
                if rep.allocations.get(next).map(|a| a.vcpu.0) != Some(*v) {
                    return None;
                }
                *v = allocations[next].vcpu.0;
                next += 1;
            }
        }
        if next != allocations.len() {
            return None;
        }
        Some(CpuTable {
            allocations,
            slice_len: rep.slice_len,
            slices: rep.slices.clone(),
            seg_end: rep.seg_end.clone(),
            seg_vcpu,
        })
    }

    /// Returns the allocations in time order.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Returns this core's slice width.
    pub fn slice_len(&self) -> Nanos {
        self.slice_len
    }

    /// Returns the number of slices.
    pub fn n_slices(&self) -> usize {
        self.slices.len()
    }

    /// Returns the number of segments in the flattened schedule.
    pub fn n_segments(&self) -> usize {
        self.seg_end.len()
    }

    /// O(1) lookup: the slot covering table-relative time `t`.
    ///
    /// `t` must already be reduced modulo the table length (the
    /// [`Table::lookup`] wrapper does this). The walk from the slice's
    /// segment inspects a bounded number of records: a slice overlaps at
    /// most two allocations plus the idle gaps around them.
    pub fn slot_at(&self, t: Nanos, table_len: Nanos) -> Slot {
        debug_assert!(t < table_len, "lookup time {t} not reduced mod {table_len}");
        self.segment_slot(self.segment_at(t))
    }

    /// Index of the segment containing table-relative time `t` (random
    /// access via the slice index).
    pub fn segment_at(&self, t: Nanos) -> usize {
        let slice = (t / self.slice_len).min(self.slices.len() as u64 - 1) as usize;
        let mut i = self.slices[slice] as usize;
        while self.seg_end[i] <= t {
            i += 1;
        }
        i
    }

    /// Advances a segment-index `hint` to the segment containing `t`.
    ///
    /// When `t` lies at or after the hinted segment's start this is a pure
    /// forward walk (the dispatcher's steady state: amortized O(1), no
    /// division, one contiguous array); otherwise it falls back to
    /// [`CpuTable::segment_at`].
    pub fn seek_segment(&self, hint: usize, t: Nanos) -> usize {
        let mut i = hint;
        if i >= self.seg_end.len() || t < self.segment_start(i) {
            return self.segment_at(t);
        }
        while self.seg_end[i] <= t {
            i += 1;
        }
        i
    }

    /// Table-relative start of segment `i`.
    pub fn segment_start(&self, i: usize) -> Nanos {
        if i == 0 {
            Nanos::ZERO
        } else {
            self.seg_end[i - 1]
        }
    }

    /// The [`Slot`] verdict for segment `i`.
    pub fn segment_slot(&self, i: usize) -> Slot {
        let until = self.seg_end[i];
        match self.seg_vcpu[i] {
            NO_VCPU => Slot::Idle { until },
            v => Slot::Reserved {
                vcpu: VcpuId(v),
                until,
            },
        }
    }

    /// Total reserved time in this core's table.
    pub fn busy_time(&self) -> Nanos {
        self.allocations.iter().map(|a| a.len()).sum()
    }
}

/// Home core of a vCPU given its sorted `(core, start, end)` allocations:
/// the core with the most reserved time, ties to the lowest core id, `0`
/// for an empty list (the fresh-build default).
fn home_of(allocations: &[(usize, Nanos, Nanos)]) -> usize {
    let mut per_core_time: Vec<(usize, Nanos)> = Vec::new();
    for &(core, s, e) in allocations {
        match per_core_time.iter_mut().find(|(c, _)| *c == core) {
            Some((_, t)) => *t += e - s,
            None => per_core_time.push((core, e - s)),
        }
    }
    per_core_time
        .iter()
        .max_by_key(|&&(c, t)| (t, std::cmp::Reverse(c)))
        .map(|&(c, _)| c)
        .unwrap_or(0)
}

/// Per-vCPU placement metadata derived from the table, used for wake-up
/// routing and second-level eligibility (Sec. 6, "Efficient wake-ups").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcpuPlacement {
    /// All allocations of this vCPU as `(core, start, end)`, sorted by start.
    pub allocations: Vec<(usize, Nanos, Nanos)>,
    /// The core carrying the largest share of this vCPU's reserved time —
    /// the vCPU's "home" for second-level scheduling (the "trailing core"
    /// policy degenerates to this for non-migrating vCPUs, which are the
    /// common case).
    pub home_core: usize,
}

/// A complete Tableau scheduling table.
///
/// # Examples
///
/// ```
/// use rtsched::time::Nanos;
/// use tableau_core::table::{Allocation, Table};
/// use tableau_core::vcpu::VcpuId;
///
/// let ms = Nanos::from_millis;
/// let table = Table::new(
///     ms(10),
///     vec![vec![
///         Allocation { start: ms(0), end: ms(3), vcpu: VcpuId(0) },
///         Allocation { start: ms(5), end: ms(8), vcpu: VcpuId(1) },
///     ]],
/// )
/// .unwrap();
/// // Lookups reduce absolute time modulo the table length.
/// let slot = table.lookup(0, ms(26)); // round 2, offset 6 ms: inside [5, 8)
/// assert_eq!(slot.vcpu(), Some(VcpuId(1)));
/// let slot = table.lookup(0, ms(24)); // offset 4 ms: idle gap [3, 5)
/// assert_eq!(slot.vcpu(), None);
/// let slot = table.lookup(0, ms(21)); // offset 1 ms: inside [0, 3)
/// assert_eq!(slot.vcpu(), Some(VcpuId(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table length (one hyperperiod).
    len: Nanos,
    /// Per-core tables, indexed by core id. `Arc`-shared so a delta splice
    /// ([`Table::patched_from`]) reuses untouched cores by reference
    /// instead of copying their slice and segment arrays.
    cpus: Vec<Arc<CpuTable>>,
    /// Per-vCPU placement metadata, indexed by `VcpuId` (`Arc`-shared for
    /// the same splice reuse).
    placements: Vec<Arc<VcpuPlacement>>,
    /// Per-core home lists: `homed[c]` holds the vCPUs whose home core is
    /// `c`, precomputed so second-level rebuilds on a table switch never
    /// re-scan all placements.
    homed: Vec<Vec<VcpuId>>,
}

impl Table {
    /// Builds a table from per-core allocation lists.
    ///
    /// # Errors
    ///
    /// Propagates per-core structural errors, and rejects a vCPU whose
    /// allocations overlap in time across cores (it cannot run on two cores
    /// at once).
    pub fn new(len: Nanos, per_core: Vec<Vec<Allocation>>) -> Result<Table, String> {
        Table::new_with_stamps(len, per_core, &[])
    }

    /// Like [`Table::new`], with a schedule-sharing hint: `stamps[core] =
    /// Some(rep)` proposes building `core`'s slice table by substituting ids
    /// into core `rep`'s (which must have a lower index). Each hint is
    /// verified by [`CpuTable::stamped_from`]; a hint that does not check
    /// out (or is absent — pass `&[]` for none) falls back to a fresh
    /// per-core build, so the produced table is always identical to
    /// [`Table::new`]'s.
    pub fn new_with_stamps(
        len: Nanos,
        per_core: Vec<Vec<Allocation>>,
        stamps: &[Option<usize>],
    ) -> Result<Table, String> {
        let mut cpus: Vec<CpuTable> = Vec::with_capacity(per_core.len());
        for (core, allocs) in per_core.iter().enumerate() {
            let stamped = stamps
                .get(core)
                .copied()
                .flatten()
                .filter(|&rep| rep < core)
                .and_then(|rep| CpuTable::stamped_from(&cpus[rep], allocs.clone(), len));
            let cpu = match stamped {
                Some(c) => c,
                None => {
                    CpuTable::new(allocs.clone(), len).map_err(|e| format!("core {core}: {e}"))?
                }
            };
            cpus.push(cpu);
        }
        Table::assemble(len, per_core, cpus)
    }

    /// Like [`Table::new`], splicing in compiled per-core tables from a
    /// *donor* (typically the previous plan's table): `donors[core] =
    /// Some(cpu)` proposes reusing `cpu`'s slice index and segment arrays
    /// for this core. This is the delta-replanning splice: untouched cores
    /// keep their compiled form without re-running the slice build.
    ///
    /// Every donation is *checked*, not trusted — [`CpuTable::stamped_from`]
    /// verifies positional `(start, end)` geometry and id alignment, and the
    /// cross-core placement validation below runs on the full allocation
    /// set either way — so the produced table is always field-identical to
    /// what [`Table::new`] would build from the same allocations.
    pub fn new_with_donors(
        len: Nanos,
        per_core: Vec<Vec<Allocation>>,
        donors: &[Option<&CpuTable>],
    ) -> Result<Table, String> {
        let mut cpus: Vec<CpuTable> = Vec::with_capacity(per_core.len());
        for (core, allocs) in per_core.iter().enumerate() {
            let donated = donors
                .get(core)
                .copied()
                .flatten()
                .and_then(|rep| CpuTable::stamped_from(rep, allocs.clone(), len));
            let cpu = match donated {
                Some(c) => c,
                None => {
                    CpuTable::new(allocs.clone(), len).map_err(|e| format!("core {core}: {e}"))?
                }
            };
            cpus.push(cpu);
        }
        Table::assemble(len, per_core, cpus)
    }

    /// Like [`Table::new`], but starting from a previous table and replacing
    /// only the cores listed in `updates`; every core not listed keeps its
    /// compiled table, its vCPU ids, and its placement entries verbatim.
    ///
    /// This is the delta-replanning splice for id-stable churn (a VM join,
    /// or a leave of the highest-numbered VM): untouched cores carry exactly
    /// the same `(vcpu, start, end)` triples as before, so their placements,
    /// home cores, and slice tables are reused wholesale instead of being
    /// rebuilt from the full allocation set. Updated cores are validated by
    /// [`CpuTable::new`] as usual, and every vCPU that gained or lost an
    /// allocation on an updated core is re-sorted, re-checked for cross-core
    /// overlap, and re-homed — so the result is field-identical to what
    /// [`Table::new`] would build from the combined allocation lists.
    pub fn patched_from(
        prev: &Table,
        updates: Vec<(usize, Vec<Allocation>)>,
    ) -> Result<Table, String> {
        let len = prev.len;
        let mut cpus = prev.cpus.clone();
        let mut placements = prev.placements.clone();

        // vCPUs whose allocation set changes: everything previously on an
        // updated core, plus everything newly placed there.
        let mut touched: Vec<u32> = Vec::new();
        for &(core, ref allocs) in &updates {
            if core >= cpus.len() {
                return Err(format!("update for core {core} out of range"));
            }
            touched.extend(prev.cpus[core].allocations().iter().map(|a| a.vcpu.0));
            touched.extend(allocs.iter().map(|a| a.vcpu.0));
        }
        touched.sort_unstable();
        touched.dedup();

        // Grow the placement vector for ids the updates introduce.
        if let Some(max_new) = updates
            .iter()
            .flat_map(|(_, a)| a.iter().map(|x| x.vcpu.0))
            .max()
        {
            if max_new as usize >= placements.len() {
                placements.resize(
                    max_new as usize + 1,
                    Arc::new(VcpuPlacement {
                        allocations: Vec::new(),
                        home_core: 0,
                    }),
                );
            }
        }

        // Drop the touched vCPUs' allocations on updated cores, then re-add
        // from the new lists (a fresh build pushes in core order; within one
        // vCPU equal starts are impossible in a valid table, so the sort
        // below reproduces the fresh build's ordering exactly).
        let updated_cores: Vec<usize> = updates.iter().map(|&(c, _)| c).collect();
        for &v in &touched {
            Arc::make_mut(&mut placements[v as usize])
                .allocations
                .retain(|&(c, _, _)| !updated_cores.contains(&c));
        }
        for (core, allocs) in updates {
            for a in &allocs {
                Arc::make_mut(&mut placements[a.vcpu.0 as usize])
                    .allocations
                    .push((core, a.start, a.end));
            }
            cpus[core] =
                Arc::new(CpuTable::new(allocs, len).map_err(|e| format!("core {core}: {e}"))?);
        }

        // Re-validate and re-home the touched vCPUs exactly as
        // [`Table::assemble`] does; untouched vCPUs cannot have gained an
        // overlap (their allocation sets are unchanged).
        for &v in &touched {
            let p = Arc::make_mut(&mut placements[v as usize]);
            p.allocations.sort_by_key(|&(_, s, _)| s);
            for w in p.allocations.windows(2) {
                if w[0].2 > w[1].1 {
                    return Err(format!(
                        "vCPU v{v} has overlapping allocations at {}",
                        w[1].1
                    ));
                }
            }
            p.home_core = home_of(&p.allocations);
        }
        // A fresh build sizes placements to the highest id with allocations.
        while placements.last().is_some_and(|p| p.allocations.is_empty()) {
            placements.pop();
        }
        // The trailing-id cleanup is *checked*, not trusted: a leave-of-last
        // splice whose translate step left a departed vCPU's allocations
        // behind would survive the pops above with a live placement the new
        // table should not carry. Cross-check every touched id against the
        // spliced per-core tables before committing.
        for &v in &touched {
            let on_cores = cpus
                .iter()
                .any(|c| c.allocations().iter().any(|a| a.vcpu.0 == v));
            let placed = placements
                .get(v as usize)
                .is_some_and(|p| !p.allocations.is_empty());
            if placed && !on_cores {
                debug_assert!(false, "stale placement for vCPU v{v} survived the splice");
                return Err(format!("stale placement for vCPU v{v} survived the splice"));
            }
        }

        // Home lists: remove every touched vCPU, then re-insert the ones
        // that still exist at their (ascending-id) position.
        let mut homed = prev.homed.clone();
        for list in &mut homed {
            list.retain(|v| touched.binary_search(&v.0).is_err());
        }
        for &v in &touched {
            let Some(p) = placements.get(v as usize) else {
                continue;
            };
            if p.allocations.is_empty() {
                continue;
            }
            let list = &mut homed[p.home_core];
            let at = list.partition_point(|&x| x.0 < v);
            list.insert(at, VcpuId(v));
        }

        Ok(Table {
            len,
            cpus,
            placements,
            homed,
        })
    }

    /// Shared tail of the constructors: placement metadata, cross-core
    /// overlap validation, and home-core assignment.
    fn assemble(
        len: Nanos,
        per_core: Vec<Vec<Allocation>>,
        cpus: Vec<CpuTable>,
    ) -> Result<Table, String> {
        // Build per-vCPU placements.
        let max_vcpu = per_core
            .iter()
            .flatten()
            .map(|a| a.vcpu.0)
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0);
        let mut placements = vec![
            VcpuPlacement {
                allocations: Vec::new(),
                home_core: 0,
            };
            max_vcpu
        ];
        for (core, allocs) in per_core.iter().enumerate() {
            for a in allocs {
                placements[a.vcpu.0 as usize]
                    .allocations
                    .push((core, a.start, a.end));
            }
        }
        for (vid, p) in placements.iter_mut().enumerate() {
            p.allocations.sort_by_key(|&(_, s, _)| s);
            // Cross-core overlap check.
            for w in p.allocations.windows(2) {
                if w[0].2 > w[1].1 {
                    return Err(format!(
                        "vCPU v{vid} has overlapping allocations at {}",
                        w[1].1
                    ));
                }
            }
            p.home_core = home_of(&p.allocations);
        }

        let mut homed = vec![Vec::new(); per_core.len()];
        for (vid, p) in placements.iter().enumerate() {
            if !p.allocations.is_empty() {
                homed[p.home_core].push(VcpuId(vid as u32));
            }
        }

        Ok(Table {
            len,
            cpus: cpus.into_iter().map(Arc::new).collect(),
            placements: placements.into_iter().map(Arc::new).collect(),
            homed,
        })
    }

    /// Returns the table length (one hyperperiod).
    pub fn len(&self) -> Nanos {
        self.len
    }

    /// Returns the number of cores.
    pub fn n_cores(&self) -> usize {
        self.cpus.len()
    }

    /// Returns the per-core table of `core`.
    pub fn cpu(&self, core: usize) -> &CpuTable {
        &self.cpus[core]
    }

    /// O(1) dispatch lookup for `core` at absolute time `now`.
    ///
    /// The returned [`Slot`]'s `until` is table-relative; use
    /// [`Table::slot_end_abs`] for the absolute expiry.
    pub fn lookup(&self, core: usize, now: Nanos) -> Slot {
        let t = now % self.len;
        self.cpus[core].slot_at(t, self.len)
    }

    /// Absolute time at which the slot covering `now` on `core` expires.
    pub fn slot_end_abs(&self, core: usize, now: Nanos) -> Nanos {
        let t = now % self.len;
        let slot = self.cpus[core].slot_at(t, self.len);
        now + (slot.until() - t)
    }

    /// Per-vCPU placement metadata (wake-up routing, home cores).
    ///
    /// Returns `None` for a vCPU with no allocations in this table.
    pub fn placement(&self, vcpu: VcpuId) -> Option<&VcpuPlacement> {
        self.placements
            .get(vcpu.0 as usize)
            .map(|p| &**p)
            .filter(|p| !p.allocations.is_empty())
    }

    /// The wake-up IPI target for `vcpu` at absolute time `now` (Sec. 6):
    /// the core where the vCPU currently has an allocation, or the core of
    /// its *next* upcoming allocation (its home core for service).
    pub fn wakeup_target(&self, vcpu: VcpuId, now: Nanos) -> Option<usize> {
        let p = self.placement(vcpu)?;
        let t = now % self.len;
        // Current allocation?
        for &(core, s, e) in &p.allocations {
            if s <= t && t < e {
                return Some(core);
            }
        }
        // Next allocation in this round, else the first of the next round.
        for &(core, s, _) in &p.allocations {
            if s > t {
                return Some(core);
            }
        }
        p.allocations.first().map(|&(core, _, _)| core)
    }

    /// vCPU ids with at least one allocation whose home core is `core`
    /// (precomputed at table build time; ascending by id).
    pub fn vcpus_homed_on(&self, core: usize) -> &[VcpuId] {
        &self.homed[core]
    }

    /// The shortest allocation across all cores (diagnostic; drives the
    /// per-core slice sizing which is already done internally).
    pub fn shortest_allocation(&self) -> Option<Nanos> {
        self.cpus
            .iter()
            .flat_map(|c| c.allocations().iter().map(|a| a.len()))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn alloc(s: u64, e: u64, v: u32) -> Allocation {
        Allocation {
            start: ms(s),
            end: ms(e),
            vcpu: VcpuId(v),
        }
    }

    fn table_1core() -> Table {
        Table::new(
            ms(10),
            vec![vec![alloc(0, 2, 0), alloc(2, 5, 1), alloc(7, 9, 2)]],
        )
        .unwrap()
    }

    #[test]
    fn lookup_inside_allocations() {
        let t = table_1core();
        assert_eq!(
            t.lookup(0, ms(0)),
            Slot::Reserved {
                vcpu: VcpuId(0),
                until: ms(2)
            }
        );
        assert_eq!(
            t.lookup(0, ms(3)),
            Slot::Reserved {
                vcpu: VcpuId(1),
                until: ms(5)
            }
        );
        assert_eq!(t.lookup(0, ms(5)), Slot::Idle { until: ms(7) });
        assert_eq!(t.lookup(0, ms(9)), Slot::Idle { until: ms(10) });
    }

    #[test]
    fn lookup_wraps_modulo_table_length() {
        let t = table_1core();
        assert_eq!(t.lookup(0, ms(23)).vcpu(), Some(VcpuId(1)));
        assert_eq!(t.slot_end_abs(0, ms(23)), ms(25));
        assert_eq!(t.slot_end_abs(0, ms(29)), ms(30));
    }

    #[test]
    fn slice_len_is_shortest_allocation() {
        let t = table_1core();
        assert_eq!(t.cpu(0).slice_len(), ms(2));
        assert_eq!(t.cpu(0).n_slices(), 5);
    }

    #[test]
    fn empty_core_is_always_idle() {
        let t = Table::new(ms(10), vec![vec![], vec![alloc(0, 10, 0)]]).unwrap();
        assert_eq!(t.lookup(0, ms(4)), Slot::Idle { until: ms(10) });
        assert_eq!(t.lookup(1, ms(4)).vcpu(), Some(VcpuId(0)));
    }

    #[test]
    fn exhaustive_lookup_matches_linear_scan() {
        // Property-style check at 100 us granularity: the O(1) slice lookup
        // agrees with a naive scan over allocations.
        let allocs = vec![
            alloc(0, 1, 0),
            alloc(1, 3, 1),
            alloc(4, 8, 2),
            alloc(9, 10, 3),
        ];
        let t = Table::new(ms(10), vec![allocs.clone()]).unwrap();
        let mut now = Nanos::ZERO;
        while now < ms(10) {
            let want = allocs.iter().find(|a| a.contains(now));
            assert_eq!(
                t.lookup(0, now).vcpu(),
                want.map(|a| a.vcpu),
                "mismatch at {now}"
            );
            now += Nanos::from_micros(100);
        }
    }

    #[test]
    fn overlapping_allocations_rejected() {
        assert!(Table::new(ms(10), vec![vec![alloc(0, 3, 0), alloc(2, 5, 1)]]).is_err());
    }

    #[test]
    fn cross_core_vcpu_overlap_rejected() {
        let r = Table::new(ms(10), vec![vec![alloc(0, 3, 0)], vec![alloc(2, 5, 0)]]);
        assert!(r.is_err());
    }

    #[test]
    fn cross_core_vcpu_adjacent_ok() {
        let t = Table::new(ms(10), vec![vec![alloc(0, 3, 0)], vec![alloc(3, 5, 0)]]).unwrap();
        let p = t.placement(VcpuId(0)).unwrap();
        assert_eq!(p.allocations.len(), 2);
        // Home core is the one with more time.
        assert_eq!(p.home_core, 0);
    }

    #[test]
    fn wakeup_targets() {
        let t = Table::new(ms(10), vec![vec![alloc(0, 2, 0)], vec![alloc(5, 9, 1)]]).unwrap();
        // During its allocation.
        assert_eq!(t.wakeup_target(VcpuId(0), ms(1)), Some(0));
        // After it: next allocation is next round, still core 0.
        assert_eq!(t.wakeup_target(VcpuId(0), ms(6)), Some(0));
        // Before vCPU 1's slot: upcoming allocation on core 1.
        assert_eq!(t.wakeup_target(VcpuId(1), ms(1)), Some(1));
        // Unknown vCPU.
        assert_eq!(t.wakeup_target(VcpuId(7), ms(1)), None);
    }

    #[test]
    fn homed_vcpus() {
        let t = Table::new(
            ms(10),
            vec![vec![alloc(0, 2, 0), alloc(2, 4, 1)], vec![alloc(0, 5, 2)]],
        )
        .unwrap();
        assert_eq!(t.vcpus_homed_on(0), vec![VcpuId(0), VcpuId(1)]);
        assert_eq!(t.vcpus_homed_on(1), vec![VcpuId(2)]);
    }

    #[test]
    fn allocation_past_table_end_rejected() {
        assert!(Table::new(ms(10), vec![vec![alloc(8, 12, 0)]]).is_err());
    }

    #[test]
    fn stamped_cpu_table_matches_fresh_build() {
        // Two cores with positionally identical allocations, different ids:
        // the stamped build must be field-for-field the fresh build.
        let a0 = vec![alloc(0, 2, 0), alloc(2, 5, 1), alloc(7, 9, 2)];
        let a1 = vec![alloc(0, 2, 10), alloc(2, 5, 11), alloc(7, 9, 12)];
        let rep = CpuTable::new(a0, ms(10)).unwrap();
        let stamped = CpuTable::stamped_from(&rep, a1.clone(), ms(10)).unwrap();
        let fresh = CpuTable::new(a1, ms(10)).unwrap();
        assert_eq!(stamped, fresh);
    }

    #[test]
    fn stamped_cpu_table_rejects_geometry_mismatch() {
        let rep = CpuTable::new(vec![alloc(0, 2, 0)], ms(10)).unwrap();
        // Different interval.
        assert!(CpuTable::stamped_from(&rep, vec![alloc(0, 3, 5)], ms(10)).is_none());
        // Different count.
        assert!(CpuTable::stamped_from(&rep, vec![], ms(10)).is_none());
        // Different table length.
        assert!(CpuTable::stamped_from(&rep, vec![alloc(0, 2, 5)], ms(20)).is_none());
    }

    #[test]
    fn table_with_stamps_equals_plain_table() {
        let per_core = vec![
            vec![alloc(0, 2, 0), alloc(5, 8, 1)],
            vec![alloc(0, 2, 2), alloc(5, 8, 3)],
        ];
        let plain = Table::new(ms(10), per_core.clone()).unwrap();
        let stamped = Table::new_with_stamps(ms(10), per_core.clone(), &[None, Some(0)]).unwrap();
        assert_eq!(plain, stamped);
        // A bogus hint (rep not below core) is ignored, not an error.
        let bogus = Table::new_with_stamps(ms(10), per_core, &[Some(1), None]).unwrap();
        assert_eq!(plain, bogus);
    }

    #[test]
    fn patched_table_matches_fresh_build() {
        let prev = Table::new(
            ms(10),
            vec![vec![alloc(0, 2, 0), alloc(5, 8, 1)], vec![alloc(0, 4, 2)]],
        )
        .unwrap();
        // Replace core 1's schedule and introduce a new vCPU 3.
        let patched =
            Table::patched_from(&prev, vec![(1, vec![alloc(0, 3, 2), alloc(4, 7, 3)])]).unwrap();
        let fresh = Table::new(
            ms(10),
            vec![
                vec![alloc(0, 2, 0), alloc(5, 8, 1)],
                vec![alloc(0, 3, 2), alloc(4, 7, 3)],
            ],
        )
        .unwrap();
        assert_eq!(patched, fresh);
    }

    #[test]
    fn patched_table_detects_cross_core_overlap() {
        // vCPU 0 lives on core 0 at [0, 3); patching core 1 to also reserve
        // it at [2, 5) must be rejected like a fresh build would.
        let prev = Table::new(ms(10), vec![vec![alloc(0, 3, 0)], vec![alloc(5, 7, 1)]]).unwrap();
        assert!(Table::patched_from(&prev, vec![(1, vec![alloc(2, 5, 0)])]).is_err());
        // The same patch with a non-overlapping interval is fine, and the
        // migrating vCPU is re-homed onto the core with more time.
        let ok = Table::patched_from(&prev, vec![(1, vec![alloc(3, 9, 0)])]).unwrap();
        assert_eq!(ok.placement(VcpuId(0)).unwrap().home_core, 1);
    }

    #[test]
    fn patched_table_drops_trailing_empty_ids() {
        let prev = Table::new(ms(10), vec![vec![alloc(0, 3, 0)], vec![alloc(0, 4, 5)]]).unwrap();
        let patched = Table::patched_from(&prev, vec![(1, vec![alloc(0, 4, 1)])]).unwrap();
        let fresh = Table::new(ms(10), vec![vec![alloc(0, 3, 0)], vec![alloc(0, 4, 1)]]).unwrap();
        assert_eq!(patched, fresh);
        assert!(patched.placement(VcpuId(5)).is_none());
        assert_eq!(patched.vcpus_homed_on(1), vec![VcpuId(1)]);
    }

    /// A table whose placement metadata bogusly claims vCPU 1 also lives
    /// on core 0 — the desync the checked trailing-id cleanup must catch
    /// when a leave-of-last splice empties vCPU 1's real core.
    fn desynced_table() -> Table {
        let mut prev =
            Table::new(ms(10), vec![vec![alloc(0, 3, 0)], vec![alloc(0, 4, 1)]]).unwrap();
        Arc::make_mut(&mut prev.placements[1])
            .allocations
            .push((0, ms(8), ms(9)));
        prev
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale placement for vCPU v1")]
    fn stale_placement_after_splice_panics_in_debug() {
        let _ = Table::patched_from(&desynced_table(), vec![(1, vec![])]);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn stale_placement_after_splice_errors_in_release() {
        let err = Table::patched_from(&desynced_table(), vec![(1, vec![])]).unwrap_err();
        assert!(err.starts_with("stale placement"), "{err}");
    }

    #[test]
    fn patched_table_rejects_out_of_range_core() {
        let prev = Table::new(ms(10), vec![vec![alloc(0, 3, 0)]]).unwrap();
        assert!(Table::patched_from(&prev, vec![(1, vec![alloc(0, 2, 1)])]).is_err());
    }

    #[test]
    fn slot_until_and_vcpu_accessors() {
        let s = Slot::Reserved {
            vcpu: VcpuId(3),
            until: ms(4),
        };
        assert_eq!(s.until(), ms(4));
        assert_eq!(s.vcpu(), Some(VcpuId(3)));
        let i = Slot::Idle { until: ms(9) };
        assert_eq!(i.until(), ms(9));
        assert_eq!(i.vcpu(), None);
    }
}
