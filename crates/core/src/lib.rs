//! Tableau: a table-driven, high-throughput, predictable VM scheduler.
//!
//! This crate is a from-scratch Rust reproduction of the system described in
//! *Tableau: A High-Throughput and Predictable VM Scheduler for High-Density
//! Workloads* (Vanga, Gujarati & Brandenburg, EuroSys 2018). Tableau
//! guarantees every vCPU a minimum processor share `U` and a hard bound `L`
//! on its scheduling latency, by splitting scheduling into:
//!
//! * a **planner** ([`planner`]) that runs off the hot path (on VM
//!   creation/teardown/reconfiguration) and compiles all SLAs into a cyclic
//!   scheduling table using hard real-time scheduling theory (the `rtsched`
//!   crate);
//! * a **dispatcher** ([`dispatch`]) whose hot path is an O(1) table lookup
//!   ([`table`]), backed by a core-local second-level fair-share scheduler
//!   ([`level2`]) for work conservation, a lock-free time-synchronized
//!   table-switch protocol ([`switch`]), and a core-ownership hand-off for
//!   migrating vCPUs;
//! * a compact **binary table format** ([`binary`]) — the hypercall payload
//!   in the Xen implementation, and the metric of the paper's Fig. 4.
//!
//! # Quick start
//!
//! ```
//! use rtsched::time::Nanos;
//! use tableau_core::planner::{plan, PlannerOptions};
//! use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
//!
//! // Two cores, four VMs with 25% reservations and a 20 ms latency bound.
//! let mut host = HostConfig::new(2);
//! let spec = VcpuSpec::new(Utilization::from_percent(25), Nanos::from_millis(20));
//! for i in 0..8 {
//!     host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
//! }
//! let plan = plan(&host, &PlannerOptions::default()).unwrap();
//!
//! // The table answers "who runs on core 0 at t = 1 ms?" in O(1).
//! let slot = plan.table.lookup(0, Nanos::from_millis(1));
//! assert!(slot.vcpu().is_some() || slot.until() > Nanos::ZERO);
//! ```

pub mod audit;
pub mod binary;
pub mod cache;
pub mod delta;
pub mod dispatch;
pub mod guardian;
pub mod incremental;
pub mod level2;
pub mod planner;
pub mod postprocess;
pub mod switch;
pub mod table;
pub mod vcpu;
pub mod viz;

pub use audit::{corrupt_table, corrupt_table_any, AuditViolation, CorruptionKind, TableAuditor};
pub use delta::{plan_delta, DeltaAbort, DeltaReport};
pub use dispatch::{Decision, Dispatcher};
pub use guardian::{
    CoreEvent, Guardian, GuardianConfig, GuardianCounters, RecoveryAction, RecoveryRecord,
    SlaMonitor, SlaViolation,
};
pub use planner::{
    plan, plan_timed, plan_with_fallback, Plan, PlanError, PlanTimings, PlannerOptions,
    ReplanError, ReplanOutcome, ReplanPath,
};
pub use switch::{InstallError, StagedInstall, TableManager};
pub use table::{Allocation, Slot, Table};
pub use vcpu::{HostConfig, Utilization, VcpuId, VcpuSpec, VmSpec};
