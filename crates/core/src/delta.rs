//! Delta replanning: patch only the bins a single-VM churn event dirtied.
//!
//! The full planner re-runs pack → simulate → coalesce → verify → slice-build
//! for the whole host on every create/teardown/resize, even though a
//! single-VM change typically perturbs exactly one bin: worst-fit-decreasing
//! orders tasks by exact utilization with ties broken by index, so the
//! assignment of every unaffected task is reproduced verbatim. The delta
//! planner exploits that determinism:
//!
//! 1. Re-run SLA translation and WFD packing (cheap, microseconds) for the
//!    *new* host config — packing is the ground truth, never guessed.
//! 2. Diff each bin against the previous plan's recorded packing
//!    ([`Plan::core_bins`]): a bin whose `(cost, period)` tuple sequence is
//!    positionally unchanged is **clean** — its allocations, coalescing
//!    report, compiled slice table ([`CpuTable`]), and blackout bounds are
//!    reused under a positional vCPU-id relabeling, exactly like the
//!    generator's `BinSignature` stamps. Everything else is **dirty** and is
//!    re-simulated, re-verified, and re-coalesced from scratch.
//! 3. Splice the clean cores into the new [`Table`]. When every clean bin
//!    keeps its vCPU ids verbatim (the common join / leave-of-last case —
//!    ids below the churned VM never shift), [`Table::patched_from`]
//!    patches the previous table in place: untouched cores keep their
//!    compiled slice tables and placement entries by `Arc` reference, and
//!    only vCPUs on dirtied cores are re-validated. Otherwise (e.g. a
//!    teardown in the middle of the host shifts later ids) each clean
//!    core's artifacts are reused under a positional relabeling via
//!    [`Table::new_with_donors`] — the donation is geometry-checked and
//!    the cross-core placement validation runs on the full allocation set.
//!
//! The output is **field-identical** to what a full [`crate::planner::plan`]
//! of the same host would produce (pinned by the `prop_delta` property
//! test): every reuse is justified by a purity argument — EDF output is a
//! function of the bin's tuple sequence, coalescing of interval geometry,
//! blackouts of a vCPU's interval set — and anything outside those
//! guarantees aborts to the [`crate::planner::plan_with_fallback`] ladder.
//!
//! A delta **aborts** (rather than errs) whenever its preconditions fail:
//! the previous plan used C=D splits or DP-Fair clusters, the peephole pass
//! is on, the host geometry changed, the bin metadata is missing, or the new
//! config falls out of plain partitioning. Aborting is the designed
//! fallback trigger — the caller continues down the replanning ladder.

use std::collections::HashMap;

use rtsched::edf::simulate_edf;
use rtsched::generator::Stage;
use rtsched::partition::worst_fit_decreasing_with_preferences;
use rtsched::rules::{verify_with_engine, RuleEngine};
use rtsched::time::Nanos;
use rtsched::MultiCoreSchedule;

use crate::planner::{blackout_in_table, translate, Plan, PlannerOptions};
use crate::postprocess::{coalesce_with, CoalesceReport};
use crate::table::{Allocation, CpuTable, Table};
use crate::vcpu::{HostConfig, VcpuId};

/// What a completed delta replan reused and what it rebuilt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaReport {
    /// Shared cores whose bins were unchanged and spliced from the previous
    /// plan (allocations, coalescing, compiled table, blackouts).
    pub clean_cores: Vec<usize>,
    /// Shared cores whose bins changed and were re-simulated.
    pub dirty_cores: Vec<usize>,
}

/// Why the delta rung declined. None of these is a planning *failure* —
/// they mark configurations outside the delta's preconditions, handled by
/// the lower rungs of [`crate::planner::plan_with_fallback`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaAbort {
    /// The requested options disable bin-level patching (peephole rewrites
    /// allocations out from under the per-bin bookkeeping).
    Options,
    /// The previous plan used C=D splits or DP-Fair clusters; bins don't
    /// map one-to-one to whole vCPUs there.
    NotPartitioned,
    /// Host geometry (core count or hyperperiod) changed.
    Geometry,
    /// The previous plan carries no (or inconsistent) stage-1 bin record.
    NoBinMetadata,
    /// Admission or packing failed, or the new config fell out of plain
    /// partitioning.
    Packing(String),
    /// A dirtied bin failed simulation, verification, or table splice —
    /// the full pipeline (with its C=D and clustered stages) must decide.
    Bin(String),
    /// The table splice left a stale placement alive (a departed trailing
    /// vCPU surviving a leave-of-last) — the patched table cannot be
    /// trusted, so the full pipeline rebuilds from scratch.
    StalePlacement(String),
}

impl std::fmt::Display for DeltaAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaAbort::Options => write!(f, "options incompatible with delta planning"),
            DeltaAbort::NotPartitioned => write!(f, "previous plan is not plainly partitioned"),
            DeltaAbort::Geometry => write!(f, "host geometry changed"),
            DeltaAbort::NoBinMetadata => write!(f, "previous plan has no bin metadata"),
            DeltaAbort::Packing(e) => write!(f, "packing left stage 1: {e}"),
            DeltaAbort::Bin(e) => write!(f, "dirty bin failed: {e}"),
            DeltaAbort::StalePlacement(e) => write!(f, "table splice left {e}"),
        }
    }
}

impl std::error::Error for DeltaAbort {}

/// Replans `host` against `prev`, patching only the dirtied bins.
///
/// `prev` must have been planned for `prev_host` under the *same* `opts`
/// (the same contract as [`crate::incremental::plan_incremental`]): the
/// clean-bin reuse assumes the previous plan's per-core artifacts were
/// produced under the thresholds in effect now.
///
/// On success the returned [`Plan`] is field-identical to a full
/// [`crate::planner::plan`] of `host`, and carries fresh bin metadata so
/// subsequent deltas chain without ladder round-trips.
///
/// # Errors
///
/// [`DeltaAbort`] when the delta's preconditions don't hold; the caller
/// falls through to the full replanning ladder.
pub fn plan_delta(
    prev_host: &HostConfig,
    prev: &Plan,
    host: &HostConfig,
    opts: &PlannerOptions,
) -> Result<(Plan, DeltaReport), DeltaAbort> {
    if opts.peephole {
        return Err(DeltaAbort::Options);
    }
    if prev.stage != Stage::Partitioned || !prev.split_vcpus.is_empty() {
        return Err(DeltaAbort::NotPartitioned);
    }
    if prev_host.n_cores != host.n_cores {
        return Err(DeltaAbort::Geometry);
    }
    let hyperperiod = opts.candidates.hyperperiod();
    if prev.table.len() != hyperperiod || prev.table.n_cores() != host.n_cores {
        return Err(DeltaAbort::Geometry);
    }

    let tr = translate(host, opts).map_err(|e| DeltaAbort::Packing(e.to_string()))?;
    if prev.core_bins.len() != tr.shared_cores {
        // Missing metadata, or the dedicated set changed size (which shifts
        // the shared-core range) — either way the record is unusable.
        return Err(DeltaAbort::NoBinMetadata);
    }
    if tr.tasks.is_empty() {
        // Nothing to diff; a full plan of a probe-free host is trivial.
        return Err(DeltaAbort::Packing("no shared tasks".to_owned()));
    }

    // Mirror the generator's admission checks so a config it would reject
    // never reaches packing here.
    for t in &tr.tasks {
        if !(hyperperiod % t.period).is_zero() {
            return Err(DeltaAbort::Packing(format!(
                "period {} does not divide the hyperperiod",
                t.period
            )));
        }
    }
    let demand: Nanos = tr.tasks.iter().map(|t| t.cost_per(hyperperiod)).sum();
    if demand > hyperperiod * tr.shared_cores as u64 {
        return Err(DeltaAbort::Packing("over-utilized".to_owned()));
    }

    // Ground-truth packing of the new config — the same call, with the same
    // preferences, the full pipeline's stage 1 would make.
    let r =
        worst_fit_decreasing_with_preferences(&tr.tasks, tr.shared_cores, hyperperiod, &tr.prefs);
    if !r.is_complete() {
        return Err(DeltaAbort::Packing(format!(
            "{} task(s) unplaceable whole",
            r.unassigned.len()
        )));
    }

    // Previous per-vCPU parameters and blackouts, for clean-bin matching
    // and blackout reuse (vectors indexed by id — ids are dense and the
    // lookups sit on the per-allocation hot path).
    let id_cap = |it: &mut dyn Iterator<Item = usize>| it.max().map_or(0, |m| m + 1);
    let mut prev_params: Vec<Option<(Nanos, Nanos)>> =
        vec![None; id_cap(&mut prev.params.iter().map(|p| p.vcpu.0 as usize))];
    for p in &prev.params {
        prev_params[p.vcpu.0 as usize] = Some((p.cost, p.period));
    }
    let mut prev_blackout: Vec<Option<Nanos>> =
        vec![None; id_cap(&mut prev.worst_blackout.iter().map(|&(v, _)| v.0 as usize))];
    for &(v, b) in &prev.worst_blackout {
        prev_blackout[v.0 as usize] = Some(b);
    }

    // A bin is clean iff its (cost, period) tuple sequence is positionally
    // unchanged — EDF order breaks ties by slice position, so the bin's
    // schedule is a pure function of that sequence.
    let tuples_match = |core: usize, new_bin: &[rtsched::task::PeriodicTask]| {
        let prev_bin = &prev.core_bins[core];
        new_bin.len() == prev_bin.len()
            && new_bin.iter().zip(prev_bin).all(|(nt, pv)| {
                prev_params.get(pv.0 as usize).copied().flatten() == Some((nt.cost, nt.period))
            })
    };

    // When every clean bin also keeps its vCPU ids verbatim — the common
    // join / leave-of-last case, since `translate` numbers vCPUs in host
    // order and ids below the churned VM never shift — the splice can
    // patch the previous table wholesale ([`Table::patched_from`]) instead
    // of relabeling and re-assembling core by core.
    let identity = r.bins.cores.iter().enumerate().all(|(core, new_bin)| {
        !tuples_match(core, new_bin)
            || new_bin
                .iter()
                .zip(&prev.core_bins[core])
                .all(|(nt, pv)| nt.id.0 == pv.0)
    });

    let mut coalesce_by_core: Vec<CoalesceReport> = Vec::with_capacity(host.n_cores);
    let mut blackout_by_id: Vec<Option<Nanos>> =
        vec![None; id_cap(&mut tr.vcpus.iter().map(|&(v, _)| v.0 as usize))];
    let mut clean_cores: Vec<usize> = Vec::new();
    let mut dirty_cores: Vec<usize> = Vec::new();

    let table = if identity {
        // Id-stable splice: clean cores keep their compiled tables and
        // placement entries inside `prev.table`; only the dirtied bins (and
        // the trivially cheap dedicated cores) are rebuilt and patched in.
        let mut updates: Vec<(usize, Vec<Allocation>)> = Vec::new();
        for (core, new_bin) in r.bins.cores.iter().enumerate() {
            let report = prev.coalesce_by_core.get(core);
            let blackouts: Option<Vec<(u32, Nanos)>> = new_bin
                .iter()
                .map(|nt| {
                    prev_blackout
                        .get(nt.id.0 as usize)
                        .copied()
                        .flatten()
                        .map(|b| (nt.id.0, b))
                })
                .collect();
            match (tuples_match(core, new_bin), report, blackouts) {
                (true, Some(report), Some(blackouts)) => {
                    coalesce_by_core.push(report.clone());
                    for (v, b) in blackouts {
                        blackout_by_id[v as usize] = Some(b);
                    }
                    clean_cores.push(core);
                }
                _ => {
                    // Dirty (or clean but with inconsistent metadata):
                    // rebuild this bin exactly as the full pipeline would.
                    let (allocs, report) =
                        rebuild_bin(core, new_bin, hyperperiod, opts.coalesce_threshold)?;
                    updates.push((core, allocs));
                    coalesce_by_core.push(report);
                    dirty_cores.push(core);
                }
            }
        }
        // Dedicated cores: rebuilt fresh (one wall-to-wall allocation
        // each), exactly as in the full pipeline.
        for (i, &vcpu) in tr.dedicated.iter().enumerate() {
            updates.push((
                tr.shared_cores + i,
                vec![Allocation {
                    start: Nanos::ZERO,
                    end: hyperperiod,
                    vcpu,
                }],
            ));
            coalesce_by_core.push(CoalesceReport::default());
        }
        Table::patched_from(&prev.table, updates).map_err(|e| {
            if e.starts_with("stale placement") {
                DeltaAbort::StalePlacement(e)
            } else {
                DeltaAbort::Bin(e)
            }
        })?
    } else {
        // Relabeling splice: some clean bin changed vCPU ids (e.g. a leave
        // in the middle of the host shifts every later id down), so each
        // clean core's artifacts are reused under a positional relabeling
        // and the table is re-assembled from the full allocation set.
        let mut per_core: Vec<Vec<Allocation>> = Vec::with_capacity(host.n_cores);
        for (core, new_bin) in r.bins.cores.iter().enumerate() {
            let prev_bin = &prev.core_bins[core];
            let reused = tuples_match(core, new_bin).then(|| {
                let map: HashMap<u32, u32> = prev_bin
                    .iter()
                    .zip(new_bin)
                    .map(|(pv, nt)| (pv.0, nt.id.0))
                    .collect();
                let allocs: Option<Vec<Allocation>> = prev
                    .table
                    .cpu(core)
                    .allocations()
                    .iter()
                    .map(|a| {
                        map.get(&a.vcpu.0).map(|&v| Allocation {
                            vcpu: VcpuId(v),
                            ..*a
                        })
                    })
                    .collect();
                let report = prev
                    .coalesce_by_core
                    .get(core)
                    .and_then(|rep| rep.relabel(|v| map.get(&v.0).copied().map(VcpuId)));
                let blackouts: Option<Vec<(u32, Nanos)>> = prev_bin
                    .iter()
                    .zip(new_bin)
                    .map(|(pv, nt)| {
                        prev_blackout
                            .get(pv.0 as usize)
                            .copied()
                            .flatten()
                            .map(|b| (nt.id.0, b))
                    })
                    .collect();
                (allocs, report, blackouts)
            });

            match reused {
                Some((Some(allocs), Some(report), Some(blackouts))) => {
                    per_core.push(allocs);
                    coalesce_by_core.push(report);
                    for (v, b) in blackouts {
                        blackout_by_id[v as usize] = Some(b);
                    }
                    clean_cores.push(core);
                }
                _ => {
                    let (allocs, report) =
                        rebuild_bin(core, new_bin, hyperperiod, opts.coalesce_threshold)?;
                    per_core.push(allocs);
                    coalesce_by_core.push(report);
                    dirty_cores.push(core);
                }
            }
        }
        for &vcpu in &tr.dedicated {
            per_core.push(vec![Allocation {
                start: Nanos::ZERO,
                end: hyperperiod,
                vcpu,
            }]);
            coalesce_by_core.push(CoalesceReport::default());
        }

        // Splice: clean cores donate their compiled slice tables; the
        // donation is geometry-checked and the cross-core validation runs
        // on the full allocation set either way.
        let mut donors: Vec<Option<&CpuTable>> = vec![None; host.n_cores];
        for &c in &clean_cores {
            donors[c] = Some(prev.table.cpu(c));
        }
        Table::new_with_donors(hyperperiod, per_core, &donors).map_err(DeltaAbort::Bin)?
    };

    // Aggregate coalescing report, absorbed in core order like the full
    // pipeline (dedicated cores contribute nothing).
    let mut coalesce = CoalesceReport::default();
    for report in &coalesce_by_core {
        coalesce.absorb(report.clone());
    }

    // Blackouts: clean-core vCPUs keep their previous bound (their interval
    // set is unchanged modulo the relabeling); everything else — dirty-core
    // and dedicated vCPUs — is recomputed from the spliced table.
    let worst_blackout: Vec<(VcpuId, Nanos)> = tr
        .vcpus
        .iter()
        .map(|&(vcpu, _)| {
            let b = blackout_by_id
                .get(vcpu.0 as usize)
                .copied()
                .flatten()
                .unwrap_or_else(|| blackout_in_table(&table, vcpu, hyperperiod));
            (vcpu, b)
        })
        .collect();

    let core_bins: Vec<Vec<VcpuId>> = r
        .bins
        .cores
        .iter()
        .map(|bin| bin.iter().map(|t| VcpuId(t.id.0)).collect())
        .collect();

    Ok((
        Plan {
            table,
            stage: Stage::Partitioned,
            params: tr.params,
            split_vcpus: Vec::new(),
            coalesce,
            worst_blackout,
            core_bins,
            coalesce_by_core,
        },
        DeltaReport {
            clean_cores,
            dirty_cores,
        },
    ))
}

/// Re-simulates, verifies, and coalesces one dirtied bin exactly as the
/// full pipeline's partitioned stage would.
fn rebuild_bin(
    core: usize,
    new_bin: &[rtsched::task::PeriodicTask],
    hyperperiod: Nanos,
    coalesce_threshold: Nanos,
) -> Result<(Vec<Allocation>, CoalesceReport), DeltaAbort> {
    let sched = simulate_edf(new_bin, hyperperiod).map_err(|m| {
        DeltaAbort::Bin(format!(
            "EDF deadline miss on core {core}: task {} at {}",
            m.task, m.deadline
        ))
    })?;
    let mut one = MultiCoreSchedule::idle(hyperperiod, 1);
    one.cores[0] = sched;
    // Incremental verification: assert the rebuilt bin's facts into a
    // one-core rule engine and re-derive the invariants from them — the
    // cost is O(this bin), and across a delta O(dirtied bins), never
    // O(host). A decline (or any violation) degrades to the full
    // single-pass verifier, which is authoritative for the error text.
    let mut engine = RuleEngine::new(hyperperiod, 1);
    let _ = engine.apply_delta(0, new_bin.to_vec(), one.cores[0].segments().to_vec());
    let violations = verify_with_engine(&mut engine, new_bin, &one);
    if let Some(v) = violations.first() {
        return Err(DeltaAbort::Bin(format!(
            "core {core}: {v} ({} violation(s) total)",
            violations.len()
        )));
    }
    let mut allocs: Vec<Allocation> = one.cores[0]
        .segments()
        .iter()
        .map(|s| Allocation {
            start: s.start,
            end: s.end,
            vcpu: VcpuId(s.task.0),
        })
        .collect();
    // No split vCPUs in a partitioned plan, so every allocation may be
    // extended by a sliver donation.
    let report = coalesce_with(&mut allocs, coalesce_threshold, |_| true);
    Ok((allocs, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan;
    use crate::vcpu::{Utilization, VcpuSpec, VmSpec};

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    fn paper_spec() -> VcpuSpec {
        VcpuSpec::new(Utilization::from_percent(25), ms(20))
    }

    fn dense_host(cores: usize, vms: usize) -> HostConfig {
        let mut host = HostConfig::new(cores);
        for i in 0..vms {
            host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, paper_spec()));
        }
        host
    }

    #[test]
    fn paper_scale_add_dirties_one_bin_and_matches_full_replan() {
        // The bench-snapshot shape: 44 cores, 175 -> 176 paper VMs under
        // the punishing 1 ms goal. A single join must dirty exactly one
        // bin, take the id-stable fast splice, and still be field-identical
        // to the full replan.
        let opts = PlannerOptions::default();
        let spec = VcpuSpec::capped(Utilization::from_percent(25), ms(1));
        let mut prev_host = HostConfig::new(44);
        for i in 0..175 {
            prev_host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
        }
        let prev = plan(&prev_host, &opts).unwrap();
        let mut host = prev_host.clone();
        host.add_vm(VmSpec::uniform("vm175", 1, spec));
        let (delta, report) = plan_delta(&prev_host, &prev, &host, &opts).unwrap();
        assert_eq!(report.dirty_cores.len(), 1, "{report:?}");
        assert_eq!(report.clean_cores.len(), 43, "{report:?}");
        assert_eq!(delta, plan(&host, &opts).unwrap());
    }

    #[test]
    fn single_vm_add_is_field_identical_to_full_replan() {
        let opts = PlannerOptions::default();
        let prev_host = dense_host(4, 12);
        let prev = plan(&prev_host, &opts).unwrap();
        let mut host = prev_host.clone();
        host.add_vm(VmSpec::uniform("newcomer", 1, paper_spec()));

        let (delta, report) = plan_delta(&prev_host, &prev, &host, &opts).unwrap();
        let full = plan(&host, &opts).unwrap();
        assert_eq!(delta, full);
        assert!(
            !report.clean_cores.is_empty(),
            "a single-VM add must leave some bins clean: {report:?}"
        );
        assert_eq!(
            report.clean_cores.len() + report.dirty_cores.len(),
            4,
            "{report:?}"
        );
    }

    #[test]
    fn single_vm_remove_is_field_identical_to_full_replan() {
        let opts = PlannerOptions::default();
        let prev_host = dense_host(4, 13);
        let prev = plan(&prev_host, &opts).unwrap();
        // Remove the last VM (teardown churn keeps earlier ids stable).
        let host = dense_host(4, 12);

        let (delta, _) = plan_delta(&prev_host, &prev, &host, &opts).unwrap();
        assert_eq!(delta, plan(&host, &opts).unwrap());
    }

    #[test]
    fn mid_host_remove_relabels_and_matches_full_replan() {
        // Tearing down a VM in the middle of the host shifts every later
        // vCPU id down by one, so the id-stable splice declines and the
        // relabeling path must produce the same field-identical result.
        let opts = PlannerOptions::default();
        let prev_host = dense_host(4, 13);
        let prev = plan(&prev_host, &opts).unwrap();
        let mut host = HostConfig::new(4);
        for i in 0..13 {
            if i != 5 {
                host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, paper_spec()));
            }
        }
        let (delta, report) = plan_delta(&prev_host, &prev, &host, &opts).unwrap();
        assert_eq!(delta, plan(&host, &opts).unwrap());
        assert_eq!(
            report.clean_cores.len() + report.dirty_cores.len(),
            4,
            "{report:?}"
        );
    }

    #[test]
    fn deltas_chain_without_ladder_roundtrips() {
        let opts = PlannerOptions::default();
        let mut host = dense_host(4, 10);
        let mut current = plan(&host, &opts).unwrap();
        for i in 10..14 {
            let prev_host = host.clone();
            host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, paper_spec()));
            let (next, _) = plan_delta(&prev_host, &current, &host, &opts).unwrap();
            assert_eq!(next, plan(&host, &opts).unwrap());
            current = next;
        }
    }

    #[test]
    fn missing_bin_metadata_aborts() {
        let opts = PlannerOptions::default();
        let prev_host = dense_host(4, 12);
        let mut prev = plan(&prev_host, &opts).unwrap();
        prev.core_bins.clear();
        let mut host = prev_host.clone();
        host.add_vm(VmSpec::uniform("newcomer", 1, paper_spec()));
        assert_eq!(
            plan_delta(&prev_host, &prev, &host, &opts).unwrap_err(),
            DeltaAbort::NoBinMetadata
        );
    }

    #[test]
    fn geometry_change_aborts() {
        let opts = PlannerOptions::default();
        let prev_host = dense_host(4, 12);
        let prev = plan(&prev_host, &opts).unwrap();
        let host = dense_host(8, 13);
        assert_eq!(
            plan_delta(&prev_host, &prev, &host, &opts).unwrap_err(),
            DeltaAbort::Geometry
        );
    }

    #[test]
    fn peephole_options_abort() {
        let opts = PlannerOptions::default();
        let prev_host = dense_host(4, 12);
        let prev = plan(&prev_host, &opts).unwrap();
        let peephole = PlannerOptions {
            peephole: true,
            ..PlannerOptions::default()
        };
        assert_eq!(
            plan_delta(&prev_host, &prev, &prev_host, &peephole).unwrap_err(),
            DeltaAbort::Options
        );
    }

    #[test]
    fn over_utilized_delta_aborts_cleanly() {
        let opts = PlannerOptions::default();
        let prev_host = dense_host(1, 4);
        let prev = plan(&prev_host, &opts).unwrap();
        let host = dense_host(1, 5);
        assert!(matches!(
            plan_delta(&prev_host, &prev, &host, &opts).unwrap_err(),
            DeltaAbort::Packing(_)
        ));
    }
}
