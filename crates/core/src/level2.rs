//! The second-level, core-local fair-share scheduler (Sec. 4).
//!
//! A purely table-driven scheduler is not work-conserving: when the
//! table-designated vCPU is blocked, or an interval is idle, the core would
//! sit unused. Tableau fills these holes with a simple epoch-based
//! round-robin fair-share scheduler: the time within each (configurable)
//! epoch is divided evenly among the runnable vCPUs into per-vCPU budgets,
//! and the scheduler picks the ready vCPU with the highest remaining budget.
//! Budgets are replenished when every ready vCPU has exhausted its budget.
//!
//! Only *uncapped* vCPUs are eligible; capped vCPUs must never exceed their
//! table reservation. Each vCPU participates on its home core only, so the
//! structure is strictly core-local (no cross-core synchronization).
//!
//! **Quarantine.** A guest that persistently overruns its declared demand
//! can be *demoted*: it stays eligible but receives a zero share and is
//! picked only when no vCPU in good standing is ready, so it scavenges
//! otherwise-idle time without blowing its neighbours' budgets. An empty
//! demoted set leaves the scheduler's behaviour exactly as before.

use rtsched::time::Nanos;

use crate::vcpu::VcpuId;

/// Default second-level epoch length (10 ms).
pub const DEFAULT_EPOCH: Nanos = Nanos(10_000_000);

/// Per-core second-level scheduler state.
#[derive(Debug, Clone)]
pub struct Level2 {
    epoch: Nanos,
    /// `(vcpu, remaining budget)` for every eligible vCPU on this core.
    budgets: Vec<(VcpuId, Nanos)>,
    /// Quarantined vCPUs: eligible but zero-share, scheduled only when no
    /// vCPU in good standing is ready.
    demoted: Vec<VcpuId>,
}

impl Level2 {
    /// Creates a second-level scheduler for the given eligible vCPUs.
    ///
    /// Budgets start replenished (each eligible vCPU gets an even share of
    /// the first epoch).
    pub fn new(epoch: Nanos, eligible: &[VcpuId]) -> Level2 {
        let share = if eligible.is_empty() {
            Nanos::ZERO
        } else {
            epoch / eligible.len() as u64
        };
        Level2 {
            epoch,
            budgets: eligible.iter().map(|&v| (v, share)).collect(),
            demoted: Vec::new(),
        }
    }

    /// Creates a scheduler with the default 10 ms epoch.
    pub fn with_default_epoch(eligible: &[VcpuId]) -> Level2 {
        Level2::new(DEFAULT_EPOCH, eligible)
    }

    /// Returns the eligible vCPUs.
    pub fn eligible(&self) -> impl Iterator<Item = VcpuId> + '_ {
        self.budgets.iter().map(|&(v, _)| v)
    }

    /// Returns the remaining budget of `vcpu` (zero if not eligible).
    pub fn budget(&self, vcpu: VcpuId) -> Nanos {
        self.budgets
            .iter()
            .find(|&&(v, _)| v == vcpu)
            .map(|&(_, b)| b)
            .unwrap_or(Nanos::ZERO)
    }

    /// Picks the ready vCPU with the highest remaining budget, replenishing
    /// the epoch first if every ready vCPU has run dry.
    ///
    /// `is_ready` reports whether a vCPU can run right now (i.e., it is
    /// runnable and not currently scheduled elsewhere). Returns `None` when
    /// no eligible vCPU is ready. Ties are broken by the lowest vCPU id for
    /// determinism.
    ///
    /// Demoted vCPUs are considered only when no vCPU in good standing is
    /// ready; among demoted vCPUs the lowest id wins.
    pub fn pick(&mut self, mut is_ready: impl FnMut(VcpuId) -> bool) -> Option<VcpuId> {
        fn best(
            budgets: &[(VcpuId, Nanos)],
            demoted: &[VcpuId],
            is_ready: &mut dyn FnMut(VcpuId) -> bool,
        ) -> Option<(VcpuId, Nanos)> {
            budgets
                .iter()
                .filter(|&&(v, _)| !demoted.contains(&v) && is_ready(v))
                .max_by_key(|&&(v, b)| (b, std::cmp::Reverse(v)))
                .copied()
        }
        match best(&self.budgets, &self.demoted, &mut is_ready) {
            None => {
                // No vCPU in good standing is ready: let a quarantined vCPU
                // scavenge the otherwise-idle time (lowest id first).
                self.demoted.iter().copied().filter(|&v| is_ready(v)).min()
            }
            Some((v, b)) if !b.is_zero() => Some(v),
            Some(_) => {
                // Every ready vCPU is out of budget: replenish the epoch for
                // all eligible vCPUs and pick again.
                self.replenish();
                best(&self.budgets, &self.demoted, &mut is_ready).map(|(v, _)| v)
            }
        }
    }

    /// Charges `amount` of second-level execution to `vcpu`.
    ///
    /// Charging an ineligible vCPU is a no-op (it can happen transiently
    /// after a table switch changed eligibility).
    pub fn charge(&mut self, vcpu: VcpuId, amount: Nanos) {
        if let Some((_, b)) = self.budgets.iter_mut().find(|(v, _)| *v == vcpu) {
            *b = b.saturating_sub(amount);
        }
    }

    /// Resets every eligible vCPU's budget to an even share of the epoch.
    ///
    /// Demoted vCPUs receive a zero share; the epoch is split among the
    /// vCPUs in good standing only.
    pub fn replenish(&mut self) {
        if self.budgets.is_empty() {
            return;
        }
        let good = self
            .budgets
            .iter()
            .filter(|(v, _)| !self.demoted.contains(v))
            .count();
        let share = if good == 0 {
            Nanos::ZERO
        } else {
            self.epoch / good as u64
        };
        let demoted = &self.demoted;
        for (v, b) in &mut self.budgets {
            *b = if demoted.contains(v) {
                Nanos::ZERO
            } else {
                share
            };
        }
    }

    /// Replaces the eligible set (after a table switch); budgets restart
    /// replenished and any demotions are cleared (callers that track
    /// quarantine re-apply it via [`Level2::set_demoted`]).
    pub fn set_eligible(&mut self, eligible: &[VcpuId]) {
        *self = Level2::new(self.epoch, eligible);
    }

    /// Marks the intersection of `demoted` and the eligible set as
    /// quarantined and re-replenishes so shares take effect immediately.
    pub fn set_demoted(&mut self, demoted: &[VcpuId]) {
        self.demoted = demoted
            .iter()
            .copied()
            .filter(|&d| self.budgets.iter().any(|&(v, _)| v == d))
            .collect();
        self.replenish();
    }

    /// Whether `vcpu` is currently demoted.
    pub fn is_demoted(&self, vcpu: VcpuId) -> bool {
        self.demoted.contains(&vcpu)
    }

    /// The currently demoted vCPUs.
    pub fn demoted(&self) -> &[VcpuId] {
        &self.demoted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VcpuId {
        VcpuId(i)
    }

    #[test]
    fn even_initial_budgets() {
        let l2 = Level2::new(Nanos::from_millis(10), &[v(0), v(1), v(2), v(3)]);
        for i in 0..4 {
            assert_eq!(l2.budget(v(i)), Nanos::from_micros(2_500));
        }
        assert_eq!(l2.budget(v(9)), Nanos::ZERO);
    }

    #[test]
    fn picks_highest_remaining_budget() {
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(0), v(1)]);
        l2.charge(v(0), Nanos::from_millis(2));
        assert_eq!(l2.pick(|_| true), Some(v(1)));
    }

    #[test]
    fn ties_break_to_lowest_id() {
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(3), v(1), v(2)]);
        assert_eq!(l2.pick(|_| true), Some(v(1)));
    }

    #[test]
    fn skips_unready_vcpus() {
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(0), v(1)]);
        assert_eq!(l2.pick(|x| x == v(1)), Some(v(1)));
        assert_eq!(l2.pick(|_| false), None);
    }

    #[test]
    fn replenishes_when_ready_set_is_dry() {
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(0), v(1)]);
        l2.charge(v(0), Nanos::from_millis(5));
        l2.charge(v(1), Nanos::from_millis(5));
        // Both dry -> replenish -> a pick still succeeds.
        assert!(l2.pick(|_| true).is_some());
        assert_eq!(l2.budget(v(0)), Nanos::from_millis(5));
    }

    #[test]
    fn dry_ready_vcpu_does_not_replenish_while_others_have_budget() {
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(0), v(1)]);
        l2.charge(v(0), Nanos::from_millis(5)); // v0 dry
                                                // Only v0 is ready and it is dry: all *ready* vCPUs are dry, so the
                                                // epoch replenishes (paper: replenished when all ready vCPUs have
                                                // run out of budget).
        assert_eq!(l2.pick(|x| x == v(0)), Some(v(0)));
        // v1's budget was also reset by the replenish.
        assert_eq!(l2.budget(v(1)), Nanos::from_millis(5));
    }

    #[test]
    fn round_robin_emerges_from_budgets() {
        // Alternating picks with equal charges visit both vCPUs evenly.
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(0), v(1)]);
        let mut picks = Vec::new();
        for _ in 0..4 {
            let p = l2.pick(|_| true).unwrap();
            l2.charge(p, Nanos::from_millis(1));
            picks.push(p);
        }
        assert_eq!(picks.iter().filter(|&&p| p == v(0)).count(), 2);
        assert_eq!(picks.iter().filter(|&&p| p == v(1)).count(), 2);
    }

    #[test]
    fn empty_eligible_set() {
        let mut l2 = Level2::with_default_epoch(&[]);
        assert_eq!(l2.pick(|_| true), None);
        l2.charge(v(0), Nanos::MILLI); // no-op
        l2.replenish(); // no-op
    }

    #[test]
    fn demoted_vcpu_runs_only_when_nothing_else_is_ready() {
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(0), v(1)]);
        l2.set_demoted(&[v(0)]);
        // Good standing wins while it is ready...
        assert_eq!(l2.pick(|_| true), Some(v(1)));
        // ...even when the good-standing vCPU's budget is dry (replenish).
        l2.charge(v(1), Nanos::from_millis(10));
        assert_eq!(l2.pick(|_| true), Some(v(1)));
        // The demoted vCPU scavenges when nothing else is ready.
        assert_eq!(l2.pick(|x| x == v(0)), Some(v(0)));
    }

    #[test]
    fn demoted_vcpus_get_zero_share() {
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(0), v(1)]);
        l2.set_demoted(&[v(0)]);
        assert_eq!(l2.budget(v(0)), Nanos::ZERO);
        // The full epoch goes to the vCPUs in good standing.
        assert_eq!(l2.budget(v(1)), Nanos::from_millis(10));
        assert!(l2.is_demoted(v(0)));
        assert!(!l2.is_demoted(v(1)));
    }

    #[test]
    fn undemoting_restores_even_shares() {
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(0), v(1)]);
        l2.set_demoted(&[v(0)]);
        l2.set_demoted(&[]);
        assert_eq!(l2.budget(v(0)), Nanos::from_millis(5));
        assert_eq!(l2.budget(v(1)), Nanos::from_millis(5));
    }

    #[test]
    fn demotion_ignores_ineligible_vcpus() {
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(0)]);
        l2.set_demoted(&[v(7)]);
        assert!(l2.demoted().is_empty());
        assert_eq!(l2.budget(v(0)), Nanos::from_millis(10));
    }

    #[test]
    fn all_demoted_scavenge_by_lowest_id() {
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(2), v(1)]);
        l2.set_demoted(&[v(1), v(2)]);
        assert_eq!(l2.pick(|_| true), Some(v(1)));
    }

    #[test]
    fn set_eligible_clears_demotions() {
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(0), v(1)]);
        l2.set_demoted(&[v(0)]);
        l2.set_eligible(&[v(0), v(1)]);
        assert!(!l2.is_demoted(v(0)));
        assert_eq!(l2.budget(v(0)), Nanos::from_millis(5));
    }

    #[test]
    fn set_eligible_resets_budgets() {
        let mut l2 = Level2::new(Nanos::from_millis(10), &[v(0)]);
        l2.charge(v(0), Nanos::from_millis(3));
        l2.set_eligible(&[v(0), v(1)]);
        assert_eq!(l2.budget(v(0)), Nanos::from_millis(5));
        assert_eq!(l2.budget(v(1)), Nanos::from_millis(5));
    }
}
