//! Install-retry semantics: a table push that fails N times and then
//! succeeds must leave the dispatcher on the old table throughout — no
//! torn epoch, no partially adopted table — and then switch exactly once.

use rtsched::time::Nanos;
use tableau_core::{Allocation, Dispatcher, Table, TableManager, VcpuId};

fn ms(v: u64) -> Nanos {
    Nanos::from_millis(v)
}

/// A one-core table running `vcpu` for the whole 10 ms round.
fn whole_round(vcpu: u32) -> Table {
    Table::new(
        ms(10),
        vec![vec![Allocation {
            start: Nanos::ZERO,
            end: ms(10),
            vcpu: VcpuId(vcpu),
        }]],
    )
    .unwrap()
}

#[test]
fn aborted_installs_never_touch_the_running_table() {
    let mut tm = TableManager::new(whole_round(0));

    for attempt in 0..5u64 {
        let now = ms(attempt);
        let staged = tm.begin_install(whole_round(1), now).unwrap();
        assert!(tm.has_staged());
        assert!(staged.arm > now);
        tm.abort_install();
        assert!(!tm.has_staged());
        // The old table keeps running and the core's epoch never moves.
        assert_eq!(tm.core_epoch(0), 0);
        let t = tm.table_for(0, now);
        assert_eq!(t.lookup(0, now).vcpu(), Some(VcpuId(0)));
    }
    // Nothing leaked: the aborted stagings left exactly one live table.
    assert_eq!(tm.live_tables(), 1);
}

#[test]
fn switch_happens_exactly_once_after_retries_succeed() {
    let mut tm = TableManager::new(whole_round(0));

    // Three interrupted pushes...
    for attempt in 0..3u64 {
        let _ = tm.begin_install(whole_round(1), ms(attempt)).unwrap();
        tm.abort_install();
    }
    // ...then a clean one.
    let staged = tm.begin_install(whole_round(1), ms(5)).unwrap();
    let switch_at = tm.commit_install(staged).unwrap();
    assert_eq!(switch_at, ms(20)); // end of the next full round

    // Right up to the switch boundary the old table runs.
    let t = tm.table_for(0, switch_at - Nanos(1));
    assert_eq!(t.lookup(0, switch_at - Nanos(1)).vcpu(), Some(VcpuId(0)));
    assert_eq!(tm.core_epoch(0), 0);

    // At the boundary the core adopts the new table — exactly one epoch.
    let t = tm.table_for(0, switch_at);
    assert_eq!(t.lookup(0, switch_at).vcpu(), Some(VcpuId(1)));
    assert_eq!(tm.core_epoch(0), 1);

    // And it stays there: no double adoption on later rounds.
    let _ = tm.table_for(0, switch_at + ms(25));
    assert_eq!(tm.core_epoch(0), 1);
}

#[test]
fn dispatcher_decisions_stay_on_old_table_across_failed_pushes() {
    let mut d = Dispatcher::new(whole_round(0), vec![true, true], ms(10));

    for attempt in 0..4u64 {
        let now = ms(attempt);
        let _staged = d.begin_table_switch(whole_round(1), now).unwrap();
        assert!(d.has_staged_table());
        d.abort_table_switch();
        assert!(!d.has_staged_table());
        let dec = d.decide(0, now, |_| true);
        assert_eq!(
            dec.vcpu(),
            Some(VcpuId(0)),
            "torn epoch at attempt {attempt}"
        );
        if let Some(v) = dec.vcpu() {
            d.on_descheduled(v, 0);
        }
    }

    // The successful push switches the decision stream exactly once.
    let staged = d.begin_table_switch(whole_round(1), ms(6)).unwrap();
    let switch_at = d.commit_table_switch(staged).unwrap();
    let dec = d.decide(0, switch_at - Nanos(1), |_| true);
    assert_eq!(dec.vcpu(), Some(VcpuId(0)));
    if let Some(v) = dec.vcpu() {
        d.on_descheduled(v, 0);
    }
    let dec = d.decide(0, switch_at, |_| true);
    assert_eq!(dec.vcpu(), Some(VcpuId(1)));
}

#[test]
fn commit_after_abort_is_rejected_and_harmless() {
    let mut tm = TableManager::new(whole_round(0));
    let staged = tm.begin_install(whole_round(1), ms(1)).unwrap();
    tm.abort_install();
    // The stale handle cannot resurrect the aborted install.
    assert!(tm.commit_install(staged).is_err());
    assert_eq!(tm.core_epoch(0), 0);
    let t = tm.table_for(0, ms(30));
    assert_eq!(t.lookup(0, ms(30)).vcpu(), Some(VcpuId(0)));
}
