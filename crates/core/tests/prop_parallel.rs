//! Parallel-pipeline determinism: the planner's concurrent stages must be
//! invisible in the output.
//!
//! The planner fans per-core EDF verification, clustered generation,
//! coalescing and blackout scans out across a scoped thread pool
//! (`rayon::par_map_indices`), reassembling results in index order. The
//! contract tested here: for any fleet, the plan produced with the thread
//! pool enabled is **identical in every field** to the plan produced with
//! `rayon::force_sequential` — same table, same stage, same parameters,
//! same coalesce accounting, same blackouts, and the same error on
//! unplannable fleets. Scheduling nondeterminism may reorder *execution*,
//! never *results*.

use proptest::prelude::*;

use rtsched::time::Nanos;
use tableau_core::planner::{plan, PlannerOptions};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};

/// A reproducible fleet: core count plus per-VM (utilization %, latency
/// ms, capped) tuples.
type FleetDesc = (usize, Vec<(u32, u64, bool)>);

fn build_host(cores: usize, vms: &[(u32, u64, bool)]) -> HostConfig {
    let mut host = HostConfig::new(cores);
    for (i, &(upct, l_ms, capped)) in vms.iter().enumerate() {
        let u = Utilization::from_percent(upct);
        let l = Nanos::from_millis(l_ms);
        let spec = if capped {
            VcpuSpec::capped(u, l)
        } else {
            VcpuSpec::new(u, l)
        };
        host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
    }
    host
}

/// Paper-like menus; utilizations include 60% entries so some fleets force
/// C=D splitting or clustered generation (the parallel stages).
fn arb_fleet() -> impl Strategy<Value = FleetDesc> {
    const UTILS: [u32; 4] = [10, 25, 40, 60];
    const GOALS: [u64; 3] = [10, 20, 100];
    let vm = (0usize..UTILS.len(), 0usize..GOALS.len(), any::<bool>())
        .prop_map(|(u, l, c)| (UTILS[u], GOALS[l], c));
    (2usize..=4, proptest::collection::vec(vm, 1..10))
}

fn assert_plans_identical(host: &HostConfig, opts: &PlannerOptions) {
    let par = plan(host, opts);
    let seq = rayon::force_sequential(|| plan(host, opts));
    match (par, seq) {
        (Ok(p), Ok(s)) => {
            assert_eq!(p.table, s.table, "tables diverge");
            assert_eq!(p.stage, s.stage, "stages diverge");
            assert_eq!(p.params, s.params, "params diverge");
            assert_eq!(p.split_vcpus, s.split_vcpus, "split sets diverge");
            assert_eq!(p.coalesce, s.coalesce, "coalesce reports diverge");
            assert_eq!(p.worst_blackout, s.worst_blackout, "blackouts diverge");
        }
        (Err(p), Err(s)) => assert_eq!(format!("{p:?}"), format!("{s:?}"), "errors diverge"),
        (par, seq) => panic!("plannability diverges: parallel {par:?} vs sequential {seq:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_plan_is_field_identical_to_sequential((cores, vms) in arb_fleet()) {
        let host = build_host(cores, &vms);
        assert_plans_identical(&host, &PlannerOptions::default());
    }

    #[test]
    fn parallelism_is_invisible_under_peephole_too((cores, vms) in arb_fleet()) {
        let host = build_host(cores, &vms);
        let opts = PlannerOptions {
            peephole: true,
            ..PlannerOptions::default()
        };
        assert_plans_identical(&host, &opts);
    }
}

/// The parallel path must also be stable run-to-run (no dependence on
/// thread scheduling): repeated parallel plans are identical.
#[test]
fn parallel_plan_is_stable_across_runs() {
    let host = build_host(
        3,
        &[
            (60, 20, true),
            (60, 20, true),
            (60, 20, true),
            (40, 10, false),
        ],
    );
    let opts = PlannerOptions::default();
    let first = plan(&host, &opts).expect("fleet plans");
    for _ in 0..5 {
        let again = plan(&host, &opts).expect("fleet plans");
        assert_eq!(first.table, again.table);
        assert_eq!(first.worst_blackout, again.worst_blackout);
    }
}
