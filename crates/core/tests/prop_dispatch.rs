//! Property-based tests for the dispatcher's safety invariants.
//!
//! Whatever the guests do (arbitrary runnable/blocked patterns, arbitrary
//! decision orderings across cores), the dispatcher must never:
//!
//! * run a vCPU on two cores at once (the ownership protocol);
//! * dispatch a blocked vCPU;
//! * give a *capped* vCPU CPU time outside its table reservation;
//! * return a decision that expires in the past.
//!
//! The exploration is randomized: each case drives every core through a
//! few hundred decision points with proptest-chosen runnable flags and
//! de-schedule orders.

use proptest::prelude::*;

use rtsched::time::Nanos;
use tableau_core::dispatch::{Decision, Dispatcher};
use tableau_core::planner::{plan, PlannerOptions};
use tableau_core::table::Slot;
use tableau_core::vcpu::{HostConfig, Utilization, VcpuId, VcpuSpec, VmSpec};

fn paper_dispatcher(capped_mask: u8) -> (Dispatcher, usize, usize) {
    let n_cores = 2;
    let n_vcpus = 8;
    let mut host = HostConfig::new(n_cores);
    for i in 0..n_vcpus {
        let u = Utilization::from_percent(25);
        let l = Nanos::from_millis(20);
        let spec = if capped_mask & (1 << i) != 0 {
            VcpuSpec::capped(u, l)
        } else {
            VcpuSpec::new(u, l)
        };
        host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
    }
    let p = plan(&host, &PlannerOptions::default()).unwrap();
    let capped: Vec<bool> = p.params.iter().map(|x| x.capped).collect();
    (
        Dispatcher::new(p.table, capped, Nanos::from_millis(10)),
        n_cores,
        n_vcpus,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Core exclusion: across interleaved decisions on all cores, a vCPU is
    /// never simultaneously dispatched on two cores.
    #[test]
    fn no_vcpu_runs_on_two_cores(
        capped_mask in any::<u8>(),
        runnable_seed in any::<u64>(),
        steps in 50usize..200,
    ) {
        let (mut d, n_cores, n_vcpus) = paper_dispatcher(capped_mask);
        let mut running: Vec<Option<VcpuId>> = vec![None; n_cores];
        let mut rng = runnable_seed;
        let mut now = Nanos::ZERO;
        for step in 0..steps {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let flags = rng;
            let core = step % n_cores;
            // De-schedule whatever the core ran (the hypervisor saved it).
            if let Some(v) = running[core].take() {
                let _ = d.on_descheduled(v, core);
            }
            let dec = d.decide(core, now, |v| {
                // Pseudorandom runnable pattern; running vCPUs stay runnable.
                flags & (1 << (v.0 % 8)) != 0 || running.contains(&Some(v))
            });
            prop_assert!(dec.until() > now, "decision expired instantly");
            if let Some(v) = dec.vcpu() {
                prop_assert!(
                    !running.contains(&Some(v)),
                    "vCPU {v} double-dispatched at step {step}"
                );
                running[core] = Some(v);
            }
            now += Nanos::from_micros(137 + (rng % 4096));
            let _ = n_vcpus;
        }
    }

    /// Capped vCPUs only ever run inside their own table reservation.
    #[test]
    fn capped_vcpus_stay_inside_their_slots(
        runnable_seed in any::<u64>(),
        steps in 50usize..200,
    ) {
        // All vCPUs capped.
        let (mut d, n_cores, _) = paper_dispatcher(0xFF);
        // Reconstruct the table through a parallel plan for slot checking.
        let mut host = HostConfig::new(n_cores);
        for i in 0..8 {
            host.add_vm(VmSpec::uniform(
                format!("vm{i}"),
                1,
                VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20)),
            ));
        }
        let table = plan(&host, &PlannerOptions::default()).unwrap().table;

        let mut rng = runnable_seed;
        let mut now = Nanos::ZERO;
        for step in 0..steps {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(99);
            let flags = rng;
            let core = step % n_cores;
            let dec = d.decide(core, now, |v| flags & (1 << (v.0 % 8)) != 0);
            if let Decision::Run { vcpu, level2, .. } = dec {
                prop_assert!(!level2, "capped vCPU picked by the second level");
                // The table's slot at `now` on this core must name it.
                match table.lookup(core, now) {
                    Slot::Reserved { vcpu: owner, .. } => prop_assert_eq!(owner, vcpu),
                    Slot::Idle { .. } => prop_assert!(
                        false,
                        "capped {} dispatched into an idle slot",
                        vcpu
                    ),
                }
                d.on_descheduled(vcpu, core);
            }
            now += Nanos::from_micros(211 + (rng % 2048));
        }
    }

    /// Blocked vCPUs are never dispatched.
    #[test]
    fn blocked_vcpus_never_run(
        capped_mask in any::<u8>(),
        blocked_mask in any::<u8>(),
        steps in 50usize..150,
    ) {
        let (mut d, n_cores, _) = paper_dispatcher(capped_mask);
        let mut now = Nanos::ZERO;
        for step in 0..steps {
            let core = step % n_cores;
            let dec = d.decide(core, now, |v| blocked_mask & (1 << (v.0 % 8)) == 0);
            if let Some(v) = dec.vcpu() {
                prop_assert!(
                    blocked_mask & (1 << (v.0 % 8)) == 0,
                    "blocked {v} dispatched"
                );
                d.on_descheduled(v, core);
            }
            now += Nanos::from_micros(500);
        }
    }
}
