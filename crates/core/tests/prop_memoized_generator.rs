//! Memoization must be invisible in the output.
//!
//! The generator's default engine ([`GenEngine::Memoized`]) simulates EDF /
//! DP-Fair once per distinct bin signature and *stamps* the resulting
//! per-core schedule onto every other core sharing that signature via
//! task-id substitution; the planner then reuses the stamps through
//! coalescing and slice-table construction. The contract tested here: for
//! any fleet, the plan produced by the memoized engine is **identical in
//! every field** to the plan produced by [`GenEngine::Direct`] (simulate
//! every core from scratch) — same table bytes, same stage, same
//! parameters, same coalesce accounting, same blackouts, and the same error
//! on unplannable fleets. Memoization may change how fast the planner runs,
//! never what it produces.

use proptest::prelude::*;

use rtsched::generator::{generate_schedule, GenEngine, GenOptions};
use rtsched::task::{PeriodicTask, TaskId};
use rtsched::time::Nanos;
use tableau_core::planner::{plan, PlannerOptions};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};

/// A reproducible fleet: core count plus per-VM (utilization %, latency
/// ms, capped) tuples.
type FleetDesc = (usize, Vec<(u32, u64, bool)>);

fn build_host(cores: usize, vms: &[(u32, u64, bool)]) -> HostConfig {
    let mut host = HostConfig::new(cores);
    for (i, &(upct, l_ms, capped)) in vms.iter().enumerate() {
        let u = Utilization::from_percent(upct);
        let l = Nanos::from_millis(l_ms);
        let spec = if capped {
            VcpuSpec::capped(u, l)
        } else {
            VcpuSpec::new(u, l)
        };
        host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
    }
    host
}

fn opts_with(engine: GenEngine, base: &PlannerOptions) -> PlannerOptions {
    PlannerOptions {
        gen: GenOptions { engine, ..base.gen },
        ..base.clone()
    }
}

fn assert_engines_agree(host: &HostConfig, base: &PlannerOptions) {
    let memo = plan(host, &opts_with(GenEngine::Memoized, base));
    let direct = plan(host, &opts_with(GenEngine::Direct, base));
    match (memo, direct) {
        (Ok(m), Ok(d)) => {
            assert_eq!(m.table, d.table, "tables diverge");
            assert_eq!(m.stage, d.stage, "stages diverge");
            assert_eq!(m.params, d.params, "params diverge");
            assert_eq!(m.split_vcpus, d.split_vcpus, "split sets diverge");
            assert_eq!(m.coalesce, d.coalesce, "coalesce reports diverge");
            assert_eq!(m.worst_blackout, d.worst_blackout, "blackouts diverge");
        }
        (Err(m), Err(d)) => assert_eq!(format!("{m:?}"), format!("{d:?}"), "errors diverge"),
        (memo, direct) => panic!("plannability diverges: memoized {memo:?} vs direct {direct:?}"),
    }
}

/// Paper-like menus; utilizations include 60% entries so some fleets force
/// C=D splitting or clustered generation (where stamping must bow out).
fn arb_fleet() -> impl Strategy<Value = FleetDesc> {
    const UTILS: [u32; 4] = [10, 25, 40, 60];
    const GOALS: [u64; 3] = [10, 20, 100];
    let vm = (0usize..UTILS.len(), 0usize..GOALS.len(), any::<bool>())
        .prop_map(|(u, l, c)| (UTILS[u], GOALS[l], c));
    (2usize..=4, proptest::collection::vec(vm, 1..10))
}

/// High-density fleets: every VM identical, so almost every bin shares one
/// signature and the memoized engine stamps nearly all cores.
fn arb_homogeneous_fleet() -> impl Strategy<Value = FleetDesc> {
    const UTILS: [u32; 3] = [10, 25, 40];
    const GOALS: [u64; 3] = [10, 20, 100];
    (
        2usize..=4,
        0usize..UTILS.len(),
        0usize..GOALS.len(),
        any::<bool>(),
        1usize..16,
    )
        .prop_map(|(cores, u, l, c, n)| (cores, vec![(UTILS[u], GOALS[l], c); n]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn memoized_plan_is_field_identical_to_direct((cores, vms) in arb_fleet()) {
        let host = build_host(cores, &vms);
        assert_engines_agree(&host, &PlannerOptions::default());
    }

    #[test]
    fn homogeneous_fleets_stamp_without_a_trace((cores, vms) in arb_homogeneous_fleet()) {
        let host = build_host(cores, &vms);
        assert_engines_agree(&host, &PlannerOptions::default());
    }

    #[test]
    fn engines_agree_under_forced_clustering((cores, vms) in arb_homogeneous_fleet()) {
        // Clustered DP-Fair cores opt out of sharing; the direct and
        // memoized pipelines must still match to the byte.
        let host = build_host(cores, &vms);
        let opts = PlannerOptions {
            gen: GenOptions {
                first_stage: rtsched::generator::Stage::Clustered,
                ..PlannerOptions::default().gen
            },
            ..PlannerOptions::default()
        };
        assert_engines_agree(&host, &opts);
    }
}

/// 60%-utilization fleets overflow worst-fit bins and force C=D splitting;
/// split pieces carry constrained deadlines, which disqualifies their bins
/// from sharing. The engines must agree anyway.
#[test]
fn split_heavy_fleets_agree() {
    for n in [3usize, 5, 7, 9] {
        let host = build_host(4, &vec![(60, 20, true); n]);
        assert_engines_agree(&host, &PlannerOptions::default());
    }
}

/// rtsched-level check: equal-signature bins with *different task ids* must
/// produce relabel-identical schedules — the memoized engine simulates the
/// representative bin once and substitutes ids, so the full schedules (not
/// just the plans) have to match the direct engine segment for segment.
#[test]
fn equal_signature_bins_remap_ids_exactly() {
    let h = Nanos::from_millis(100);
    let p = Nanos::from_millis(20);
    let c = Nanos::from_millis(5);
    // Four cores, two tasks each, all bins the same signature but with
    // disjoint, non-contiguous id ranges.
    let mut tasks = Vec::new();
    for core in 0..4u32 {
        for slot in 0..2u32 {
            tasks.push(PeriodicTask::implicit(TaskId(10 + core * 7 + slot), c, p));
        }
    }
    let memo = generate_schedule(
        &tasks,
        4,
        h,
        &GenOptions {
            engine: GenEngine::Memoized,
            ..GenOptions::default()
        },
    )
    .expect("memoized generation succeeds");
    let direct = generate_schedule(
        &tasks,
        4,
        h,
        &GenOptions {
            engine: GenEngine::Direct,
            ..GenOptions::default()
        },
    )
    .expect("direct generation succeeds");
    assert_eq!(memo.stage, direct.stage);
    assert_eq!(memo.split_tasks, direct.split_tasks);
    assert_eq!(
        memo.schedule, direct.schedule,
        "stamped schedules must be segment-for-segment identical"
    );
    // Sanity: every task id that went in comes back out on some core.
    for t in &tasks {
        assert!(
            memo.schedule
                .cores
                .iter()
                .any(|cs| cs.segments().iter().any(|s| s.task == t.id)),
            "task {:?} missing from the stamped schedule",
            t.id
        );
    }
}
