//! Property-based tests for delta replanning.
//!
//! The contract is stronger than the incremental rung's: a delta-spliced
//! plan must be **field-identical** to a full from-scratch replan of the
//! same host — same table, same blackouts, same coalesce bookkeeping —
//! because the splice reuses prior per-bin results only where the packing
//! provably reproduces them. Random fleets are planned, hit with a random
//! single-VM churn event (join, leave-of-last, mid-host leave, resize),
//! and replanned both ways; whenever the delta rung declines, the fallback
//! ladder must still produce a valid plan.

use proptest::prelude::*;

use rtsched::time::Nanos;
use tableau_core::delta::plan_delta;
use tableau_core::planner::{plan, plan_with_fallback, PlannerOptions, ReplanPath};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};

/// A reproducible fleet description: per-VM (utilization %, latency ms,
/// capped) tuples on a small multicore.
type FleetDesc = (usize, Vec<(u32, u64, bool)>);

fn add_vm(host: &mut HostConfig, i: usize, (upct, l_ms, capped): (u32, u64, bool)) {
    let u = Utilization::from_percent(upct);
    let l = Nanos::from_millis(l_ms);
    let spec = if capped {
        VcpuSpec::capped(u, l)
    } else {
        VcpuSpec::new(u, l)
    };
    host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
}

fn build_host(cores: usize, vms: &[(u32, u64, bool)]) -> HostConfig {
    let mut host = HostConfig::new(cores);
    for (i, &vm) in vms.iter().enumerate() {
        add_vm(&mut host, i, vm);
    }
    host
}

/// Strategy: 2–4 cores and 2–10 VMs whose utilizations always admit both
/// the original fleet and the churned one (one extra 10% VM).
fn arb_fleet() -> impl Strategy<Value = FleetDesc> {
    const UTILS: [u32; 3] = [10, 20, 25];
    const LATENCIES: [u64; 3] = [10, 20, 40];
    (
        2usize..=4,
        proptest::collection::vec((0usize..3, 0usize..3, any::<bool>()), 2..=10),
    )
        .prop_map(|(cores, picks)| {
            // Keep total utilization (plus a 10% newcomer) admissible.
            let budget = cores as u64 * 100 - 15;
            let mut used = 0u64;
            let mut vms: Vec<(u32, u64, bool)> = Vec::new();
            for (ui, li, capped) in picks {
                let u = UTILS[ui];
                if used + u as u64 > budget {
                    continue;
                }
                used += u as u64;
                vms.push((u, LATENCIES[li], capped));
            }
            while vms.len() < 2 {
                vms.push((10, 40, false));
            }
            (cores, vms)
        })
}

/// The four single-VM churn shapes the delta planner handles. Joins and
/// leave-of-last keep surviving vCPU ids verbatim (id-stable splice);
/// a mid-host leave shifts later ids down (relabel splice); a resize
/// changes one VM's (cost, period) tuple in place.
#[derive(Debug, Clone, Copy)]
enum Churn {
    Join,
    LeaveLast,
    LeaveMid,
    Resize,
}

fn churned_host(cores: usize, vms: &[(u32, u64, bool)], churn: Churn, pick: usize) -> HostConfig {
    let mut host = HostConfig::new(cores);
    match churn {
        Churn::Join => {
            for (i, &vm) in vms.iter().enumerate() {
                add_vm(&mut host, i, vm);
            }
            add_vm(&mut host, vms.len(), (10, 20, false));
        }
        Churn::LeaveLast => {
            for (i, &vm) in vms[..vms.len() - 1].iter().enumerate() {
                add_vm(&mut host, i, vm);
            }
        }
        Churn::LeaveMid => {
            // Pick strictly interior so ids after it genuinely shift.
            let gone = pick % (vms.len() - 1);
            for (i, &vm) in vms.iter().enumerate() {
                if i != gone {
                    add_vm(&mut host, i, vm);
                }
            }
        }
        Churn::Resize => {
            // Shrink one VM to 5% (always admissible) — same id set, one
            // changed (cost, period) tuple.
            let resized = pick % vms.len();
            for (i, &(u, l, capped)) in vms.iter().enumerate() {
                let u = if i == resized { 5 } else { u };
                add_vm(&mut host, i, (u, l, capped));
            }
        }
    }
    host
}

fn arb_churn() -> impl Strategy<Value = Churn> {
    (0usize..4).prop_map(|i| match i {
        0 => Churn::Join,
        1 => Churn::LeaveLast,
        2 => Churn::LeaveMid,
        _ => Churn::Resize,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Delta-spliced and full-replan plans are field-identical over any
    /// single-VM churn event, on both splice paths; when the delta rung
    /// declines, the fallback ladder still plans the host.
    #[test]
    fn delta_is_field_identical_to_full_replan(
        (cores, vms) in arb_fleet(),
        churn in arb_churn(),
        pick in 0usize..16,
    ) {
        let opts = PlannerOptions::default();
        let prev_host = build_host(cores, &vms);
        let prev = plan(&prev_host, &opts).expect("admissible fleet plans");
        let host = churned_host(cores, &vms, churn, pick);
        let full = plan(&host, &opts).expect("churned fleet plans fully");

        match plan_delta(&prev_host, &prev, &host, &opts) {
            Ok((delta, report)) => {
                prop_assert_eq!(
                    &delta, &full,
                    "{:?}: delta-spliced plan diverged from the full replan \
                     (report {:?})", churn, report
                );
                // Bookkeeping: every shared core is either clean or dirty,
                // never both, never neither.
                let mut seen: Vec<usize> = report
                    .clean_cores
                    .iter()
                    .chain(&report.dirty_cores)
                    .copied()
                    .collect();
                seen.sort_unstable();
                let dedicated = full.params.iter().filter(|p| p.dedicated).count();
                let shared = cores - dedicated;
                prop_assert_eq!(seen.len(), shared, "{:?}", report);
                seen.dedup();
                prop_assert_eq!(seen.len(), shared, "core both clean and dirty: {:?}", report);
            }
            Err(abort) => {
                // The rung declined (split/clustered history or geometry);
                // the ladder below it must still produce a plan.
                let out = plan_with_fallback(Some((&prev_host, &prev)), &host, &opts)
                    .expect("ladder plans an admissible reconfiguration");
                prop_assert!(
                    !matches!(out.path, ReplanPath::Delta),
                    "delta aborted ({abort:?}) yet the ladder reports the delta rung"
                );
            }
        }
    }

    /// The full ladder, driven over the same churn: whenever it takes the
    /// delta rung the result is field-identical to the full replan, and it
    /// never fails on an admissible reconfiguration.
    #[test]
    fn fallback_ladder_delta_rung_matches_full_replan(
        (cores, vms) in arb_fleet(),
        churn in arb_churn(),
        pick in 0usize..16,
    ) {
        let opts = PlannerOptions::default();
        let prev_host = build_host(cores, &vms);
        let prev = plan(&prev_host, &opts).expect("admissible fleet plans");
        let host = churned_host(cores, &vms, churn, pick);

        let out = plan_with_fallback(Some((&prev_host, &prev)), &host, &opts)
            .expect("ladder plans an admissible reconfiguration");
        if matches!(out.path, ReplanPath::Delta) {
            let full = plan(&host, &opts).expect("churned fleet plans fully");
            prop_assert_eq!(&out.plan, &full);
            prop_assert!(out.delta.is_some(), "delta rung must carry its report");
        }
    }
}
