//! Property-based tests for the Tableau planner and table machinery.
//!
//! The externally visible contract of the planner is the paper's guarantee:
//! for any admissible host configuration, every vCPU receives (at least
//! nearly) its reserved utilization in every table round, and its maximum
//! scheduling blackout respects its latency goal. Property testing sweeps
//! random fleets of mixed tiers against those guarantees, plus the O(1)
//! lookup's agreement with a naive scan and the binary format round-trip.

use proptest::prelude::*;

use rtsched::time::Nanos;
use tableau_core::binary::{decode, encode};
use tableau_core::planner::{plan, PlannerOptions};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};

/// Strategy: a host of 2–4 cores with VMs whose total reservation fits.
fn arb_host() -> impl Strategy<Value = HostConfig> {
    (
        2usize..=4,
        proptest::collection::vec((5u32..=60, 2u64..=100, any::<bool>()), 1..=12),
    )
        .prop_map(|(cores, vms)| {
            let mut host = HostConfig::new(cores);
            let mut budget_ppm = cores as u64 * 1_000_000;
            for (i, (upct, l_ms, capped)) in vms.into_iter().enumerate() {
                let ppm = upct * 10_000;
                if budget_ppm < ppm as u64 + 10_000 {
                    break;
                }
                budget_ppm -= ppm as u64;
                let u = Utilization::from_ppm(ppm);
                let l = Nanos::from_millis(l_ms);
                let spec = if capped {
                    VcpuSpec::capped(u, l)
                } else {
                    VcpuSpec::new(u, l)
                };
                host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
            }
            if host.vms.is_empty() {
                host.add_vm(VmSpec::uniform(
                    "fallback",
                    1,
                    VcpuSpec::new(Utilization::from_percent(10), Nanos::from_millis(50)),
                ));
            }
            host
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every admissible host plans, and every vCPU's observed blackout is
    /// within its latency goal (plus the sub-threshold coalescing slack).
    #[test]
    fn blackouts_respect_latency_goals(host in arb_host()) {
        let p = plan(&host, &PlannerOptions::default()).expect("admissible host plans");
        let slack = tableau_core::postprocess::DEFAULT_THRESHOLD;
        for (vcpu, spec) in host.vcpus() {
            let blackout = p.blackout_of(vcpu).expect("every vCPU measured");
            prop_assert!(
                blackout <= spec.latency + slack,
                "{vcpu}: blackout {blackout} exceeds goal {}",
                spec.latency
            );
        }
    }

    /// Every vCPU's total service per table round is at least its
    /// reservation minus the (bounded, reported) coalescing donation.
    #[test]
    fn reservations_survive_post_processing(host in arb_host()) {
        let p = plan(&host, &PlannerOptions::default()).expect("admissible host plans");
        let table_len = p.table.len();
        for (vcpu, spec) in host.vcpus() {
            let placed: Nanos = p
                .table
                .placement(vcpu)
                .map(|pl| pl.allocations.iter().map(|&(_, s, e)| e - s).sum())
                .unwrap_or(Nanos::ZERO);
            let reserved = spec.utilization.budget_in(table_len);
            let lost: Nanos = p
                .coalesce
                .lost
                .iter()
                .filter(|(v, _)| *v == vcpu)
                .map(|&(_, t)| t)
                .sum();
            prop_assert!(
                placed + lost + Nanos::from_micros(50) >= reserved,
                "{vcpu}: placed {placed} + lost {lost} < reserved {reserved}"
            );
            // Coalescing losses are a vanishing fraction of the reservation.
            prop_assert!(lost.as_nanos() <= reserved.as_nanos() / 100 + 40_000);
        }
    }

    /// The slice-table O(1) lookup agrees with a naive linear scan at
    /// every probe point.
    #[test]
    fn o1_lookup_matches_linear_scan(host in arb_host(), probes in proptest::collection::vec(0u64..102_702_600, 32)) {
        let p = plan(&host, &PlannerOptions::default()).expect("admissible host plans");
        for core in 0..p.table.n_cores() {
            let allocs = p.table.cpu(core).allocations();
            for &t in &probes {
                let t = Nanos(t);
                let fast = p.table.lookup(core, t).vcpu();
                let slow = allocs.iter().find(|a| a.contains(t)).map(|a| a.vcpu);
                prop_assert_eq!(fast, slow, "core {} at {}", core, t);
            }
        }
    }

    /// The compiled binary table decodes back to an identical table.
    #[test]
    fn binary_round_trip(host in arb_host()) {
        let p = plan(&host, &PlannerOptions::default()).expect("admissible host plans");
        let decoded = decode(encode(&p.table)).expect("decodes");
        prop_assert_eq!(p.table, decoded);
    }

    /// A vCPU never has allocations overlapping in time across cores.
    #[test]
    fn no_parallel_allocations(host in arb_host()) {
        let p = plan(&host, &PlannerOptions::default()).expect("admissible host plans");
        for (vcpu, _) in host.vcpus() {
            if let Some(placement) = p.table.placement(vcpu) {
                let mut ivs: Vec<(Nanos, Nanos)> = placement
                    .allocations
                    .iter()
                    .map(|&(_, s, e)| (s, e))
                    .collect();
                ivs.sort_unstable();
                for w in ivs.windows(2) {
                    prop_assert!(w[0].1 <= w[1].0, "{vcpu} overlaps at {}", w[1].0);
                }
            }
        }
    }
}
