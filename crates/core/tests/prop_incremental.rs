//! Property-based tests for incremental replanning.
//!
//! The contract: `plan_incremental` may reuse per-core tables from the
//! previous plan, but the result must be indistinguishable from a full
//! replan *in its guarantees* — for every vCPU of the new host, the
//! per-vCPU maximum scheduling blackout respects that vCPU's latency goal
//! exactly as a from-scratch plan's does. Random fleets are planned,
//! mutated (a VM leaves, a VM arrives, or both), and replanned both ways.

use proptest::prelude::*;

use rtsched::time::Nanos;
use tableau_core::incremental::plan_incremental;
use tableau_core::planner::{plan, plan_with_fallback, PlannerOptions, ReplanPath};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};

/// A reproducible fleet description: per-VM (utilization %, latency ms,
/// capped) tuples on a small multicore.
type FleetDesc = (usize, Vec<(u32, u64, bool)>);

fn build_host(cores: usize, vms: &[(u32, u64, bool)]) -> HostConfig {
    let mut host = HostConfig::new(cores);
    for (i, &(upct, l_ms, capped)) in vms.iter().enumerate() {
        let u = Utilization::from_percent(upct);
        let l = Nanos::from_millis(l_ms);
        let spec = if capped {
            VcpuSpec::capped(u, l)
        } else {
            VcpuSpec::new(u, l)
        };
        host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
    }
    host
}

/// Strategy: 2–3 cores and 1–8 VMs whose utilizations always admit both
/// the original fleet and the mutated one (one extra 10% VM). Utilization
/// and latency are drawn from small paper-like menus via indices.
fn arb_fleet() -> impl Strategy<Value = FleetDesc> {
    const UTILS: [u32; 3] = [10, 20, 25];
    const LATENCIES: [u64; 3] = [10, 20, 40];
    (
        2usize..=3,
        proptest::collection::vec((0usize..3, 0usize..3, any::<bool>()), 1..=8),
    )
        .prop_map(|(cores, picks)| {
            // Keep total utilization (plus a 10% newcomer) admissible.
            let budget = cores as u64 * 100 - 15;
            let mut used = 0u64;
            let mut vms: Vec<(u32, u64, bool)> = Vec::new();
            for (ui, li, capped) in picks {
                let u = UTILS[ui];
                if used + u as u64 > budget {
                    continue;
                }
                used += u as u64;
                vms.push((u, LATENCIES[li], capped));
            }
            if vms.is_empty() {
                vms.push((10, 40, false));
            }
            (cores, vms)
        })
}

/// The mutated host keeps surviving VM names stable (identity is the VM
/// name), so incremental replanning can recognize them.
fn mutated_host(
    cores: usize,
    vms: &[(u32, u64, bool)],
    remove_idx: usize,
    add: bool,
) -> HostConfig {
    let mut host = HostConfig::new(cores);
    let removed = if vms.len() > 1 {
        Some(remove_idx % vms.len())
    } else {
        None
    };
    for (i, &(upct, l_ms, capped)) in vms.iter().enumerate() {
        if removed == Some(i) {
            continue;
        }
        let u = Utilization::from_percent(upct);
        let l = Nanos::from_millis(l_ms);
        let spec = if capped {
            VcpuSpec::capped(u, l)
        } else {
            VcpuSpec::new(u, l)
        };
        host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
    }
    if add {
        host.add_vm(VmSpec::uniform(
            "newcomer",
            1,
            VcpuSpec::new(Utilization::from_percent(10), Nanos::from_millis(20)),
        ));
    }
    host
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After any VM arrival/departure, the incremental plan's per-vCPU
    /// max blackout meets each latency goal whenever the full replan's
    /// does — table reuse never weakens the guarantee.
    #[test]
    fn incremental_blackouts_match_full_replan(
        (cores, vms) in arb_fleet(),
        remove_idx in 0usize..8,
        add in any::<bool>(),
    ) {
        let opts = PlannerOptions::default();
        let prev_host = build_host(cores, &vms);
        let prev = plan(&prev_host, &opts).expect("admissible fleet plans");

        let host = mutated_host(cores, &vms, remove_idx, add);
        let (inc, report) = plan_incremental(&prev_host, &prev, &host, &opts)
            .expect("mutated fleet plans incrementally");
        let full = plan(&host, &opts).expect("mutated fleet plans fully");

        let slack = tableau_core::postprocess::DEFAULT_THRESHOLD;
        for (vcpu, spec) in host.vcpus() {
            let a = inc.blackout_of(vcpu).expect("incremental measures every vCPU");
            let b = full.blackout_of(vcpu).expect("full measures every vCPU");
            prop_assert!(
                b <= spec.latency + slack,
                "{vcpu}: full replan blackout {b} exceeds goal {}",
                spec.latency
            );
            prop_assert!(
                a <= spec.latency + slack,
                "{vcpu}: incremental blackout {a} exceeds goal {} (full: {b}, \
                 reused cores {:?})",
                spec.latency,
                report.reused_cores
            );
        }

        // Reuse bookkeeping is consistent: every core is either reused or
        // replanned, never both.
        for core in 0..cores {
            let reused = report.reused_cores.contains(&core);
            let replanned = report.replanned_cores.contains(&core);
            prop_assert!(reused != replanned, "core {core}: reused={reused} replanned={replanned}");
        }
    }

    /// The fallback ladder offers the same guarantee: whichever rung ends
    /// up doing the work — incremental reuse, or the full replan forced by
    /// a structural change such as a core-count change — the resulting
    /// per-vCPU max blackout meets every latency goal exactly as a
    /// from-scratch plan's does.
    #[test]
    fn fallback_ladder_blackouts_match_full_replan(
        (cores, vms) in arb_fleet(),
        remove_idx in 0usize..8,
        add in any::<bool>(),
        grow_cores in any::<bool>(),
    ) {
        let opts = PlannerOptions::default();
        let prev_host = build_host(cores, &vms);
        let prev = plan(&prev_host, &opts).expect("admissible fleet plans");

        // Growing the machine is a structural change: the incremental rung
        // must hand over to a full replan inside the ladder.
        let new_cores = if grow_cores { cores + 1 } else { cores };
        let host = mutated_host(new_cores, &vms, remove_idx, add);

        let out = plan_with_fallback(Some((&prev_host, &prev)), &host, &opts)
            .expect("ladder plans an admissible reconfiguration");
        let full = plan(&host, &opts).expect("mutated fleet plans fully");

        if grow_cores {
            prop_assert!(
                matches!(out.path, ReplanPath::Full),
                "core-count change must take the full-replan rung, took {}",
                out.path.label()
            );
        }

        let slack = tableau_core::postprocess::DEFAULT_THRESHOLD;
        for (vcpu, spec) in host.vcpus() {
            let a = out.plan.blackout_of(vcpu).expect("ladder measures every vCPU");
            let b = full.blackout_of(vcpu).expect("full measures every vCPU");
            prop_assert!(
                a <= spec.latency + slack,
                "{vcpu}: ladder ({}) blackout {a} exceeds goal {} (full: {b})",
                out.path.label(),
                spec.latency
            );
            prop_assert!(
                b <= spec.latency + slack,
                "{vcpu}: full replan blackout {b} exceeds goal {}",
                spec.latency
            );
        }
    }
}
