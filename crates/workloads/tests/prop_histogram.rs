//! Property-based tests for the log-linear histogram.
//!
//! The histogram underpins every latency number in the reproduction, so its
//! error bounds are checked against an exact oracle (the sorted sample
//! vector): quantiles must sit within the documented ~3% relative error,
//! exact statistics (min/max/mean/count) must be exact, and merging two
//! histograms must equal recording the union.

use proptest::prelude::*;

use rtsched::time::Nanos;
use workloads::Histogram;

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantiles are within the documented relative error of the oracle.
    #[test]
    fn quantiles_track_the_oracle(
        mut values in proptest::collection::vec(1u64..10_000_000_000, 1..500),
        qs in proptest::collection::vec(0.01f64..1.0, 1..8),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(Nanos(v));
        }
        values.sort_unstable();
        for &q in &qs {
            let got = h.quantile(q).unwrap().as_nanos();
            let want = exact_quantile(&values, q);
            // The bucket's upper edge is at most 1/32 above the true value,
            // and ties at bucket granularity can pick a neighbouring sample.
            let tolerance = want / 16 + 1;
            prop_assert!(
                got + tolerance >= want && got <= want + tolerance,
                "q={q}: got {got}, want {want}"
            );
        }
    }

    /// Exact statistics are exact.
    #[test]
    fn exact_stats(values in proptest::collection::vec(0u64..u32::MAX as u64, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(Nanos(v));
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max().as_nanos(), *values.iter().max().unwrap());
        prop_assert_eq!(h.min().as_nanos(), *values.iter().min().unwrap());
        let mean = values.iter().map(|&v| v as u128).sum::<u128>() / values.len() as u128;
        prop_assert_eq!(h.mean().as_nanos() as u128, mean);
    }

    /// Merging equals recording the union.
    #[test]
    fn merge_is_union(
        a in proptest::collection::vec(1u64..1_000_000_000, 0..100),
        b in proptest::collection::vec(1u64..1_000_000_000, 1..100),
    ) {
        let mut ha = Histogram::new();
        for &v in &a {
            ha.record(Nanos(v));
        }
        let mut hb = Histogram::new();
        for &v in &b {
            hb.record(Nanos(v));
        }
        ha.merge(&hb);

        let mut hu = Histogram::new();
        for &v in a.iter().chain(&b) {
            hu.record(Nanos(v));
        }
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.max(), hu.max());
        prop_assert_eq!(ha.mean(), hu.mean());
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q));
        }
    }

    /// Quantiles are monotone in q.
    #[test]
    fn quantiles_are_monotone(values in proptest::collection::vec(1u64..1_000_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(Nanos(v));
        }
        let mut last = Nanos::ZERO;
        for i in 1..=20 {
            let q = h.quantile(i as f64 / 20.0).unwrap();
            prop_assert!(q >= last, "quantile regressed at {i}/20");
            last = q;
        }
        prop_assert_eq!(h.quantile(1.0), Some(h.max()));
    }
}
