//! The ping-latency workload (Sec. 7.3).
//!
//! The paper measures round-trip ping latency from a client machine to a
//! *vantage VM*: ICMP echo requests are handled in the guest kernel, so in
//! a controlled network the round-trip time is dominated by how quickly the
//! VM scheduler dispatches the VM after the packet's wake-up — "a good
//! proxy for the scheduling latency incurred by a VM in reaction to
//! wake-ups triggered by external I/O events".
//!
//! [`PingResponder`] is the guest side: each echo costs a few microseconds
//! of CPU; the latency of a ping is the time from packet arrival to the
//! completion of its handler. [`ping_arrivals`] generates the paper's load:
//! eight client threads, each sending 5,000 pings with uniformly random
//! spacing in `[0, 200 ms)` — 40,000 samples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtsched::time::Nanos;
use xensim::sched::{GuestAction, GuestWorkload};

use crate::histogram::Histogram;

/// CPU cost of handling one ICMP echo in the guest kernel.
pub const PING_HANDLER_COST: Nanos = Nanos(5_000);

/// Guest-kernel ICMP responder for a vantage VM.
#[derive(Debug)]
pub struct PingResponder {
    /// Arrival times of pings waiting to be handled.
    pending: std::collections::VecDeque<Nanos>,
    /// The ping currently being handled.
    in_flight: Option<Nanos>,
    /// Per-ping latency (arrival to handler completion).
    pub latencies: Histogram,
    handler_cost: Nanos,
}

impl PingResponder {
    /// Creates a responder with the default handler cost.
    pub fn new() -> PingResponder {
        PingResponder::with_cost(PING_HANDLER_COST)
    }

    /// Creates a responder with an explicit per-ping CPU cost.
    pub fn with_cost(handler_cost: Nanos) -> PingResponder {
        PingResponder {
            pending: std::collections::VecDeque::new(),
            in_flight: None,
            latencies: Histogram::new(),
            handler_cost,
        }
    }
}

impl Default for PingResponder {
    fn default() -> PingResponder {
        PingResponder::new()
    }
}

impl GuestWorkload for PingResponder {
    fn next(&mut self, now: Nanos) -> GuestAction {
        // The previous handler (if any) just completed: record its latency.
        if let Some(arrival) = self.in_flight.take() {
            self.latencies.record(now - arrival);
        }
        match self.pending.pop_front() {
            Some(arrival) => {
                self.in_flight = Some(arrival);
                GuestAction::Compute(self.handler_cost)
            }
            None => GuestAction::Block,
        }
    }

    fn on_event(&mut self, _tag: u64, now: Nanos) -> bool {
        self.pending.push_back(now);
        true
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Generates the paper's ping schedule: `threads` senders, each issuing
/// `per_thread` pings with i.i.d. uniform spacing in `[0, max_gap)`.
///
/// Returns sorted absolute arrival times. Deterministic in `seed`.
pub fn ping_arrivals(threads: usize, per_thread: usize, max_gap: Nanos, seed: u64) -> Vec<Nanos> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals = Vec::with_capacity(threads * per_thread);
    for _ in 0..threads {
        let mut t = Nanos::ZERO;
        for _ in 0..per_thread {
            t += Nanos(rng.gen_range(0..max_gap.as_nanos()));
            arrivals.push(t);
        }
    }
    arrivals.sort_unstable();
    arrivals
}

/// The paper's exact configuration: 8 threads x 5,000 pings, 0–200 ms gaps.
pub fn paper_ping_arrivals(seed: u64) -> Vec<Nanos> {
    ping_arrivals(8, 5_000, Nanos::from_millis(200), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responder_records_latency_from_arrival() {
        let mut r = PingResponder::new();
        // Ping arrives at t=100us while blocked.
        assert!(r.on_event(0, Nanos::from_micros(100)));
        // Dispatched at t=500us: handler runs.
        assert_eq!(
            r.next(Nanos::from_micros(500)),
            GuestAction::Compute(PING_HANDLER_COST)
        );
        // Handler completes at 505us: latency = 405us.
        assert_eq!(r.next(Nanos::from_micros(505)), GuestAction::Block);
        assert_eq!(r.latencies.count(), 1);
        assert_eq!(r.latencies.max(), Nanos::from_micros(405));
    }

    #[test]
    fn queued_pings_are_served_fifo() {
        let mut r = PingResponder::new();
        r.on_event(0, Nanos(1_000));
        r.on_event(0, Nanos(2_000));
        assert!(matches!(r.next(Nanos(10_000)), GuestAction::Compute(_)));
        assert!(matches!(r.next(Nanos(15_000)), GuestAction::Compute(_)));
        assert_eq!(r.next(Nanos(20_000)), GuestAction::Block);
        assert_eq!(r.latencies.count(), 2);
        // First ping: 15000 - 1000; second: 20000 - 2000.
        assert_eq!(r.latencies.max(), Nanos(18_000));
    }

    #[test]
    fn arrival_generation_matches_paper_shape() {
        let a = paper_ping_arrivals(42);
        assert_eq!(a.len(), 40_000);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        // Expected mean gap 100 ms per thread => ~500 s per thread span.
        let span = *a.last().unwrap();
        assert!(span > Nanos::from_secs(400));
        assert!(span < Nanos::from_secs(600));
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        assert_eq!(paper_ping_arrivals(7), paper_ping_arrivals(7));
        assert_ne!(paper_ping_arrivals(7), paper_ping_arrivals(8));
    }
}
