//! Background workloads: the paper's `stress`-based load generators.
//!
//! Sec. 7 uses the POSIX `stress` tool inside background VMs in two modes:
//!
//! * an **I/O-intensive** mode that blocks and wakes constantly, causing
//!   very frequent VM-scheduler invocations — the regime where scheduler
//!   overheads dominate and RTDS's throughput collapses;
//! * a **cache-thrashing, fully CPU-bound** mode that never voluntarily
//!   yields — the regime where "the VM scheduler is hardly a bottleneck"
//!   (Fig. 8) but uncapped CPU hogs steal cycles from dynamic schedulers.

use rtsched::time::Nanos;
use xensim::sched::{GuestAction, GuestWorkload};

/// I/O-intensive background workload, like `stress -i`.
///
/// A `sync()`-spinning worker is bimodal from the hypervisor's viewpoint:
///
/// * **CPU stretches** — walking dirty pages, queueing writeback — during
///   which the vCPU holds the core without yielding (under Credit, a
///   *boosted* background VM holds it at top priority, which is what makes
///   the heuristic backfire);
/// * **I/O flurries** — bursts of short compute/block/wake cycles at
///   microsecond timescales, tens of thousands per second machine-wide,
///   which is the "frequently triggers the VM scheduler" regime the paper's
///   throughput experiments put the schedulers in.
///
/// The default alternates a 5 ms stretch (a writeback pass over dirty
/// pages) with 150 cycles of (10 µs compute + 33 µs wait): ~57% CPU demand
/// (over twice the fair share of a 4-VMs-per-core host) at ~13,000
/// wake-ups per second when unconstrained. Under Credit, the stretch is
/// what a freshly *boosted* background VM executes at top priority — the
/// vantage VM waits behind entire stretches, which is why Credit degrades
/// at very low request rates in the paper's uncapped experiments.
#[derive(Debug, Clone)]
pub struct IoStress {
    /// CPU burst per flurry cycle.
    pub burst: Nanos,
    /// Blocking wait per flurry cycle.
    pub wait: Nanos,
    /// CPU-bound stretch at the start of each period.
    pub stretch: Nanos,
    /// Number of flurry cycles per period.
    pub flurry: u32,
    /// Cycles left in the current flurry (stretch next when it hits 0).
    cycles_left: u32,
    compute_next: bool,
}

impl IoStress {
    /// Creates an I/O stressor with the given stretch/flurry structure.
    pub fn new(stretch: Nanos, flurry: u32, burst: Nanos, wait: Nanos) -> IoStress {
        IoStress {
            burst,
            wait,
            stretch,
            flurry,
            cycles_left: 0,
            compute_next: true,
        }
    }

    /// A pure block/wake cycler without CPU stretches (unit tests and
    /// micro-experiments).
    pub fn cycler(burst: Nanos, wait: Nanos) -> IoStress {
        IoStress::new(Nanos::ZERO, u32::MAX, burst, wait)
    }

    /// The paper-style default (see the type docs). Calibrated against
    /// Tables 1–2: RTDS's global lock is contended-but-alive on the
    /// 16-core machine (migrate ≈ 9 µs) and saturates on the 48-core
    /// machine (migrate ≫ 100 µs).
    pub fn paper_default() -> IoStress {
        IoStress::new(
            Nanos::from_micros(5_000),
            150,
            Nanos::from_micros(10),
            Nanos::from_micros(33),
        )
    }
}

impl GuestWorkload for IoStress {
    fn next(&mut self, _now: Nanos) -> GuestAction {
        if self.compute_next {
            self.compute_next = false;
            if self.cycles_left == 0 {
                // Start a new period with the CPU stretch (skipped when
                // configured as a pure cycler).
                self.cycles_left = self.flurry;
                if !self.stretch.is_zero() {
                    return GuestAction::Compute(self.stretch + self.burst);
                }
            }
            self.cycles_left = self.cycles_left.saturating_sub(1);
            GuestAction::Compute(self.burst)
        } else {
            self.compute_next = true;
            GuestAction::BlockFor(self.wait)
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Cache-thrashing, fully CPU-bound background workload (`stress`'s memory
/// walker): never blocks, never triggers the scheduler voluntarily.
#[derive(Debug, Clone, Default)]
pub struct CacheThrash;

impl GuestWorkload for CacheThrash {
    fn next(&mut self, _now: Nanos) -> GuestAction {
        GuestAction::Compute(Nanos::from_secs(1))
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A mostly idle VM with occasional light system activity (cron, kernel
/// threads): what "no background workload" VMs do in the paper's capped
/// ping experiment — they still occasionally need CPU, which is what makes
/// Credit park the vantage VM even in an "idle" system (Sec. 7.3).
#[derive(Debug, Clone)]
pub struct LightSystemNoise {
    /// CPU used per activity burst.
    pub burst: Nanos,
    /// Sleep between bursts.
    pub interval: Nanos,
    compute_next: bool,
}

impl LightSystemNoise {
    /// Creates the noise source.
    pub fn new(burst: Nanos, interval: Nanos) -> LightSystemNoise {
        LightSystemNoise {
            burst,
            interval,
            compute_next: false,
        }
    }

    /// Default: 200 µs of work every 50 ms (~0.4% CPU).
    pub fn paper_default() -> LightSystemNoise {
        LightSystemNoise::new(Nanos::from_micros(200), Nanos::from_millis(50))
    }
}

impl GuestWorkload for LightSystemNoise {
    fn next(&mut self, _now: Nanos) -> GuestAction {
        if self.compute_next {
            self.compute_next = false;
            GuestAction::Compute(self.burst)
        } else {
            self.compute_next = true;
            GuestAction::BlockFor(self.interval)
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedulers_test_support::*;

    /// Minimal in-crate harness pieces for workload tests.
    mod schedulers_test_support {
        pub use xensim::{Machine, Sim};
    }

    use xensim::sched::{
        DeschedulePlan, IpiTargets, SchedDecision, VcpuId, VcpuView, VmScheduler, WakeupPlan,
    };

    /// Run-whoever-is-runnable scheduler for workload unit tests.
    struct RunFirst;
    impl VmScheduler for RunFirst {
        fn name(&self) -> &'static str {
            "runfirst"
        }
        fn schedule(
            &mut self,
            _core: usize,
            now: Nanos,
            view: VcpuView<'_>,
        ) -> (SchedDecision, Nanos) {
            let pick = (0..view.runnable.len() as u32)
                .map(VcpuId)
                .find(|&v| view.is_runnable(v));
            let until = now + Nanos::from_millis(100);
            (
                match pick {
                    Some(v) => SchedDecision::run(v, until),
                    None => SchedDecision::idle(until),
                },
                Nanos(500),
            )
        }
        fn on_wakeup(&mut self, _v: VcpuId, _n: Nanos, _view: VcpuView<'_>) -> WakeupPlan {
            WakeupPlan {
                ipi_cores: IpiTargets::one(0),
                cost: Nanos(500),
            }
        }
        fn on_block(&mut self, _v: VcpuId, _c: usize, _n: Nanos) {}
        fn on_descheduled(
            &mut self,
            _v: VcpuId,
            _c: usize,
            _ran: Nanos,
            _n: Nanos,
        ) -> DeschedulePlan {
            DeschedulePlan::default()
        }
        fn register_vcpu(&mut self, _v: VcpuId, _h: usize) {}
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn io_stress_demand_matches_duty_cycle() {
        let mut sim = Sim::new(Machine::small(1), Box::new(RunFirst));
        let v = sim.add_vcpu(Box::new(IoStress::paper_default()), 0, true);
        sim.run_until(Nanos::from_secs(1));
        let s = sim.stats().vcpu(v);
        // ~50% duty (shaved by per-cycle overheads) when alone on a core:
        // an uncapped `stress -i` VM demands twice its 25% fair share.
        let frac = s.service.as_nanos() as f64 / 1e9;
        assert!((0.38..0.62).contains(&frac), "duty cycle off: {frac}");
        // Thousands of wakeups per second: the scheduler-invocation
        // pressure the paper's experiments rely on.
        assert!(s.wakeups > 5_000, "only {} wakeups", s.wakeups);
    }

    #[test]
    fn cache_thrash_never_blocks() {
        let mut sim = Sim::new(Machine::small(1), Box::new(RunFirst));
        let v = sim.add_vcpu(Box::new(CacheThrash), 0, true);
        sim.run_until(Nanos::from_secs(1));
        let s = sim.stats().vcpu(v);
        assert_eq!(s.wakeups, 0);
        assert!(s.service > Nanos::from_millis(990));
    }

    #[test]
    fn system_noise_is_light() {
        let mut sim = Sim::new(Machine::small(1), Box::new(RunFirst));
        let v = sim.add_vcpu(Box::new(LightSystemNoise::paper_default()), 0, true);
        sim.run_until(Nanos::from_secs(1));
        let s = sim.stats().vcpu(v);
        let frac = s.service.as_nanos() as f64 / 1e9;
        assert!(frac < 0.01, "noise too heavy: {frac}");
        assert!(s.wakeups > 10);
    }
}
