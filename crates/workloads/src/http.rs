//! The nginx-over-HTTPS application model (Sec. 7.4).
//!
//! The paper's throughput experiment serves a small PHP "application" over
//! HTTPS from a vantage VM: each request returns a randomly selected file
//! of a fixed size (1 KiB, 100 KiB, or 1 MiB) out of tmpfs, through an
//! SR-IOV virtual NIC. The guest-side cost structure is:
//!
//! * a **per-request CPU cost** — TLS record processing, nginx/PHP
//!   dispatch, syscalls — independent of file size;
//! * a **per-byte CPU cost** — encryption and copying of the response;
//! * **I/O round-trips**: a TLS-over-TCP exchange is several packet
//!   flights, so the per-request CPU is split into chunks separated by
//!   client-turnaround waits. Like a real event-driven nginx, the server
//!   handles many connections **concurrently**: while one request awaits
//!   its client, another's chunk computes. At saturation the vCPU
//!   therefore stays busy; at low load each wait surfaces as a
//!   block/wake-up pair in the hypervisor — where dynamic schedulers pay
//!   their per-operation tax and a table-driven scheduler pays almost
//!   nothing;
//! * **wire time** on the NIC ring ([`xensim::TxRing`]): responses are
//!   enqueued when the CPU work finishes; if the ring lacks space the
//!   request waits for the device to drain (this is what makes capped,
//!   table-driven scheduling lose to Credit at 1 MiB — Sec. 7.5's
//!   device-utilization limitation).
//!
//! Request latency is measured from *arrival* to the transmission of the
//! response's last byte, mirroring what wrk2 observes at the client in a
//! controlled network.

use std::collections::VecDeque;

use rtsched::time::Nanos;
use xensim::net::TxRing;
use xensim::sched::{GuestAction, GuestWorkload};

use crate::histogram::Histogram;

/// CPU cost model of the HTTPS/PHP stack.
#[derive(Debug, Clone, Copy)]
pub struct HttpCosts {
    /// Fixed CPU per request (TLS + nginx + PHP + syscalls).
    pub per_request: Nanos,
    /// CPU per KiB of response body (encryption + copies).
    pub per_kib: Nanos,
    /// Packet flights per request (see module docs).
    pub io_round_trips: u32,
    /// Client turnaround per flight (local 10 G network).
    pub round_trip_wait: Nanos,
    /// Concurrent connections the server multiplexes (wrk2 keeps a pool).
    pub max_connections: usize,
}

impl Default for HttpCosts {
    fn default() -> HttpCosts {
        // Calibrated so a 25%-reserved vCPU saturates near the paper's
        // peak rates: ~1,600 req/s at 1 KiB and ~600 req/s at 100 KiB
        // (capped Tableau), see Sec. 7.4.
        HttpCosts {
            per_request: Nanos(150_000),
            per_kib: Nanos(2_600),
            io_round_trips: 3,
            round_trip_wait: Nanos(5_000),
            max_connections: 16,
        }
    }
}

impl HttpCosts {
    /// Total CPU cost of serving `bytes`.
    pub fn request_cpu(&self, bytes: u64) -> Nanos {
        Nanos(
            self.per_request.as_nanos()
                + (bytes as u128 * self.per_kib.as_nanos() as u128 / 1024) as u64,
        )
    }

    /// CPU cost of one of the request's compute chunks (the total split
    /// evenly across the round-trips; the first chunk absorbs remainders).
    pub fn chunk_cpu(&self, bytes: u64, first: bool) -> Nanos {
        let total = self.request_cpu(bytes).as_nanos();
        let n = self.io_round_trips.max(1) as u64;
        let base = total / n;
        if first {
            Nanos(base + total % n)
        } else {
            Nanos(base)
        }
    }
}

/// One in-flight request.
#[derive(Debug, Clone, Copy)]
struct Job {
    arrival: Nanos,
    /// Compute chunks still to run (including the one in progress).
    chunks_left: u32,
    /// Response bytes still to hand to the NIC (send phase).
    bytes_left: u64,
}

/// An nginx-like server guest serving fixed-size files.
#[derive(Debug)]
pub struct HttpServer {
    /// Response size in bytes.
    pub file_size: u64,
    costs: HttpCosts,
    ring: TxRing,
    /// Requests that arrived but exceed the connection pool.
    pending: VecDeque<Nanos>,
    /// Requests ready to compute their next chunk.
    ready: VecDeque<Job>,
    /// Requests waiting on a client flight or on ring space, with their
    /// guest-visible wake times (bounded by `max_connections`).
    sleeping: Vec<(Nanos, Job)>,
    /// The job whose compute chunk is currently running.
    current: Option<Job>,
    /// End-to-end request latencies (arrival to last byte on the wire).
    pub latencies: Histogram,
    /// Requests fully served (last byte handed to the NIC).
    pub completed: u64,
    /// Largest backlog of queued requests observed.
    pub max_queue: usize,
}

impl HttpServer {
    /// Creates a server for `file_size`-byte responses with default costs
    /// and a 10 Gbit/s SR-IOV ring.
    pub fn new(file_size: u64) -> HttpServer {
        HttpServer::with_parts(file_size, HttpCosts::default(), TxRing::sriov_10g())
    }

    /// Creates a server with explicit cost model and NIC ring.
    pub fn with_parts(file_size: u64, costs: HttpCosts, ring: TxRing) -> HttpServer {
        HttpServer {
            file_size,
            costs,
            ring,
            pending: VecDeque::new(),
            ready: VecDeque::new(),
            sleeping: Vec::new(),
            current: None,
            latencies: Histogram::new(),
            completed: 0,
            max_queue: 0,
        }
    }

    /// Total bytes handed to the NIC (device-throughput accounting).
    pub fn bytes_sent(&self) -> u64 {
        self.ring.total_accepted()
    }

    fn in_flight(&self) -> usize {
        self.ready.len() + self.sleeping.len() + usize::from(self.current.is_some())
    }

    /// Send phase: offer the job's bytes to the ring; complete it or put it
    /// to sleep until space frees.
    fn send(&mut self, mut job: Job, now: Nanos) {
        debug_assert_eq!(job.chunks_left, 0);
        let (accepted, completion) = self.ring.offer(now, job.bytes_left);
        job.bytes_left -= accepted;
        if job.bytes_left == 0 {
            self.latencies
                .record(completion.saturating_sub(job.arrival));
            self.completed += 1;
        } else {
            let space_at = self.ring.time_for_space(now, job.bytes_left);
            self.sleeping.push((space_at.max(now + Nanos(1)), job));
        }
    }
}

impl GuestWorkload for HttpServer {
    fn next(&mut self, now: Nanos) -> GuestAction {
        // 1. The chunk that was computing (if any) completed.
        if let Some(mut job) = self.current.take() {
            job.chunks_left -= 1;
            if job.chunks_left == 0 {
                self.send(job, now);
            } else {
                // Await the client's next packet flight.
                self.sleeping
                    .push((now + self.costs.round_trip_wait.max(Nanos(1)), job));
            }
        }

        // 2. Wake sleeping jobs whose flights arrived / ring space freed.
        let mut i = 0;
        while i < self.sleeping.len() {
            if self.sleeping[i].0 <= now {
                let (_, job) = self.sleeping.swap_remove(i);
                if job.chunks_left == 0 {
                    self.send(job, now); // zero-CPU ring retry
                } else {
                    self.ready.push_back(job);
                }
            } else {
                i += 1;
            }
        }

        // 3. Admit pending arrivals into the connection pool.
        while self.in_flight() < self.costs.max_connections {
            let Some(arrival) = self.pending.pop_front() else {
                break;
            };
            self.ready.push_back(Job {
                arrival,
                chunks_left: self.costs.io_round_trips.max(1),
                bytes_left: self.file_size,
            });
        }

        // 4. Compute the next ready chunk, or sleep until the earliest
        // guest-internal wake, or block for new arrivals.
        if let Some(job) = self.ready.pop_front() {
            let first = job.chunks_left == self.costs.io_round_trips.max(1);
            self.current = Some(job);
            return GuestAction::Compute(self.costs.chunk_cpu(self.file_size, first));
        }
        if let Some(&(wake, _)) = self.sleeping.iter().min_by_key(|&&(wake, _)| wake) {
            return GuestAction::BlockFor(wake.saturating_sub(now).max(Nanos(1)));
        }
        GuestAction::Block
    }

    fn on_event(&mut self, _tag: u64, now: Nanos) -> bool {
        self.pending.push_back(now);
        self.max_queue = self.max_queue.max(self.pending.len());
        true
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: u64 = 1024;

    /// Drives the workload as an unconstrained vCPU would: compute and
    /// guest waits advance the clock directly. Returns the finish time.
    fn drive(s: &mut HttpServer, mut t: Nanos) -> Nanos {
        let mut guard = 0;
        loop {
            match s.next(t) {
                GuestAction::Compute(c) => t += c,
                GuestAction::BlockFor(w) => t += w,
                GuestAction::Block => return t,
            }
            guard += 1;
            assert!(guard < 100_000, "server never went idle");
        }
    }

    #[test]
    fn cost_model_matches_calibration() {
        let c = HttpCosts::default();
        // 1 KiB: ~152.6 us => ~1,638 req/s at 25% of a core.
        assert_eq!(c.request_cpu(KIB), Nanos(152_600));
        // 100 KiB: 150 us + 260 us = 410 us.
        assert_eq!(c.request_cpu(100 * KIB), Nanos(410_000));
        // Chunks cover the total exactly.
        let total = c.chunk_cpu(KIB, true) + c.chunk_cpu(KIB, false) * 2;
        assert_eq!(total, c.request_cpu(KIB));
    }

    #[test]
    fn single_request_interleaves_compute_and_client_waits() {
        let mut s = HttpServer::new(KIB);
        s.on_event(0, Nanos(1_000));
        let a = s.next(Nanos(2_000));
        // First chunk of 3.
        assert_eq!(a, GuestAction::Compute(s.costs.chunk_cpu(KIB, true)));
        let t = Nanos(2_000) + s.costs.chunk_cpu(KIB, true);
        // Then a client-turnaround wait (no other work pending).
        assert_eq!(s.next(t), GuestAction::BlockFor(Nanos(5_000)));
        assert_eq!(s.completed, 0);
        // Drive the rest to completion.
        drive(&mut s, t + Nanos(5_000));
        assert_eq!(s.completed, 1);
        // Latency = total CPU + 2 waits + wire time, from arrival at 1000
        // (request started at 2000).
        let expect = Nanos(1_000) + s.costs.request_cpu(KIB) + Nanos(2 * 5_000) + Nanos(6_827);
        assert_eq!(s.latencies.max(), expect);
    }

    #[test]
    fn concurrent_requests_overlap_round_trip_waits() {
        // Two requests: while request A awaits its client, B computes. The
        // total wall time is far less than 2x the serial latency.
        let mut s = HttpServer::new(KIB);
        s.on_event(0, Nanos::ZERO);
        s.on_event(0, Nanos::ZERO);
        let done = drive(&mut s, Nanos::ZERO);
        assert_eq!(s.completed, 2);
        let serial = (s.costs.request_cpu(KIB) + Nanos(2 * 5_000)) * 2;
        assert!(done < serial, "no overlap: {done} vs serial {serial}");
    }

    #[test]
    fn saturated_server_is_fully_cpu_bound() {
        // With a deep backlog the vCPU never sleeps on client turnarounds:
        // wall time == total CPU (plus nothing else; the ring is fast).
        let mut s = HttpServer::new(KIB);
        for _ in 0..32 {
            s.on_event(0, Nanos::ZERO);
        }
        let done = drive(&mut s, Nanos::ZERO);
        let cpu_total = s.costs.request_cpu(KIB) * 32;
        assert_eq!(s.completed, 32);
        // Within one round-trip wait of pure CPU time (the tail drains).
        assert!(
            done <= cpu_total + Nanos(2 * 5_000),
            "idle waits at saturation: {done} vs {cpu_total}"
        );
    }

    #[test]
    fn connection_pool_bounds_concurrency() {
        let mut s = HttpServer::new(KIB);
        for _ in 0..40 {
            s.on_event(0, Nanos::ZERO);
        }
        let _ = s.next(Nanos::ZERO);
        assert!(s.in_flight() <= s.costs.max_connections);
        assert_eq!(s.max_queue, 40);
    }

    #[test]
    fn oversized_response_blocks_on_the_ring() {
        // 1 MiB response into a 512 KiB ring: the send phase must wait for
        // the device at least once.
        let mut s = HttpServer::new(1024 * KIB);
        s.on_event(0, Nanos::ZERO);
        let done = drive(&mut s, Nanos::ZERO);
        assert_eq!(s.completed, 1);
        let floor = s.costs.request_cpu(1024 * KIB) + Nanos(2 * 5_000) + Nanos(3_000_000);
        assert!(done > floor, "no ring stall: done at {done}");
    }

    #[test]
    fn latency_includes_queueing_delay() {
        let mut s = HttpServer::new(KIB);
        s.on_event(0, Nanos::ZERO);
        // Server descheduled for 50 ms before it can start.
        drive(&mut s, Nanos::from_millis(50));
        assert!(s.latencies.max() > Nanos::from_millis(50));
    }

    #[test]
    fn throughput_accounting() {
        let mut s = HttpServer::new(KIB);
        for _ in 0..5 {
            s.on_event(0, Nanos::ZERO);
        }
        drive(&mut s, Nanos::ZERO);
        assert_eq!(s.bytes_sent(), 5 * KIB);
    }
}
