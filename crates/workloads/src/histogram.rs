//! A log-linear latency histogram (HdrHistogram-style), built from scratch.
//!
//! The paper measures tail latency with wrk2, whose defining feature is
//! HdrHistogram-based recording that is cheap at record time and supports
//! accurate high percentiles. This is the same design: values are bucketed
//! by magnitude (position of the leading bit) and linearly sub-bucketed
//! within each magnitude, giving a bounded *relative* error (1/32 with the
//! default 32 sub-buckets, i.e. ~3%) across the full `u64` range with a
//! few KiB of memory.

use serde::{Deserialize, Serialize};

use rtsched::time::Nanos;

/// Sub-buckets per magnitude: relative quantization error is `1/SUB`.
const SUB: u64 = 32;
const SUB_BITS: u32 = 5; // log2(SUB)

/// Number of magnitude groups needed for u64 values.
const GROUPS: usize = 60;

/// A log-linear histogram of nanosecond latencies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; GROUPS * SUB as usize],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of a value.
    fn index(value: u64) -> usize {
        if value < SUB {
            // Values below SUB are exact (group 0 maps identity).
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros(); // >= SUB_BITS
        let group = (magnitude - SUB_BITS + 1) as usize;
        // Sub-bucket width within [2^m, 2^(m+1)) is 2^(m - SUB_BITS).
        let sub = (value >> (magnitude - SUB_BITS)) & (SUB - 1);
        group * SUB as usize + sub as usize
    }

    /// Representative (upper-bound) value of a bucket.
    fn bucket_value(idx: usize) -> u64 {
        let group = idx as u64 / SUB;
        let sub = idx as u64 % SUB;
        if group == 0 {
            return sub;
        }
        let shift = group - 1;
        // Upper edge of the bucket: ((SUB + sub + 1) << shift) - 1.
        ((SUB + sub + 1) << shift) - 1
    }

    /// Records one latency sample.
    pub fn record(&mut self, value: Nanos) {
        let v = value.as_nanos();
        let idx = Histogram::index(v);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> Nanos {
        if self.total == 0 {
            Nanos::ZERO
        } else {
            Nanos(self.max)
        }
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> Nanos {
        if self.total == 0 {
            Nanos::ZERO
        } else {
            Nanos(self.min)
        }
    }

    /// Exact mean of recorded values.
    pub fn mean(&self) -> Nanos {
        if self.total == 0 {
            Nanos::ZERO
        } else {
            Nanos((self.sum / self.total as u128) as u64)
        }
    }

    /// Value at quantile `q` in `[0, 1]`, within the histogram's relative
    /// error. The exact max is returned for `q = 1`. `None` when no sample
    /// was ever recorded — an empty distribution has no quantiles, and a
    /// fabricated 0 ns would read as an impossibly good tail downstream.
    pub fn quantile(&self, q: f64) -> Option<Nanos> {
        if self.total == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(Nanos(self.max));
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Nanos(Histogram::bucket_value(idx).min(self.max)));
            }
        }
        Some(Nanos(self.max))
    }

    /// The 99th percentile (the paper's headline tail metric); `None` when
    /// the histogram is empty.
    pub fn p99(&self) -> Option<Nanos> {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Nanos::ZERO);
        assert_eq!(h.max(), Nanos::ZERO);
        assert_eq!(h.quantile(0.5), None, "an empty histogram has no median");
        assert_eq!(h.p99(), None, "an empty histogram has no p99");
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB {
            h.record(Nanos(v));
        }
        assert_eq!(h.min(), Nanos(0));
        assert_eq!(h.max(), Nanos(SUB - 1));
        assert_eq!(h.count(), SUB);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = Histogram::new();
        h.record(Nanos(1_000));
        h.record(Nanos(3_000));
        h.record(Nanos(100_000));
        assert_eq!(h.mean(), Nanos(34_666));
        assert_eq!(h.max(), Nanos(100_000));
        assert_eq!(h.min(), Nanos(1_000));
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = Histogram::new();
        // 1..=10000 us.
        for v in 1..=10_000u64 {
            h.record(Nanos(v * 1_000));
        }
        for &(q, expect) in &[(0.5, 5_000_000u64), (0.9, 9_000_000), (0.99, 9_900_000)] {
            let got = h.quantile(q).unwrap().as_nanos() as f64;
            let err = (got - expect as f64).abs() / expect as f64;
            assert!(err < 0.04, "q={q}: got {got}, want ~{expect}");
        }
        assert_eq!(h.quantile(1.0), Some(Nanos(10_000_000_000 / 1000)));
    }

    #[test]
    fn index_is_monotonic_and_bounded() {
        let mut last = 0usize;
        for shift in 0..60 {
            let v = 1u64 << shift;
            for &x in &[v, v + v / 3, v + v / 2, (v << 1).wrapping_sub(1)] {
                if x < v {
                    continue;
                }
                let idx = Histogram::index(x);
                assert!(idx >= last || x < SUB, "non-monotonic at {x}");
                assert!(idx < GROUPS * SUB as usize, "out of range at {x}");
                last = idx.max(last);
            }
        }
    }

    #[test]
    fn bucket_value_bounds_its_members() {
        for &v in &[0u64, 5, 31, 32, 100, 1_000, 123_456, u32::MAX as u64] {
            let idx = Histogram::index(v);
            let upper = Histogram::bucket_value(idx);
            assert!(upper >= v, "upper {upper} < value {v}");
            // Relative error bound.
            if v >= SUB {
                assert!(
                    (upper - v) as f64 / v as f64 <= 1.0 / SUB as f64 + 1e-9,
                    "error too large for {v}: upper {upper}"
                );
            }
        }
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Nanos(100));
        b.record(Nanos(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Nanos(1_000_000));
        assert_eq!(a.min(), Nanos(100));
    }

    #[test]
    fn p99_of_bimodal_distribution() {
        let mut h = Histogram::new();
        for _ in 0..990 {
            h.record(Nanos(1_000));
        }
        for _ in 0..10 {
            h.record(Nanos(50_000_000));
        }
        // p99 straddles the mode boundary; p98 is clearly in the low mode.
        assert!(h.quantile(0.98).unwrap().as_nanos() < 2_000);
        assert!(h.quantile(0.995).unwrap().as_nanos() > 40_000_000);
    }
}
