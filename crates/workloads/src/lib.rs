//! Guest workloads, load generation, and latency measurement for the
//! Tableau reproduction.
//!
//! Each module reproduces one measurement instrument or stimulus from the
//! paper's evaluation (Sec. 7):
//!
//! * [`histogram`] — an HdrHistogram-style log-linear latency recorder
//!   (what wrk2 uses for coordinated-omission-safe tail latencies);
//! * [`stress`] — the `stress`-based background VMs: I/O-intensive
//!   (frequent block/wake cycles) and cache-thrashing (pure CPU);
//! * [`intrinsic`] — the `redis-cli --intrinsic-latency` probe (Fig. 5);
//! * [`ping`] — the ICMP echo responder and the 8x5,000 randomly spaced
//!   ping schedule (Fig. 6);
//! * [`http`] — the nginx/PHP-over-HTTPS server cost model with the NIC
//!   transmit ring (Figs. 7–8);
//! * [`wrk2`] — open-loop constant-rate load generation and the
//!   latency-vs-throughput / SLA-aware-peak reporting used in Figs. 7–8.

//! * [`churn`] — the SAP-shaped VM create/teardown/resize trace generator
//!   driving the fleet control-plane experiments.

pub mod churn;
pub mod histogram;
pub mod http;
pub mod intrinsic;
pub mod ping;
pub mod stress;
pub mod wrk2;

pub use churn::{sap_trace, ChurnConfig, ChurnEvent, ChurnOp, Flavor};
pub use histogram::Histogram;
pub use http::{HttpCosts, HttpServer};
pub use intrinsic::IntrinsicLatency;
pub use ping::{paper_ping_arrivals, PingResponder};
pub use stress::{CacheThrash, IoStress, LightSystemNoise};
pub use wrk2::{constant_rate_arrivals, sla_peak_throughput, LoadPoint};
