//! `redis-cli --intrinsic-latency` equivalent (Sec. 7.3, Fig. 5).
//!
//! The redis tool runs a tight CPU-bound loop and records the largest gap
//! between consecutive loop iterations — any gap is time the process was
//! runnable but not running, i.e. scheduler-induced delay (the paper pins
//! it at the highest `SCHED_FIFO` priority to exclude the guest scheduler).
//!
//! In the simulator the vCPU-level equivalent is exact: a permanently
//! runnable workload whose maximum dispatch gap *is* the simulator's
//! per-vCPU `delay_max` statistic. [`IntrinsicLatency`] additionally
//! timestamps its own iterations guest-side, mirroring how the real tool
//! measures (and validating the simulator's accounting against an
//! independent observer).

use rtsched::time::Nanos;
use xensim::sched::{GuestAction, GuestWorkload};

/// Iteration granularity of the measurement loop.
///
/// The real tool's loop iterations are sub-microsecond; simulating each
/// would be needlessly slow. A 100 µs granularity bounds the measurement
/// error at 100 µs, far below the millisecond-scale delays of Fig. 5.
pub const PROBE_QUANTUM: Nanos = Nanos(100_000);

/// A CPU-bound probe that records the largest gap between its iterations.
#[derive(Debug)]
pub struct IntrinsicLatency {
    last_iteration: Option<Nanos>,
    /// Largest observed gap beyond the probe quantum itself.
    pub max_gap: Nanos,
    /// Total iterations completed.
    pub iterations: u64,
}

impl IntrinsicLatency {
    /// Creates the probe.
    pub fn new() -> IntrinsicLatency {
        IntrinsicLatency {
            last_iteration: None,
            max_gap: Nanos::ZERO,
            iterations: 0,
        }
    }
}

impl Default for IntrinsicLatency {
    fn default() -> IntrinsicLatency {
        IntrinsicLatency::new()
    }
}

impl GuestWorkload for IntrinsicLatency {
    fn next(&mut self, now: Nanos) -> GuestAction {
        if let Some(last) = self.last_iteration {
            // The loop body took PROBE_QUANTUM of CPU; anything beyond that
            // was time stolen by the (VM) scheduler.
            let gap = (now - last).saturating_sub(PROBE_QUANTUM);
            self.max_gap = self.max_gap.max(gap);
            self.iterations += 1;
        }
        self.last_iteration = Some(now);
        GuestAction::Compute(PROBE_QUANTUM)
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninterrupted_iterations_record_no_gap() {
        let mut p = IntrinsicLatency::new();
        let mut t = Nanos::ZERO;
        for _ in 0..10 {
            assert_eq!(p.next(t), GuestAction::Compute(PROBE_QUANTUM));
            t += PROBE_QUANTUM;
        }
        assert_eq!(p.max_gap, Nanos::ZERO);
        assert_eq!(p.iterations, 9);
    }

    #[test]
    fn preemption_gap_is_measured() {
        let mut p = IntrinsicLatency::new();
        p.next(Nanos::ZERO);
        // The next iteration starts 10 ms late (9.9 ms of preemption).
        p.next(Nanos::from_millis(10));
        assert_eq!(p.max_gap, Nanos::from_millis(10) - PROBE_QUANTUM);
    }

    #[test]
    fn max_gap_keeps_the_worst() {
        let mut p = IntrinsicLatency::new();
        p.next(Nanos::ZERO);
        p.next(Nanos::from_millis(5));
        p.next(Nanos::from_millis(30)); // 25 ms gap
        p.next(Nanos::from_millis(31));
        assert_eq!(p.max_gap, Nanos::from_millis(25) - PROBE_QUANTUM);
    }
}
