//! wrk2-style open-loop load generation and latency reporting (Sec. 7.4).
//!
//! wrk2 differs from naive load generators in being **open-loop**: requests
//! are issued on a fixed schedule regardless of how slowly the server
//! responds, so server stalls show up as queueing latency instead of
//! silently reducing the offered load — avoiding the *Coordinated Omission*
//! problem the paper cites. In the simulator we get this for free by
//! pre-scheduling every arrival as an external event: an overwhelmed server
//! accumulates the backlog, and each request's latency is measured from its
//! scheduled arrival time.

use serde::Serialize;

use rtsched::time::Nanos;

use crate::histogram::Histogram;

/// Generates a constant-throughput arrival schedule (like `wrk2 -R`).
///
/// Returns strictly increasing arrival times covering `[0, duration)`, at
/// `rate` requests per second.
pub fn constant_rate_arrivals(rate: f64, duration: Nanos) -> Vec<Nanos> {
    assert!(rate > 0.0, "non-positive request rate");
    let gap = 1e9 / rate;
    let n = (duration.as_nanos() as f64 / gap).floor() as u64;
    (0..n).map(|i| Nanos((i as f64 * gap) as u64)).collect()
}

/// Generates a Poisson arrival schedule at mean `rate` requests per second.
///
/// Real client populations are bursty; exponential inter-arrivals are the
/// standard open-loop model. Deterministic in `seed`. Burstiness stresses
/// tail latency harder than wrk2's metronome at the same mean rate.
pub fn poisson_arrivals(rate: f64, duration: Nanos, seed: u64) -> Vec<Nanos> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(rate > 0.0, "non-positive request rate");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity((rate * duration.as_secs_f64()) as usize + 16);
    let mut t = 0.0f64;
    loop {
        // Inverse-CDF sampling of Exp(rate); guard the open interval.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / rate * 1e9;
        if t >= duration.as_nanos() as f64 {
            return out;
        }
        out.push(Nanos(t as u64));
    }
}

/// One point of a latency-vs-throughput curve (one row of Fig. 7/8 data).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LoadPoint {
    /// Requests per second offered by the generator.
    pub offered_rps: f64,
    /// Requests per second actually completed.
    pub achieved_rps: f64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// Maximum observed latency in milliseconds.
    pub max_ms: f64,
}

impl LoadPoint {
    /// Assembles a point from a latency histogram and completion count.
    pub fn from_histogram(
        offered_rps: f64,
        completed: u64,
        duration: Nanos,
        latencies: &Histogram,
    ) -> LoadPoint {
        let secs = duration.as_secs_f64();
        LoadPoint {
            offered_rps,
            achieved_rps: completed as f64 / secs,
            mean_ms: latencies.mean().as_millis_f64(),
            p99_ms: latencies.p99().unwrap_or(Nanos::ZERO).as_millis_f64(),
            max_ms: latencies.max().as_millis_f64(),
        }
    }

    /// Whether this point satisfies a p99 SLA of `sla_ms` milliseconds —
    /// the paper's "SLA-aware throughput" criterion.
    pub fn meets_p99_sla(&self, sla_ms: f64) -> bool {
        self.p99_ms <= sla_ms
    }
}

/// The highest achieved throughput among points meeting a p99 SLA (the
/// paper's headline comparison, e.g. "1.6x peak throughput with a 100 ms
/// SLA").
pub fn sla_peak_throughput(points: &[LoadPoint], sla_ms: f64) -> f64 {
    points
        .iter()
        .filter(|p| p.meets_p99_sla(sla_ms))
        .map(|p| p.achieved_rps)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_spacing() {
        let a = constant_rate_arrivals(1000.0, Nanos::from_secs(1));
        assert_eq!(a.len(), 1000);
        assert_eq!(a[0], Nanos::ZERO);
        assert_eq!(a[1], Nanos::from_micros(1000));
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(*a.last().unwrap() < Nanos::from_secs(1));
    }

    #[test]
    fn fractional_rates_round_down() {
        let a = constant_rate_arrivals(2.5, Nanos::from_secs(2));
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn poisson_rate_and_determinism() {
        let a = poisson_arrivals(1_000.0, Nanos::from_secs(4), 7);
        // Mean 4000 arrivals; 4 sigma ~ 250.
        assert!((3_700..=4_300).contains(&a.len()), "{} arrivals", a.len());
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(*a.last().unwrap() < Nanos::from_secs(4));
        assert_eq!(a, poisson_arrivals(1_000.0, Nanos::from_secs(4), 7));
        assert_ne!(a, poisson_arrivals(1_000.0, Nanos::from_secs(4), 8));
    }

    #[test]
    fn poisson_is_burstier_than_constant_rate() {
        // Coefficient of variation of inter-arrival gaps: ~1 for Poisson,
        // ~0 for the metronome.
        let a = poisson_arrivals(2_000.0, Nanos::from_secs(2), 3);
        let gaps: Vec<f64> = a
            .windows(2)
            .map(|w| (w[1].as_nanos() - w[0].as_nanos()) as f64)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 0.8 && cv < 1.2, "cv = {cv}");
    }

    #[test]
    fn load_point_math() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record(Nanos::from_millis(i));
        }
        let p = LoadPoint::from_histogram(120.0, 100, Nanos::from_secs(2), &h);
        assert_eq!(p.achieved_rps, 50.0);
        assert!((p.mean_ms - 50.5).abs() < 0.1);
        assert!(p.max_ms == 100.0);
        assert!(p.p99_ms >= 98.0);
        assert!(p.meets_p99_sla(100.0));
        assert!(!p.meets_p99_sla(50.0));
    }

    #[test]
    fn sla_peak_picks_best_conforming_point() {
        let mk = |rps: f64, p99: f64| LoadPoint {
            offered_rps: rps,
            achieved_rps: rps,
            mean_ms: 1.0,
            p99_ms: p99,
            max_ms: p99,
        };
        let pts = [mk(100.0, 5.0), mk(200.0, 20.0), mk(400.0, 300.0)];
        assert_eq!(sla_peak_throughput(&pts, 100.0), 200.0);
        assert_eq!(sla_peak_throughput(&pts, 1.0), 0.0);
        assert_eq!(sla_peak_throughput(&pts, 1000.0), 400.0);
    }
}
