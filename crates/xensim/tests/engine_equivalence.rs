//! The determinism gate for the timing-wheel engine.
//!
//! The wheel ([`xensim::wheel`]) replaced the reference binary heap as the
//! simulator's pending-event structure. Every committed artifact in this
//! repo was produced under the heap's `(time, seq)` total order, so the
//! wheel must be *observationally identical*: same handled-event stream,
//! same statistics (including `RecoveryStats`), same trace — bit for bit —
//! across randomized scenarios with fault injection active. If these
//! properties hold, every `results/*.json` regenerates byte-identically
//! under the new engine.

use proptest::prelude::*;

use rtsched::time::Nanos;
use xensim::fault::FaultConfig;
use xensim::sched::{
    DeschedulePlan, GuestAction, GuestWorkload, IpiTargets, SchedDecision, VcpuId, VcpuView,
    VmScheduler,
};
use xensim::trace::TraceRecord;
use xensim::{EngineKind, Machine, Sim, SimStats, WakeupPlan};

/// A scheduler whose picks rotate by a seed — arbitrary on purpose, to
/// generate irregular event traffic rather than a sensible policy.
struct Chaotic {
    seed: u64,
    n_cores: usize,
    quantum_us: u64,
}

impl VmScheduler for Chaotic {
    fn name(&self) -> &'static str {
        "chaotic"
    }

    fn schedule(&mut self, core: usize, now: Nanos, view: VcpuView<'_>) -> (SchedDecision, Nanos) {
        self.seed = self
            .seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(core as u64);
        let n = view.runnable.len();
        let until = now + Nanos::from_micros(1 + self.quantum_us);
        if n == 0 {
            return (SchedDecision::idle(until), Nanos(300));
        }
        let start = (self.seed >> 33) as usize % n;
        for k in 0..n {
            let v = VcpuId(((start + k) % n) as u32);
            if v.0 as usize % self.n_cores == core && view.is_runnable(v) {
                return (SchedDecision::run(v, until), Nanos(300));
            }
        }
        (SchedDecision::idle(until), Nanos(300))
    }

    fn on_wakeup(&mut self, vcpu: VcpuId, _now: Nanos, _view: VcpuView<'_>) -> WakeupPlan {
        WakeupPlan {
            ipi_cores: IpiTargets::one(vcpu.0 as usize % self.n_cores),
            cost: Nanos(200),
        }
    }

    fn on_block(&mut self, _vcpu: VcpuId, _core: usize, _now: Nanos) {}

    fn on_descheduled(
        &mut self,
        _vcpu: VcpuId,
        _core: usize,
        _ran: Nanos,
        _now: Nanos,
    ) -> DeschedulePlan {
        DeschedulePlan {
            ipi_cores: IpiTargets::NONE,
            cost: Nanos(100),
        }
    }

    fn register_vcpu(&mut self, _vcpu: VcpuId, _home: usize) {}

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Compute/block cycler (the `sim_invariants` workload).
struct Cycler {
    burst_us: u64,
    wait_us: u64,
    compute_next: bool,
}

impl GuestWorkload for Cycler {
    fn next(&mut self, _now: Nanos) -> GuestAction {
        self.compute_next = !self.compute_next;
        if !self.compute_next || self.wait_us == 0 {
            GuestAction::Compute(Nanos::from_micros(self.burst_us))
        } else {
            GuestAction::BlockFor(Nanos::from_micros(self.wait_us))
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[derive(Debug, Clone, Copy)]
enum FaultPreset {
    None,
    /// `FaultConfig::with_intensity`: timer jitter, IPI loss, stolen time,
    /// overruns.
    Robustness,
    /// `FaultConfig::chaos`: the above plus core flaps.
    Chaos,
}

#[allow(clippy::too_many_arguments)]
fn build(
    engine: EngineKind,
    seed: u64,
    cores: usize,
    vcpus: &[(u64, u64)],
    events: &[(u64, u32)],
    quantum_us: u64,
    preset: FaultPreset,
    intensity: f64,
) -> Sim {
    let mut sim = Sim::new(
        Machine::small(cores),
        Box::new(Chaotic {
            seed,
            n_cores: cores,
            quantum_us,
        }),
    );
    sim.set_engine(engine);
    match preset {
        FaultPreset::None => {}
        FaultPreset::Robustness => {
            sim.set_fault_config(FaultConfig::with_intensity(seed, intensity));
        }
        FaultPreset::Chaos => sim.set_fault_config(FaultConfig::chaos(seed, intensity)),
    }
    sim.enable_tracing();
    sim.enable_event_log();
    for (i, &(burst, wait)) in vcpus.iter().enumerate() {
        sim.add_vcpu(
            Box::new(Cycler {
                burst_us: burst.max(1),
                wait_us: wait,
                compute_next: false,
            }),
            i % cores,
            i % 2 == 0,
        );
    }
    for &(at_us, v) in events {
        let target = VcpuId(v % vcpus.len() as u32);
        sim.push_external(Nanos::from_micros(at_us % 50_000), target, 0);
    }
    sim
}

/// Everything an engine can influence: the handled-event stream, the full
/// statistics block (which embeds `RecoveryStats`), the trace, and the
/// throughput counter.
type Observation = (Vec<(Nanos, u64, String)>, SimStats, Vec<TraceRecord>, u64);

fn observe(mut sim: Sim, horizon: Nanos) -> Observation {
    sim.run_until(horizon);
    let log = sim.take_event_log();
    let trace: Vec<TraceRecord> = sim.trace().iter().copied().collect();
    (log, sim.stats().clone(), trace, sim.events_processed())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Heap, wheel, and hybrid engines are indistinguishable over
    /// randomized fault-injected scenarios. (The hybrid engine must keep
    /// its batching preconditions honest: with faults armed or foreign
    /// events pending it must behave exactly like the wheel. Batching
    /// *engagement* equivalence is covered by the dense-capable Tableau
    /// suite in the `schedulers` crate.)
    #[test]
    fn engines_are_bit_for_bit_equivalent(
        seed in any::<u64>(),
        cores in 1usize..=4,
        vcpus in proptest::collection::vec((1u64..500, 0u64..500), 1..8),
        events in proptest::collection::vec((0u64..50_000, any::<u32>()), 0..32),
        quantum in 1u64..2_000,
        preset_pick in 0u8..3,
        intensity in 0.0f64..1.0,
    ) {
        let preset = match preset_pick {
            0 => FaultPreset::None,
            1 => FaultPreset::Robustness,
            _ => FaultPreset::Chaos,
        };
        let horizon = Nanos::from_millis(30);
        let heap = observe(
            build(EngineKind::Heap, seed, cores, &vcpus, &events, quantum, preset, intensity),
            horizon,
        );
        let wheel = observe(
            build(EngineKind::Wheel, seed, cores, &vcpus, &events, quantum, preset, intensity),
            horizon,
        );
        let hybrid = observe(
            build(EngineKind::Hybrid, seed, cores, &vcpus, &events, quantum, preset, intensity),
            horizon,
        );
        prop_assert_eq!(&heap.0, &wheel.0, "event streams diverged");
        prop_assert_eq!(&heap.1, &wheel.1, "stats diverged");
        prop_assert_eq!(&heap.2, &wheel.2, "traces diverged");
        prop_assert_eq!(heap.3, wheel.3, "event counts diverged");
        prop_assert_eq!(&heap.0, &hybrid.0, "hybrid event stream diverged");
        prop_assert_eq!(&heap.1, &hybrid.1, "hybrid stats diverged");
        prop_assert_eq!(&heap.2, &hybrid.2, "hybrid trace diverged");
        prop_assert_eq!(heap.3, hybrid.3, "hybrid event count diverged");
    }
}

/// Events far beyond the overflow horizon (> ~134 ms out) exercise the
/// far-heap level and the window cascade; the engines must still agree.
#[test]
fn far_horizon_events_stay_equivalent() {
    let run = |engine: EngineKind| {
        let mut sim = build(
            engine,
            7,
            2,
            &[(200, 300), (150, 0)],
            &[],
            500,
            FaultPreset::Robustness,
            0.4,
        );
        // Push wake-ups at 2 s, 5 s, and 30 s: all deep in far-heap
        // territory, migrating inward across many window cascades.
        sim.push_external(Nanos::from_millis(2_000), VcpuId(1), 1);
        sim.push_external(Nanos::from_millis(5_000), VcpuId(1), 2);
        sim.push_external(Nanos::from_millis(30_000), VcpuId(1), 3);
        observe(sim, Nanos::from_millis(31_000))
    };
    let heap = run(EngineKind::Heap);
    let wheel = run(EngineKind::Wheel);
    assert_eq!(heap.0.len(), wheel.0.len());
    assert_eq!(heap.0, wheel.0, "event streams diverged");
    assert_eq!(heap.1, wheel.1, "stats diverged");
    assert_eq!(heap.2, wheel.2, "traces diverged");
}

/// `set_engine` carries queued events (and their `(time, seq)` keys) over,
/// and refuses to run after the simulation started.
#[test]
fn engine_swap_preserves_queued_events() {
    let run = |swap: bool| {
        let mut sim = build(
            EngineKind::Wheel,
            3,
            1,
            &[(100, 200)],
            &[],
            300,
            FaultPreset::None,
            0.0,
        );
        sim.push_external(Nanos::from_micros(10), VcpuId(0), 9);
        if swap {
            // Wheel -> heap -> wheel: queued externals survive both hops.
            sim.set_engine(EngineKind::Heap);
            sim.set_engine(EngineKind::Wheel);
        }
        observe(sim, Nanos::from_millis(5))
    };
    assert_eq!(run(false), run(true));
}

#[test]
#[should_panic(expected = "before the first run")]
fn engine_swap_after_start_panics() {
    let mut sim = Sim::new(
        Machine::small(1),
        Box::new(Chaotic {
            seed: 1,
            n_cores: 1,
            quantum_us: 100,
        }),
    );
    sim.run_until(Nanos::from_millis(1));
    sim.set_engine(EngineKind::Heap);
}
