//! Simulator conservation and determinism invariants.
//!
//! Whatever scheduler or workload runs, the simulator itself must conserve
//! time: guest service on a core can never exceed wall time, a vCPU's
//! service never exceeds the whole run, blocked vCPUs accrue nothing, and
//! identical configurations replay identically. These are checked under a
//! randomized scheduler driven by proptest-chosen event schedules — if the
//! event loop mis-handled stale timers or double-dispatched a vCPU, these
//! properties break.

use proptest::prelude::*;

use rtsched::time::Nanos;
use xensim::sched::{
    DeschedulePlan, GuestAction, GuestWorkload, IpiTargets, SchedDecision, VcpuId, VcpuView,
    VmScheduler, WakeupPlan,
};
use xensim::{Machine, Sim};

/// A scheduler whose picks rotate by a seed — deliberately arbitrary, to
/// stress the simulator rather than the policy.
struct Chaotic {
    seed: u64,
    n_cores: usize,
    quantum_us: u64,
}

impl VmScheduler for Chaotic {
    fn name(&self) -> &'static str {
        "chaotic"
    }

    fn schedule(&mut self, core: usize, now: Nanos, view: VcpuView<'_>) -> (SchedDecision, Nanos) {
        self.seed = self
            .seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(core as u64);
        let n = view.runnable.len();
        let until = now + Nanos::from_micros(1 + self.quantum_us);
        if n == 0 {
            return (SchedDecision::idle(until), Nanos(300));
        }
        // Walk from a pseudo-random start; pick the first runnable vCPU
        // that this scheduler believes is not running elsewhere (it relies
        // on home partitioning: vcpu % cores == core).
        let start = (self.seed >> 33) as usize % n;
        for k in 0..n {
            let v = VcpuId(((start + k) % n) as u32);
            if v.0 as usize % self.n_cores == core && view.is_runnable(v) {
                return (SchedDecision::run(v, until), Nanos(300));
            }
        }
        (SchedDecision::idle(until), Nanos(300))
    }

    fn on_wakeup(&mut self, vcpu: VcpuId, _now: Nanos, _view: VcpuView<'_>) -> WakeupPlan {
        WakeupPlan {
            ipi_cores: IpiTargets::one(vcpu.0 as usize % self.n_cores),
            cost: Nanos(200),
        }
    }

    fn on_block(&mut self, _vcpu: VcpuId, _core: usize, _now: Nanos) {}

    fn on_descheduled(
        &mut self,
        _vcpu: VcpuId,
        _core: usize,
        _ran: Nanos,
        _now: Nanos,
    ) -> DeschedulePlan {
        DeschedulePlan {
            ipi_cores: IpiTargets::NONE,
            cost: Nanos(100),
        }
    }

    fn register_vcpu(&mut self, _vcpu: VcpuId, _home: usize) {}

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Compute/block cycler with parameters from proptest.
struct Cycler {
    burst_us: u64,
    wait_us: u64,
    compute_next: bool,
}

impl GuestWorkload for Cycler {
    fn next(&mut self, _now: Nanos) -> GuestAction {
        self.compute_next = !self.compute_next;
        if !self.compute_next || self.wait_us == 0 {
            GuestAction::Compute(Nanos::from_micros(self.burst_us))
        } else {
            GuestAction::BlockFor(Nanos::from_micros(self.wait_us))
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn build(
    seed: u64,
    cores: usize,
    vcpus: &[(u64, u64)],
    events: &[(u64, u32)],
    quantum_us: u64,
) -> Sim {
    let machine = Machine::small(cores);
    let mut sim = Sim::new(
        machine,
        Box::new(Chaotic {
            seed,
            n_cores: cores,
            quantum_us,
        }),
    );
    for (i, &(burst, wait)) in vcpus.iter().enumerate() {
        sim.add_vcpu(
            Box::new(Cycler {
                burst_us: burst.max(1),
                wait_us: wait,
                compute_next: false,
            }),
            i % cores,
            i % 2 == 0,
        );
    }
    for &(at_us, v) in events {
        let target = VcpuId(v % vcpus.len() as u32);
        sim.push_external(Nanos::from_micros(at_us % 50_000), target, 0);
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: core busy time within wall time; per-vCPU service
    /// within total capacity; no service for never-woken blocked vCPUs.
    #[test]
    fn time_is_conserved(
        seed in any::<u64>(),
        cores in 1usize..=4,
        vcpus in proptest::collection::vec((1u64..500, 0u64..500), 1..8),
        events in proptest::collection::vec((0u64..50_000, any::<u32>()), 0..32),
        quantum in 1u64..2_000,
    ) {
        let horizon = Nanos::from_millis(50);
        let mut sim = build(seed, cores, &vcpus, &events, quantum);
        sim.run_until(horizon);
        let stats = sim.stats();
        for (core, &busy) in stats.core_busy.iter().enumerate() {
            prop_assert!(busy <= horizon, "core {core} busy {busy} > wall {horizon}");
        }
        let total: Nanos = stats.core_busy.iter().copied().sum();
        let service: Nanos = (0..vcpus.len())
            .map(|i| stats.vcpu(VcpuId(i as u32)).service)
            .sum();
        prop_assert_eq!(total, service, "core and vCPU accounting disagree");
    }

    /// Determinism: the same configuration produces identical statistics.
    #[test]
    fn simulation_is_deterministic(
        seed in any::<u64>(),
        vcpus in proptest::collection::vec((1u64..300, 0u64..300), 1..6),
        events in proptest::collection::vec((0u64..20_000, any::<u32>()), 0..16),
    ) {
        let run = || {
            let mut sim = build(seed, 2, &vcpus, &events, 500);
            sim.run_until(Nanos::from_millis(25));
            let s = sim.stats();
            (
                s.core_busy.clone(),
                (0..vcpus.len())
                    .map(|i| s.vcpu(VcpuId(i as u32)))
                    .collect::<Vec<_>>(),
                s.ipis,
                s.context_switches,
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// A vCPU that starts blocked and receives no events does nothing.
    #[test]
    fn blocked_vcpus_stay_silent(seed in any::<u64>()) {
        let machine = Machine::small(1);
        let mut sim = Sim::new(machine, Box::new(Chaotic { seed, n_cores: 1, quantum_us: 100 }));
        let sleeper = sim.add_vcpu(
            Box::new(Cycler { burst_us: 100, wait_us: 0, compute_next: false }),
            0,
            false,
        );
        sim.add_vcpu(
            Box::new(Cycler { burst_us: 100, wait_us: 50, compute_next: false }),
            0,
            true,
        );
        sim.run_until(Nanos::from_millis(20));
        let s = sim.stats().vcpu(sleeper);
        prop_assert_eq!(s.service, Nanos::ZERO);
        prop_assert_eq!(s.dispatches, 0);
    }
}
