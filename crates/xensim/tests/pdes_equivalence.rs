//! The determinism gate for the partitioned (per-socket PDES) engine.
//!
//! The partitioned engine splits the event queue into per-socket lanes
//! that advance in conservative lookahead windows and exchange
//! cross-socket events through mailboxes drained at window boundaries.
//! Its contract is the same as the wheel's was against the heap: the
//! handled-event stream, statistics, and trace must be *bit-for-bit*
//! identical to the sequential engines — at any `rayon` worker count —
//! modulo only the `stats.pdes`/`stats.batch` bookkeeping counters and
//! `BATCH` trace markers, which describe *how* events were processed.
//!
//! The scheduler here partitions adversarially: every de-schedule may
//! fire a cross-socket IPI, so the lanes interact constantly and the
//! merge logic (provisional sequence renumbering, log/trace splicing,
//! mailbox delivery) is exercised on every window.

use proptest::prelude::*;

use rtsched::time::Nanos;
use xensim::fault::FaultConfig;
use xensim::sched::{
    DeschedulePlan, GuestAction, GuestWorkload, IpiTargets, PdesSplit, SchedDecision, VcpuId,
    VcpuView, VmScheduler,
};
use xensim::trace::TraceRecord;
use xensim::{EngineKind, Machine, Sim, SimStats, TraceClass, WakeupPlan};

/// A partition-capable scheduler built to stress the PDES merge path.
///
/// All mutable state is a per-core LCG seed, so the state partitions
/// cleanly by socket: `schedule`/`on_descheduled` step the seed of the
/// core they run on, `on_wakeup` the seed of the vCPU's home core — all
/// lane-local callbacks in a partitioned run. Each vCPU is strictly
/// homed (only its home core ever dispatches it), but IPIs deliberately
/// cross sockets: wake-ups may add a far target and de-schedules draw
/// one from the LCG, so cross-socket mailbox traffic is heavy.
#[derive(Clone)]
struct XSched {
    n_cores: usize,
    quantum_us: u64,
    /// Emit LCG-drawn (possibly cross-socket) IPIs from hooks.
    chatter: bool,
    /// Per-core LCG state — the only mutable state.
    seeds: Vec<u64>,
    /// Home core per vCPU, filled by `register_vcpu`.
    homes: Vec<usize>,
}

impl XSched {
    fn new(seed: u64, n_cores: usize, quantum_us: u64, chatter: bool) -> XSched {
        XSched {
            n_cores,
            quantum_us,
            chatter,
            seeds: (0..n_cores as u64)
                .map(|c| seed.wrapping_add(c).wrapping_mul(0x9e3779b97f4a7c15) | 1)
                .collect(),
            homes: Vec::new(),
        }
    }

    fn draw(&mut self, core: usize) -> u64 {
        let s = &mut self.seeds[core];
        *s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *s >> 17
    }
}

impl VmScheduler for XSched {
    fn name(&self) -> &'static str {
        "xsched"
    }

    fn schedule(&mut self, core: usize, now: Nanos, view: VcpuView<'_>) -> (SchedDecision, Nanos) {
        let r = self.draw(core);
        let quantum = Nanos::from_micros(1 + r % self.quantum_us.max(1));
        let until = now + quantum;
        // Rotate over the vCPUs homed on this core; never dispatch a
        // foreign one (strict homing is what makes partitioning legal).
        let local: Vec<VcpuId> = (0..self.homes.len())
            .filter(|&v| self.homes[v] == core)
            .map(|v| VcpuId(v as u32))
            .collect();
        if !local.is_empty() {
            let start = (r >> 24) as usize % local.len();
            for k in 0..local.len() {
                let v = local[(start + k) % local.len()];
                if view.is_runnable(v) {
                    return (SchedDecision::run(v, until), Nanos(300));
                }
            }
        }
        (SchedDecision::idle(until), Nanos(300))
    }

    fn on_wakeup(&mut self, vcpu: VcpuId, _now: Nanos, _view: VcpuView<'_>) -> WakeupPlan {
        let home = self.homes[vcpu.0 as usize];
        let r = self.draw(home);
        // First target (the cost target) must stay on the waker's home
        // socket — the home core itself always is. Extra targets may
        // land anywhere, including across the socket boundary.
        let mut ipi_cores = IpiTargets::one(home);
        if self.chatter && r.is_multiple_of(3) {
            ipi_cores.push((r >> 8) as usize % self.n_cores);
        }
        WakeupPlan {
            ipi_cores,
            cost: Nanos(200),
        }
    }

    fn on_block(&mut self, _vcpu: VcpuId, _core: usize, _now: Nanos) {}

    fn on_descheduled(
        &mut self,
        _vcpu: VcpuId,
        core: usize,
        _ran: Nanos,
        _now: Nanos,
    ) -> DeschedulePlan {
        let r = self.draw(core);
        let ipi_cores = if self.chatter && r.is_multiple_of(2) {
            // Half of all de-schedules IPI an arbitrary core: with two
            // sockets roughly a quarter of all IPIs cross the boundary.
            IpiTargets::one((r >> 8) as usize % self.n_cores)
        } else {
            IpiTargets::NONE
        };
        DeschedulePlan {
            ipi_cores,
            cost: Nanos(100),
        }
    }

    fn pdes_split(&self, machine: &Machine) -> Result<PdesSplit, xensim::sched::PdesDecline> {
        let parts = (0..machine.n_sockets)
            .map(|_| Box::new(self.clone()) as Box<dyn VmScheduler>)
            .collect();
        Ok(PdesSplit {
            parts,
            vcpu_sockets: self
                .homes
                .iter()
                .map(|&h| Some(machine.socket_of(h)))
                .collect(),
            socket_local_ipis: false,
        })
    }

    fn pdes_merge(&mut self, machine: &Machine, mut parts: Vec<Box<dyn VmScheduler>>) {
        for (li, part) in parts.iter_mut().enumerate() {
            let part = part
                .as_any()
                .downcast_mut::<XSched>()
                .expect("merge with a foreign partition");
            for core in 0..self.n_cores {
                if machine.socket_of(core) == li {
                    self.seeds[core] = part.seeds[core];
                }
            }
        }
    }

    fn register_vcpu(&mut self, vcpu: VcpuId, home: usize) {
        let v = vcpu.0 as usize;
        if self.homes.len() <= v {
            self.homes.resize(v + 1, 0);
        }
        self.homes[v] = home;
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Compute/block cycler (as in the engine-equivalence suite).
struct Cycler {
    burst_us: u64,
    wait_us: u64,
    compute_next: bool,
}

impl GuestWorkload for Cycler {
    fn next(&mut self, _now: Nanos) -> GuestAction {
        self.compute_next = !self.compute_next;
        if !self.compute_next || self.wait_us == 0 {
            GuestAction::Compute(Nanos::from_micros(self.burst_us))
        } else {
            GuestAction::BlockFor(Nanos::from_micros(self.wait_us))
        }
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A 2-socket machine with a distinct cross-socket IPI latency (the
/// PDES lookahead bound).
fn two_socket(cores_per_socket: usize, cross_us: u64) -> Machine {
    let mut m = Machine::small(cores_per_socket * 2);
    m.n_sockets = 2;
    m.cores_per_socket = cores_per_socket;
    m.with_cross_ipi_latency(Nanos::from_micros(cross_us.max(1)))
}

fn build(
    engine: EngineKind,
    machine: Machine,
    seed: u64,
    vcpus: &[(u64, u64)],
    events: &[(u64, u32)],
    quantum_us: u64,
    chatter: bool,
) -> Sim {
    let n_cores = machine.n_cores();
    let mut sim = Sim::new(
        machine,
        Box::new(XSched::new(seed, n_cores, quantum_us, chatter)),
    );
    sim.set_engine(engine);
    sim.enable_tracing();
    sim.enable_event_log();
    for (i, &(burst, wait)) in vcpus.iter().enumerate() {
        sim.add_vcpu(
            Box::new(Cycler {
                burst_us: burst.max(1),
                wait_us: wait,
                compute_next: false,
            }),
            i % n_cores,
            i % 2 == 0,
        );
    }
    for &(at_us, v) in events {
        let target = VcpuId(v % vcpus.len() as u32);
        sim.push_external(Nanos::from_micros(at_us % 20_000), target, 0);
    }
    sim
}

type Observation = (Vec<(Nanos, u64, String)>, SimStats, Vec<TraceRecord>, u64);

/// Runs to the horizon and normalizes away the only allowed differences:
/// the `pdes`/`batch` bookkeeping counters and `BATCH` trace markers.
fn observe(mut sim: Sim, horizon: Nanos) -> Observation {
    sim.run_until(horizon);
    let log = sim.take_event_log();
    let trace: Vec<TraceRecord> = sim
        .trace()
        .iter()
        .filter(|r| !r.event.class().intersects(TraceClass::BATCH))
        .copied()
        .collect();
    let mut stats = sim.stats().clone();
    stats.pdes = Default::default();
    stats.batch = Default::default();
    (log, stats, trace, sim.events_processed())
}

/// Runs partitioned under `workers` rayon threads, asserting the
/// partitioned path actually engaged (no silent decline).
fn observe_partitioned(sim: Sim, horizon: Nanos, workers: usize) -> Observation {
    rayon::with_threads(workers, || {
        let mut sim = sim;
        sim.run_until(horizon);
        assert!(
            sim.stats().pdes.partitioned_runs > 0,
            "partitioned run declined: {:?}",
            sim.stats().pdes
        );
        let log = sim.take_event_log();
        let trace: Vec<TraceRecord> = sim
            .trace()
            .iter()
            .filter(|r| !r.event.class().intersects(TraceClass::BATCH))
            .copied()
            .collect();
        let mut stats = sim.stats().clone();
        stats.pdes = Default::default();
        stats.batch = Default::default();
        (log, stats, trace, sim.events_processed())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Partitioned at 1, 2, and 4 workers reproduces the sequential
    /// wheel byte-for-byte over randomized scenarios heavy in
    /// cross-socket IPIs and irregular quanta.
    #[test]
    fn partitioned_is_bit_for_bit_sequential(
        seed in any::<u64>(),
        cores_per_socket in 1usize..=3,
        cross_us in 1u64..=40,
        vcpus in proptest::collection::vec((1u64..400, 0u64..400), 1..10),
        events in proptest::collection::vec((0u64..20_000, any::<u32>()), 0..24),
        quantum in 1u64..1_500,
        chatter in any::<bool>(),
    ) {
        let machine = two_socket(cores_per_socket, cross_us);
        let horizon = Nanos::from_millis(10);
        let wheel = observe(
            build(EngineKind::Wheel, machine, seed, &vcpus, &events, quantum, chatter),
            horizon,
        );
        for workers in [1usize, 2, 4] {
            let part = observe_partitioned(
                build(EngineKind::Partitioned, machine, seed, &vcpus, &events, quantum, chatter),
                horizon,
                workers,
            );
            prop_assert_eq!(&wheel.0, &part.0, "event streams diverged at {} workers", workers);
            prop_assert_eq!(&wheel.1, &part.1, "stats diverged at {} workers", workers);
            prop_assert_eq!(&wheel.2, &part.2, "traces diverged at {} workers", workers);
            prop_assert_eq!(wheel.3, part.3, "event counts diverged at {} workers", workers);
        }
    }
}

/// Cross-socket events landing *exactly* on the lookahead boundary: with
/// every cost, quantum, and external a multiple of the 5 µs cross-socket
/// latency, mailbox deliveries repeatedly arrive at `window_end + L`
/// (the first instant the conservative window cannot cover) and at
/// `window_end + L - 1` (the last instant it can). Both sides of the
/// off-by-one must agree with the sequential engine.
#[test]
fn exact_lookahead_boundary_arrivals() {
    let run = |engine: EngineKind| {
        let mut m = Machine::small(4);
        m.n_sockets = 2;
        m.cores_per_socket = 2;
        m.ipi_latency = Nanos::from_micros(5);
        let machine = m.with_cross_ipi_latency(Nanos::from_micros(5));
        // Quantum cap 5 us and bursts in multiples of 5 us keep most
        // event times on the lattice of the lookahead bound.
        let vcpus = [(5, 5), (10, 5), (5, 10), (10, 10)];
        let mut sim = build(engine, machine, 42, &vcpus, &[], 5, true);
        for k in 0u64..20 {
            // Externals at exact multiples of L, alternating sockets.
            sim.push_external(Nanos::from_micros(5 * (k + 1)), VcpuId((k % 4) as u32), k);
        }
        sim
    };
    let horizon = Nanos::from_millis(3);
    let wheel = observe(run(EngineKind::Wheel), horizon);
    let part = observe_partitioned(run(EngineKind::Partitioned), horizon, 2);
    assert_eq!(wheel.0, part.0, "event streams diverged");
    assert_eq!(wheel.1, part.1, "stats diverged");
    assert_eq!(wheel.2, part.2, "traces diverged");
    assert_eq!(wheel.3, part.3, "event counts diverged");
}

/// The partitioned engine generates real cross-socket mailbox traffic in
/// the chatter scenario (the equivalence above is not vacuous), and the
/// window counters move.
#[test]
fn partitioned_counters_move() {
    let machine = two_socket(2, 5);
    let vcpus = [(50, 30), (80, 20), (40, 60), (70, 10)];
    let mut sim = build(EngineKind::Partitioned, machine, 7, &vcpus, &[], 100, true);
    sim.run_until(Nanos::from_millis(10));
    let pdes = &sim.stats().pdes;
    assert_eq!(pdes.partitioned_runs, 1, "{pdes:?}");
    assert!(pdes.windows_advanced > 0, "{pdes:?}");
    assert!(pdes.mailbox_events > 0, "{pdes:?}");
    assert_eq!(pdes.declines(), 0, "{pdes:?}");
}

/// The generic decline ladder: single socket, armed faults, a scheduler
/// without `pdes_split`, and a zero-lookahead machine all fall through
/// to the sequential loop (still bit-for-bit) with the reason counted.
#[test]
fn decline_ladder_falls_through() {
    let vcpus = [(30, 40), (60, 20)];
    // Single socket.
    let mut sim = build(
        EngineKind::Partitioned,
        Machine::small(2),
        1,
        &vcpus,
        &[],
        200,
        false,
    );
    sim.run_until(Nanos::from_millis(2));
    assert!(sim.stats().pdes.declined_single_socket > 0);
    assert_eq!(sim.stats().pdes.partitioned_runs, 0);

    // Faults armed on a two-socket machine.
    let mut sim = build(
        EngineKind::Partitioned,
        two_socket(2, 5),
        2,
        &vcpus,
        &[],
        200,
        false,
    );
    sim.set_fault_config(FaultConfig::with_intensity(3, 0.5));
    sim.run_until(Nanos::from_millis(2));
    assert!(sim.stats().pdes.declined_faults_armed > 0);
    assert_eq!(sim.stats().pdes.partitioned_runs, 0);

    // Zero lookahead: a degenerate machine with free IPIs everywhere.
    let mut m = Machine::small(4);
    m.n_sockets = 2;
    m.cores_per_socket = 2;
    m.ipi_latency = Nanos::ZERO;
    let mut sim = build(EngineKind::Partitioned, m, 4, &vcpus, &[], 200, false);
    sim.run_until(Nanos::from_millis(2));
    assert!(sim.stats().pdes.declined_no_lookahead > 0);
    assert_eq!(sim.stats().pdes.partitioned_runs, 0);

    // A scheduler that never implemented pdes_split.
    struct Opaque;
    impl VmScheduler for Opaque {
        fn name(&self) -> &'static str {
            "opaque"
        }
        fn schedule(
            &mut self,
            _core: usize,
            now: Nanos,
            _view: VcpuView<'_>,
        ) -> (SchedDecision, Nanos) {
            (
                SchedDecision::idle(now + Nanos::from_micros(100)),
                Nanos(100),
            )
        }
        fn on_wakeup(&mut self, _vcpu: VcpuId, _now: Nanos, _view: VcpuView<'_>) -> WakeupPlan {
            WakeupPlan::default()
        }
        fn on_block(&mut self, _vcpu: VcpuId, _core: usize, _now: Nanos) {}
        fn on_descheduled(
            &mut self,
            _vcpu: VcpuId,
            _core: usize,
            _ran: Nanos,
            _now: Nanos,
        ) -> DeschedulePlan {
            DeschedulePlan::default()
        }
        fn register_vcpu(&mut self, _vcpu: VcpuId, _home: usize) {}
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    let mut sim = Sim::new(two_socket(2, 5), Box::new(Opaque));
    sim.set_engine(EngineKind::Partitioned);
    sim.run_until(Nanos::from_millis(1));
    assert!(sim.stats().pdes.declined_scheduler_opt_out > 0);
    assert_eq!(sim.stats().pdes.partitioned_runs, 0);
}
