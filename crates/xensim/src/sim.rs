//! The discrete-event simulation driver.
//!
//! [`Sim`] multiplexes guest workloads over a [`Machine`] under a pluggable
//! [`VmScheduler`], in deterministic global time order. The coupling it
//! models is the one the paper measures:
//!
//! * guests progress only while dispatched;
//! * every scheduler operation (decision, wake-up, de-schedule work) costs
//!   CPU time on the core it runs on, delaying guest progress;
//! * wake-ups travel via IPIs with a delivery latency;
//! * context switches and cross-core migrations have hardware costs.
//!
//! Event ties are broken by insertion order, so a given configuration
//! replays identically — all experiment figures are reproducible bit for
//! bit.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rtsched::time::Nanos;

use crate::fault::{FaultConfig, FaultEngine, IpiFate};
use crate::machine::Machine;
use crate::sched::{
    DenseCosts, DenseSlice, GuestAction, GuestWorkload, IdleGuest, PdesDecline, VcpuId, VcpuView,
    VmScheduler,
};
use crate::stats::{OpKind, SimStats};
use crate::trace::{TraceBuffer, TraceClass, TraceEvent};
use crate::wheel::TimingWheel;

/// Guest-visible vCPU states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VState {
    /// Waiting for an event; not schedulable.
    Blocked,
    /// Schedulable but not on a core.
    Runnable,
    /// Executing on a core.
    Running,
}

struct VcpuSlot {
    state: VState,
    /// Remaining compute of the current burst; `None` means the workload
    /// must be asked for its next action at the next dispatch.
    remaining: Option<Nanos>,
    runnable_since: Option<Nanos>,
    last_core: Option<usize>,
    wake_gen: u64,
    /// Placement hint given at registration; the partitioned engine routes
    /// this vCPU's events to `socket_of(home)`, and wake-up IPI distances
    /// are measured from it.
    home: usize,
    workload: Box<dyn GuestWorkload>,
}

#[derive(Clone)]
struct CoreState {
    running: Option<VcpuId>,
    /// When the current vCPU began making guest progress (dispatch time
    /// plus overheads and context-switch cost).
    run_started: Nanos,
    /// Wall time charged to the vCPU since dispatch: guest progress plus
    /// the overheads and context-switch costs spent getting it running.
    /// This is what schedulers burn budgets/credits from — Xen's
    /// `burn_budget`-style accounting uses wall-clock deltas, which is
    /// precisely how scheduler overhead taxes a reservation.
    ran_since_dispatch: Nanos,
    decision_until: Nanos,
    /// Decision generation; stale core-timer events are ignored.
    gen: u64,
    /// Overhead charged to this core (wake-up processing, de-schedule
    /// work), consumed at the next dispatch.
    pending_overhead: Nanos,
    last_ran: Option<VcpuId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Decision expiry or burst completion on a core.
    CoreTimer { core: usize, gen: u64 },
    /// Unconditional re-schedule (IPI arrival).
    Resched { core: usize },
    /// External event for a vCPU (packet, request, ping).
    External { vcpu: VcpuId, tag: u64 },
    /// Guest-internal timer expiry (from [`GuestAction::BlockFor`]).
    SelfWake { vcpu: VcpuId, gen: u64 },
    /// Scheduler periodic tick on a core.
    Tick { core: usize },
    /// Start of a stolen-time interval on a core (fault injection).
    Stolen { core: usize },
    /// A core drops out of service (fault injection).
    CoreOffline { core: usize },
    /// An offline core returns to service (fault injection).
    CoreOnline { core: usize },
}

/// Selects the pending-event structure backing a [`Sim`].
///
/// All engines process events in identical `(time, seq)` order — the
/// `engine_equivalence` tests hold them to bit-for-bit equal streams. The
/// hybrid is the default; the heap and wheel remain as reference oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Reference engine: a binary min-heap of `(time, seq, event)`.
    Heap,
    /// Hierarchical timing wheel ([`crate::wheel`]): O(1) amortized
    /// insert/pop, allocation-free at steady state.
    Wheel,
    /// Wheel-backed queue plus dense-phase batching: when every pending
    /// event is a core timer, no faults are armed, and the scheduler can
    /// pre-compute its decision sequence ([`VmScheduler::dense_window`]),
    /// slice boundaries are advanced in a branch-predictable inner loop
    /// without round-tripping each one through the wheel. Bit-for-bit
    /// identical to the reference engines (modulo [`SimStats::batch`]
    /// counters and [`TraceClass::BATCH`] markers).
    #[default]
    Hybrid,
    /// Conservative per-socket PDES: each socket's cores advance on their
    /// own timing wheel up to a lookahead horizon bounded by the minimum
    /// cross-socket IPI latency, exchanging cross-socket events through
    /// ordered mailboxes drained at window boundaries. Runs the partitions
    /// on the `par` worker pool with index-ordered reassembly, so any
    /// worker count reproduces the sequential wheel run byte for byte
    /// (modulo [`SimStats::pdes`]/[`SimStats::batch`] counters and
    /// [`TraceClass::BATCH`] markers). Dense-phase batching composes
    /// inside each partition's window. Non-partitionable runs (single
    /// socket, armed faults, schedulers that do not opt in via
    /// [`VmScheduler::pdes_split`], ...) decline per `run_until` call to
    /// the sequential hybrid path, recording the reason in
    /// [`SimStats::pdes`].
    Partitioned,
}

impl EngineKind {
    /// The queue representation backing this engine (hybrid batching and
    /// PDES partitioning happen above the queue, which stays a wheel).
    fn repr(self) -> EngineKind {
        match self {
            EngineKind::Heap => EngineKind::Heap,
            EngineKind::Wheel | EngineKind::Hybrid | EngineKind::Partitioned => EngineKind::Wheel,
        }
    }
}

/// The pending-event set, behind the engine selection.
enum EventQueue {
    Heap(BinaryHeap<Reverse<(Nanos, u64, Event)>>),
    Wheel(Box<TimingWheel<Event>>),
}

impl EventQueue {
    fn new(repr: EngineKind) -> EventQueue {
        match repr.repr() {
            EngineKind::Heap => EventQueue::Heap(BinaryHeap::new()),
            _ => EventQueue::Wheel(Box::default()),
        }
    }

    fn kind(&self) -> EngineKind {
        match self {
            EventQueue::Heap(_) => EngineKind::Heap,
            EventQueue::Wheel(_) => EngineKind::Wheel,
        }
    }

    #[inline]
    fn push(&mut self, at: Nanos, seq: u64, event: Event) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse((at, seq, event))),
            EventQueue::Wheel(w) => w.push(at, seq, event),
        }
    }

    /// Removes the earliest event if its time is `<= limit` (the per-event
    /// operation of the simulation loop, fused so each engine does one
    /// ordering pass).
    #[inline]
    fn pop_if_at_most(&mut self, limit: Nanos) -> Option<(Nanos, u64, Event)> {
        match self {
            EventQueue::Heap(h) => match h.peek() {
                Some(&Reverse((at, _, _))) if at <= limit => {
                    let Reverse(e) = h.pop().expect("peeked");
                    Some(e)
                }
                _ => None,
            },
            EventQueue::Wheel(w) => w.pop_if_at_most(limit),
        }
    }

    fn pop(&mut self) -> Option<(Nanos, u64, Event)> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(e)| e),
            EventQueue::Wheel(w) => w.pop(),
        }
    }

    /// The time of the earliest pending event, without removing it (the
    /// partitioned engine's window-start probe).
    fn peek_at(&mut self) -> Option<Nanos> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|Reverse((at, _, _))| *at),
            EventQueue::Wheel(w) => w.peek().map(|&(at, _, _)| at),
        }
    }
}

/// First provisional sequence number. While a partition runs a lookahead
/// window it cannot know which global `seq` values its pushes will get (the
/// global order interleaves all partitions), so it allocates from this
/// high half-space; the window-boundary merge re-enacts the global handling
/// order and rewrites every provisional key to the sequence number the
/// sequential engine would have allocated. At equal times provisional keys
/// compare after all pre-window (real) keys — exactly the order the
/// sequential engine gives current-window pushes — so intra-window pops are
/// correctly ordered before resolution.
const PROV_BASE: u64 = 1 << 63;

/// One handled event in a partition's window, recorded in handling order.
/// `pushes`/`traces` count the provisional seqs the event's handler
/// allocated and the trace records it spooled, so the boundary merge can
/// attribute both to the event that made them. When the run is
/// unobserved (no event log, tracing off), events that allocate nothing
/// are not recorded at all: they occupy a position in the global handling
/// order but assign no sequence numbers, so skipping them cannot change
/// what any other record resolves to — this keeps the record stream (and
/// the boundary re-enactment pass over it) proportional to the *pushing*
/// events only.
#[derive(Clone, Copy)]
struct Rec {
    at: Nanos,
    /// The popped queue key: a real (pre-window) seq or a provisional one.
    key: u64,
    /// Provisional seqs allocated by this event's handler.
    pushes: u32,
    /// Trace records spooled by this event's handler.
    traces: u32,
}

/// Partition-local state hung off a [`Sim`] acting as one PDES partition.
struct PartCtx {
    /// Owned core range: `[core_lo, core_hi)`.
    core_lo: usize,
    core_hi: usize,
    /// Per-target-socket ordered mailboxes of cross-partition events
    /// (provisional keys), drained at the window boundary.
    outboxes: Vec<Vec<(Nanos, u64, Event)>>,
    /// Events handled this window, in handling order.
    records: Vec<Rec>,
    /// The event being handled (finalized into `records` when the next
    /// event is noted, so its snapshots cover the whole handler).
    staged: Option<(Nanos, u64)>,
    /// Provisional-seq counter at the last finalized record (the baseline
    /// `pushes` deltas are taken against).
    last_seq: u64,
    /// Trace-spool length at the last finalized record.
    last_spool: usize,
    /// True when an event log or tracing observes this lane — every
    /// handled event must then be recorded. Cached here (constant for the
    /// whole run) so the per-event fast path tests one flag on a line it
    /// already owns.
    observed: bool,
}

/// A placeholder vCPU slot standing in for a vCPU owned elsewhere (the
/// master while a lane holds the real slot, and lanes for every foreign
/// vCPU). Only `home` is meaningful — it keeps event routing working.
fn parked_slot(home: usize) -> VcpuSlot {
    VcpuSlot {
        state: VState::Blocked,
        remaining: None,
        runnable_since: None,
        last_core: None,
        wake_gen: 0,
        home,
        workload: Box::new(IdleGuest),
    }
}

/// A deterministic discrete-event hypervisor simulation.
pub struct Sim {
    machine: Machine,
    now: Nanos,
    seq: u64,
    /// The selected engine; [`EngineKind::Hybrid`] additionally enables
    /// dense-phase batching above the queue.
    kind: EngineKind,
    events: EventQueue,
    /// Events in the queue that are *not* core timers (wake-ups, IPIs,
    /// ticks, fault events). Dense batching only engages at zero: with
    /// nothing but timers pending, the next stretch of events is fully
    /// determined by the slice tables.
    pending_other: usize,
    /// Batching is re-attempted only once `events_processed` passes this
    /// mark (set on every fallback, so a workload that keeps breaking
    /// batches does not pay the window-construction cost per event).
    batch_cooldown: u64,
    /// Consecutive unproductive batch attempts; the fallback cooldown
    /// doubles per bail (capped), so churny workloads that momentarily
    /// look dense pay the window-construction cost ever more rarely.
    batch_bails: u32,
    cores: Vec<CoreState>,
    vcpus: Vec<VcpuSlot>,
    /// Runnable flags mirroring vCPU states, for cheap scheduler views.
    flags: Vec<bool>,
    sched: Box<dyn VmScheduler>,
    stats: SimStats,
    trace: TraceBuffer,
    /// Fault-injection engine; `None` when every fault class is inactive,
    /// so fault-free runs take exactly the pre-fault code paths (bit-for-bit
    /// replay compatibility).
    faults: Option<FaultEngine>,
    /// Per-core end of the latest stolen-time interval; dispatches on a
    /// core cannot make guest progress before this.
    stolen_until: Vec<Nanos>,
    /// Per-core service flag; core-fault injection can take cores out of
    /// service. An offline core runs nothing and absorbs re-schedules
    /// (they are re-issued when it returns).
    core_online: Vec<bool>,
    /// Events handled since construction (the simulator's throughput
    /// denominator: simulated work per wall second is events/sec).
    events_processed: u64,
    /// When present, every handled event is appended as
    /// `(time, seq, debug string)` — the engine-equivalence tests compare
    /// these streams across engines. `None` (the default) costs one branch
    /// per event.
    event_log: Option<Vec<(Nanos, u64, String)>>,
    started: bool,
    /// Present while this `Sim` is acting as one PDES partition (a
    /// per-socket lane of a [`EngineKind::Partitioned`] parent run).
    /// Switches `push` into lane mode (provisional seqs, cross-socket
    /// routing into mailboxes) and arms per-event record keeping; handler
    /// bodies are untouched.
    part: Option<Box<PartCtx>>,
    /// Retired per-lane record buffers, reused across partitioned runs so
    /// the (events-proportional) record streams stop paying `Vec` growth
    /// after the first run.
    rec_pool: Vec<Vec<Rec>>,
    /// Retired master-seq maps (`gseq`), reused across window boundaries
    /// for the same reason.
    gseq_pool: Vec<Vec<u64>>,
}

impl Sim {
    /// Creates a simulation of `machine` under `sched`.
    pub fn new(machine: Machine, sched: Box<dyn VmScheduler>) -> Sim {
        let n = machine.n_cores();
        Sim {
            machine,
            now: Nanos::ZERO,
            seq: 0,
            kind: EngineKind::default(),
            events: EventQueue::new(EngineKind::default()),
            pending_other: 0,
            batch_cooldown: 0,
            batch_bails: 0,
            cores: (0..n)
                .map(|_| CoreState {
                    running: None,
                    run_started: Nanos::ZERO,
                    ran_since_dispatch: Nanos::ZERO,
                    decision_until: Nanos::ZERO,
                    gen: 0,
                    pending_overhead: Nanos::ZERO,
                    last_ran: None,
                })
                .collect(),
            vcpus: Vec::new(),
            flags: Vec::new(),
            sched,
            stats: SimStats::new(n),
            trace: TraceBuffer::new(1 << 20),
            faults: None,
            stolen_until: vec![Nanos::ZERO; n],
            core_online: vec![true; n],
            events_processed: 0,
            event_log: None,
            started: false,
            part: None,
            rec_pool: Vec::new(),
            gseq_pool: Vec::new(),
        }
    }

    /// Selects the event-queue engine (default [`EngineKind::Hybrid`]).
    /// Events already queued (e.g. via [`Sim::push_external`]) are carried
    /// over with their original `(time, seq)` keys.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation started.
    pub fn set_engine(&mut self, kind: EngineKind) {
        assert!(
            !self.started,
            "the engine must be selected before the first run"
        );
        self.kind = kind;
        if kind.repr() == self.events.kind() {
            return;
        }
        let mut next = EventQueue::new(kind);
        while let Some((at, seq, event)) = self.events.pop() {
            next.push(at, seq, event);
        }
        self.events = next;
    }

    /// The event-queue engine in use.
    pub fn engine_kind(&self) -> EngineKind {
        self.kind
    }

    /// Starts recording every handled event as `(time, seq, debug string)`
    /// (engine-equivalence testing; unbounded, so not for long runs).
    pub fn enable_event_log(&mut self) {
        self.event_log = Some(Vec::new());
    }

    /// Takes the recorded event log (empty if logging was never enabled).
    pub fn take_event_log(&mut self) -> Vec<(Nanos, u64, String)> {
        self.event_log.take().unwrap_or_default()
    }

    /// Installs a fault-injection configuration (see [`crate::fault`]).
    ///
    /// A configuration with every class inactive installs no engine at all,
    /// so the run replays bit-for-bit identically to one that never called
    /// this method.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation started.
    pub fn set_fault_config(&mut self, cfg: FaultConfig) {
        assert!(
            !self.started,
            "faults must be configured before the first run"
        );
        self.faults = cfg.any_active().then(|| FaultEngine::new(cfg));
    }

    /// The active fault configuration, if an engine is installed.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.faults.as_ref().map(|f| f.config())
    }

    /// Draws whether the next table switch is interrupted mid-protocol
    /// (`false` without an engine). Harnesses that push tables into a
    /// running scheduler consult this and drive the two-phase
    /// begin/commit/abort install accordingly.
    pub fn fault_switch_interrupted(&mut self) -> bool {
        self.faults
            .as_mut()
            .map(|f| f.switch_interrupted())
            .unwrap_or(false)
    }

    /// Replaces the trace ring buffer with one of the given capacity,
    /// preserving the enabled flag. Existing records are discarded.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        let enabled = self.trace.is_enabled();
        let filter = self.trace.filter();
        self.trace = TraceBuffer::new(capacity);
        self.trace.set_enabled(enabled);
        self.trace.set_filter(filter);
    }

    /// Turns on event tracing (a xentrace-style ring buffer; see
    /// [`crate::trace`]). Cheap enough to enable for whole experiments.
    pub fn enable_tracing(&mut self) {
        self.trace.set_enabled(true);
    }

    /// The trace buffer (read access for analyses).
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Mutable trace access (clearing between measurement windows).
    pub fn trace_mut(&mut self) -> &mut TraceBuffer {
        &mut self.trace
    }

    /// Adds a vCPU running `workload`, registered with the scheduler with
    /// placement hint `home`. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation started.
    pub fn add_vcpu(
        &mut self,
        workload: Box<dyn GuestWorkload>,
        home: usize,
        runnable: bool,
    ) -> VcpuId {
        assert!(!self.started, "vCPUs must be added before the first run");
        let id = VcpuId(self.vcpus.len() as u32);
        self.vcpus.push(VcpuSlot {
            state: if runnable {
                VState::Runnable
            } else {
                VState::Blocked
            },
            remaining: None,
            runnable_since: runnable.then_some(Nanos::ZERO),
            last_core: None,
            wake_gen: 0,
            home,
            workload,
        });
        self.flags.push(runnable);
        self.sched.register_vcpu(id, home);
        id
    }

    /// Schedules an external event for `vcpu` at absolute time `at`.
    pub fn push_external(&mut self, at: Nanos, vcpu: VcpuId, tag: u64) {
        self.push(at, Event::External { vcpu, tag });
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Simulation statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Mutable statistics access, for control loops that report recovery
    /// accounting (see [`crate::stats::RecoveryStats`]) into the run
    /// record.
    pub fn stats_mut(&mut self) -> &mut SimStats {
        &mut self.stats
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to a vCPU's workload (to extract measurements).
    pub fn workload_mut(&mut self, vcpu: VcpuId) -> &mut dyn GuestWorkload {
        &mut *self.vcpus[vcpu.0 as usize].workload
    }

    /// Mutable access to the scheduler under test.
    pub fn scheduler_mut(&mut self) -> &mut dyn VmScheduler {
        &mut *self.sched
    }

    /// Whether `core` is currently in service (core-fault injection can
    /// take cores offline for bounded outages).
    pub fn core_online(&self, core: usize) -> bool {
        self.core_online[core]
    }

    /// Total events handled so far (throughput accounting; see the
    /// `sim/events_per_sec` bench entry).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The core an event belongs to: core events by their core, vCPU
    /// events by the vCPU's home core (partitioned runs require every
    /// vCPU's placement to stay on its home socket; schedulers assert
    /// this in [`VmScheduler::pdes_split`]).
    fn event_core(&self, event: &Event) -> usize {
        match *event {
            Event::CoreTimer { core, .. }
            | Event::Resched { core }
            | Event::Tick { core }
            | Event::Stolen { core }
            | Event::CoreOffline { core }
            | Event::CoreOnline { core } => core,
            Event::External { vcpu, .. } | Event::SelfWake { vcpu, .. } => {
                self.vcpus[vcpu.0 as usize].home
            }
        }
    }

    /// The socket an event belongs to (see [`Sim::event_core`]).
    fn event_socket(&self, event: &Event) -> usize {
        self.machine.socket_of(self.event_core(event))
    }

    fn push(&mut self, at: Nanos, event: Event) {
        // Timer faults perturb hypervisor timers (decision expiry, burst
        // completion, ticks) only; external events, IPIs, and guest-internal
        // timers are delivered precisely. Adjustment only ever delays.
        let at = match (&mut self.faults, event) {
            (Some(f), Event::CoreTimer { .. } | Event::Tick { .. }) => f.adjust_timer(at),
            _ => at,
        };
        self.seq += 1;
        // Lane mode: the seq just allocated is provisional (rewritten to
        // the global order at the window boundary); cross-socket events
        // route into the target's mailbox instead of the local wheel. The
        // ownership test is a range compare on the lane's core span —
        // cheaper than a socket division on this per-push hot path.
        let lane_core = self.part.is_some().then(|| self.event_core(&event));
        if let (Some(core), Some(part)) = (lane_core, self.part.as_mut()) {
            if core < part.core_lo || core >= part.core_hi {
                let target = self.machine.socket_of(core);
                part.outboxes[target].push((at, self.seq, event));
                return;
            }
        }
        if !matches!(event, Event::CoreTimer { .. }) {
            self.pending_other += 1;
        }
        self.events.push(at, self.seq, event);
    }

    /// Runs the simulation up to (and including) absolute time `end`.
    pub fn run_until(&mut self, end: Nanos) {
        if !self.started {
            self.started = true;
            // Initial decisions on every core, plus periodic ticks.
            for core in 0..self.cores.len() {
                self.push(Nanos::ZERO, Event::Resched { core });
            }
            if let Some(interval) = self.sched.tick_interval() {
                for core in 0..self.cores.len() {
                    self.push(interval, Event::Tick { core });
                }
            }
            // Seed the stolen-time schedule on each affected core. Indexed
            // loops, not clones of the core lists: the borrow of the fault
            // engine ends before each push, and the RNG draw order (one gap
            // per in-machine core, in list order) is exactly the old one.
            let machine = self.machine;
            if self
                .faults
                .as_ref()
                .is_some_and(|f| f.config().stolen.is_active())
            {
                let n = self
                    .faults
                    .as_ref()
                    .expect("checked")
                    .config()
                    .stolen
                    .cores
                    .len();
                for i in 0..n {
                    let f = self.faults.as_mut().expect("checked");
                    let core = f.config().stolen.cores[i];
                    if !machine.has_core(core) {
                        continue;
                    }
                    let at = self.now + f.theft_gap();
                    self.push(at, Event::Stolen { core });
                }
            }
            // Seed the core-flap schedule on each affected core.
            if self
                .faults
                .as_ref()
                .is_some_and(|f| f.config().core.is_active())
            {
                let n = self
                    .faults
                    .as_ref()
                    .expect("checked")
                    .config()
                    .core
                    .cores
                    .len();
                for i in 0..n {
                    let f = self.faults.as_mut().expect("checked");
                    let core = f.config().core.cores[i];
                    if !machine.has_core(core) {
                        continue;
                    }
                    let at = self.now + f.outage_gap();
                    self.push(at, Event::CoreOffline { core });
                }
            }
        }

        if self.kind == EngineKind::Partitioned && self.try_run_partitioned(end) {
            self.now = end;
            self.stats.trace_dropped = self.trace.dropped();
            return;
        }

        self.run_events(end);
        self.now = end;
        self.stats.trace_dropped = self.trace.dropped();
    }

    /// The generic event loop: pops and handles every event due at or
    /// before `limit`. Shared between the sequential engines (where `limit`
    /// is the `run_until` horizon) and a partition's lookahead windows.
    fn run_events(&mut self, limit: Nanos) {
        loop {
            if self.pending_other == 0
                && matches!(self.kind, EngineKind::Hybrid | EngineKind::Partitioned)
                && self.faults.is_none()
                && self.batch_cooldown <= self.events_processed
                && self.sched.dense_capable()
            {
                // The batch advances as far as it can; anything it could
                // not take (a bail re-arm, future timers) is back in the
                // queue for the generic pop below.
                self.dense_batch(limit);
            }
            let Some((at, seq, event)) = self.events.pop_if_at_most(limit) else {
                break;
            };
            if !matches!(event, Event::CoreTimer { .. }) {
                self.pending_other -= 1;
            }
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.events_processed += 1;
            if self.part.is_some() {
                self.note_handled(at, seq);
            }
            if let Some(log) = &mut self.event_log {
                log.push((at, seq, format!("{event:?}")));
            }
            self.handle(event);
        }
    }

    /// Records (in lane mode) that the event keyed `(at, key)` is about to
    /// be handled: finalizes the previous staged record with the current
    /// seq/trace snapshots (its handler is done) and stages this one.
    #[inline]
    fn note_handled(&mut self, at: Nanos, key: u64) {
        let seq = self.seq;
        {
            let part = self.part.as_mut().expect("lane mode");
            if !part.observed {
                // Unobserved fast path: traces cannot grow, and
                // zero-allocation events are droppable (see [`Rec`]), so the
                // record stream tracks pushing events only.
                if let Some((prev_at, prev_key)) = part.staged {
                    if seq != part.last_seq {
                        part.records.push(Rec {
                            at: prev_at,
                            key: prev_key,
                            pushes: (seq - part.last_seq) as u32,
                            traces: 0,
                        });
                        part.last_seq = seq;
                    }
                }
                part.staged = Some((at, key));
                return;
            }
        }
        let spool = self.trace.len();
        let part = self.part.as_mut().expect("lane mode");
        if let Some((prev_at, prev_key)) = part.staged.take() {
            part.records.push(Rec {
                at: prev_at,
                key: prev_key,
                pushes: (seq - part.last_seq) as u32,
                traces: (spool - part.last_spool) as u32,
            });
            part.last_seq = seq;
            part.last_spool = spool;
        }
        part.staged = Some((at, key));
    }

    /// Finalizes the last staged record at the end of a lookahead window.
    /// Always recorded (even when droppable) so "handled anything this
    /// window" stays readable off `records` for the stall counter.
    fn finalize_window(&mut self) {
        let seq = self.seq;
        let spool = self.trace.len();
        let part = self.part.as_mut().expect("lane mode");
        if let Some((at, key)) = part.staged.take() {
            part.records.push(Rec {
                at,
                key,
                pushes: (seq - part.last_seq) as u32,
                traces: (spool - part.last_spool) as u32,
            });
            part.last_seq = seq;
            part.last_spool = spool;
        }
    }

    /// One partition window: handle everything due at or before `limit`,
    /// then close out the record stream.
    fn run_window(&mut self, limit: Nanos) {
        self.run_events(limit);
        self.finalize_window();
    }

    /// Attempts to run `[now, end]` with the per-socket partitioned (PDES)
    /// engine. Returns `false` — recording the decline reason — when any
    /// precondition fails, in which case the caller falls through to the
    /// sequential loop; the two paths are bit-for-bit identical (modulo
    /// `stats.pdes`/`stats.batch` counters and `BATCH` trace markers).
    ///
    /// Scheme: each socket becomes a lane — a private `Sim` owning that
    /// socket's cores, vCPUs, and a wheel seeded with the socket's share of
    /// the pending queue. Lanes advance in conservative lookahead windows
    /// of the minimum cross-socket event-insertion latency (the cross-
    /// socket IPI hop), in parallel on `rayon` workers; cross-socket
    /// events land in per-pair mailboxes. At each barrier the master
    /// re-enacts the global handling order from the lanes' per-event
    /// records, assigns the exact sequence numbers the sequential engine
    /// would have, splices logs and traces, renumbers still-queued events,
    /// and delivers the mailboxes — so any worker count reproduces the
    /// sequential run byte-for-byte.
    fn try_run_partitioned(&mut self, end: Nanos) -> bool {
        debug_assert!(self.part.is_none(), "nested partitioned run");
        let n_sockets = self.machine.n_sockets;
        if n_sockets < 2 {
            self.stats.pdes.declined_single_socket += 1;
            return false;
        }
        if self.faults.is_some() {
            self.stats.pdes.declined_faults_armed += 1;
            return false;
        }
        let split = match self.sched.pdes_split(&self.machine) {
            Ok(split) => split,
            Err(reason) => {
                let pdes = &mut self.stats.pdes;
                match reason {
                    PdesDecline::SingleSocket => pdes.declined_single_socket += 1,
                    PdesDecline::FaultsArmed => pdes.declined_faults_armed += 1,
                    PdesDecline::SchedulerOptOut => pdes.declined_scheduler_opt_out += 1,
                    PdesDecline::TablesUnsettled => pdes.declined_tables_unsettled += 1,
                    PdesDecline::MonitorAttached => pdes.declined_monitor_attached += 1,
                    PdesDecline::CrossSocketPlacement => pdes.declined_cross_socket_placement += 1,
                    PdesDecline::NoLookahead => pdes.declined_no_lookahead += 1,
                }
                return false;
            }
        };
        if split.parts.len() != n_sockets {
            debug_assert!(
                false,
                "pdes_split returned {} partitions for {n_sockets} sockets",
                split.parts.len()
            );
            self.stats.pdes.declined_scheduler_opt_out += 1;
            return false;
        }
        // Every vCPU the scheduler places must sit on its home socket —
        // events for a vCPU route by home, so a cross-socket placement
        // would put its dispatches in the wrong lane.
        for (v, slot) in self.vcpus.iter().enumerate() {
            let home_socket = self.machine.socket_of(slot.home);
            if let Some(s) = split.vcpu_sockets.get(v).copied().flatten() {
                if s != home_socket {
                    self.stats.pdes.declined_cross_socket_placement += 1;
                    return false;
                }
            }
        }
        let lookahead = self.machine.cross_ipi_latency();
        if lookahead == Nanos::ZERO && !split.socket_local_ipis {
            self.stats.pdes.declined_no_lookahead += 1;
            return false;
        }

        // ---- Split: route the master queue and state into lanes.
        let per = self.machine.cores_per_socket;
        let mut seeds: Vec<Vec<(Nanos, u64, Event)>> = (0..n_sockets).map(|_| Vec::new()).collect();
        while let Some((at, seq, event)) = self.events.pop() {
            let s = self.event_socket(&event);
            seeds[s].push((at, seq, event));
        }
        self.pending_other = 0;

        let mut lanes: Vec<Sim> = Vec::with_capacity(n_sockets);
        for (li, sched) in split.parts.into_iter().enumerate() {
            let core_lo = li * per;
            let core_hi = core_lo + per;
            let mut vcpus: Vec<VcpuSlot> = Vec::with_capacity(self.vcpus.len());
            for slot in self.vcpus.iter_mut() {
                let home = slot.home;
                if self.machine.socket_of(home) == li {
                    // Owned: move the real slot into the lane (the master
                    // keeps a parked placeholder until reassembly).
                    vcpus.push(std::mem::replace(slot, parked_slot(home)));
                } else {
                    vcpus.push(parked_slot(home));
                }
            }
            let mut lane = Sim {
                machine: self.machine,
                now: self.now,
                seq: PROV_BASE,
                kind: EngineKind::Partitioned,
                events: EventQueue::new(EngineKind::Wheel),
                pending_other: 0,
                batch_cooldown: 0,
                batch_bails: 0,
                cores: self.cores.clone(),
                vcpus,
                flags: self.flags.clone(),
                sched,
                stats: SimStats::new(self.machine.n_cores()),
                trace: TraceBuffer::spool_like(&self.trace),
                faults: None,
                stolen_until: self.stolen_until.clone(),
                core_online: self.core_online.clone(),
                events_processed: 0,
                event_log: self.event_log.is_some().then(Vec::new),
                started: true,
                part: Some(Box::new(PartCtx {
                    core_lo,
                    core_hi,
                    outboxes: (0..n_sockets).map(|_| Vec::new()).collect(),
                    records: self.rec_pool.pop().unwrap_or_default(),
                    staged: None,
                    last_seq: PROV_BASE,
                    last_spool: 0,
                    observed: self.event_log.is_some() || self.trace.is_enabled(),
                })),
                rec_pool: Vec::new(),
                gseq_pool: Vec::new(),
            };
            for (at, seq, event) in seeds[li].drain(..) {
                if !matches!(event, Event::CoreTimer { .. }) {
                    lane.pending_other += 1;
                }
                lane.events.push(at, seq, event);
            }
            lanes.push(lane);
        }

        // ---- Conservative window loop.
        let socket_local = split.socket_local_ipis;
        loop {
            let w = lanes.iter_mut().filter_map(|l| l.events.peek_at()).min();
            let Some(w) = w.filter(|&w| w <= end) else {
                break;
            };
            // Socket-local IPIs mean lanes cannot affect each other at all
            // inside this run: one window covers the whole horizon.
            let limit = if socket_local {
                end
            } else {
                end.min(w + lookahead - Nanos(1))
            };
            rayon::par_map_mut(&mut lanes, |_i, lane| lane.run_window(limit));
            self.stats.pdes.windows_advanced += 1;
            for lane in &lanes {
                let part = lane.part.as_ref().expect("lane");
                if part.records.is_empty() {
                    self.stats.pdes.lookahead_stalls += 1;
                }
                assert!(
                    !socket_local || part.outboxes.iter().all(|o| o.is_empty()),
                    "scheduler declared socket-local IPIs but emitted a cross-socket event"
                );
            }
            self.merge_boundary(&mut lanes);
        }

        // ---- Finish: reassemble the master from the lanes.
        let mut parts: Vec<Box<dyn VmScheduler>> = Vec::with_capacity(n_sockets);
        for (li, mut lane) in lanes.into_iter().enumerate() {
            let mut part = lane.part.take().expect("lane");
            debug_assert!(part.records.is_empty() && part.staged.is_none());
            self.rec_pool.push(std::mem::take(&mut part.records));
            while let Some((at, key, event)) = lane.events.pop() {
                debug_assert!(key < PROV_BASE, "unresolved key survived the last boundary");
                if !matches!(event, Event::CoreTimer { .. }) {
                    self.pending_other += 1;
                }
                self.events.push(at, key, event);
            }
            for core in part.core_lo..part.core_hi {
                self.cores[core] = lane.cores[core].clone();
                self.stolen_until[core] = lane.stolen_until[core];
                self.core_online[core] = lane.core_online[core];
            }
            for v in 0..self.vcpus.len() {
                if self.machine.socket_of(self.vcpus[v].home) == li {
                    std::mem::swap(&mut self.vcpus[v], &mut lane.vcpus[v]);
                    self.flags[v] = lane.flags[v];
                }
            }
            self.stats.absorb(&lane.stats);
            self.events_processed += lane.events_processed;
            parts.push(lane.sched);
        }
        self.sched.pdes_merge(&self.machine, parts);
        self.stats.pdes.partitioned_runs += 1;
        true
    }

    /// Window-boundary barrier: re-enacts the global handling order from
    /// the lanes' per-event records, assigning master sequence numbers to
    /// every push made this window (exactly the numbers the sequential
    /// engine would have allocated), splicing event-log lines and trace
    /// records in that order, then renumbering still-queued lane events
    /// and delivering the cross-socket mailboxes.
    fn merge_boundary(&mut self, lanes: &mut [Sim]) {
        let n_lanes = lanes.len();
        let log_on = self.event_log.is_some();
        // Pull each lane's record and log streams out up front: the merge
        // loop then walks plain local slices instead of re-borrowing
        // through every lane's `part` box per iteration. The record
        // vectors go back (cleared, capacity kept) in the renumber pass.
        let mut recs: Vec<Vec<Rec>> = lanes
            .iter_mut()
            .map(|l| std::mem::take(&mut l.part.as_mut().expect("lane").records))
            .collect();
        let mut logs: Vec<std::vec::IntoIter<(Nanos, u64, String)>> = lanes
            .iter_mut()
            .map(|l| {
                let fresh = l.event_log.is_some().then(Vec::new);
                std::mem::replace(&mut l.event_log, fresh)
                    .unwrap_or_default()
                    .into_iter()
            })
            .collect();
        // Each lane's allocation count is exact (`seq - PROV_BASE`), so the
        // maps reserve once; retired maps come back from the pool.
        let mut gseq: Vec<Vec<u64>> = Vec::with_capacity(n_lanes);
        for lane in lanes.iter() {
            let mut g = self.gseq_pool.pop().unwrap_or_default();
            g.reserve((lane.seq - PROV_BASE) as usize);
            gseq.push(g);
        }
        fn resolve(key: u64, gseq: &[u64]) -> u64 {
            if key < PROV_BASE {
                key
            } else {
                gseq[(key - PROV_BASE - 1) as usize]
            }
        }

        // Merge cursors with *cached* resolved heads. A lane's head key
        // always resolves against its own lane's `gseq`: the pusher's
        // record sits strictly earlier in the same stream, so by the time
        // a record becomes the head, every allocation it can reference is
        // already numbered — recomputing the cache only after consuming
        // from that lane is sound.
        let mut idx = vec![0usize; n_lanes];
        let mut spool = vec![0usize; n_lanes];
        let mut head: Vec<Option<(Nanos, u64)>> = recs
            .iter()
            .map(|r| r.first().map(|rec| (rec.at, resolve(rec.key, &[]))))
            .collect();
        loop {
            // Head record with the globally smallest (time, resolved seq).
            let mut best: Option<(Nanos, u64, usize)> = None;
            for (li, h) in head.iter().enumerate() {
                if let Some((at, rk)) = *h {
                    if best.is_none_or(|(bat, bk, _)| (at, rk) < (bat, bk)) {
                        best = Some((at, rk, li));
                    }
                }
            }
            let Some((at, rk, li)) = best else {
                break;
            };
            let rec = recs[li][idx[li]];
            idx[li] += 1;
            // Master seqs for this record's pushes, in allocation order —
            // exactly when the sequential engine would have allocated them.
            let base = self.seq;
            gseq[li].extend(base + 1..=base + rec.pushes as u64);
            self.seq = base + rec.pushes as u64;
            if log_on {
                if let Some(line) = logs[li].next() {
                    debug_assert_eq!(line.0, at);
                    if let Some(log) = &mut self.event_log {
                        log.push((at, rk, line.2));
                    }
                }
            }
            if rec.traces > 0 {
                let end = spool[li] + rec.traces as usize;
                for i in spool[li]..end {
                    let r = lanes[li].trace.spooled()[i];
                    self.trace.absorb_record(r);
                }
                spool[li] = end;
            }
            head[li] = recs[li]
                .get(idx[li])
                .map(|r| (r.at, resolve(r.key, &gseq[li])));
        }

        // Renumber still-queued lane events (provisional keys get their
        // assigned master seqs) and resolve the outboxes.
        let mut deliveries: Vec<(usize, Nanos, u64, Event)> = Vec::new();
        for (li, lane) in lanes.iter_mut().enumerate() {
            debug_assert_eq!((lane.seq - PROV_BASE) as usize, gseq[li].len());
            if lane.seq != PROV_BASE {
                let mut held: Vec<(Nanos, u64, Event)> = Vec::new();
                while let Some(e) = lane.events.pop() {
                    held.push(e);
                }
                for (at, key, event) in held {
                    lane.events.push(at, resolve(key, &gseq[li]), event);
                }
            }
            lane.seq = PROV_BASE;
            let part = lane.part.as_mut().expect("lane");
            let mut records = std::mem::take(&mut recs[li]);
            records.clear();
            part.records = records;
            part.last_seq = PROV_BASE;
            part.last_spool = 0;
            for target in 0..n_lanes {
                for (at, key, event) in part.outboxes[target].drain(..) {
                    deliveries.push((target, at, resolve(key, &gseq[li]), event));
                }
            }
            lane.trace.clear();
        }
        for (target, at, key, event) in deliveries {
            let lane = &mut lanes[target];
            if !matches!(event, Event::CoreTimer { .. }) {
                lane.pending_other += 1;
            }
            lane.events.push(at, key, event);
            self.stats.pdes.mailbox_events += 1;
        }
        for mut g in gseq {
            g.clear();
            self.gseq_pool.push(g);
        }
    }

    /// Advances a dense phase in a batched inner loop.
    ///
    /// Preconditions (checked by the caller): every pending event is a core
    /// timer (`pending_other == 0`), no fault engine is installed, and the
    /// scheduler is dense-capable. The scheduler pre-computes each core's
    /// decision sequence over a capped window ([`VmScheduler::dense_window`];
    /// a dense phase longer than the cap rolls window-to-window inside the
    /// batch); slice boundaries are then processed straight from a flat
    /// pending list — no wheel round-trips, no per-decision virtual calls —
    /// with byte-identical `seq` allocation, event-log lines, traces, and
    /// stats to the generic loop. The scheduler's own state is synced at
    /// each window boundary via [`VmScheduler::dense_commit`].
    ///
    /// The moment anything the window cannot express happens (a guest
    /// blocks, the window under-runs), the batch commits, puts every
    /// untaken timer back with its original `(time, seq)` key, finishes the
    /// in-flight operation through the generic helpers, and returns — the
    /// caller's event loop continues seamlessly.
    fn dense_batch(&mut self, end: Nanos) {
        // One window's construction cost is bounded by capping how much
        // simulated time it may cover (one second ≈ a few thousand slices
        // per core, so even a `run_until` spanning hours cannot make a
        // single attempt allocate unboundedly); a dense phase longer than
        // the cap rolls into the next window *inside* the batch — no
        // event-queue round-trip, no generic event in between.
        const WINDOW_CAP: Nanos = Nanos(1_000_000_000);

        // Cheap gate: nothing due before the horizon means nothing to batch.
        let Some((at0, seq0, ev0)) = self.events.pop_if_at_most(end) else {
            return;
        };
        let Event::CoreTimer {
            core: core0,
            gen: gen0,
        } = ev0
        else {
            unreachable!("non-timer event {ev0:?} in a dense batch (pending_other == 0)");
        };
        let mut pending: Vec<(Nanos, u64, usize, u64)> = vec![(at0, seq0, core0, gen0)];

        // Drain the rest of the queue: all core timers, by precondition.
        while let Some((at, seq, event)) = self.events.pop() {
            let Event::CoreTimer { core, gen } = event else {
                unreachable!("non-timer event {event:?} in a dense batch (pending_other == 0)");
            };
            pending.push((at, seq, core, gen));
        }

        // Per-core window storage and bookkeeping: the next slice to
        // consider, the committed/picked range, and the time of the latest
        // pick (what the scheduler sees as its decision time on commit).
        // Allocated once and reset per window.
        let n = self.cores.len();
        let mut windows: Vec<Vec<DenseSlice>> = (0..n).map(|_| Vec::new()).collect();
        let mut costs: Vec<DenseCosts> = Vec::with_capacity(n);
        let mut next_idx = vec![0usize; n];
        let mut commit_from = vec![usize::MAX; n];
        let mut picked_to = vec![0usize; n];
        let mut last_decided = vec![Nanos::ZERO; n];

        'window: loop {
            // Each window starts at the earliest untaken timer (which is
            // `>= self.now`); an empty pending list or one entirely past
            // the horizon ends the batch.
            let first = pending.iter().map(|p| p.0).min();
            let Some(first) = first.filter(|&f| f <= end) else {
                self.batch_bails = 0;
                self.dense_restore(&pending);
                return;
            };
            let cap = end.min(first.max(self.now) + WINDOW_CAP);

            // Ask the scheduler for every owned core's decision window up
            // front (all cores sequentially; the partition's range in lane
            // mode); any core declining aborts the attempt before any
            // state changes.
            let (lo, hi) = self
                .part
                .as_ref()
                .map_or((0, n), |p| (p.core_lo, p.core_hi));
            costs.clear();
            costs.resize(n, DenseCosts::default());
            for core in lo..hi {
                let out = &mut windows[core];
                out.clear();
                let view = VcpuView {
                    runnable: &self.flags,
                };
                match self.sched.dense_window(core, self.now, cap, view, out) {
                    Some(c) => costs[core] = c,
                    None => {
                        self.dense_restore(&pending);
                        self.stats.batch.fallback_window += 1;
                        self.batch_cooldown = self.events_processed + self.bail_cooldown(0);
                        return;
                    }
                }
            }
            next_idx.fill(0);
            commit_from.fill(usize::MAX);
            picked_to.fill(0);
            last_decided.fill(Nanos::ZERO);
            let mut batched: u64 = 0;

            self.stats.batch.batch_entries += 1;
            self.trace
                .emit(self.now, TraceClass::BATCH, || TraceEvent::BatchEnter {
                    pending: pending.len(),
                });

            loop {
                // The pending list is small (one live timer per core plus a few
                // stale ones); a linear min-scan beats any queue structure here.
                if pending.is_empty() {
                    break;
                }
                let mut min_i = 0;
                for i in 1..pending.len() {
                    if (pending[i].0, pending[i].1) < (pending[min_i].0, pending[min_i].1) {
                        min_i = i;
                    }
                }
                if pending[min_i].0 > cap {
                    break;
                }
                let (at, seq, core, gen) = pending.swap_remove(min_i);
                debug_assert!(at >= self.now, "time went backwards");
                self.now = at;
                self.events_processed += 1;
                batched += 1;
                if self.part.is_some() {
                    self.note_handled(at, seq);
                }
                if let Some(log) = &mut self.event_log {
                    log.push((at, seq, format!("{:?}", Event::CoreTimer { core, gen })));
                }
                if self.cores[core].gen != gen {
                    continue; // superseded decision
                }

                if self.cores[core].running.is_some() && self.now < self.cores[core].decision_until
                {
                    // Burst completion inside the decision window.
                    self.apply_progress(core);
                    let vcpu = self.cores[core].running.expect("burst on idle core");
                    let remaining = self.vcpus[vcpu.0 as usize]
                        .remaining
                        .expect("burst event without a burst");
                    if remaining > Nanos::ZERO {
                        // Only timer perturbation can shift a burst, and faults
                        // are excluded here; mirrored for exactness.
                        let c = &self.cores[core];
                        let fire = (c.run_started.max(self.now) + remaining).min(c.decision_until);
                        let g = c.gen;
                        self.seq += 1;
                        pending.push((fire, self.seq, core, g));
                        continue;
                    }
                    self.vcpus[vcpu.0 as usize].remaining = None;
                    let action = self.vcpus[vcpu.0 as usize].workload.next(self.now);
                    match action {
                        GuestAction::Compute(amount) => {
                            // `burst_demand` without the (absent) fault engine.
                            let amount = amount.max(Nanos(1));
                            self.vcpus[vcpu.0 as usize].remaining = Some(amount);
                            let c = &mut self.cores[core];
                            c.run_started = self.now;
                            let fire = (self.now + amount).min(c.decision_until);
                            let g = c.gen;
                            self.seq += 1;
                            pending.push((fire, self.seq, core, g));
                        }
                        GuestAction::Block | GuestAction::BlockFor(_) => {
                            // The guest blocks: sync the scheduler, hand the
                            // timers back, and finish generically.
                            self.dense_commit_all(
                                &windows,
                                &mut commit_from,
                                &picked_to,
                                &last_decided,
                            );
                            self.dense_restore(&pending);
                            if let GuestAction::BlockFor(delay) = action {
                                let slot = &mut self.vcpus[vcpu.0 as usize];
                                slot.wake_gen += 1;
                                let wgen = slot.wake_gen;
                                self.push(self.now + delay, Event::SelfWake { vcpu, gen: wgen });
                            }
                            self.block_running(core, vcpu);
                            self.resched(core);
                            self.stats.batch.batched_events += batched;
                            self.stats.batch.batch_exits += 1;
                            self.stats.batch.fallback_block += 1;
                            self.trace.emit(self.now, TraceClass::BATCH, || {
                                TraceEvent::BatchExit { batched }
                            });
                            self.batch_cooldown =
                                self.events_processed + self.bail_cooldown(batched);
                            return;
                        }
                    }
                    continue;
                }

                // Decision expiry: de-schedule the incumbent (`stop_current`
                // under the dense contract — flat cost, no IPIs) and take the
                // next slice from the precomputed window.
                self.apply_progress(core);
                if let Some(vcpu) = self.cores[core].running.take() {
                    let slot = &mut self.vcpus[vcpu.0 as usize];
                    slot.state = VState::Runnable;
                    slot.runnable_since = Some(self.now);
                    slot.last_core = Some(core);
                    let ran =
                        std::mem::replace(&mut self.cores[core].ran_since_dispatch, Nanos::ZERO);
                    self.trace
                        .emit(self.now, TraceClass::SCHED, || TraceEvent::Deschedule {
                            core,
                            vcpu,
                            ran,
                        });
                    self.stats
                        .ops
                        .record(OpKind::Deschedule, costs[core].deschedule);
                    self.cores[core].pending_overhead += costs[core].deschedule;
                }
                self.cores[core].gen += 1;

                let w = &windows[core];
                let mut i = next_idx[core];
                while i < w.len() && w[i].until <= self.now {
                    i += 1;
                }
                if i >= w.len() {
                    // The window under-ran the horizon (contract violation —
                    // windows must extend past it); bail into the generic pick.
                    debug_assert!(false, "dense window exhausted before the horizon");
                    self.dense_commit_all(&windows, &mut commit_from, &picked_to, &last_decided);
                    self.dense_restore(&pending);
                    self.resched_pick(core);
                    self.stats.batch.batched_events += batched;
                    self.stats.batch.batch_exits += 1;
                    self.stats.batch.fallback_window += 1;
                    self.trace
                        .emit(self.now, TraceClass::BATCH, || TraceEvent::BatchExit {
                            batched,
                        });
                    self.batch_cooldown = self.events_processed + self.bail_cooldown(batched);
                    return;
                }
                let slice = w[i];
                if commit_from[core] == usize::MAX {
                    commit_from[core] = i;
                }
                next_idx[core] = i + 1;
                picked_to[core] = i + 1;
                last_decided[core] = self.now;
                self.stats
                    .ops
                    .record(OpKind::Schedule, costs[core].schedule);
                let overhead =
                    costs[core].schedule + std::mem::take(&mut self.cores[core].pending_overhead);
                let until = slice.until.max(self.now + Nanos(1));
                self.cores[core].decision_until = until;
                let gen = self.cores[core].gen;

                let Some(vcpu) = slice.vcpu else {
                    self.trace
                        .emit(self.now, TraceClass::SCHED, || TraceEvent::Idle { core });
                    self.seq += 1;
                    pending.push((until, self.seq, core, gen));
                    continue;
                };
                debug_assert!(
                    self.flags[vcpu.0 as usize],
                    "dense window dispatched blocked {vcpu}"
                );
                self.trace
                    .emit(self.now, TraceClass::SCHED, || TraceEvent::Dispatch {
                        core,
                        vcpu,
                    });
                let slot = &mut self.vcpus[vcpu.0 as usize];
                if let Some(since) = slot.runnable_since.take() {
                    let delay = self.now - since;
                    self.stats.record_delay(vcpu, delay);
                }
                self.stats.vcpu_mut(vcpu).dispatches += 1;

                let mut cs = Nanos::ZERO;
                if self.cores[core].last_ran != Some(vcpu) {
                    cs += self.machine.context_switch;
                    self.stats.context_switches += 1;
                    let slot = &self.vcpus[vcpu.0 as usize];
                    if slot.last_core.is_some() && slot.last_core != Some(core) {
                        cs += self.machine.migration_penalty;
                    }
                }
                let start = (self.now + overhead + cs).max(self.stolen_until[core]);
                let slot = &mut self.vcpus[vcpu.0 as usize];
                slot.state = VState::Running;
                let c = &mut self.cores[core];
                c.running = Some(vcpu);
                c.run_started = start;
                c.ran_since_dispatch = start - self.now;
                c.last_ran = Some(vcpu);

                if self.vcpus[vcpu.0 as usize].remaining.is_none() {
                    let action = self.vcpus[vcpu.0 as usize].workload.next(self.now);
                    match action {
                        GuestAction::Compute(amount) => {
                            let amount = amount.max(Nanos(1));
                            self.vcpus[vcpu.0 as usize].remaining = Some(amount);
                        }
                        GuestAction::Block | GuestAction::BlockFor(_) => {
                            // Blocks straight off the dispatch: sync, restore,
                            // and resume the pick loop generically (the generic
                            // path `continue`s inside `resched_pick` here).
                            self.dense_commit_all(
                                &windows,
                                &mut commit_from,
                                &picked_to,
                                &last_decided,
                            );
                            self.dense_restore(&pending);
                            if let GuestAction::BlockFor(delay) = action {
                                let slot = &mut self.vcpus[vcpu.0 as usize];
                                slot.wake_gen += 1;
                                let wgen = slot.wake_gen;
                                self.push(self.now + delay, Event::SelfWake { vcpu, gen: wgen });
                            }
                            self.block_running(core, vcpu);
                            self.resched_pick(core);
                            self.stats.batch.batched_events += batched;
                            self.stats.batch.batch_exits += 1;
                            self.stats.batch.fallback_block += 1;
                            self.trace.emit(self.now, TraceClass::BATCH, || {
                                TraceEvent::BatchExit { batched }
                            });
                            self.batch_cooldown =
                                self.events_processed + self.bail_cooldown(batched);
                            return;
                        }
                    }
                }
                let remaining = self.vcpus[vcpu.0 as usize]
                    .remaining
                    .expect("dispatched vCPU without a burst");
                let fire = (start + remaining).min(until);
                self.seq += 1;
                pending.push((fire.max(self.now), self.seq, core, gen));
            }

            // Window horizon reached: sync the scheduler, then either hand
            // untaken timers back (batch done) or roll into the next
            // window. No cooldown either way, and the bail streak resets:
            // the attempt paid for itself.
            self.dense_commit_all(&windows, &mut commit_from, &picked_to, &last_decided);
            self.stats.batch.batched_events += batched;
            self.stats.batch.batch_exits += 1;
            self.stats.batch.fallback_horizon += 1;
            self.trace
                .emit(self.now, TraceClass::BATCH, || TraceEvent::BatchExit {
                    batched,
                });
            if cap >= end {
                self.batch_bails = 0;
                self.dense_restore(&pending);
                return;
            }
            continue 'window;
        }
    }

    /// Registers a bailed batch attempt and returns how many events the
    /// generic loop must process before the next one. The base cooldown
    /// doubles per consecutive unproductive bail (capped at `32 << 8` =
    /// 8192 events), so workloads that momentarily look dense but always
    /// break the batch pay the window-construction cost ever more rarely;
    /// a bail that still batched a sizeable run of events — or any batch
    /// that reaches its horizon — resets the streak.
    fn bail_cooldown(&mut self, batched: u64) -> u64 {
        /// Events to process generically after a fallback before batching
        /// is attempted again.
        const COOLDOWN: u64 = 32;
        if batched >= 256 {
            self.batch_bails = 0;
        } else {
            self.batch_bails = (self.batch_bails + 1).min(8);
        }
        COOLDOWN << self.batch_bails
    }

    /// Replays the cumulative effect of a batch's picks on the scheduler
    /// (see [`VmScheduler::dense_commit`]), in core order.
    fn dense_commit_all(
        &mut self,
        windows: &[Vec<DenseSlice>],
        commit_from: &mut [usize],
        picked_to: &[usize],
        last_decided: &[Nanos],
    ) {
        for core in 0..windows.len() {
            let from = commit_from[core];
            if from == usize::MAX || from >= picked_to[core] {
                continue;
            }
            let consumed = &windows[core][from..picked_to[core]];
            let running = self.cores[core].running.is_some();
            self.sched
                .dense_commit(core, last_decided[core], consumed, running);
            commit_from[core] = usize::MAX;
        }
    }

    /// Hands unconsumed batch timers back to the queue with their original
    /// `(time, seq)` keys. A raw re-push: no seq is allocated and
    /// `pending_other` is untouched, since every entry is a core timer.
    fn dense_restore(&mut self, pending: &[(Nanos, u64, usize, u64)]) {
        for &(at, seq, core, gen) in pending {
            self.events.push(at, seq, Event::CoreTimer { core, gen });
        }
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::CoreTimer { core, gen } => {
                if self.cores[core].gen != gen {
                    return; // superseded decision
                }
                if self.cores[core].running.is_some() && self.now < self.cores[core].decision_until
                {
                    self.burst_complete(core);
                } else {
                    self.resched(core);
                }
            }
            Event::Resched { core } => self.resched(core),
            Event::External { vcpu, tag } => self.deliver_external(vcpu, tag),
            Event::SelfWake { vcpu, gen } => {
                let slot = &self.vcpus[vcpu.0 as usize];
                if slot.wake_gen == gen && slot.state == VState::Blocked {
                    self.wake(vcpu);
                }
            }
            Event::Tick { core } => {
                let interval = self
                    .sched
                    .tick_interval()
                    .expect("tick event without tick interval");
                if !self.core_online[core] {
                    // Keep the periodic chain alive, but an offline core
                    // does no scheduler work.
                    self.push(self.now + interval, Event::Tick { core });
                    return;
                }
                let view = VcpuView {
                    runnable: &self.flags,
                };
                let needs_resched = self.sched.on_tick(core, self.now, view);
                self.push(self.now + interval, Event::Tick { core });
                if needs_resched {
                    self.resched(core);
                }
            }
            Event::Stolen { core } => self.steal(core),
            Event::CoreOffline { core } => self.core_goes_offline(core),
            Event::CoreOnline { core } => self.core_comes_online(core),
        }
    }

    /// A stolen-time interval begins on `core`: wall time passes without
    /// guest progress, the loss is charged to whoever holds the core (so a
    /// reservation absorbs its own interference rather than leaking it into
    /// other slots), and the next theft is scheduled.
    fn steal(&mut self, core: usize) {
        let (duration, gap) = {
            let f = self
                .faults
                .as_mut()
                .expect("stolen event without a fault engine");
            (f.theft_duration(), f.theft_gap())
        };
        self.push(self.now + gap, Event::Stolen { core });
        self.stats.stolen_time[core] += duration;
        self.trace
            .emit(self.now, TraceClass::FAULT, || TraceEvent::Stolen {
                core,
                duration,
            });

        let victim = self.cores[core].running;
        if victim.is_some() {
            // Account progress up to the theft, then shift the progress
            // clock past it: the interval contributes to wall-clock charging
            // (`ran_since_dispatch`) but not to guest service.
            self.apply_progress(core);
            let c = &mut self.cores[core];
            c.run_started = c.run_started.max(self.now) + duration;
            c.ran_since_dispatch += duration;
        }
        // Dispatches during the theft cannot start guest progress early.
        self.stolen_until[core] = (self.now + duration).max(self.stolen_until[core]);
        self.sched.on_stolen(core, victim, duration, self.now);
    }

    /// `core` drops out of service: the incumbent is preempted (it becomes
    /// runnable and waits for the control plane to evacuate it — the sim
    /// never re-homes vCPUs by itself), the outstanding decision is
    /// cancelled, and both the return-to-service and the next outage are
    /// scheduled.
    fn core_goes_offline(&mut self, core: usize) {
        let (duration, gap) = {
            let f = self
                .faults
                .as_mut()
                .expect("core-offline event without a fault engine");
            (f.outage_duration(), f.outage_gap())
        };
        self.stop_current(core);
        // Invalidate the decision timer; nothing runs until the core
        // returns.
        self.cores[core].gen += 1;
        self.core_online[core] = false;
        self.stats.core_offline_events += 1;
        self.stats.core_offline_time[core] += duration;
        self.trace
            .emit(self.now, TraceClass::FAULT, || TraceEvent::CoreOffline {
                core,
                duration,
            });
        self.sched.on_core_offline(core, self.now);
        self.push(self.now + duration, Event::CoreOnline { core });
        self.push(self.now + duration + gap, Event::CoreOffline { core });
    }

    /// An offline `core` returns to service and immediately re-schedules
    /// (the hardware's online path ends in a scheduler invocation, exactly
    /// like an IPI arrival).
    fn core_comes_online(&mut self, core: usize) {
        self.core_online[core] = true;
        self.trace
            .emit(self.now, TraceClass::FAULT, || TraceEvent::CoreOnline {
                core,
            });
        self.sched.on_core_online(core, self.now);
        self.resched(core);
    }

    /// Applies guest progress made on `core` since `run_started`.
    fn apply_progress(&mut self, core: usize) -> Nanos {
        let c = &mut self.cores[core];
        let Some(vcpu) = c.running else {
            return Nanos::ZERO;
        };
        let ran = self.now.saturating_sub(c.run_started);
        // `run_started` can sit in the future after a theft shifted it;
        // never pull it backwards (that would resurrect the stolen time as
        // guest progress).
        c.run_started = self.now.max(c.run_started);
        c.ran_since_dispatch += ran;
        let slot = &mut self.vcpus[vcpu.0 as usize];
        if let Some(rem) = &mut slot.remaining {
            *rem = rem.saturating_sub(ran);
        }
        self.stats.core_busy[core] += ran;
        self.stats.vcpu_mut(vcpu).service += ran;
        ran
    }

    /// The running vCPU's burst finished before the decision expired.
    fn burst_complete(&mut self, core: usize) {
        self.apply_progress(core);
        let vcpu = self.cores[core].running.expect("burst on idle core");
        let remaining = self.vcpus[vcpu.0 as usize]
            .remaining
            .expect("burst event without a burst");
        if remaining > Nanos::ZERO {
            // Stolen time shifted the progress clock after this timer was
            // armed, so the burst is not actually done; re-arm for the rest.
            debug_assert!(self.faults.is_some(), "burst event fired early");
            let c = &self.cores[core];
            let fire = (c.run_started.max(self.now) + remaining).min(c.decision_until);
            let gen = c.gen;
            self.push(fire, Event::CoreTimer { core, gen });
            return;
        }
        self.vcpus[vcpu.0 as usize].remaining = None;
        self.advance_workload(core, vcpu);
    }

    /// Asks the workload of the running `vcpu` for its next action and
    /// re-arms the core accordingly.
    fn advance_workload(&mut self, core: usize, vcpu: VcpuId) {
        let action = self.vcpus[vcpu.0 as usize].workload.next(self.now);
        match action {
            GuestAction::Compute(amount) => {
                let amount = self.burst_demand(vcpu, amount);
                self.vcpus[vcpu.0 as usize].remaining = Some(amount);
                let c = &mut self.cores[core];
                c.run_started = self.now;
                let fire = (self.now + amount).min(c.decision_until);
                let gen = c.gen;
                self.push(fire, Event::CoreTimer { core, gen });
            }
            GuestAction::Block | GuestAction::BlockFor(_) => {
                if let GuestAction::BlockFor(delay) = action {
                    let slot = &mut self.vcpus[vcpu.0 as usize];
                    slot.wake_gen += 1;
                    let gen = slot.wake_gen;
                    self.push(self.now + delay, Event::SelfWake { vcpu, gen });
                }
                self.block_running(core, vcpu);
                // Blocking invokes the scheduler, exactly as in Xen.
                self.resched(core);
            }
        }
    }

    /// Transitions the running `vcpu` on `core` to blocked, with scheduler
    /// notification and de-schedule bookkeeping.
    fn block_running(&mut self, core: usize, vcpu: VcpuId) {
        let slot = &mut self.vcpus[vcpu.0 as usize];
        slot.state = VState::Blocked;
        slot.runnable_since = None;
        slot.last_core = Some(core);
        self.flags[vcpu.0 as usize] = false;
        self.sched.on_block(vcpu, core, self.now);
        self.trace
            .emit(self.now, TraceClass::VCPU, || TraceEvent::Block { vcpu });
        let ran = std::mem::replace(&mut self.cores[core].ran_since_dispatch, Nanos::ZERO);
        self.trace
            .emit(self.now, TraceClass::SCHED, || TraceEvent::Deschedule {
                core,
                vcpu,
                ran,
            });
        let plan = self.sched.on_descheduled(vcpu, core, ran, self.now);
        self.stats.ops.record(OpKind::Deschedule, plan.cost);
        self.cores[core].pending_overhead += plan.cost;
        self.send_ipis(core, &plan.ipi_cores);
        self.cores[core].running = None;
    }

    /// Sends re-schedule IPIs from `src` to every target, charging the
    /// intra- or cross-socket latency per hop (see
    /// [`Machine::ipi_latency_between`]).
    fn send_ipis(&mut self, src: usize, targets: &[usize]) {
        for &t in targets {
            let mut latency = self.machine.ipi_latency_between(src, t);
            if let Some(f) = &mut self.faults {
                match f.ipi_fate() {
                    IpiFate::Deliver => {}
                    IpiFate::Late(extra) => latency += extra,
                    IpiFate::Lost { redeliver_after } => {
                        // The interrupt is dropped; the target still
                        // re-schedules when the fallback poll notices.
                        self.stats.ipis_lost += 1;
                        self.trace
                            .emit(self.now, TraceClass::FAULT, || TraceEvent::IpiLost {
                                core: t,
                            });
                        self.push(self.now + redeliver_after, Event::Resched { core: t });
                        continue;
                    }
                }
            }
            self.stats.ipis += 1;
            self.trace
                .emit(self.now, TraceClass::IPI, || TraceEvent::Ipi { core: t });
            self.push(self.now + latency, Event::Resched { core: t });
        }
    }

    /// The effective demand of a compute burst: the declared amount, plus
    /// any injected overrun.
    fn burst_demand(&mut self, vcpu: VcpuId, amount: Nanos) -> Nanos {
        let amount = amount.max(Nanos(1));
        let Some(extra) = self.faults.as_mut().and_then(|f| f.overrun_extra(amount)) else {
            return amount;
        };
        self.stats.overruns += 1;
        self.stats.overrun_time += extra;
        self.stats.vcpu_mut(vcpu).overruns += 1;
        self.trace
            .emit(self.now, TraceClass::FAULT, || TraceEvent::Overrun {
                vcpu,
                extra,
            });
        amount + extra
    }

    /// Stops the vCPU currently on `core` (preemption path) and notifies
    /// the scheduler.
    fn stop_current(&mut self, core: usize) {
        self.apply_progress(core);
        let Some(vcpu) = self.cores[core].running.take() else {
            return;
        };
        let slot = &mut self.vcpus[vcpu.0 as usize];
        slot.state = VState::Runnable;
        slot.runnable_since = Some(self.now);
        slot.last_core = Some(core);
        let ran = std::mem::replace(&mut self.cores[core].ran_since_dispatch, Nanos::ZERO);
        self.trace
            .emit(self.now, TraceClass::SCHED, || TraceEvent::Deschedule {
                core,
                vcpu,
                ran,
            });
        let plan = self.sched.on_descheduled(vcpu, core, ran, self.now);
        self.stats.ops.record(OpKind::Deschedule, plan.cost);
        self.cores[core].pending_overhead += plan.cost;
        self.send_ipis(core, &plan.ipi_cores);
    }

    /// Full scheduling pass on `core`: stop the incumbent, ask the
    /// scheduler, dispatch.
    fn resched(&mut self, core: usize) {
        if !self.core_online[core] {
            // Re-schedules aimed at an offline core are absorbed; the
            // online path re-issues one when the core returns.
            return;
        }
        self.stop_current(core);
        self.cores[core].gen += 1;
        self.resched_pick(core);
    }

    /// The pick-and-dispatch half of a scheduling pass: the incumbent is
    /// already stopped and the decision generation bumped. Split out so the
    /// dense-batch path can resume a pass generically after a mid-pick
    /// bail.
    fn resched_pick(&mut self, core: usize) {
        // A scheduler may hand back a vCPU that blocks instantly on
        // dispatch; loop a bounded number of times (each iteration blocks
        // one more vCPU, so it terminates).
        for _ in 0..=self.vcpus.len() {
            let view = VcpuView {
                runnable: &self.flags,
            };
            let (decision, cost) = self.sched.schedule(core, self.now, view);
            self.stats.ops.record(OpKind::Schedule, cost);
            let overhead = cost + std::mem::take(&mut self.cores[core].pending_overhead);
            let until = decision.until.max(self.now + Nanos(1));
            self.cores[core].decision_until = until;
            let gen = self.cores[core].gen;

            let Some(vcpu) = decision.vcpu else {
                self.trace
                    .emit(self.now, TraceClass::SCHED, || TraceEvent::Idle { core });
                self.push(until, Event::CoreTimer { core, gen });
                return;
            };
            debug_assert!(
                self.flags[vcpu.0 as usize],
                "scheduler dispatched blocked {vcpu}"
            );

            self.trace
                .emit(self.now, TraceClass::SCHED, || TraceEvent::Dispatch {
                    core,
                    vcpu,
                });

            // Dispatch latency sample.
            let slot = &mut self.vcpus[vcpu.0 as usize];
            if let Some(since) = slot.runnable_since.take() {
                let delay = self.now - since;
                self.stats.record_delay(vcpu, delay);
            }
            self.stats.vcpu_mut(vcpu).dispatches += 1;

            // Context-switch and migration costs.
            let mut cs = Nanos::ZERO;
            if self.cores[core].last_ran != Some(vcpu) {
                cs += self.machine.context_switch;
                self.stats.context_switches += 1;
                let slot = &self.vcpus[vcpu.0 as usize];
                if slot.last_core.is_some() && slot.last_core != Some(core) {
                    cs += self.machine.migration_penalty;
                }
            }

            // Guest progress starts after overheads and context switch, and
            // never inside a stolen-time interval on this core.
            let start = (self.now + overhead + cs).max(self.stolen_until[core]);
            let slot = &mut self.vcpus[vcpu.0 as usize];
            slot.state = VState::Running;
            let c = &mut self.cores[core];
            c.running = Some(vcpu);
            c.run_started = start;
            // Wall-time accounting: the dispatch overhead, context switch,
            // and any stolen-time stall are charged to the incoming vCPU
            // (see field docs).
            c.ran_since_dispatch = start - self.now;
            c.last_ran = Some(vcpu);

            // If the workload has no burst in progress, ask it now.
            if self.vcpus[vcpu.0 as usize].remaining.is_none() {
                let action = self.vcpus[vcpu.0 as usize].workload.next(self.now);
                match action {
                    GuestAction::Compute(amount) => {
                        let amount = self.burst_demand(vcpu, amount);
                        self.vcpus[vcpu.0 as usize].remaining = Some(amount);
                    }
                    GuestAction::Block | GuestAction::BlockFor(_) => {
                        if let GuestAction::BlockFor(delay) = action {
                            let slot = &mut self.vcpus[vcpu.0 as usize];
                            slot.wake_gen += 1;
                            let wgen = slot.wake_gen;
                            self.push(self.now + delay, Event::SelfWake { vcpu, gen: wgen });
                        }
                        self.block_running(core, vcpu);
                        continue; // pick someone else
                    }
                }
            }

            let remaining = self.vcpus[vcpu.0 as usize]
                .remaining
                .expect("dispatched vCPU without a burst");
            let fire = (start + remaining).min(until);
            self.push(fire.max(self.now), Event::CoreTimer { core, gen });
            return;
        }
        unreachable!("resched loop failed to terminate");
    }

    /// Delivers an external event to `vcpu`.
    fn deliver_external(&mut self, vcpu: VcpuId, tag: u64) {
        let slot = &mut self.vcpus[vcpu.0 as usize];
        let wants_wake = slot.workload.on_event(tag, self.now);
        if slot.state == VState::Blocked && wants_wake {
            self.wake(vcpu);
        }
    }

    /// Wakes a blocked vCPU and routes the wake-up through the scheduler.
    fn wake(&mut self, vcpu: VcpuId) {
        let slot = &mut self.vcpus[vcpu.0 as usize];
        debug_assert_eq!(slot.state, VState::Blocked);
        slot.state = VState::Runnable;
        slot.runnable_since = Some(self.now);
        slot.remaining = None;
        self.flags[vcpu.0 as usize] = true;
        self.stats.vcpu_mut(vcpu).wakeups += 1;
        self.trace
            .emit(self.now, TraceClass::VCPU, || TraceEvent::Wake { vcpu });

        let view = VcpuView {
            runnable: &self.flags,
        };
        let plan = self.sched.on_wakeup(vcpu, self.now, view);
        self.stats.ops.record(OpKind::Wakeup, plan.cost);
        // Wake-up processing time lands on the first IPI target (the core
        // that will act on it); with no target the cost is charged nowhere
        // — the wake-up was absorbed by state alone.
        if let Some(&first) = plan.ipi_cores.first() {
            // In lane mode the cost must land on an owned core — wake
            // events route to the home socket, and partition-capable
            // schedulers keep wake IPI targets on the waker's socket.
            debug_assert!(
                self.part
                    .as_ref()
                    .is_none_or(|p| (p.core_lo..p.core_hi).contains(&first)),
                "wake IPI cost target {first} outside the partition"
            );
            self.cores[first].pending_overhead += plan.cost;
        }
        let home = self.vcpus[vcpu.0 as usize].home;
        self.send_ipis(home, &plan.ipi_cores);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{BusyLoop, DeschedulePlan, IpiTargets, SchedDecision, WakeupPlan};

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    /// A trivial round-robin scheduler for driver tests: runs the lowest
    /// runnable vCPU id for a 1 ms quantum, on core (id % n_cores).
    struct ToyScheduler {
        n_cores: usize,
        vcpus: Vec<VcpuId>,
        rr_next: usize,
    }

    impl ToyScheduler {
        fn new(n_cores: usize) -> ToyScheduler {
            ToyScheduler {
                n_cores,
                vcpus: Vec::new(),
                rr_next: 0,
            }
        }
    }

    impl VmScheduler for ToyScheduler {
        fn name(&self) -> &'static str {
            "toy"
        }

        fn schedule(
            &mut self,
            core: usize,
            now: Nanos,
            view: VcpuView<'_>,
        ) -> (SchedDecision, Nanos) {
            let cost = Nanos::from_micros(1);
            // Round-robin over runnable vCPUs homed on this core.
            let mine: Vec<VcpuId> = self
                .vcpus
                .iter()
                .copied()
                .filter(|v| v.0 as usize % self.n_cores == core && view.is_runnable(*v))
                .collect();
            if mine.is_empty() {
                return (SchedDecision::idle(now + ms(10)), cost);
            }
            let pick = mine[self.rr_next % mine.len()];
            self.rr_next += 1;
            (SchedDecision::run(pick, now + ms(1)), cost)
        }

        fn on_wakeup(&mut self, vcpu: VcpuId, _now: Nanos, _view: VcpuView<'_>) -> WakeupPlan {
            WakeupPlan {
                ipi_cores: IpiTargets::one(vcpu.0 as usize % self.n_cores),
                cost: Nanos::from_micros(1),
            }
        }

        fn on_block(&mut self, _vcpu: VcpuId, _core: usize, _now: Nanos) {}

        fn on_descheduled(
            &mut self,
            _vcpu: VcpuId,
            _core: usize,
            _ran: Nanos,
            _now: Nanos,
        ) -> DeschedulePlan {
            DeschedulePlan {
                ipi_cores: IpiTargets::NONE,
                cost: Nanos(100),
            }
        }

        fn register_vcpu(&mut self, vcpu: VcpuId, _home: usize) {
            self.vcpus.push(vcpu);
        }

        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn busy_vcpu_accumulates_service() {
        let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
        let v = sim.add_vcpu(Box::new(BusyLoop), 0, true);
        sim.run_until(ms(100));
        let s = sim.stats().vcpu(v);
        // Overheads and context switches eat a little; the guest should
        // still get the vast majority of 100 ms.
        assert!(s.service > ms(95), "service only {}", s.service);
        assert!(s.dispatches > 50);
    }

    #[test]
    fn two_busy_vcpus_share_a_core_evenly() {
        let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
        let a = sim.add_vcpu(Box::new(BusyLoop), 0, true);
        let b = sim.add_vcpu(Box::new(BusyLoop), 0, true);
        sim.run_until(ms(100));
        let (sa, sb) = (sim.stats().vcpu(a).service, sim.stats().vcpu(b).service);
        let ratio = sa.as_nanos() as f64 / sb.as_nanos() as f64;
        assert!((0.9..1.1).contains(&ratio), "unfair split {sa} vs {sb}");
    }

    #[test]
    fn blocked_vcpu_consumes_nothing_until_woken() {
        struct OneShot {
            served: bool,
        }
        impl GuestWorkload for OneShot {
            fn next(&mut self, _now: Nanos) -> GuestAction {
                if self.served {
                    GuestAction::Block
                } else {
                    self.served = true;
                    GuestAction::Compute(Nanos::from_micros(500))
                }
            }
            fn as_any(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }

        let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
        let v = sim.add_vcpu(Box::new(OneShot { served: false }), 0, false);
        sim.push_external(ms(50), v, 0);
        sim.run_until(ms(40));
        assert_eq!(sim.stats().vcpu(v).service, Nanos::ZERO);
        sim.run_until(ms(100));
        let s = sim.stats().vcpu(v);
        assert_eq!(s.service, Nanos::from_micros(500));
        assert_eq!(s.wakeups, 1);
    }

    #[test]
    fn self_wake_timers_fire() {
        /// Runs 100 us, sleeps 900 us, repeats.
        struct Periodic;
        impl GuestWorkload for Periodic {
            fn next(&mut self, _now: Nanos) -> GuestAction {
                GuestAction::Compute(Nanos::from_micros(100))
            }
            fn as_any(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        // Workload alternates compute/sleep via a wrapper.
        struct Alternating {
            compute_next: bool,
        }
        impl GuestWorkload for Alternating {
            fn next(&mut self, _now: Nanos) -> GuestAction {
                self.compute_next = !self.compute_next;
                if self.compute_next {
                    GuestAction::BlockFor(Nanos::from_micros(900))
                } else {
                    GuestAction::Compute(Nanos::from_micros(100))
                }
            }
            fn as_any(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
        let v = sim.add_vcpu(Box::new(Alternating { compute_next: true }), 0, true);
        sim.run_until(ms(10));
        let s = sim.stats().vcpu(v);
        // ~10 cycles of 100 us compute.
        assert!(
            s.service >= Nanos::from_micros(900),
            "service {}",
            s.service
        );
        assert!(s.service <= Nanos::from_micros(1100));
        assert!(s.wakeups >= 8);
        let _ = Periodic; // silence unused struct in this test body
    }

    #[test]
    fn overheads_are_recorded() {
        let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
        sim.add_vcpu(Box::new(BusyLoop), 0, true);
        sim.run_until(ms(10));
        let ops = &sim.stats().ops;
        assert!(ops.get(OpKind::Schedule).count >= 9);
        // Toy scheduler charges exactly 1 us per decision.
        assert!((ops.get(OpKind::Schedule).mean_us() - 1.0).abs() < 1e-9);
        assert!(ops.get(OpKind::Deschedule).count > 0);
    }

    #[test]
    fn scheduling_delay_is_tracked() {
        // Two busy vCPUs on one core with 1 ms quanta: each waits ~1 ms
        // while the other runs.
        let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
        let a = sim.add_vcpu(Box::new(BusyLoop), 0, true);
        sim.add_vcpu(Box::new(BusyLoop), 0, true);
        sim.run_until(ms(100));
        let s = sim.stats().vcpu(a);
        assert!(s.delay_max >= ms(1), "max delay {}", s.delay_max);
        assert!(s.delay_max <= ms(2), "max delay {}", s.delay_max);
    }

    #[test]
    fn multicore_independence() {
        let mut sim = Sim::new(Machine::small(2), Box::new(ToyScheduler::new(2)));
        let a = sim.add_vcpu(Box::new(BusyLoop), 0, true); // core 0
        let b = sim.add_vcpu(Box::new(BusyLoop), 1, true); // core 1
        sim.run_until(ms(50));
        // Both make near-full progress: no false sharing of cores.
        assert!(sim.stats().vcpu(a).service > ms(47));
        assert!(sim.stats().vcpu(b).service > ms(47));
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut sim = Sim::new(Machine::small(2), Box::new(ToyScheduler::new(2)));
            let a = sim.add_vcpu(Box::new(BusyLoop), 0, true);
            let b = sim.add_vcpu(Box::new(BusyLoop), 0, true);
            sim.push_external(ms(3), a, 7);
            sim.run_until(ms(20));
            (
                sim.stats().vcpu(a).service,
                sim.stats().vcpu(b).service,
                sim.stats().ops.get(OpKind::Schedule).count,
            )
        };
        assert_eq!(run(), run());
    }

    /// Fingerprint of a run for byte-level replay comparisons.
    fn fingerprint(sim: &Sim) -> (Vec<Nanos>, Vec<Nanos>, u64, u64, u64, Vec<Nanos>) {
        let s = sim.stats();
        (
            s.vcpus.iter().map(|v| v.service).collect(),
            s.vcpus.iter().map(|v| v.delay_max).collect(),
            s.ops.get(OpKind::Schedule).count,
            s.ipis,
            s.context_switches,
            s.core_busy.clone(),
        )
    }

    #[test]
    fn zero_intensity_faults_replay_bit_for_bit() {
        let run = |faults: bool| {
            let mut sim = Sim::new(Machine::small(2), Box::new(ToyScheduler::new(2)));
            if faults {
                sim.set_fault_config(crate::fault::FaultConfig::with_intensity(99, 0.0));
            }
            let a = sim.add_vcpu(Box::new(BusyLoop), 0, true);
            sim.add_vcpu(Box::new(BusyLoop), 0, true);
            sim.add_vcpu(Box::new(BusyLoop), 1, true);
            sim.push_external(ms(3), a, 7);
            sim.run_until(ms(50));
            fingerprint(&sim)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn zero_intensity_installs_no_engine() {
        let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
        sim.set_fault_config(crate::fault::FaultConfig::with_intensity(1, 0.0));
        assert!(sim.fault_config().is_none());
        assert!(!sim.fault_switch_interrupted());
    }

    #[test]
    fn stolen_time_is_counted_and_slows_the_victim() {
        use crate::fault::{FaultConfig, StolenFaults};
        let run = |stolen: bool| {
            let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
            if stolen {
                sim.set_fault_config(FaultConfig {
                    stolen: StolenFaults {
                        cores: vec![0],
                        interval: ms(2),
                        duration: Nanos::from_micros(400),
                    },
                    ..FaultConfig::none()
                });
            }
            let v = sim.add_vcpu(Box::new(BusyLoop), 0, true);
            sim.run_until(ms(100));
            (sim.stats().vcpu(v).service, sim.stats().stolen_time[0])
        };
        let (clean_service, clean_stolen) = run(false);
        let (service, stolen) = run(true);
        assert_eq!(clean_stolen, Nanos::ZERO);
        assert!(stolen > ms(5), "stolen only {stolen}");
        // Service lost matches the theft, within overhead noise.
        assert!(
            service <= clean_service - stolen + ms(1),
            "service {service} vs clean {clean_service} - stolen {stolen}"
        );
        assert!(service >= clean_service - stolen - ms(5));
    }

    #[test]
    fn stolen_time_on_an_idle_core_reaches_the_scheduler() {
        use crate::fault::{FaultConfig, StolenFaults};
        let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
        sim.set_fault_config(FaultConfig {
            stolen: StolenFaults {
                cores: vec![0],
                interval: ms(1),
                duration: Nanos::from_micros(100),
            },
            ..FaultConfig::none()
        });
        // No vCPUs at all: thefts hit an idle core and must not crash or
        // charge service anywhere.
        sim.run_until(ms(20));
        assert!(sim.stats().stolen_time[0] > Nanos::ZERO);
        assert_eq!(sim.stats().core_busy[0], Nanos::ZERO);
    }

    #[test]
    fn lost_ipis_are_redelivered() {
        use crate::fault::{FaultConfig, IpiFaults};
        struct OneShot {
            served: bool,
        }
        impl GuestWorkload for OneShot {
            fn next(&mut self, _now: Nanos) -> GuestAction {
                if self.served {
                    GuestAction::Block
                } else {
                    self.served = true;
                    GuestAction::Compute(Nanos::from_micros(500))
                }
            }
            fn as_any(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
        sim.set_fault_config(FaultConfig {
            ipi: IpiFaults {
                loss_prob: 1.0,
                extra_delay: Nanos::ZERO,
                redeliver_after: Nanos::from_micros(200),
            },
            ..FaultConfig::none()
        });
        let v = sim.add_vcpu(Box::new(OneShot { served: false }), 0, false);
        sim.push_external(ms(50), v, 0);
        sim.run_until(ms(100));
        // Every wake-up IPI was lost, yet the fallback re-delivery still got
        // the guest running.
        assert!(sim.stats().ipis_lost > 0);
        assert_eq!(sim.stats().vcpu(v).service, Nanos::from_micros(500));
    }

    #[test]
    fn overruns_are_counted_and_extend_service() {
        use crate::fault::{FaultConfig, OverrunFaults};
        /// 100 us of declared compute, then sleep 900 us, forever.
        struct Periodic {
            compute_next: bool,
        }
        impl GuestWorkload for Periodic {
            fn next(&mut self, _now: Nanos) -> GuestAction {
                self.compute_next = !self.compute_next;
                if self.compute_next {
                    GuestAction::BlockFor(Nanos::from_micros(900))
                } else {
                    GuestAction::Compute(Nanos::from_micros(100))
                }
            }
            fn as_any(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
        sim.set_fault_config(FaultConfig {
            overrun: OverrunFaults {
                prob: 1.0,
                max_extra: Nanos::from_micros(50),
            },
            ..FaultConfig::none()
        });
        let v = sim.add_vcpu(Box::new(Periodic { compute_next: true }), 0, true);
        sim.run_until(ms(10));
        let s = sim.stats();
        assert!(s.overruns > 0);
        assert!(s.overrun_time > Nanos::ZERO);
        // The guest consumed its declared demand plus the injected extra.
        assert!(s.vcpu(v).service > Nanos::from_micros(900));
    }

    #[test]
    fn timer_faults_only_delay_and_stay_deterministic() {
        use crate::fault::{FaultConfig, TimerFaults};
        let run = || {
            let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
            sim.set_fault_config(FaultConfig {
                timer: TimerFaults {
                    jitter: Nanos::from_micros(30),
                    coarsen: Nanos::from_micros(100),
                },
                ..FaultConfig::none()
            });
            let a = sim.add_vcpu(Box::new(BusyLoop), 0, true);
            let b = sim.add_vcpu(Box::new(BusyLoop), 0, true);
            sim.run_until(ms(50));
            (sim.stats().vcpu(a).service, sim.stats().vcpu(b).service)
        };
        let (sa, sb) = run();
        assert_eq!(run(), (sa, sb));
        // Jittered quanta still share the core roughly evenly.
        let ratio = sa.as_nanos() as f64 / sb.as_nanos() as f64;
        assert!((0.8..1.25).contains(&ratio), "{sa} vs {sb}");
    }

    #[test]
    fn core_flaps_preempt_the_victim_and_service_resumes() {
        use crate::fault::{CoreFaults, FaultConfig};
        let run = |flaps: bool| {
            let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
            if flaps {
                sim.set_fault_config(FaultConfig {
                    core: CoreFaults {
                        cores: vec![0],
                        interval: ms(10),
                        outage: ms(4),
                    },
                    ..FaultConfig::none()
                });
            }
            let v = sim.add_vcpu(Box::new(BusyLoop), 0, true);
            sim.run_until(ms(100));
            (
                sim.stats().vcpu(v).service,
                sim.stats().core_offline_events,
                sim.stats().core_offline_time[0],
            )
        };
        let (clean, zero_events, zero_time) = run(false);
        assert_eq!(zero_events, 0);
        assert_eq!(zero_time, Nanos::ZERO);
        let (service, events, offline) = run(true);
        assert!(events > 3, "only {events} outages");
        assert!(offline > ms(5), "offline only {offline}");
        // Service lost tracks the outage time, within overhead noise.
        assert!(
            service <= clean - offline + ms(1),
            "service {service} vs clean {clean} - offline {offline}"
        );
        assert!(service >= clean - offline - ms(5));
    }

    #[test]
    fn offline_core_runs_nothing_and_reports_state() {
        use crate::fault::{CoreFaults, FaultConfig};
        let mut sim = Sim::new(Machine::small(2), Box::new(ToyScheduler::new(2)));
        sim.set_fault_config(FaultConfig {
            core: CoreFaults {
                cores: vec![0],
                interval: ms(1),
                // Outages far longer than the gap: core 0 is almost always
                // offline.
                outage: ms(200),
            },
            ..FaultConfig::none()
        });
        let a = sim.add_vcpu(Box::new(BusyLoop), 0, true); // core 0
        let b = sim.add_vcpu(Box::new(BusyLoop), 1, true); // core 1
        sim.run_until(ms(50));
        assert!(!sim.core_online(0));
        assert!(sim.core_online(1));
        // The victim made almost no progress; the other core is untouched.
        assert!(sim.stats().vcpu(a).service < ms(5));
        assert!(sim.stats().vcpu(b).service > ms(47));
    }

    #[test]
    fn core_flaps_replay_deterministically() {
        use crate::fault::{CoreFaults, FaultConfig};
        let run = || {
            let mut sim = Sim::new(Machine::small(2), Box::new(ToyScheduler::new(2)));
            sim.set_fault_config(FaultConfig {
                seed: 11,
                core: CoreFaults {
                    cores: vec![0, 1],
                    interval: ms(7),
                    outage: ms(2),
                },
                ..FaultConfig::none()
            });
            sim.add_vcpu(Box::new(BusyLoop), 0, true);
            sim.add_vcpu(Box::new(BusyLoop), 1, true);
            sim.run_until(ms(80));
            (fingerprint(&sim), sim.stats().core_offline_events)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_capacity_is_bounded_and_drops_are_reported() {
        let mut sim = Sim::new(Machine::small(1), Box::new(ToyScheduler::new(1)));
        sim.set_trace_capacity(8);
        sim.enable_tracing();
        sim.add_vcpu(Box::new(BusyLoop), 0, true);
        sim.add_vcpu(Box::new(BusyLoop), 0, true);
        sim.run_until(ms(50));
        assert_eq!(sim.trace().len(), 8);
        assert!(sim.trace().dropped() > 0);
        assert_eq!(sim.stats().trace_dropped, sim.trace().dropped());
    }
}
