//! Machine model: topology and hardware cost parameters.
//!
//! The paper evaluates on two Intel Xeon servers:
//!
//! * a 16-core, 2-socket (8 cores each) E5-2667 at 3.2 GHz — the main
//!   platform for Tables 1 and Figs. 5–8;
//! * a 48-core, 4-socket (12 cores each) E7-8857 — used for Table 2 and the
//!   planner scalability experiments (Figs. 3–4).
//!
//! The simulator needs only the parameters that scheduling decisions
//! interact with: core/socket layout (migration penalties, per-socket
//! runqueues in Credit2), context-switch and IPI costs. Defaults are typical
//! for the hardware class and documented per field.

use serde::{Deserialize, Serialize};

use rtsched::time::Nanos;

/// Hardware topology and per-operation hardware costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Machine {
    /// Number of CPU sockets.
    pub n_sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Cost of a context switch between vCPUs on the same core
    /// (register/FPU state, address-space switch, warm caches).
    pub context_switch: Nanos,
    /// Extra cost when a vCPU is dispatched on a core it did not run on
    /// last (cold private caches; larger across sockets is folded in).
    pub migration_penalty: Nanos,
    /// Latency from sending an IPI to the remote core acting on it, when
    /// both cores share a socket.
    pub ipi_latency: Nanos,
    /// Latency for an IPI that crosses sockets (the interconnect hop).
    /// `None` means "same as intra-socket" — the historical flat model —
    /// and is omitted from serialized artifacts so old machine records
    /// round-trip byte-identically. Must be `>=` the intra-socket latency:
    /// the partitioned (PDES) engine uses the minimum cross-socket value
    /// as its conservative lookahead bound.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ipi_cross_latency: Option<Nanos>,
}

impl Machine {
    /// The paper's 16-core, 2-socket Xeon E5-2667.
    ///
    /// The context-switch cost covers register/VMCS state switching; the
    /// migration penalty is the extra hit a vCPU pays when dispatched on a
    /// core it did not run on last (Sec. 7.5 discusses this migration-cost
    /// asymmetry: under Tableau only split vCPUs pay it, under the dynamic
    /// schedulers everyone occasionally does). The values model the direct
    /// architectural costs; slow cache-refill tails are left out, which
    /// makes the simulation *conservative* about how much dynamic
    /// schedulers' migrations hurt.
    pub fn xeon_16core() -> Machine {
        Machine {
            n_sockets: 2,
            cores_per_socket: 8,
            context_switch: Nanos::from_micros(2),
            migration_penalty: Nanos::from_micros(3),
            ipi_latency: Nanos::from_micros(1),
            ipi_cross_latency: None,
        }
    }

    /// The paper's 48-core, 4-socket Xeon E7-8857.
    pub fn xeon_48core() -> Machine {
        Machine {
            n_sockets: 4,
            cores_per_socket: 12,
            ..Machine::xeon_16core()
        }
    }

    /// A small machine for tests.
    pub fn small(n_cores: usize) -> Machine {
        Machine {
            n_sockets: 1,
            cores_per_socket: n_cores,
            context_switch: Nanos::from_micros(2),
            migration_penalty: Nanos::from_micros(3),
            ipi_latency: Nanos::from_micros(1),
            ipi_cross_latency: None,
        }
    }

    /// Returns this machine with a distinct cross-socket IPI latency.
    ///
    /// # Panics
    ///
    /// Panics if `cross` is below the intra-socket latency — the lookahead
    /// argument of the partitioned engine requires cross >= intra.
    pub fn with_cross_ipi_latency(mut self, cross: Nanos) -> Machine {
        assert!(
            cross >= self.ipi_latency,
            "cross-socket IPI latency {cross} below intra-socket {}",
            self.ipi_latency
        );
        self.ipi_cross_latency = Some(cross);
        self
    }

    /// The cross-socket IPI latency (falls back to the intra-socket value
    /// under the historical flat model).
    pub fn cross_ipi_latency(&self) -> Nanos {
        self.ipi_cross_latency.unwrap_or(self.ipi_latency)
    }

    /// The IPI latency from `src` to `dst` under the split model.
    pub fn ipi_latency_between(&self, src: usize, dst: usize) -> Nanos {
        if self.same_socket(src, dst) {
            self.ipi_latency
        } else {
            self.cross_ipi_latency()
        }
    }

    /// Total number of cores.
    pub fn n_cores(&self) -> usize {
        self.n_sockets * self.cores_per_socket
    }

    /// Whether `core` exists on this machine. Fault configurations name
    /// cores by index; injection silently skips indices beyond the
    /// topology so one config can drive machines of different sizes.
    pub fn has_core(&self, core: usize) -> bool {
        core < self.n_cores()
    }

    /// The socket a core belongs to.
    pub fn socket_of(&self, core: usize) -> usize {
        core / self.cores_per_socket
    }

    /// Whether two cores share a socket (cheap migrations, shared LLC).
    pub fn same_socket(&self, a: usize, b: usize) -> bool {
        self.socket_of(a) == self.socket_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platforms() {
        let m16 = Machine::xeon_16core();
        assert_eq!(m16.n_cores(), 16);
        assert_eq!(m16.n_sockets, 2);
        let m48 = Machine::xeon_48core();
        assert_eq!(m48.n_cores(), 48);
        assert_eq!(m48.n_sockets, 4);
    }

    #[test]
    fn socket_mapping() {
        let m = Machine::xeon_16core();
        assert_eq!(m.socket_of(0), 0);
        assert_eq!(m.socket_of(7), 0);
        assert_eq!(m.socket_of(8), 1);
        assert!(m.same_socket(0, 7));
        assert!(!m.same_socket(7, 8));
    }

    #[test]
    fn split_ipi_latency_model() {
        let flat = Machine::xeon_16core();
        // Flat model: cross == intra, nothing serialized for the new field.
        assert_eq!(flat.cross_ipi_latency(), flat.ipi_latency);
        let json = serde_json::to_string(&flat).unwrap();
        assert!(!json.contains("ipi_cross_latency"), "{json}");
        let back: Machine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, flat);
        // Old artifacts (without the field) still deserialize.
        let legacy: Machine = serde_json::from_str(
            r#"{"n_sockets":2,"cores_per_socket":8,"context_switch":2000,
                "migration_penalty":3000,"ipi_latency":1000}"#,
        )
        .unwrap();
        assert_eq!(legacy.ipi_cross_latency, None);

        let split = flat.with_cross_ipi_latency(Nanos::from_micros(3));
        assert_eq!(split.cross_ipi_latency(), Nanos::from_micros(3));
        assert_eq!(split.ipi_latency_between(0, 7), split.ipi_latency);
        assert_eq!(split.ipi_latency_between(7, 8), Nanos::from_micros(3));
        let json = serde_json::to_string(&split).unwrap();
        let back: Machine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, split);
    }

    #[test]
    #[should_panic(expected = "below intra-socket")]
    fn cross_below_intra_panics() {
        let _ = Machine::xeon_16core().with_cross_ipi_latency(Nanos(1));
    }

    #[test]
    fn small_machine() {
        let m = Machine::small(4);
        assert_eq!(m.n_cores(), 4);
        assert!(m.same_socket(0, 3));
        assert!(m.has_core(3));
        assert!(!m.has_core(4));
    }
}
