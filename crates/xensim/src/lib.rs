//! A deterministic discrete-event hypervisor/multicore simulator.
//!
//! This crate is the reproduction's stand-in for the Xen 4.9 testbed of the
//! Tableau paper (EuroSys 2018): a 16-core two-socket and a 48-core
//! four-socket Intel Xeon. It simulates exactly the couplings the paper's
//! evaluation measures:
//!
//! * **Scheduling** — a pluggable [`sched::VmScheduler`] decides what each
//!   core runs; every operation's CPU cost is charged to the core and
//!   recorded ([`stats`]), regenerating Tables 1–2.
//! * **Guests** — [`sched::GuestWorkload`]s progress only while dispatched;
//!   blocking, guest timers, and external events (packets, requests) drive
//!   the wake-up paths whose latency the paper measures (Figs. 5–6).
//! * **Hardware** — context-switch/migration/IPI costs ([`machine`]), a
//!   contended-lock model for global scheduler locks ([`lock`], the cause
//!   of RTDS's Table 2 blow-up), and a rate-limited NIC transmit ring
//!   ([`net`], the cause of the Fig. 7 1 MiB capped anomaly).
//!
//! Determinism: events are processed in `(time, insertion order)`, so every
//! experiment replays identically.

pub mod fault;
pub mod lock;
pub mod machine;
pub mod net;
pub mod sched;
pub mod sim;
pub mod stats;
pub mod trace;
pub mod wheel;

pub use fault::{
    CoreFaults, FaultConfig, FaultEngine, FaultWindow, HostCrashFaults, HostDegradeFaults,
    HostFaultConfig, HostFaultEngine, InstallStormFaults, IpiFate,
};
pub use lock::SimLock;
pub use machine::Machine;
pub use net::TxRing;
pub use sched::{
    GuestAction, GuestWorkload, SchedDecision, VcpuId, VcpuView, VmScheduler, WakeupPlan,
};
pub use sim::{EngineKind, Sim};
pub use stats::{OpKind, OpStats, RecoveryStats, SimStats};
pub use trace::{TraceBuffer, TraceClass, TraceEvent, TraceSummary};
pub use wheel::TimingWheel;
