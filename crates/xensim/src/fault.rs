//! Deterministic fault injection: platform interference for robustness
//! experiments.
//!
//! The paper's evaluation runs on a quiet, dedicated testbed; production
//! hosts are not so polite. This module injects five classes of platform
//! misbehaviour into the simulator, all seeded and reproducible:
//!
//! 1. **Timer faults** — tick jitter and coarsening: core timers fire late
//!    by a bounded random amount and/or only on a coarse granularity
//!    (modelling `CONFIG_HZ` limits, timer coalescing, deep C-state exit).
//! 2. **IPI faults** — delivery delay and outright loss. A lost IPI is
//!    re-delivered after a bounded interval (the periodic re-check every
//!    real interrupt path has), so wake-ups are delayed, never dropped.
//! 3. **Stolen time** — intervals on selected cores where the CPU simply
//!    does not execute the guest (SMIs, host kernel work, a co-located
//!    hypervisor tenant). Wall time passes; guest progress does not.
//! 4. **Burst overruns** — guests demanding more CPU than their declared
//!    burst (mis-estimated workloads); schedulers must clamp them.
//! 5. **Table-switch interruption** — the planner push is interrupted
//!    mid-switch; the two-phase install protocol in `tableau-core` must
//!    roll back to a consistent table.
//! 6. **Core offline/online flaps** — selected cores drop out of service
//!    for bounded outages (hotplug, deep firmware stalls, a failing
//!    package being fenced by the host) and later return. While offline a
//!    core runs nothing; a runtime guardian must evacuate its vCPUs.
//!
//! Determinism contract: each class draws from its **own** RNG stream
//! derived from the master seed, and a class at zero intensity performs
//! **no draws and schedules no events** — a configuration with every class
//! inactive replays bit-for-bit identically to a simulation with no fault
//! engine at all.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rtsched::time::Nanos;

/// Timer tick jitter and coarsening.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimerFaults {
    /// Maximum extra delay added to each core timer/tick (uniform draw).
    pub jitter: Nanos,
    /// Timer granularity: firing times are rounded **up** to a multiple of
    /// this quantum (zero = precise timers).
    pub coarsen: Nanos,
}

impl TimerFaults {
    /// Whether this class injects anything.
    pub fn is_active(&self) -> bool {
        self.jitter > Nanos::ZERO || self.coarsen > Nanos::ZERO
    }
}

/// IPI delivery faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IpiFaults {
    /// Probability an IPI is lost entirely.
    pub loss_prob: f64,
    /// Maximum extra delivery latency for IPIs that do arrive.
    pub extra_delay: Nanos,
    /// A lost IPI's effect (a re-schedule) is re-delivered after this
    /// interval — the fallback poll every real interrupt path has.
    pub redeliver_after: Nanos,
}

impl IpiFaults {
    /// Whether this class injects anything.
    pub fn is_active(&self) -> bool {
        self.loss_prob > 0.0 || self.extra_delay > Nanos::ZERO
    }
}

/// Stolen-time intervals on selected cores.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StolenFaults {
    /// Cores subject to theft (others are never touched — the basis of the
    /// cross-core isolation experiments).
    pub cores: Vec<usize>,
    /// Mean interval between thefts on each affected core (actual gaps are
    /// drawn uniformly from `[interval/2, 3*interval/2]`).
    pub interval: Nanos,
    /// Maximum duration of one theft (drawn from `[duration/2, duration]`).
    pub duration: Nanos,
}

impl StolenFaults {
    /// Whether this class injects anything.
    pub fn is_active(&self) -> bool {
        !self.cores.is_empty() && self.interval > Nanos::ZERO && self.duration > Nanos::ZERO
    }
}

/// Guest bursts overrunning their declared demand.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OverrunFaults {
    /// Probability a compute burst overruns.
    pub prob: f64,
    /// Maximum extra demand added to an overrunning burst.
    pub max_extra: Nanos,
}

impl OverrunFaults {
    /// Whether this class injects anything.
    pub fn is_active(&self) -> bool {
        self.prob > 0.0 && self.max_extra > Nanos::ZERO
    }
}

/// Mid-switch interruption of planner table pushes.
///
/// The simulator core never installs tables itself; harnesses that push
/// tables consult [`FaultEngine::switch_interrupted`] and drive the
/// two-phase begin/commit/abort protocol accordingly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SwitchFaults {
    /// Probability a table install is interrupted before commit.
    pub interrupt_prob: f64,
}

impl SwitchFaults {
    /// Whether this class injects anything.
    pub fn is_active(&self) -> bool {
        self.interrupt_prob > 0.0
    }
}

/// Core offline/online flaps on selected cores.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreFaults {
    /// Cores subject to flaps (others never go offline).
    pub cores: Vec<usize>,
    /// Mean interval between outages on each affected core (actual gaps
    /// are drawn uniformly from `[interval/2, 3*interval/2]`).
    pub interval: Nanos,
    /// Maximum duration of one outage (drawn from `[outage/2, outage]`).
    pub outage: Nanos,
}

impl CoreFaults {
    /// Whether this class injects anything.
    pub fn is_active(&self) -> bool {
        !self.cores.is_empty() && self.interval > Nanos::ZERO && self.outage > Nanos::ZERO
    }
}

/// Full fault-injection configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master seed; each class derives an independent stream from it.
    pub seed: u64,
    /// Timer jitter/coarsening.
    pub timer: TimerFaults,
    /// IPI delay/loss.
    pub ipi: IpiFaults,
    /// Stolen-time intervals.
    pub stolen: StolenFaults,
    /// Guest burst overruns.
    pub overrun: OverrunFaults,
    /// Table-switch interruption.
    pub table_switch: SwitchFaults,
    /// Core offline/online flaps.
    pub core: CoreFaults,
}

impl FaultConfig {
    /// A configuration that injects nothing (equivalent to no engine).
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// Whether any class injects anything.
    pub fn any_active(&self) -> bool {
        self.timer.is_active()
            || self.ipi.is_active()
            || self.stolen.is_active()
            || self.overrun.is_active()
            || self.table_switch.is_active()
            || self.core.is_active()
    }

    /// A preset scaling every class by `intensity` in `[0, 1]`.
    ///
    /// At intensity 0 every class is inactive (see the module-level
    /// determinism contract); at intensity 1 the preset injects 50 µs timer
    /// jitter, 100 µs timer granularity, 5% IPI loss with up to 20 µs extra
    /// delay, ~10% stolen time on core 0 (up to 500 µs every ~5 ms), 10%
    /// burst overruns of up to 200 µs, and a 50% chance of interrupting
    /// each table switch.
    pub fn with_intensity(seed: u64, intensity: f64) -> FaultConfig {
        let i = intensity.clamp(0.0, 1.0);
        let scale = |ns: u64| Nanos((ns as f64 * i) as u64);
        FaultConfig {
            seed,
            timer: TimerFaults {
                jitter: scale(50_000),
                coarsen: scale(100_000),
            },
            ipi: IpiFaults {
                loss_prob: 0.05 * i,
                extra_delay: scale(20_000),
                redeliver_after: Nanos(100_000),
            },
            stolen: StolenFaults {
                cores: vec![0],
                interval: Nanos(5_000_000),
                duration: scale(500_000),
            },
            overrun: OverrunFaults {
                prob: 0.1 * i,
                max_extra: scale(200_000),
            },
            table_switch: SwitchFaults {
                interrupt_prob: 0.5 * i,
            },
            // Core flaps are not part of the classic robustness sweep; use
            // `chaos` for fault schedules that include them.
            core: CoreFaults::default(),
        }
    }

    /// The guardian soak preset: core flaps plus the interference a runtime
    /// recovery loop must absorb, scaled by `intensity` in `[0, 1]`.
    ///
    /// At intensity 0 every class is inactive (the determinism contract);
    /// at intensity 1 the preset flaps core 0 offline for up to 120 ms
    /// every ~400 ms (long enough that a guardian polling every few tens of
    /// milliseconds must *evacuate*, not merely wait the outage out),
    /// steals up to 300 µs from core 0 every ~10 ms, overruns 10% of
    /// bursts by up to 200 µs, and interrupts half of all table switches.
    /// Timer and IPI faults are deliberately excluded: they perturb
    /// *observation* (when delays are sampled), not the scheduled supply
    /// the guardian defends, and the soak invariants are stated against
    /// exact table-driven supply.
    pub fn chaos(seed: u64, intensity: f64) -> FaultConfig {
        let i = intensity.clamp(0.0, 1.0);
        let scale = |ns: u64| Nanos((ns as f64 * i) as u64);
        FaultConfig {
            seed,
            timer: TimerFaults::default(),
            ipi: IpiFaults::default(),
            stolen: StolenFaults {
                cores: vec![0],
                interval: Nanos(10_000_000),
                duration: scale(300_000),
            },
            overrun: OverrunFaults {
                prob: 0.1 * i,
                max_extra: scale(200_000),
            },
            table_switch: SwitchFaults {
                interrupt_prob: 0.5 * i,
            },
            core: CoreFaults {
                cores: vec![0],
                interval: Nanos(400_000_000),
                outage: scale(120_000_000),
            },
        }
    }
}

/// Fate of one injected IPI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpiFate {
    /// Delivered normally.
    Deliver,
    /// Delivered with this much extra latency.
    Late(Nanos),
    /// Lost; its effect is re-delivered after the given interval.
    Lost {
        /// Delay until the fallback re-delivery.
        redeliver_after: Nanos,
    },
}

/// The seeded fault-injection engine driven by [`crate::Sim`].
///
/// Per-class RNG streams keep classes independent: changing the IPI loss
/// rate does not perturb the stolen-time schedule, so sweeps vary exactly
/// one variable at a time.
#[derive(Debug)]
pub struct FaultEngine {
    cfg: FaultConfig,
    timer_rng: SmallRng,
    ipi_rng: SmallRng,
    stolen_rng: SmallRng,
    overrun_rng: SmallRng,
    switch_rng: SmallRng,
    core_rng: SmallRng,
}

impl FaultEngine {
    /// Builds an engine from a configuration.
    pub fn new(cfg: FaultConfig) -> FaultEngine {
        // Fixed per-class stream tags; seed_from_u64 runs splitmix64, so
        // nearby tags still yield uncorrelated streams.
        let stream = |tag: u64| {
            SmallRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(tag))
        };
        FaultEngine {
            timer_rng: stream(1),
            ipi_rng: stream(2),
            stolen_rng: stream(3),
            overrun_rng: stream(4),
            switch_rng: stream(5),
            core_rng: stream(6),
            cfg,
        }
    }

    /// The configuration the engine was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Adjusts a timer firing time: coarsens (rounds up) then jitters
    /// (delays). Never moves a timer earlier. No draws when inactive.
    pub fn adjust_timer(&mut self, at: Nanos) -> Nanos {
        let t = &self.cfg.timer;
        if !t.is_active() {
            return at;
        }
        let mut ns = at.as_nanos();
        if t.coarsen > Nanos::ZERO {
            let q = t.coarsen.as_nanos();
            ns = ns.div_ceil(q).saturating_mul(q);
        }
        if t.jitter > Nanos::ZERO {
            ns = ns.saturating_add(self.timer_rng.gen_range(0..=t.jitter.as_nanos()));
        }
        Nanos(ns)
    }

    /// Decides the fate of one IPI. No draws when inactive.
    pub fn ipi_fate(&mut self) -> IpiFate {
        let c = &self.cfg.ipi;
        if !c.is_active() {
            return IpiFate::Deliver;
        }
        if c.loss_prob > 0.0 && self.ipi_rng.gen_bool(c.loss_prob.min(1.0)) {
            return IpiFate::Lost {
                redeliver_after: c.redeliver_after.max(Nanos(1)),
            };
        }
        if c.extra_delay > Nanos::ZERO {
            let extra = Nanos(self.ipi_rng.gen_range(0..=c.extra_delay.as_nanos()));
            if extra > Nanos::ZERO {
                return IpiFate::Late(extra);
            }
        }
        IpiFate::Deliver
    }

    /// Gap until the next theft on an affected core.
    pub fn theft_gap(&mut self) -> Nanos {
        let i = self.cfg.stolen.interval.as_nanos();
        Nanos(
            self.stolen_rng
                .gen_range(i / 2..=i.saturating_mul(3) / 2)
                .max(1),
        )
    }

    /// Duration of one theft.
    pub fn theft_duration(&mut self) -> Nanos {
        let d = self.cfg.stolen.duration.as_nanos();
        Nanos(self.stolen_rng.gen_range(d / 2..=d).max(1))
    }

    /// Gap until the next outage on a flapping core.
    pub fn outage_gap(&mut self) -> Nanos {
        let i = self.cfg.core.interval.as_nanos();
        Nanos(
            self.core_rng
                .gen_range(i / 2..=i.saturating_mul(3) / 2)
                .max(1),
        )
    }

    /// Duration of one core outage.
    pub fn outage_duration(&mut self) -> Nanos {
        let d = self.cfg.core.outage.as_nanos();
        Nanos(self.core_rng.gen_range(d / 2..=d).max(1))
    }

    /// Extra demand for a compute burst, if this one overruns. No draws
    /// when inactive.
    pub fn overrun_extra(&mut self, _declared: Nanos) -> Option<Nanos> {
        let o = &self.cfg.overrun;
        if !o.is_active() {
            return None;
        }
        if !self.overrun_rng.gen_bool(o.prob.min(1.0)) {
            return None;
        }
        Some(Nanos(
            self.overrun_rng.gen_range(1..=o.max_extra.as_nanos()),
        ))
    }

    /// Whether the next table switch is interrupted mid-protocol. No draws
    /// when inactive.
    pub fn switch_interrupted(&mut self) -> bool {
        let s = &self.cfg.table_switch;
        s.is_active() && self.switch_rng.gen_bool(s.interrupt_prob.min(1.0))
    }
}

// ---------------------------------------------------------------------------
// Host-level faults (fleet control plane)
// ---------------------------------------------------------------------------
//
// The classes above perturb one simulated host from the inside; a fleet
// control plane additionally loses *whole hosts*. Three host-level classes,
// same determinism contract: per-class streams derived from the master
// seed, per-host sub-streams derived from the host index (so host 17's
// crash schedule does not depend on how many hosts exist or in what order
// they are queried), and a class at zero intensity performs no draws and
// produces no events.

/// Whole-host crash/restart cycles (kernel panic, PSU trip, fencing).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostCrashFaults {
    /// Mean interval between crashes of any one host (actual gaps drawn
    /// uniformly from `[interval/2, 3*interval/2]`).
    pub interval: Nanos,
    /// Maximum outage before the host restarts empty (drawn from
    /// `[outage/2, outage]`).
    pub outage: Nanos,
}

impl HostCrashFaults {
    /// Whether this class injects anything.
    pub fn is_active(&self) -> bool {
        self.interval > Nanos::ZERO && self.outage > Nanos::ZERO
    }
}

/// Slow-host degradation windows (thermal throttling, a failing disk, a
/// noisy co-tenant): the host stays up but the control plane must stop
/// placing new work on it and expect its installs to lag.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostDegradeFaults {
    /// Mean interval between degradation windows per host (gaps drawn
    /// uniformly from `[interval/2, 3*interval/2]`).
    pub interval: Nanos,
    /// Maximum duration of one window (drawn from `[duration/2, duration]`).
    pub duration: Nanos,
}

impl HostDegradeFaults {
    /// Whether this class injects anything.
    pub fn is_active(&self) -> bool {
        self.interval > Nanos::ZERO && self.duration > Nanos::ZERO
    }
}

/// Install-failure storms: fleet-wide windows during which table pushes
/// are interrupted with high probability (a congested management network,
/// an overloaded control node) — the two-phase protocol plus bounded
/// retries must absorb them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InstallStormFaults {
    /// Mean interval between storms (gaps drawn uniformly from
    /// `[interval/2, 3*interval/2]`).
    pub interval: Nanos,
    /// Maximum duration of one storm (drawn from `[duration/2, duration]`).
    pub duration: Nanos,
    /// Probability each install attempted during a storm is interrupted.
    pub interrupt_prob: f64,
}

impl InstallStormFaults {
    /// Whether this class injects anything.
    pub fn is_active(&self) -> bool {
        self.interval > Nanos::ZERO && self.duration > Nanos::ZERO && self.interrupt_prob > 0.0
    }
}

/// Seeded corruption of a host's installed table: the in-memory copy is
/// mutated out from under its dispatcher (a stray DMA, a bit flip in a
/// non-ECC DIMM, a buggy management agent scribbling over the mapping).
/// The control plane's continuous audit must detect and repair every one.
///
/// The class emits [`CorruptionEvent`]s, not mutations — the simulator
/// stays ignorant of table internals; harnesses map each event's `class`
/// and `salt` onto a deterministic table mutation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableCorruptionFaults {
    /// Mean interval between corruption opportunities per host (gaps drawn
    /// uniformly from `[interval/2, 3*interval/2]`).
    pub interval: Nanos,
    /// Probability each opportunity actually corrupts the table.
    pub prob: f64,
}

impl TableCorruptionFaults {
    /// Whether this class injects anything.
    pub fn is_active(&self) -> bool {
        self.interval > Nanos::ZERO && self.prob > 0.0
    }
}

/// One scheduled table corruption on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorruptionEvent {
    /// Absolute fleet time of the corruption.
    pub at: Nanos,
    /// Fault class selector in `0..3` (bit-flipped slot, swapped
    /// placements, stale truncated slot — the harness maps it onto its
    /// table-mutation vocabulary).
    pub class: u8,
    /// Deterministic salt for the mutation itself.
    pub salt: u64,
}

/// Full host-level fault configuration for a fleet.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HostFaultConfig {
    /// Master seed; each class (and each host within a class) derives an
    /// independent stream from it.
    pub seed: u64,
    /// Whole-host crash/restart cycles.
    pub crash: HostCrashFaults,
    /// Slow-host degradation windows.
    pub degrade: HostDegradeFaults,
    /// Fleet-wide install-failure storms.
    pub storm: InstallStormFaults,
    /// Per-host installed-table corruption.
    #[serde(default)]
    pub corruption: TableCorruptionFaults,
}

impl HostFaultConfig {
    /// A configuration that injects nothing (equivalent to no engine).
    pub fn none() -> HostFaultConfig {
        HostFaultConfig::default()
    }

    /// Whether any class injects anything.
    pub fn any_active(&self) -> bool {
        self.crash.is_active()
            || self.degrade.is_active()
            || self.storm.is_active()
            || self.corruption.is_active()
    }

    /// The fleet chaos preset, scaled by `intensity` in `[0, 1]`.
    ///
    /// At intensity 0 every class is inactive (the determinism contract);
    /// at intensity 1 each host crashes on average once per 60 s of fleet
    /// time with outages up to 4 s, degrades for up to 2 s every ~30 s,
    /// fleet-wide install storms of up to 1 s arrive every ~5 s
    /// interrupting 60% of the installs attempted inside them, and each
    /// host's installed table is corrupted with probability 50% roughly
    /// every 20 s.
    pub fn chaos(seed: u64, intensity: f64) -> HostFaultConfig {
        let i = intensity.clamp(0.0, 1.0);
        let scale = |ns: u64| Nanos((ns as f64 * i) as u64);
        HostFaultConfig {
            seed,
            crash: HostCrashFaults {
                interval: Nanos::from_secs(60),
                outage: scale(4_000_000_000),
            },
            degrade: HostDegradeFaults {
                interval: Nanos::from_secs(30),
                duration: scale(2_000_000_000),
            },
            storm: InstallStormFaults {
                interval: Nanos::from_secs(5),
                duration: scale(1_000_000_000),
                interrupt_prob: 0.6 * i,
            },
            corruption: TableCorruptionFaults {
                interval: Nanos::from_secs(20),
                prob: 0.5 * i,
            },
        }
    }
}

/// The seeded host-level fault engine a fleet control plane consults.
///
/// Unlike [`FaultEngine`] (which is driven event-by-event from inside one
/// simulator), host faults are *schedules*: the control plane asks for the
/// crash/degrade windows of each host (and the fleet-wide storm windows)
/// over its run horizon up front, then consults
/// [`HostFaultEngine::storm_interrupts_install`] per install attempt. The
/// schedules are a pure function of `(seed, host)` — fleet size and query
/// order cannot perturb them.
#[derive(Debug)]
pub struct HostFaultEngine {
    cfg: HostFaultConfig,
    storm_rng: SmallRng,
}

/// A half-open fault window `[from, until)` in absolute fleet time.
pub type FaultWindow = (Nanos, Nanos);

impl HostFaultEngine {
    /// Builds an engine, or `None` when the configuration injects nothing
    /// — the zero-intensity contract is structural: no engine, no draws.
    pub fn new(cfg: HostFaultConfig) -> Option<HostFaultEngine> {
        if !cfg.any_active() {
            return None;
        }
        let storm_rng = Self::stream(cfg.seed, 7, u64::MAX);
        Some(HostFaultEngine { cfg, storm_rng })
    }

    /// The configuration the engine was built from.
    pub fn config(&self) -> &HostFaultConfig {
        &self.cfg
    }

    /// An independent stream per `(class tag, host)`; `seed_from_u64` runs
    /// splitmix64, so nearby tags still yield uncorrelated streams.
    fn stream(seed: u64, tag: u64, host: u64) -> SmallRng {
        SmallRng::seed_from_u64(
            seed.wrapping_mul(0x9e37_79b9)
                .wrapping_add(tag)
                .wrapping_mul(0x0100_0000_01b3)
                .wrapping_add(host),
        )
    }

    fn windows(
        mut rng: SmallRng,
        interval: Nanos,
        max_len: Nanos,
        horizon: Nanos,
    ) -> Vec<FaultWindow> {
        let i = interval.as_nanos();
        let d = max_len.as_nanos();
        let mut out = Vec::new();
        let mut t = Nanos::ZERO;
        loop {
            let gap = Nanos(rng.gen_range(i / 2..=i.saturating_mul(3) / 2).max(1));
            let start = t + gap;
            if start >= horizon {
                return out;
            }
            let len = Nanos(rng.gen_range(d / 2..=d).max(1));
            out.push((start, start + len));
            t = start + len;
        }
    }

    /// Crash windows of `host` over `[0, horizon)`: the host is down for
    /// each `[from, until)` and restarts (empty) at `until`. No draws when
    /// the class is inactive.
    pub fn crash_windows(&self, host: usize, horizon: Nanos) -> Vec<FaultWindow> {
        let c = &self.cfg.crash;
        if !c.is_active() {
            return Vec::new();
        }
        let rng = Self::stream(self.cfg.seed, 8, host as u64);
        Self::windows(rng, c.interval, c.outage, horizon)
    }

    /// Degradation windows of `host` over `[0, horizon)`. No draws when
    /// the class is inactive.
    pub fn degrade_windows(&self, host: usize, horizon: Nanos) -> Vec<FaultWindow> {
        let d = &self.cfg.degrade;
        if !d.is_active() {
            return Vec::new();
        }
        let rng = Self::stream(self.cfg.seed, 9, host as u64);
        Self::windows(rng, d.interval, d.duration, horizon)
    }

    /// Fleet-wide install-storm windows over `[0, horizon)`. No draws when
    /// the class is inactive.
    pub fn storm_windows(&self, horizon: Nanos) -> Vec<FaultWindow> {
        let s = &self.cfg.storm;
        if !s.is_active() {
            return Vec::new();
        }
        let rng = Self::stream(self.cfg.seed, 10, u64::MAX);
        Self::windows(rng, s.interval, s.duration, horizon)
    }

    /// Table-corruption events of `host` over `[0, horizon)`, in time
    /// order. A pure function of `(seed, host)` like the window schedules;
    /// no draws when the class is inactive.
    pub fn corruption_events(&self, host: usize, horizon: Nanos) -> Vec<CorruptionEvent> {
        let c = &self.cfg.corruption;
        if !c.is_active() {
            return Vec::new();
        }
        let mut rng = Self::stream(self.cfg.seed, 11, host as u64);
        let i = c.interval.as_nanos();
        let mut out = Vec::new();
        let mut t = Nanos::ZERO;
        loop {
            let gap = Nanos(rng.gen_range(i / 2..=i.saturating_mul(3) / 2).max(1));
            let at = t + gap;
            if at >= horizon {
                return out;
            }
            t = at;
            if rng.gen_bool(c.prob.min(1.0)) {
                out.push(CorruptionEvent {
                    at,
                    class: rng.gen_range(0..3u8),
                    salt: rng.gen(),
                });
            }
        }
    }

    /// Whether one install attempted inside a storm window is interrupted.
    /// Callers must consult this only when `now` falls inside a window from
    /// [`HostFaultEngine::storm_windows`] — outside storms no draw is made
    /// and installs proceed untouched.
    pub fn storm_interrupts_install(&mut self) -> bool {
        let s = &self.cfg.storm;
        s.is_active() && self.storm_rng.gen_bool(s.interrupt_prob.min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_preset_is_fully_inactive() {
        let cfg = FaultConfig::with_intensity(7, 0.0);
        assert!(!cfg.any_active());
        assert_eq!(
            cfg,
            FaultConfig {
                seed: 7,
                ipi: IpiFaults {
                    redeliver_after: Nanos(100_000),
                    ..IpiFaults::default()
                },
                stolen: StolenFaults {
                    cores: vec![0],
                    interval: Nanos(5_000_000),
                    duration: Nanos::ZERO
                },
                ..FaultConfig::none()
            }
        );
    }

    #[test]
    fn full_intensity_preset_activates_every_class() {
        let cfg = FaultConfig::with_intensity(7, 1.0);
        assert!(cfg.timer.is_active());
        assert!(cfg.ipi.is_active());
        assert!(cfg.stolen.is_active());
        assert!(cfg.overrun.is_active());
        assert!(cfg.table_switch.is_active());
        // Core flaps stay out of the classic sweep preset.
        assert!(!cfg.core.is_active());
    }

    #[test]
    fn zero_intensity_chaos_preset_is_fully_inactive() {
        let cfg = FaultConfig::chaos(7, 0.0);
        assert!(!cfg.any_active());
        assert!(!cfg.core.is_active());
    }

    #[test]
    fn full_intensity_chaos_preset_flaps_cores_but_not_timers() {
        let cfg = FaultConfig::chaos(7, 1.0);
        assert!(cfg.core.is_active());
        assert!(cfg.stolen.is_active());
        assert!(cfg.overrun.is_active());
        assert!(cfg.table_switch.is_active());
        assert!(!cfg.timer.is_active());
        assert!(!cfg.ipi.is_active());
    }

    #[test]
    fn outage_draws_stay_in_their_ranges() {
        let mut e = FaultEngine::new(FaultConfig {
            core: CoreFaults {
                cores: vec![1],
                interval: Nanos(100_000),
                outage: Nanos(8_000),
            },
            ..FaultConfig::none()
        });
        for _ in 0..64 {
            let g = e.outage_gap();
            assert!(g >= Nanos(50_000) && g <= Nanos(150_000), "{g}");
            let d = e.outage_duration();
            assert!(d >= Nanos(4_000) && d <= Nanos(8_000), "{d}");
        }
    }

    #[test]
    fn inactive_classes_pass_through_without_draws() {
        let mut e = FaultEngine::new(FaultConfig::none());
        assert_eq!(e.adjust_timer(Nanos(12_345)), Nanos(12_345));
        assert_eq!(e.ipi_fate(), IpiFate::Deliver);
        assert_eq!(e.overrun_extra(Nanos(1_000)), None);
        assert!(!e.switch_interrupted());
    }

    #[test]
    fn timer_adjustment_never_moves_earlier() {
        let mut e = FaultEngine::new(FaultConfig::with_intensity(3, 1.0));
        for ns in [1u64, 999, 100_000, 12_837_825] {
            let adj = e.adjust_timer(Nanos(ns));
            assert!(adj >= Nanos(ns), "{adj} < {ns}");
        }
    }

    #[test]
    fn coarsening_rounds_up_to_the_quantum() {
        let mut e = FaultEngine::new(FaultConfig {
            timer: TimerFaults {
                jitter: Nanos::ZERO,
                coarsen: Nanos(1_000),
            },
            ..FaultConfig::none()
        });
        assert_eq!(e.adjust_timer(Nanos(1)), Nanos(1_000));
        assert_eq!(e.adjust_timer(Nanos(1_000)), Nanos(1_000));
        assert_eq!(e.adjust_timer(Nanos(1_001)), Nanos(2_000));
    }

    #[test]
    fn same_seed_replays_identically() {
        let draws = |seed: u64| {
            let mut e = FaultEngine::new(FaultConfig::with_intensity(seed, 0.8));
            let mut out = Vec::new();
            for _ in 0..32 {
                out.push((
                    e.adjust_timer(Nanos(1_000_000)),
                    e.ipi_fate(),
                    e.theft_gap(),
                    e.theft_duration(),
                    e.overrun_extra(Nanos(50_000)),
                    e.switch_interrupted(),
                ));
            }
            out
        };
        assert_eq!(draws(42), draws(42));
        assert_ne!(draws(42), draws(43));
    }

    #[test]
    fn certain_loss_always_loses() {
        let mut e = FaultEngine::new(FaultConfig {
            ipi: IpiFaults {
                loss_prob: 1.0,
                extra_delay: Nanos::ZERO,
                redeliver_after: Nanos(100),
            },
            ..FaultConfig::none()
        });
        for _ in 0..16 {
            assert!(matches!(e.ipi_fate(), IpiFate::Lost { .. }));
        }
    }

    #[test]
    fn theft_draws_stay_in_their_ranges() {
        let mut e = FaultEngine::new(FaultConfig {
            stolen: StolenFaults {
                cores: vec![0],
                interval: Nanos(10_000),
                duration: Nanos(4_000),
            },
            ..FaultConfig::none()
        });
        for _ in 0..64 {
            let g = e.theft_gap();
            assert!(g >= Nanos(5_000) && g <= Nanos(15_000), "{g}");
            let d = e.theft_duration();
            assert!(d >= Nanos(2_000) && d <= Nanos(4_000), "{d}");
        }
    }

    #[test]
    fn zero_intensity_host_chaos_is_fully_inactive() {
        let cfg = HostFaultConfig::chaos(11, 0.0);
        assert!(!cfg.any_active());
        assert!(HostFaultEngine::new(cfg).is_none());
        assert!(HostFaultEngine::new(HostFaultConfig::none()).is_none());
    }

    #[test]
    fn host_schedules_are_per_host_deterministic() {
        let horizon = Nanos::from_secs(600);
        let mk = || HostFaultEngine::new(HostFaultConfig::chaos(42, 1.0)).expect("active");
        let (a, b) = (mk(), mk());
        for host in [0usize, 1, 17, 199] {
            assert_eq!(
                a.crash_windows(host, horizon),
                b.crash_windows(host, horizon)
            );
            assert_eq!(
                a.degrade_windows(host, horizon),
                b.degrade_windows(host, horizon)
            );
        }
        // Different hosts see different schedules; the same host's schedule
        // is independent of any other host having been queried first.
        assert_ne!(a.crash_windows(0, horizon), a.crash_windows(1, horizon));
        let fresh = mk();
        let _ = fresh.crash_windows(150, horizon);
        assert_eq!(fresh.crash_windows(3, horizon), a.crash_windows(3, horizon));
        assert_eq!(a.storm_windows(horizon), b.storm_windows(horizon));
    }

    #[test]
    fn host_windows_are_ordered_and_bounded() {
        let e = HostFaultEngine::new(HostFaultConfig::chaos(7, 1.0)).expect("active");
        let horizon = Nanos::from_secs(600);
        let cfg = e.config().clone();
        for host in 0..32 {
            let mut last = Nanos::ZERO;
            for (from, until) in e.crash_windows(host, horizon) {
                assert!(from >= last && from < horizon, "window starts in order");
                assert!(until > from, "non-empty outage");
                assert!(until - from <= cfg.crash.outage, "outage within bound");
                last = until;
            }
        }
    }

    #[test]
    fn inactive_host_classes_produce_no_windows() {
        // Only storms active: crash/degrade schedules must be empty (and,
        // per the contract, draw nothing).
        let cfg = HostFaultConfig {
            seed: 3,
            storm: InstallStormFaults {
                interval: Nanos::from_secs(5),
                duration: Nanos::from_secs(1),
                interrupt_prob: 0.5,
            },
            ..HostFaultConfig::none()
        };
        let e = HostFaultEngine::new(cfg).expect("storm class is active");
        let horizon = Nanos::from_secs(100);
        assert!(e.crash_windows(0, horizon).is_empty());
        assert!(e.degrade_windows(0, horizon).is_empty());
        assert!(!e.storm_windows(horizon).is_empty());
        assert!(e.corruption_events(0, horizon).is_empty());
    }

    #[test]
    fn corruption_events_are_deterministic_ordered_and_classed() {
        let horizon = Nanos::from_secs(600);
        let mk = || HostFaultEngine::new(HostFaultConfig::chaos(42, 1.0)).expect("active");
        let (a, b) = (mk(), mk());
        for host in [0usize, 1, 17, 199] {
            let events = a.corruption_events(host, horizon);
            assert_eq!(events, b.corruption_events(host, horizon));
            assert!(!events.is_empty(), "host {host} drew no corruptions");
            let mut last = Nanos::ZERO;
            for ev in &events {
                assert!(ev.at > last && ev.at < horizon, "events in order");
                assert!(ev.class < 3, "class selector in range");
                last = ev.at;
            }
        }
        // Hosts draw independent schedules from the shared seed.
        assert_ne!(
            a.corruption_events(0, horizon),
            a.corruption_events(1, horizon)
        );
    }

    #[test]
    fn corruption_only_config_activates_the_engine() {
        let cfg = HostFaultConfig {
            seed: 9,
            corruption: TableCorruptionFaults {
                interval: Nanos::from_secs(2),
                prob: 1.0,
            },
            ..HostFaultConfig::none()
        };
        assert!(cfg.any_active());
        let e = HostFaultEngine::new(cfg).expect("corruption class is active");
        let horizon = Nanos::from_secs(100);
        assert!(e.crash_windows(0, horizon).is_empty());
        // prob 1.0: every opportunity fires, gaps within [i/2, 3i/2].
        let events = e.corruption_events(0, horizon);
        assert!(
            events.len() >= 100 / 3 && events.len() <= 100,
            "{}",
            events.len()
        );
    }
}
