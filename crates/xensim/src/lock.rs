//! A contended-lock model for single-threaded discrete-event simulation.
//!
//! The paper attributes RTDS's poor scalability to "the acquisition of a
//! global lock when load-balancing vCPUs" (Table 2: >168 µs mean migrate
//! overhead on 48 cores). To reproduce that *emergently* — rather than by
//! hard-coding the blow-up — schedulers in this reproduction route their
//! critical sections through a [`SimLock`]. Because the simulator executes
//! events in global time order, lock behaviour reduces to simple
//! bookkeeping: an acquirer at time `t` waits until the lock's `free_at`,
//! holds it for its critical-section length, and pushes `free_at` forward.
//! Under low invocation rates waits are rare; under the paper's high-density
//! I/O workloads, invocations pile up and waits compound with core count —
//! exactly the effect Table 2 shows.

use rtsched::time::Nanos;

/// A simulated spinlock shared by all cores.
#[derive(Debug, Clone, Default)]
pub struct SimLock {
    /// Absolute time at which the current holder releases.
    free_at: Nanos,
    /// Total time spent spinning across all acquisitions.
    total_wait: Nanos,
    /// Number of acquisitions.
    acquisitions: u64,
    /// Number of acquisitions that had to wait.
    contended: u64,
}

impl SimLock {
    /// Creates an uncontended lock.
    pub fn new() -> SimLock {
        SimLock::default()
    }

    /// Acquires the lock at `now`, holding it for `hold`.
    ///
    /// Returns the time spent *waiting* (zero when uncontended). The
    /// caller's total critical-section cost is `wait + hold`.
    pub fn acquire(&mut self, now: Nanos, hold: Nanos) -> Nanos {
        let wait = self.free_at.saturating_sub(now);
        self.free_at = now + wait + hold;
        self.total_wait += wait;
        self.acquisitions += 1;
        if !wait.is_zero() {
            self.contended += 1;
        }
        wait
    }

    /// Mean wait per acquisition so far.
    pub fn mean_wait(&self) -> Nanos {
        if self.acquisitions == 0 {
            Nanos::ZERO
        } else {
            self.total_wait / self.acquisitions
        }
    }

    /// Fraction of acquisitions that waited.
    pub fn contention_ratio(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }

    /// Number of acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Nanos {
        Nanos::from_micros(v)
    }

    #[test]
    fn uncontended_acquisition_is_free() {
        let mut l = SimLock::new();
        assert_eq!(l.acquire(us(0), us(2)), Nanos::ZERO);
        // Next acquisition after release: also free.
        assert_eq!(l.acquire(us(2), us(2)), Nanos::ZERO);
        assert_eq!(l.contention_ratio(), 0.0);
    }

    #[test]
    fn overlapping_acquisitions_serialize() {
        let mut l = SimLock::new();
        assert_eq!(l.acquire(us(0), us(10)), Nanos::ZERO);
        // Arrives at t=3 while held until t=10: waits 7.
        assert_eq!(l.acquire(us(3), us(10)), us(7));
        // Arrives at t=4 while queue extends to t=20: waits 16.
        assert_eq!(l.acquire(us(4), us(10)), us(16));
        assert_eq!(l.acquisitions(), 3);
        assert!(l.contention_ratio() > 0.5);
    }

    #[test]
    fn waits_compound_with_arrival_rate() {
        // Many cores hammering the lock: mean wait grows far beyond the
        // hold time — the Table 2 effect in miniature.
        let mut l = SimLock::new();
        for i in 0..100u64 {
            // Arrivals every 1 us, holds of 2 us: the queue grows.
            l.acquire(Nanos::from_micros(i), us(2));
        }
        assert!(l.mean_wait() > us(10));
    }

    #[test]
    fn sparse_arrivals_never_wait() {
        let mut l = SimLock::new();
        for i in 0..100u64 {
            assert_eq!(l.acquire(Nanos::from_micros(i * 10), us(2)), Nanos::ZERO);
        }
        assert_eq!(l.mean_wait(), Nanos::ZERO);
    }
}
