//! A hierarchical timing wheel: the simulator's O(1) event queue.
//!
//! Discrete-event simulators live and die by their pending-event set. A
//! binary heap costs O(log n) comparisons (and a cache-hostile percolation)
//! per insert and per pop; calendar-queue designs — the ones ns-3-class
//! simulators use — exploit the fact that a scheduler workload is a dense
//! band of near-future timers (decision expiries, slice boundaries, IPI
//! deliveries) plus a sparse far tail, and make both operations O(1)
//! amortized.
//!
//! Geometry (three levels, nearest first):
//!
//! * **Near wheel** — `NEAR_SLOTS` slots of `2^SLOT_SHIFT` ns each
//!   (2.048 µs), covering one ~2.1 ms *window*. The slot width is tuned to
//!   the simulator's observed event density (~1 event/µs on the 16-core
//!   scaling scenario) so a slot usually holds zero or one event: the
//!   common pop takes a bitmap scan and a `Vec::pop`, no heap at all. An
//!   occupancy bitmap (one bit per slot) makes skipping empty slots a
//!   couple of word operations.
//! * **Overflow level** — `OVF_SLOTS` coarse buckets, each one near-window
//!   wide, extending the horizon to ~134 ms. When the near wheel advances
//!   into a new window, the matching bucket is scattered down into the
//!   near slots.
//! * **Far heap** — a plain binary heap for the sparse tail beyond the
//!   overflow horizon (warm-up schedules, multi-second timers). Events
//!   migrate inward as the horizon advances.
//!
//! Slot storage is a `Vec` per slot that is *drained, never dropped*: after
//! the first few windows the wheel reaches a steady state where pushes and
//! pops reuse retained capacity and allocate nothing, and event payloads
//! move by value (no clones).
//!
//! # Determinism
//!
//! The wheel must be observationally identical to the reference heap: pops
//! come out in ascending `(time, seq)` order, full stop. The argument:
//!
//! 1. Entries at slots strictly before the drain cursor live in the
//!    `current` heap. Every other entry's slot is `>=` the cursor, so its
//!    time is `>=` the cursor slot's start, which is `>` every `current`
//!    time (slot widths are uniform powers of two). The minimum of
//!    `current` is therefore the global minimum whenever `current` is
//!    non-empty — and two entries with *equal* times share a slot by
//!    construction, so cross-structure ties cannot exist.
//! 2. A multi-entry slot is drained into `current`, which is itself a
//!    `(time, seq)` min-heap — intra-slot order is restored there. A
//!    single-entry slot needs no ordering and is returned directly.
//! 3. Cascades (overflow → near, far → overflow/near) only move entries
//!    between levels at window boundaries, before the cursor reaches them;
//!    they never reorder anything the cursor has passed.
//!
//! The `engine_equivalence` integration test enforces this bit-for-bit
//! against the heap engine over randomized fault-injected scenarios.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rtsched::time::Nanos;

/// log2 of the near-slot width in nanoseconds (2.048 µs per slot).
const SLOT_SHIFT: u32 = 11;
/// log2 of the near-wheel slot count (1024 slots → ~2.1 ms per window).
const NEAR_BITS: u32 = 10;
/// Number of near slots.
const NEAR_SLOTS: usize = 1 << NEAR_BITS;
const NEAR_MASK: usize = NEAR_SLOTS - 1;
/// Words in the near occupancy bitmap.
const NEAR_WORDS: usize = NEAR_SLOTS / 64;
/// Number of overflow buckets, each one near-window wide (~134 ms horizon).
const OVF_SLOTS: usize = 64;
const OVF_MASK: usize = OVF_SLOTS - 1;

type Entry<T> = (Nanos, u64, T);

/// A three-level timing wheel keyed by `(time, seq)`; see the module docs.
///
/// `seq` is the caller's insertion counter and the tie-breaker for equal
/// times, exactly as in the reference `BinaryHeap<Reverse<(Nanos, u64, T)>>`
/// engine.
pub struct TimingWheel<T> {
    /// Absolute index of the next near slot to inspect. Slots strictly
    /// below the cursor are empty; late pushes for them go to `current`.
    cursor: u64,
    /// Near-window index. All level classification is relative to this;
    /// `cursor` stays within `[window << NEAR_BITS, (window+1) << NEAR_BITS]`.
    window: u64,
    near: Box<[Vec<Entry<T>>]>,
    /// One bit per near slot (by local index): set iff the slot is
    /// non-empty.
    near_bits: [u64; NEAR_WORDS],
    /// Entries across all near slots.
    near_count: usize,
    /// Bucket `c & OVF_MASK` holds entries of coarse slot `c`, for `c` in
    /// `(window, window + OVF_SLOTS]` — 64 consecutive values, so the
    /// mapping is collision-free.
    ovf: Box<[Vec<Entry<T>>]>,
    /// One bit per overflow bucket (by `coarse & OVF_MASK`).
    ovf_bits: u64,
    ovf_count: usize,
    far: BinaryHeap<Reverse<Entry<T>>>,
    /// Entries at/behind the cursor, ordered; its minimum is the global
    /// minimum whenever non-empty (see module docs).
    current: BinaryHeap<Reverse<Entry<T>>>,
    len: usize,
}

impl<T: Ord> TimingWheel<T> {
    /// Creates an empty wheel with its cursor at time zero.
    pub fn new() -> TimingWheel<T> {
        TimingWheel {
            cursor: 0,
            window: 0,
            near: (0..NEAR_SLOTS).map(|_| Vec::new()).collect(),
            near_bits: [0; NEAR_WORDS],
            near_count: 0,
            ovf: (0..OVF_SLOTS).map(|_| Vec::new()).collect(),
            ovf_bits: 0,
            ovf_count: 0,
            far: BinaryHeap::new(),
            current: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. `seq` must be the caller's monotonically
    /// increasing insertion counter (the equal-time tie-breaker).
    #[inline]
    pub fn push(&mut self, at: Nanos, seq: u64, item: T) {
        self.len += 1;
        let abs = at.as_nanos() >> SLOT_SHIFT;
        if abs < self.cursor {
            // A past (or currently-draining) slot: joins the ordered heap
            // the cursor is consuming from.
            self.current.push(Reverse((at, seq, item)));
            return;
        }
        let coarse = abs >> NEAR_BITS;
        if coarse == self.window {
            let local = abs as usize & NEAR_MASK;
            self.near[local].push((at, seq, item));
            self.near_bits[local >> 6] |= 1 << (local & 63);
            self.near_count += 1;
        } else if coarse - self.window <= OVF_SLOTS as u64 {
            self.ovf[coarse as usize & OVF_MASK].push((at, seq, item));
            self.ovf_bits |= 1 << (coarse as usize & OVF_MASK);
            self.ovf_count += 1;
        } else {
            self.far.push(Reverse((at, seq, item)));
        }
    }

    /// The earliest pending entry, without removing it.
    pub fn peek(&mut self) -> Option<&Entry<T>> {
        if self.current.is_empty() {
            // Pull the next entry in order, then stash it back in
            // `current` (which is "at/behind the cursor" by definition).
            let e = self.pop()?;
            self.len += 1;
            self.current.push(Reverse(e));
        }
        self.current.peek().map(|Reverse(e)| e)
    }

    /// Removes and returns the earliest pending entry.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        self.pop_if_at_most(Nanos(u64::MAX))
    }

    /// Removes and returns the earliest entry if its time is `<= limit`
    /// (the fused peek-then-pop the simulation loop runs per event).
    #[inline]
    pub fn pop_if_at_most(&mut self, limit: Nanos) -> Option<Entry<T>> {
        loop {
            if let Some(Reverse((at, _, _))) = self.current.peek() {
                if *at > limit {
                    return None;
                }
                let Reverse(e) = self.current.pop().expect("peeked");
                self.len -= 1;
                return Some(e);
            }
            if self.len == 0 {
                return None;
            }
            if self.near_count > 0 {
                let base = self.window << NEAR_BITS;
                let from = (self.cursor - base) as usize;
                let local =
                    next_occupied(&self.near_bits, from).expect("near_count > 0, slots empty");
                let abs = base + local as u64;
                if Nanos(abs << SLOT_SHIFT) > limit {
                    // Every remaining entry is at/after this slot's start.
                    self.cursor = abs;
                    return None;
                }
                self.cursor = abs + 1;
                self.near_bits[local >> 6] &= !(1 << (local & 63));
                let slot = &mut self.near[local];
                if slot.len() == 1 {
                    // The common case at this slot width: no ordering
                    // needed, no heap touched.
                    let e = slot.pop().expect("len checked");
                    self.near_count -= 1;
                    if e.0 <= limit {
                        self.len -= 1;
                        return Some(e);
                    }
                    // Inside the slot but beyond the limit: park it in
                    // `current` (now behind the cursor) for the next call.
                    self.current.push(Reverse(e));
                    return None;
                }
                self.near_count -= slot.len();
                for e in slot.drain(..) {
                    self.current.push(Reverse(e));
                }
                continue;
            }
            self.advance_window();
        }
    }

    /// Advances to the next window holding work, cascading overflow and
    /// far entries down. Caller guarantees the near level is empty.
    fn advance_window(&mut self) {
        let w = if self.ovf_count > 0 {
            // Occupied coarse values live in (window, window + OVF_SLOTS];
            // rotate the bitmap so bit 0 is coarse `window + 1`, then the
            // lowest set bit is the next occupied bucket.
            let start = ((self.window + 1) & OVF_MASK as u64) as u32;
            let rot = self.ovf_bits.rotate_right(start);
            self.window + 1 + rot.trailing_zeros() as u64
        } else if let Some(Reverse((at, _, _))) = self.far.peek() {
            (at.as_nanos() >> (SLOT_SHIFT + NEAR_BITS)).max(self.window + 1)
        } else {
            // Everything pending is already in `current`.
            return;
        };
        self.window = w;
        self.cursor = w << NEAR_BITS;

        // Scatter the overflow bucket owning the new window into near
        // slots.
        let b = w as usize & OVF_MASK;
        if self.ovf_bits & (1 << b) != 0 {
            self.ovf_bits &= !(1 << b);
            let bucket = &mut self.ovf[b];
            self.ovf_count -= bucket.len();
            self.near_count += bucket.len();
            for (at, seq, item) in bucket.drain(..) {
                let abs = at.as_nanos() >> SLOT_SHIFT;
                debug_assert_eq!(abs >> NEAR_BITS, w, "stale overflow entry");
                let local = abs as usize & NEAR_MASK;
                self.near[local].push((at, seq, item));
                self.near_bits[local >> 6] |= 1 << (local & 63);
            }
        }

        // Promote far entries that fell inside the (near + overflow)
        // horizon. The heap pops in time order, so this moves exactly the
        // prefix at/below the horizon.
        while let Some(Reverse((at, _, _))) = self.far.peek() {
            let coarse = at.as_nanos() >> (SLOT_SHIFT + NEAR_BITS);
            if coarse > self.window + OVF_SLOTS as u64 {
                break;
            }
            let Reverse((at, seq, item)) = self.far.pop().expect("peeked");
            if coarse == self.window {
                let local = (at.as_nanos() >> SLOT_SHIFT) as usize & NEAR_MASK;
                self.near[local].push((at, seq, item));
                self.near_bits[local >> 6] |= 1 << (local & 63);
                self.near_count += 1;
            } else {
                self.ovf[coarse as usize & OVF_MASK].push((at, seq, item));
                self.ovf_bits |= 1 << (coarse as usize & OVF_MASK);
                self.ovf_count += 1;
            }
        }
    }
}

/// Index of the first set bit at/after `from`, over a slot bitmap.
#[inline]
fn next_occupied(bits: &[u64; NEAR_WORDS], from: usize) -> Option<usize> {
    if from >= NEAR_SLOTS {
        return None;
    }
    let mut w = from >> 6;
    let mut word = bits[w] & (!0u64 << (from & 63));
    loop {
        if word != 0 {
            return Some((w << 6) + word.trailing_zeros() as usize);
        }
        w += 1;
        if w >= NEAR_WORDS {
            return None;
        }
        word = bits[w];
    }
}

impl<T: Ord> Default for TimingWheel<T> {
    fn default() -> TimingWheel<T> {
        TimingWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Pops everything and checks the stream is exactly the reference
    /// heap's.
    fn drain_and_compare(wheel: &mut TimingWheel<u32>, reference: &mut Vec<(Nanos, u64, u32)>) {
        reference.sort_unstable();
        let mut got = Vec::new();
        while let Some(e) = wheel.pop() {
            got.push(e);
        }
        assert_eq!(&got, reference);
        assert!(wheel.is_empty());
    }

    #[test]
    fn empty_wheel_pops_nothing() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.pop(), None);
        assert_eq!(w.peek(), None);
    }

    #[test]
    fn single_level_ordering() {
        let mut w = TimingWheel::new();
        let mut reference = Vec::new();
        // All within the first near window, deliberately out of order.
        for (i, &ns) in [5000u64, 100, 2_000_000, 9999, 100, 0, 2047]
            .iter()
            .enumerate()
        {
            let e = (Nanos(ns), i as u64, i as u32);
            w.push(e.0, e.1, e.2);
            reference.push(e);
        }
        drain_and_compare(&mut w, &mut reference);
    }

    #[test]
    fn equal_times_pop_in_seq_order() {
        let mut w = TimingWheel::new();
        for seq in 0..32u64 {
            w.push(Nanos(777), seq, seq as u32);
        }
        let mut prev = None;
        while let Some((at, seq, _)) = w.pop() {
            assert_eq!(at, Nanos(777));
            assert!(prev.is_none_or(|p| p < seq), "seq order broken");
            prev = Some(seq);
        }
    }

    #[test]
    fn entries_span_all_three_levels() {
        let mut w = TimingWheel::new();
        let mut reference = Vec::new();
        let cases = [
            Nanos(12),                   // near
            Nanos::from_millis(1),       // near, later slot
            Nanos::from_millis(40),      // overflow
            Nanos::from_millis(120),     // overflow, far bucket
            Nanos::from_millis(5_000),   // far heap
            Nanos::from_millis(120_000), // far heap, deep tail
        ];
        for (i, &at) in cases.iter().enumerate() {
            w.push(at, i as u64, i as u32);
            reference.push((at, i as u64, i as u32));
        }
        drain_and_compare(&mut w, &mut reference);
    }

    #[test]
    fn pushes_behind_the_cursor_stay_ordered() {
        let mut w = TimingWheel::new();
        w.push(Nanos::from_millis(1), 0, 0);
        assert_eq!(w.pop(), Some((Nanos::from_millis(1), 0, 0)));
        // The cursor has passed the early slots; a push for an already
        // drained region must still come out before later work.
        w.push(Nanos::from_millis(2), 2, 2);
        w.push(Nanos(500), 1, 1); // far behind the cursor
        assert_eq!(w.pop(), Some((Nanos(500), 1, 1)));
        assert_eq!(w.pop(), Some((Nanos::from_millis(2), 2, 2)));
    }

    #[test]
    fn pop_if_at_most_respects_the_limit() {
        let mut w = TimingWheel::new();
        w.push(Nanos(100), 0, 0);
        w.push(Nanos(200), 1, 1);
        assert_eq!(w.pop_if_at_most(Nanos(50)), None);
        assert_eq!(w.pop_if_at_most(Nanos(150)), Some((Nanos(100), 0, 0)));
        assert_eq!(w.pop_if_at_most(Nanos(150)), None);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_if_at_most(Nanos(200)), Some((Nanos(200), 1, 1)));
        assert!(w.is_empty());
    }

    #[test]
    fn limit_inside_an_occupied_slot_leaves_later_entries() {
        let mut w = TimingWheel::new();
        // Same slot (width 2048 ns): one before the limit, one after.
        w.push(Nanos(2100), 0, 0);
        w.push(Nanos(2500), 1, 1);
        assert_eq!(w.pop_if_at_most(Nanos(2200)), Some((Nanos(2100), 0, 0)));
        assert_eq!(w.pop_if_at_most(Nanos(2200)), None);
        assert_eq!(w.pop_if_at_most(Nanos(2500)), Some((Nanos(2500), 1, 1)));
        // Single-entry slot beyond the limit is parked, not lost.
        w.push(Nanos(4097), 2, 2);
        assert_eq!(w.pop_if_at_most(Nanos(4096)), None);
        assert_eq!(w.pop(), Some((Nanos(4097), 2, 2)));
    }

    /// The property the engine swap rests on: against a uniform random
    /// mix of near/overflow/far times with interleaved pushes and pops,
    /// the wheel's pop stream equals a sorted reference, bit for bit.
    #[test]
    fn randomized_interleaved_matches_reference() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut w = TimingWheel::new();
            let mut reference: Vec<(Nanos, u64, u32)> = Vec::new();
            let mut popped = Vec::new();
            let mut seq = 0u64;
            let mut floor = Nanos::ZERO; // pops are monotone; pushes must be >= last pop
            for step in 0..4000 {
                if rng.gen_bool(0.6) || w.is_empty() {
                    // Mix of horizons: mostly near, some overflow, some far.
                    let span: u64 = match rng.gen_range(0..10u32) {
                        0..=6 => rng.gen_range(0..2_000_000u64),   // < 2 ms
                        7 | 8 => rng.gen_range(0..130_000_000u64), // < 130 ms
                        _ => rng.gen_range(0..60_000_000_000u64),  // < 60 s
                    };
                    let at = floor + Nanos(span);
                    w.push(at, seq, step as u32);
                    reference.push((at, seq, step as u32));
                    seq += 1;
                } else {
                    let got = w.pop().expect("wheel non-empty");
                    floor = got.0;
                    popped.push(got);
                }
            }
            while let Some(e) = w.pop() {
                popped.push(e);
            }
            reference.sort_unstable();
            // Interleaved pops must respect global order among the events
            // present at pop time; since pushes never go below the last
            // pop's time, the final stream is exactly the sorted reference.
            assert_eq!(popped, reference, "seed {seed}");
        }
    }

    /// Boundary audit for the level-classification arithmetic: pushes at
    /// the exact first/last nanosecond of every level edge (near ↔
    /// overflow, overflow ↔ far), including the coarse slot that aliases
    /// bucket `window & OVF_MASK` (coarse = window + OVF_SLOTS — legal
    /// because the bucket range `(window, window + OVF_SLOTS]` never
    /// contains `window` itself), must drain exactly like the reference
    /// heap, equal-time ties included.
    #[test]
    fn level_edge_nanoseconds_match_the_reference_heap() {
        const WINDOW: u64 = 1 << (SLOT_SHIFT + NEAR_BITS); // one near window
        const HORIZON: u64 = (OVF_SLOTS as u64 + 1) * WINDOW; // near + overflow
        let mut w = TimingWheel::new();
        let mut reference = Vec::new();
        let times = [
            0,                // first near slot
            WINDOW - 1,       // last near nanosecond
            WINDOW,           // first overflow nanosecond (coarse = 1)
            WINDOW + 1,       // one past the edge
            HORIZON - WINDOW, // first ns of coarse window + OVF_SLOTS (aliased bucket)
            HORIZON - 1,      // last ns inside the overflow horizon
            HORIZON,          // first far-heap nanosecond
            HORIZON + 1,      // one past the far horizon
            2 * HORIZON - 1,  // deep tail, one ns before a window multiple
            2 * HORIZON,      // deep tail on the multiple itself
        ];
        let mut seq = 0u64;
        for &ns in &times {
            // Two entries per boundary: equal times must tie-break by seq
            // across whatever levels classification put them in.
            for _ in 0..2 {
                w.push(Nanos(ns), seq, ns as u32);
                reference.push((Nanos(ns), seq, ns as u32));
                seq += 1;
            }
        }
        drain_and_compare(&mut w, &mut reference);
    }

    /// Far-to-overflow promotion at the exact horizon edge, from an
    /// unaligned window: when the wheel jumps to a far event's window `w`,
    /// far entries at coarse `w + OVF_SLOTS` must land in bucket
    /// `(w + OVF_SLOTS) & OVF_MASK` (the aliased one) while coarse
    /// `w + OVF_SLOTS + 1` must stay in the far heap — off-by-one in
    /// either direction would drop or misorder the edge events.
    #[test]
    fn promotion_at_the_exact_far_horizon_edge() {
        const WINDOW: u64 = 1 << (SLOT_SHIFT + NEAR_BITS);
        let mut w = TimingWheel::new();
        let mut reference = Vec::new();
        // 101 is deliberately not a multiple of OVF_SLOTS, so the rotated
        // bitmap scan and the `& OVF_MASK` bucketing both start mid-cycle.
        let base = 101 * WINDOW + 12_345;
        let edge = (101 + OVF_SLOTS as u64) * WINDOW;
        let cases = [
            base,              // becomes the new window via the far peek
            edge - 1,          // last coarse slot inside the promoted horizon
            edge,              // exactly at coarse window + OVF_SLOTS
            edge + WINDOW - 1, // same coarse slot, last nanosecond
            edge + WINDOW,     // one coarse slot beyond: must stay far
        ];
        for (i, &ns) in cases.iter().enumerate() {
            w.push(Nanos(ns), i as u64, i as u32);
            reference.push((Nanos(ns), i as u64, i as u32));
        }
        drain_and_compare(&mut w, &mut reference);
    }

    #[test]
    fn steady_state_reuses_slot_capacity() {
        let mut w = TimingWheel::new();
        let mut now = Nanos::ZERO;
        // Sustained traffic across many windows: slot vectors must be
        // reused (drain keeps capacity) rather than grown anew.
        for seq in 0..10_000 {
            w.push(now + Nanos(5000), seq, 1u32);
            now = w.pop().unwrap().0;
        }
        assert!(w.is_empty());
        let with_capacity = w.near.iter().filter(|s| s.capacity() > 0).count();
        assert!(with_capacity > 0, "slots never retained capacity");
    }
}
