//! Measurement infrastructure: per-operation overhead samples and per-vCPU
//! service/delay accounting.
//!
//! [`OpStats`] regenerates the paper's Tables 1–2 (mean schedule, wakeup,
//! and migrate/de-schedule overheads); [`VcpuStats`] provides the
//! scheduling-delay figures behind Fig. 5 (maximum delay while runnable)
//! and general service accounting used by throughput experiments.

use serde::{Deserialize, Serialize};

use rtsched::time::Nanos;

use crate::sched::VcpuId;

/// The three scheduler operations the paper traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Making a scheduling decision (`schedule`).
    Schedule,
    /// Processing a wake-up (`wakeup`).
    Wakeup,
    /// Post-de-schedule work, including migration hand-off ("Migrate" in
    /// the paper's tables).
    Deschedule,
}

impl OpKind {
    /// All operation kinds, in the paper's table row order.
    pub const ALL: [OpKind; 3] = [OpKind::Schedule, OpKind::Wakeup, OpKind::Deschedule];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Schedule => "Schedule",
            OpKind::Wakeup => "Wakeup",
            OpKind::Deschedule => "Migrate",
        }
    }
}

/// Streaming accumulator for one operation kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpAccumulator {
    /// Number of samples.
    pub count: u64,
    /// Sum of sample costs.
    pub total: Nanos,
    /// Largest single sample.
    pub max: Nanos,
}

impl OpAccumulator {
    /// Records one sample.
    pub fn record(&mut self, cost: Nanos) {
        self.count += 1;
        self.total += cost;
        self.max = self.max.max(cost);
    }

    /// Mean cost in microseconds (the paper's unit).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total.as_nanos() as f64 / self.count as f64 / 1e3
        }
    }
}

/// Overhead samples for all three operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStats {
    schedule: OpAccumulator,
    wakeup: OpAccumulator,
    deschedule: OpAccumulator,
}

impl OpStats {
    /// Records a sample for `kind`.
    pub fn record(&mut self, kind: OpKind, cost: Nanos) {
        self.get_mut(kind).record(cost);
    }

    /// The accumulator for `kind`.
    pub fn get(&self, kind: OpKind) -> &OpAccumulator {
        match kind {
            OpKind::Schedule => &self.schedule,
            OpKind::Wakeup => &self.wakeup,
            OpKind::Deschedule => &self.deschedule,
        }
    }

    fn get_mut(&mut self, kind: OpKind) -> &mut OpAccumulator {
        match kind {
            OpKind::Schedule => &mut self.schedule,
            OpKind::Wakeup => &mut self.wakeup,
            OpKind::Deschedule => &mut self.deschedule,
        }
    }

    /// Total scheduler CPU time across all operations.
    pub fn total_overhead(&self) -> Nanos {
        self.schedule.total + self.wakeup.total + self.deschedule.total
    }

    fn absorb(&mut self, other: &OpStats) {
        for kind in OpKind::ALL {
            let o = other.get(kind);
            let s = self.get_mut(kind);
            s.count += o.count;
            s.total += o.total;
            s.max = s.max.max(o.max);
        }
    }
}

/// Per-vCPU service and delay accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcpuStats {
    /// Total CPU service received.
    pub service: Nanos,
    /// Number of dispatches.
    pub dispatches: u64,
    /// Number of wake-ups.
    pub wakeups: u64,
    /// Scheduling-delay samples: time from becoming runnable (or being
    /// preempted while runnable) to the next dispatch.
    pub delay_count: u64,
    /// Sum of delays (for the mean).
    pub delay_total: Nanos,
    /// Largest single delay — the paper's "maximum scheduling delay".
    pub delay_max: Nanos,
    /// Bursts of this vCPU that overran their declared demand (fault
    /// injection) — the attribution a quarantine policy keys off.
    pub overruns: u64,
}

impl VcpuStats {
    /// Records a dispatch-delay sample.
    pub fn record_delay(&mut self, delay: Nanos) {
        self.delay_count += 1;
        self.delay_total += delay;
        self.delay_max = self.delay_max.max(delay);
    }

    /// Mean scheduling delay.
    pub fn mean_delay(&self) -> Nanos {
        if self.delay_count == 0 {
            Nanos::ZERO
        } else {
            self.delay_total / self.delay_count
        }
    }

    fn absorb(&mut self, other: &VcpuStats) {
        self.service += other.service;
        self.dispatches += other.dispatches;
        self.wakeups += other.wakeups;
        self.delay_count += other.delay_count;
        self.delay_total += other.delay_total;
        self.delay_max = self.delay_max.max(other.delay_max);
        self.overruns += other.overruns;
    }
}

/// A compact logarithmic histogram of scheduling delays.
///
/// Bucket `i` counts delays in `[2^i, 2^(i+1))` ns (bucket 0 additionally
/// holds zero). Power-of-two resolution is coarse (a factor of two), but
/// scheduling-delay *scales* — microseconds vs. a period vs. an accounting
/// interval — differ by orders of magnitude, which is what the paper's
/// figures distinguish.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayHist {
    buckets: Vec<u64>,
    count: u64,
}

impl DelayHist {
    const BUCKETS: usize = 44; // up to ~17,592 s

    /// Records one delay sample.
    pub fn record(&mut self, delay: Nanos) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; DelayHist::BUCKETS];
        }
        let idx = (64 - delay.as_nanos().leading_zeros() as usize)
            .saturating_sub(1)
            .min(DelayHist::BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound of the bucket containing quantile `q` (0 for no data).
    pub fn quantile_upper(&self, q: f64) -> Nanos {
        if self.count == 0 {
            return Nanos::ZERO;
        }
        let rank = ((q * self.count as f64).ceil().max(1.0) as u64).min(self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Nanos((1u64 << (i + 1)) - 1);
            }
        }
        Nanos(u64::MAX)
    }

    /// Samples at or above `threshold` (tail mass).
    pub fn count_at_least(&self, threshold: Nanos) -> u64 {
        let idx = (64 - threshold.as_nanos().leading_zeros() as usize)
            .saturating_sub(1)
            .min(DelayHist::BUCKETS - 1);
        self.buckets.iter().skip(idx).sum()
    }

    fn absorb(&mut self, other: &DelayHist) {
        if other.count == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; DelayHist::BUCKETS];
        }
        for (s, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *s += o;
        }
        self.count += other.count;
    }
}

/// Counters a runtime recovery loop (an SLA guardian) reports back into
/// the simulation record, so fault experiments carry both the injected
/// damage and the repairs in one artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// SLA violations observed (dispatch latency above a vCPU's bound).
    pub violations_seen: u64,
    /// Evacuation replans triggered by core outages or returns.
    pub evacuations: u64,
    /// Table installs retried after a mid-switch interruption.
    pub install_retries: u64,
    /// Guests demoted for persistently overrunning their declared demand.
    pub quarantines: u64,
    /// VMs re-placed onto another host after a host crash (fleet control
    /// plane; zero for single-host runs).
    pub evacuated_vms: u64,
    /// Evacuation placement attempts that failed and were retried with
    /// backoff (fleet control plane).
    pub evacuation_retries: u64,
    /// VM admissions accepted by the placement front-end (fleet).
    pub admissions: u64,
    /// VM admissions shed with a typed rejection under backpressure
    /// (fleet; never a panic, never a lost VM).
    pub admission_rejections: u64,
    /// Evacuated VMs whose retry budget ran out and were parked awaiting
    /// capacity (still owned, retried at a slower cadence; fleet).
    pub parked_vms: u64,
}

/// Dense-phase batching accounting (the hybrid engine's fast path; see
/// `Sim` in [`crate::sim`]). Excluded from engine-equivalence comparisons:
/// reference engines never batch, so these counters describe *how* events
/// were processed, not *what* happened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct BatchStats {
    /// Events advanced through the batched inner loop instead of the
    /// event-at-a-time engine.
    pub batched_events: u64,
    /// Dense phases entered.
    pub batch_entries: u64,
    /// Dense phases exited (every entry exits; kept separately so a crash
    /// mid-batch would be visible as an imbalance).
    pub batch_exits: u64,
    /// Exits because the batch reached the run horizon (the normal case).
    pub fallback_horizon: u64,
    /// Exits because a guest blocked mid-batch (the runnable set changed).
    pub fallback_block: u64,
    /// Entry attempts abandoned because the scheduler declined to produce
    /// a dense window (unsettled tables, level-2 work pending, ...).
    pub fallback_window: u64,
}

/// Partitioned-engine (conservative per-socket PDES) accounting. Like
/// [`BatchStats`], these describe *how* events were processed, not *what*
/// happened, and are excluded from engine-equivalence comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct PdesStats {
    /// `run_until` calls that actually ran partitioned (all guards held).
    pub partitioned_runs: u64,
    /// Conservative lookahead windows advanced (one per barrier across all
    /// partitions).
    pub windows_advanced: u64,
    /// Cross-socket events exchanged through the per-pair mailboxes.
    pub mailbox_events: u64,
    /// Partition-windows in which a partition had nothing to do before the
    /// lookahead horizon (it stalled waiting on its peers).
    pub lookahead_stalls: u64,
    /// Declines: the machine has a single socket (nothing to partition).
    pub declined_single_socket: u64,
    /// Declines: a fault engine is armed (host-level event injection is
    /// inherently cross-partition).
    pub declined_faults_armed: u64,
    /// Declines: the scheduler does not implement partitioned splitting.
    pub declined_scheduler_opt_out: u64,
    /// Declines: a table install is staged or not yet adopted everywhere.
    pub declined_tables_unsettled: u64,
    /// Declines: an SLA monitor is attached (global observation order).
    pub declined_monitor_attached: u64,
    /// Declines: a vCPU's placement spans sockets.
    pub declined_cross_socket_placement: u64,
    /// Declines: zero cross-socket IPI latency leaves no lookahead.
    pub declined_no_lookahead: u64,
}

impl PdesStats {
    /// Adds `other`'s counters into this record (all fields are additive).
    /// Public so multi-simulator harnesses (e.g. the fleet control plane)
    /// can aggregate per-host counters into one artifact row.
    pub fn absorb(&mut self, other: &PdesStats) {
        self.partitioned_runs += other.partitioned_runs;
        self.windows_advanced += other.windows_advanced;
        self.mailbox_events += other.mailbox_events;
        self.lookahead_stalls += other.lookahead_stalls;
        self.declined_single_socket += other.declined_single_socket;
        self.declined_faults_armed += other.declined_faults_armed;
        self.declined_scheduler_opt_out += other.declined_scheduler_opt_out;
        self.declined_tables_unsettled += other.declined_tables_unsettled;
        self.declined_monitor_attached += other.declined_monitor_attached;
        self.declined_cross_socket_placement += other.declined_cross_socket_placement;
        self.declined_no_lookahead += other.declined_no_lookahead;
    }

    /// Total declined `run_until` calls, by any reason.
    pub fn declines(&self) -> u64 {
        self.declined_single_socket
            + self.declined_faults_armed
            + self.declined_scheduler_opt_out
            + self.declined_tables_unsettled
            + self.declined_monitor_attached
            + self.declined_cross_socket_placement
            + self.declined_no_lookahead
    }
}

/// Whole-simulation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Scheduler operation overheads.
    pub ops: OpStats,
    /// Per-vCPU accounting, indexed by vCPU id.
    pub vcpus: Vec<VcpuStats>,
    /// Per-vCPU scheduling-delay distributions, indexed by vCPU id.
    pub delay_hists: Vec<DelayHist>,
    /// Per-core busy time (guest execution only, not overhead).
    pub core_busy: Vec<Nanos>,
    /// Total IPIs sent.
    pub ipis: u64,
    /// Total context switches performed.
    pub context_switches: u64,
    /// Per-core wall time stolen by injected platform interference (see
    /// [`crate::fault`]).
    pub stolen_time: Vec<Nanos>,
    /// IPIs lost by fault injection (each is later re-delivered).
    pub ipis_lost: u64,
    /// Guest bursts that overran their declared demand (fault injection).
    pub overruns: u64,
    /// Total extra demand added by overruns.
    pub overrun_time: Nanos,
    /// Trace records dropped by the bounded trace ring buffer.
    pub trace_dropped: u64,
    /// Core outages injected (each takes one core out of service for a
    /// bounded interval).
    pub core_offline_events: u64,
    /// Per-core wall time spent out of service.
    pub core_offline_time: Vec<Nanos>,
    /// Runtime-recovery accounting, filled in by a control loop driving
    /// the simulation (the simulator itself never recovers anything).
    pub recovery: RecoveryStats,
    /// Dense-phase batching accounting (zero on the reference engines).
    #[serde(default)]
    pub batch: BatchStats,
    /// Partitioned-engine accounting (zero on the reference engines).
    #[serde(default)]
    pub pdes: PdesStats,
}

impl SimStats {
    /// Creates statistics for `n_cores` cores (vCPU slots grow on demand).
    pub fn new(n_cores: usize) -> SimStats {
        SimStats {
            core_busy: vec![Nanos::ZERO; n_cores],
            stolen_time: vec![Nanos::ZERO; n_cores],
            core_offline_time: vec![Nanos::ZERO; n_cores],
            ..SimStats::default()
        }
    }

    /// The stats slot for `vcpu`, growing the vector as needed.
    pub fn vcpu_mut(&mut self, vcpu: VcpuId) -> &mut VcpuStats {
        let idx = vcpu.0 as usize;
        if self.vcpus.len() <= idx {
            self.vcpus.resize_with(idx + 1, VcpuStats::default);
        }
        &mut self.vcpus[idx]
    }

    /// The stats of `vcpu` (default-empty if never touched).
    pub fn vcpu(&self, vcpu: VcpuId) -> VcpuStats {
        self.vcpus.get(vcpu.0 as usize).copied().unwrap_or_default()
    }

    /// Records a dispatch-delay sample for `vcpu` (summary plus
    /// distribution).
    pub fn record_delay(&mut self, vcpu: VcpuId, delay: Nanos) {
        self.vcpu_mut(vcpu).record_delay(delay);
        let idx = vcpu.0 as usize;
        if self.delay_hists.len() <= idx {
            self.delay_hists.resize_with(idx + 1, DelayHist::default);
        }
        self.delay_hists[idx].record(delay);
    }

    /// The delay distribution of `vcpu` (empty if it never waited).
    pub fn delay_hist(&self, vcpu: VcpuId) -> DelayHist {
        self.delay_hists
            .get(vcpu.0 as usize)
            .cloned()
            .unwrap_or_default()
    }

    /// Merges a partition's statistics into this (whole-simulation) record.
    ///
    /// Everything is additive except the maxima (maxed) and
    /// `trace_dropped`, which the owning simulation recomputes from its own
    /// ring after partition traces are spliced back.
    pub(crate) fn absorb(&mut self, other: &SimStats) {
        self.ops.absorb(&other.ops);
        if self.vcpus.len() < other.vcpus.len() {
            self.vcpus
                .resize_with(other.vcpus.len(), VcpuStats::default);
        }
        for (s, o) in self.vcpus.iter_mut().zip(&other.vcpus) {
            s.absorb(o);
        }
        if self.delay_hists.len() < other.delay_hists.len() {
            self.delay_hists
                .resize_with(other.delay_hists.len(), DelayHist::default);
        }
        for (s, o) in self.delay_hists.iter_mut().zip(&other.delay_hists) {
            s.absorb(o);
        }
        for (s, o) in self.core_busy.iter_mut().zip(&other.core_busy) {
            *s += *o;
        }
        for (s, o) in self.stolen_time.iter_mut().zip(&other.stolen_time) {
            *s += *o;
        }
        for (s, o) in self
            .core_offline_time
            .iter_mut()
            .zip(&other.core_offline_time)
        {
            *s += *o;
        }
        self.ipis += other.ipis;
        self.context_switches += other.context_switches;
        self.ipis_lost += other.ipis_lost;
        self.overruns += other.overruns;
        self.overrun_time += other.overrun_time;
        self.core_offline_events += other.core_offline_events;
        self.recovery.violations_seen += other.recovery.violations_seen;
        self.recovery.evacuations += other.recovery.evacuations;
        self.recovery.install_retries += other.recovery.install_retries;
        self.recovery.quarantines += other.recovery.quarantines;
        self.recovery.evacuated_vms += other.recovery.evacuated_vms;
        self.recovery.evacuation_retries += other.recovery.evacuation_retries;
        self.recovery.admissions += other.recovery.admissions;
        self.recovery.admission_rejections += other.recovery.admission_rejections;
        self.recovery.parked_vms += other.recovery.parked_vms;
        self.batch.batched_events += other.batch.batched_events;
        self.batch.batch_entries += other.batch.batch_entries;
        self.batch.batch_exits += other.batch.batch_exits;
        self.batch.fallback_horizon += other.batch.fallback_horizon;
        self.batch.fallback_block += other.batch.fallback_block;
        self.batch.fallback_window += other.batch.fallback_window;
        self.pdes.absorb(&other.pdes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Nanos {
        Nanos::from_micros(v)
    }

    #[test]
    fn accumulator_math() {
        let mut a = OpAccumulator::default();
        a.record(us(2));
        a.record(us(4));
        assert_eq!(a.count, 2);
        assert_eq!(a.total, us(6));
        assert_eq!(a.max, us(4));
        assert!((a.mean_us() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator_mean_is_zero() {
        assert_eq!(OpAccumulator::default().mean_us(), 0.0);
    }

    #[test]
    fn op_stats_routing() {
        let mut s = OpStats::default();
        s.record(OpKind::Schedule, us(1));
        s.record(OpKind::Wakeup, us(2));
        s.record(OpKind::Deschedule, us(3));
        assert_eq!(s.get(OpKind::Schedule).total, us(1));
        assert_eq!(s.get(OpKind::Wakeup).total, us(2));
        assert_eq!(s.get(OpKind::Deschedule).total, us(3));
        assert_eq!(s.total_overhead(), us(6));
    }

    #[test]
    fn vcpu_delay_tracking() {
        let mut v = VcpuStats::default();
        v.record_delay(us(10));
        v.record_delay(us(30));
        assert_eq!(v.delay_max, us(30));
        assert_eq!(v.mean_delay(), us(20));
    }

    #[test]
    fn sim_stats_grow_on_demand() {
        let mut s = SimStats::new(2);
        s.vcpu_mut(VcpuId(5)).service += us(1);
        assert_eq!(s.vcpus.len(), 6);
        assert_eq!(s.vcpu(VcpuId(5)).service, us(1));
        assert_eq!(s.vcpu(VcpuId(9)).service, Nanos::ZERO);
    }

    #[test]
    fn delay_hist_buckets_by_magnitude() {
        let mut h = DelayHist::default();
        h.record(Nanos(0));
        h.record(Nanos(1_000)); // ~2^10
        h.record(Nanos(1_000_000)); // ~2^20
        h.record(Nanos(20_000_000)); // ~2^24
        assert_eq!(h.count(), 4);
        // Median sits at the microsecond-scale bucket.
        let p50 = h.quantile_upper(0.5);
        assert!(p50 >= Nanos(1_000) && p50 < Nanos(4_000), "{p50}");
        // The max bucket bounds the largest sample within 2x.
        let p100 = h.quantile_upper(1.0);
        assert!(p100 >= Nanos(20_000_000) && p100 < Nanos(67_108_864));
        // Tail mass above 1 ms: two samples.
        assert_eq!(h.count_at_least(Nanos(1_000_000)), 2);
    }

    #[test]
    fn empty_delay_hist() {
        let h = DelayHist::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper(0.99), Nanos::ZERO);
        assert_eq!(h.count_at_least(Nanos(1)), 0);
    }

    #[test]
    fn sim_stats_delay_recording_feeds_both_views() {
        let mut s = SimStats::new(1);
        s.record_delay(VcpuId(2), Nanos(5_000));
        s.record_delay(VcpuId(2), Nanos(15_000_000));
        assert_eq!(s.vcpu(VcpuId(2)).delay_count, 2);
        assert_eq!(s.vcpu(VcpuId(2)).delay_max, Nanos(15_000_000));
        assert_eq!(s.delay_hist(VcpuId(2)).count(), 2);
        assert_eq!(s.delay_hist(VcpuId(0)).count(), 0);
    }

    #[test]
    fn op_labels_match_paper_rows() {
        assert_eq!(OpKind::Schedule.label(), "Schedule");
        assert_eq!(OpKind::Wakeup.label(), "Wakeup");
        assert_eq!(OpKind::Deschedule.label(), "Migrate");
    }
}
