//! NIC transmit-path model: a rate-limited ring buffer.
//!
//! The paper's throughput experiments (Sec. 7.4) give each VM an SR-IOV
//! virtual function on a 10 Gbit/s link, bypassing dom0. The property that
//! matters to the scheduler comparison is Sec. 7.5's observation about
//! table-driven scheduling: *"when a VM's slot is active, it is able to
//! enqueue packets in the network interface's ring buffer, but when the VM
//! is preempted for a relatively long time, the network device drains its
//! buffer and then idles"* — wasting link capacity that a dynamic scheduler
//! (which runs the VM in many short slices) can use. This is why Credit
//! beats Tableau for capped 1 MiB transfers (Fig. 7 g–i) while Tableau wins
//! for CPU-bound file sizes.
//!
//! [`TxRing`] captures exactly that: a FIFO drained at a constant line
//! rate, with a finite capacity bounding how much work a VM can bank before
//! being preempted. It is pure arithmetic over a `busy_until` watermark, so
//! it needs no event-queue integration.

use rtsched::time::Nanos;

/// A constant-rate transmit ring with finite capacity.
#[derive(Debug, Clone)]
pub struct TxRing {
    /// Drain rate in bytes per second.
    rate_bytes_per_sec: u64,
    /// Ring capacity in bytes.
    capacity: u64,
    /// Absolute time at which everything enqueued so far has left the wire.
    busy_until: Nanos,
    /// Total bytes ever accepted.
    total_accepted: u64,
}

/// 10 Gbit/s in bytes per second (the raw link rate).
pub const TEN_GBIT: u64 = 10_000_000_000 / 8;

/// Effective per-VF transmit rate: ~1.2 Gbit/s.
///
/// A single SR-IOV virtual function on a shared 10 G port does not see
/// line rate: VF round-robin arbitration across 48 configured functions,
/// per-descriptor DMA overheads, and 1500-byte framing put the sustained
/// single-VF rate at roughly an order of magnitude below the link. This is
/// the rate at which the paper's 1 MiB transfers become
/// transmission-limited — the precondition for Sec. 7.5's observation that
/// a table-driven scheduler under-utilizes the device.
pub const SRIOV_VF_RATE: u64 = 150_000_000;

impl TxRing {
    /// Creates a ring with the given drain rate and capacity.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub fn new(rate_bytes_per_sec: u64, capacity: u64) -> TxRing {
        assert!(rate_bytes_per_sec > 0, "zero-rate NIC");
        TxRing {
            rate_bytes_per_sec,
            capacity,
            busy_until: Nanos::ZERO,
            total_accepted: 0,
        }
    }

    /// An SR-IOV virtual function on a 10 Gbit/s port with a 512 KiB ring —
    /// the paper's hardware class (see [`SRIOV_VF_RATE`] for why the
    /// effective rate is below line rate).
    pub fn sriov_10g() -> TxRing {
        TxRing::new(SRIOV_VF_RATE, 512 * 1024)
    }

    /// Wire time for `bytes` at this ring's rate (rounded up).
    pub fn wire_time(&self, bytes: u64) -> Nanos {
        Nanos((bytes as u128 * 1_000_000_000).div_ceil(self.rate_bytes_per_sec as u128) as u64)
    }

    /// Bytes still queued (in flight) at `now`.
    pub fn backlog(&self, now: Nanos) -> u64 {
        let left = self.busy_until.saturating_sub(now);
        // backlog = remaining wire time * rate (floor).
        ((left.as_nanos() as u128 * self.rate_bytes_per_sec as u128) / 1_000_000_000) as u64
    }

    /// Free ring space at `now`.
    pub fn free_space(&self, now: Nanos) -> u64 {
        self.capacity.saturating_sub(self.backlog(now))
    }

    /// Offers `bytes` for transmission at `now`.
    ///
    /// Returns `(accepted, completion)`: how many bytes fit in the ring and
    /// the absolute time the *accepted* bytes finish transmitting. When
    /// `accepted < bytes`, the caller must wait for space (e.g. block until
    /// [`TxRing::time_for_space`]) and re-offer the remainder.
    pub fn offer(&mut self, now: Nanos, bytes: u64) -> (u64, Nanos) {
        let accepted = bytes.min(self.free_space(now));
        if accepted == 0 {
            return (0, self.busy_until);
        }
        let start = self.busy_until.max(now);
        self.busy_until = start + self.wire_time(accepted);
        self.total_accepted += accepted;
        (accepted, self.busy_until)
    }

    /// Earliest time at which at least `bytes` of ring space are free.
    ///
    /// Returns `now` if space is already available; capacity-exceeding
    /// requests are clamped to "ring fully drained".
    pub fn time_for_space(&self, now: Nanos, bytes: u64) -> Nanos {
        let bytes = bytes.min(self.capacity);
        // Backlog can exceed capacity by a byte or two transiently: wire
        // times round up while backlog rounds down, so consecutive offers
        // can overshoot the estimate. Saturate rather than underflow.
        let free = self.capacity.saturating_sub(self.backlog(now));
        if free >= bytes {
            return now;
        }
        let must_drain = bytes - free;
        now + self.wire_time(must_drain)
    }

    /// Absolute time the ring becomes (or became) idle.
    pub fn idle_at(&self) -> Nanos {
        self.busy_until
    }

    /// Total bytes accepted so far (throughput accounting).
    pub fn total_accepted(&self) -> u64 {
        self.total_accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> TxRing {
        // 1 byte per ns (1 GB/s), capacity 1000 bytes: easy arithmetic.
        TxRing::new(1_000_000_000, 1000)
    }

    #[test]
    fn wire_time_rounds_up() {
        let r = TxRing::new(3_000_000_000, 1000); // 3 bytes/ns
        assert_eq!(r.wire_time(9), Nanos(3));
        assert_eq!(r.wire_time(10), Nanos(4));
    }

    #[test]
    fn offer_into_empty_ring() {
        let mut r = ring();
        let (acc, done) = r.offer(Nanos(100), 500);
        assert_eq!(acc, 500);
        assert_eq!(done, Nanos(600));
        assert_eq!(r.backlog(Nanos(100)), 500);
        assert_eq!(r.backlog(Nanos(350)), 250);
        assert_eq!(r.backlog(Nanos(600)), 0);
    }

    #[test]
    fn offers_queue_fifo() {
        let mut r = ring();
        let (_, d1) = r.offer(Nanos(0), 400);
        assert_eq!(d1, Nanos(400));
        let (acc, d2) = r.offer(Nanos(100), 400);
        assert_eq!(acc, 400);
        // Second batch starts after the first finishes.
        assert_eq!(d2, Nanos(800));
    }

    #[test]
    fn full_ring_rejects_overflow() {
        let mut r = ring();
        let (acc, _) = r.offer(Nanos(0), 1500);
        assert_eq!(acc, 1000); // capacity
        let (acc2, _) = r.offer(Nanos(0), 100);
        assert_eq!(acc2, 0);
        // Space frees as the ring drains.
        assert_eq!(r.free_space(Nanos(250)), 250);
        let (acc3, done) = r.offer(Nanos(250), 300);
        assert_eq!(acc3, 250);
        assert_eq!(done, Nanos(1250));
    }

    #[test]
    fn time_for_space_accounts_for_drain() {
        let mut r = ring();
        r.offer(Nanos(0), 1000);
        assert_eq!(r.time_for_space(Nanos(0), 300), Nanos(300));
        assert_eq!(r.time_for_space(Nanos(100), 300), Nanos(300));
        // Already free.
        assert_eq!(r.time_for_space(Nanos(900), 100), Nanos(900));
        // Clamped to capacity.
        assert_eq!(r.time_for_space(Nanos(0), 5000), Nanos(1000));
    }

    #[test]
    fn ring_idles_after_drain_the_burst_effect() {
        // The Sec. 7.5 effect: a VM banks work, is preempted for 10x the
        // drain time, and the NIC idles — capacity is lost forever.
        let mut r = ring();
        r.offer(Nanos(0), 1000);
        assert_eq!(r.idle_at(), Nanos(1000));
        // VM returns at t=10000: the link moved 1000 bytes in 10000 ns even
        // though it could have moved 10000.
        let (_, done) = r.offer(Nanos(10_000), 1000);
        assert_eq!(done, Nanos(11_000));
        assert_eq!(r.total_accepted(), 2000);
    }

    #[test]
    fn rounding_overshoot_does_not_underflow() {
        // A rate that makes wire_time round up on every offer: repeated
        // 1-byte offers push busy_until past the exact backlog, so the
        // floor-computed backlog can exceed capacity transiently.
        let mut r = TxRing::new(3, 4); // 3 bytes/s, 4-byte ring
        for _ in 0..4 {
            let (acc, _) = r.offer(Nanos(0), 1);
            assert_eq!(acc, 1);
        }
        // Ring "full" with rounded-up wire time; must not panic or report
        // instant space.
        let t = r.time_for_space(Nanos(0), 4);
        assert!(t > Nanos(0));
    }

    #[test]
    fn sriov_defaults() {
        let r = TxRing::sriov_10g();
        // 1 KiB at the ~1.2 Gbit/s effective VF rate is ~6.8 us.
        assert_eq!(r.wire_time(1024), Nanos(6_827));
    }
}
