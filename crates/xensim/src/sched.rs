//! The hypervisor scheduler interface and guest workload model.
//!
//! [`VmScheduler`] is the simulator's equivalent of Xen's `struct scheduler`
//! hook table: the simulator calls into it whenever a scheduling decision is
//! needed, a vCPU wakes or blocks, a vCPU is de-scheduled, or a periodic
//! tick fires. Each callback returns the *cost* of the operation — the
//! simulated CPU time the hypervisor spends in the scheduler — which the
//! simulator charges to the core (delaying guest progress) and records into
//! the per-operation statistics that regenerate Tables 1–2 of the paper.
//!
//! [`GuestWorkload`] models what runs *inside* a vCPU: a sequence of compute
//! bursts and blocking waits, reacting to external events (packets,
//! timers). Workloads only progress while their vCPU is dispatched, which
//! is exactly the coupling the paper's experiments measure.

use rtsched::time::Nanos;

/// Identifies a vCPU within a simulation.
///
/// Kept distinct from `tableau_core::vcpu::VcpuId` so the simulator does not
/// depend on the scheduler under test; the Tableau adapter converts (both
/// are dense `u32` indices).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct VcpuId(pub u32);

impl std::fmt::Display for VcpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What a scheduler decided for one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedDecision {
    /// The vCPU to run, or `None` to idle.
    pub vcpu: Option<VcpuId>,
    /// Absolute time at which the simulator re-invokes the scheduler (it
    /// may be re-invoked earlier: on block, wake-up IPI, or tick).
    pub until: Nanos,
}

impl SchedDecision {
    /// Convenience constructor for "run `vcpu` until `until`".
    pub fn run(vcpu: VcpuId, until: Nanos) -> SchedDecision {
        SchedDecision {
            vcpu: Some(vcpu),
            until,
        }
    }

    /// Convenience constructor for "idle until `until`".
    pub fn idle(until: Nanos) -> SchedDecision {
        SchedDecision { vcpu: None, until }
    }
}

/// Read-only vCPU state exposed to schedulers.
#[derive(Debug, Clone, Copy)]
pub struct VcpuView<'a> {
    /// `runnable[v]` is `true` if vCPU `v` can execute (not blocked). A
    /// running vCPU is also runnable.
    pub runnable: &'a [bool],
}

impl VcpuView<'_> {
    /// Whether `vcpu` is runnable.
    pub fn is_runnable(&self, vcpu: VcpuId) -> bool {
        self.runnable.get(vcpu.0 as usize).copied().unwrap_or(false)
    }
}

/// A small inline set of IPI target cores.
///
/// Wake-up and de-schedule plans are built on the simulator's per-event hot
/// path, and every scheduler targets zero or one core per notification (a
/// wake-up IPI or a migration hand-off). An inline fixed-capacity array
/// keeps those plans heap-free; the capacity is an assertion about
/// scheduler behavior, not a silent truncation point — overflow panics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IpiTargets {
    cores: [usize; IpiTargets::CAPACITY],
    len: u8,
}

impl IpiTargets {
    /// Maximum targets one plan can carry.
    pub const CAPACITY: usize = 4;

    /// No IPIs.
    pub const NONE: IpiTargets = IpiTargets {
        cores: [0; IpiTargets::CAPACITY],
        len: 0,
    };

    /// A single-target set (the common case).
    pub fn one(core: usize) -> IpiTargets {
        let mut t = IpiTargets::NONE;
        t.push(core);
        t
    }

    /// Appends a target.
    ///
    /// # Panics
    ///
    /// Panics when the plan already holds [`IpiTargets::CAPACITY`] targets.
    pub fn push(&mut self, core: usize) {
        self.cores[self.len as usize] = core;
        self.len += 1;
    }
}

impl std::ops::Deref for IpiTargets {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        &self.cores[..self.len as usize]
    }
}

impl From<Option<usize>> for IpiTargets {
    fn from(core: Option<usize>) -> IpiTargets {
        core.map_or(IpiTargets::NONE, IpiTargets::one)
    }
}

impl FromIterator<usize> for IpiTargets {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> IpiTargets {
        let mut t = IpiTargets::NONE;
        for core in iter {
            t.push(core);
        }
        t
    }
}

/// Outcome of a wake-up notification: which cores to interrupt, and what
/// the wake-up processing cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct WakeupPlan {
    /// Cores to send a re-schedule IPI to (usually zero or one).
    pub ipi_cores: IpiTargets,
    /// CPU time spent processing the wake-up.
    pub cost: Nanos,
}

/// Outcome of a de-schedule hook (post-"context saved" work).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeschedulePlan {
    /// Cores to send a re-schedule IPI to (e.g. migration hand-off).
    pub ipi_cores: IpiTargets,
    /// CPU time spent (the paper's "Migrate" overhead column).
    pub cost: Nanos,
}

/// One contiguous decision in a dense window: run `vcpu` (or idle) until
/// the absolute time `until`. See [`VmScheduler::dense_window`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseSlice {
    /// The vCPU the scheduler would dispatch, or `None` for idle.
    pub vcpu: Option<VcpuId>,
    /// Absolute end of the decision (the next slice starts here).
    pub until: Nanos,
}

/// Flat per-operation costs the scheduler guarantees for every decision in
/// a dense window (the batched fast path charges these without calling the
/// scheduler).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DenseCosts {
    /// Cost of each scheduling decision in the window.
    pub schedule: Nanos,
    /// Cost of each de-schedule in the window (no hand-off IPIs allowed).
    pub deschedule: Nanos,
}

/// A scheduler's opt-in to the partitioned (per-socket conservative PDES)
/// engine: one independent scheduler clone per socket, plus the placement
/// facts the simulator needs to route events and bound the lookahead. See
/// [`VmScheduler::pdes_split`].
pub struct PdesSplit {
    /// One scheduler per socket, index = socket. Each clone carries the
    /// full scheduler state but will only receive callbacks for its own
    /// socket's cores and vCPUs.
    pub parts: Vec<Box<dyn VmScheduler>>,
    /// `vcpu_sockets[v]` is the socket all of vCPU `v`'s scheduling
    /// activity is confined to, or `None` if unconstrained (the simulator
    /// then routes by the vCPU's home core). Indexed by dense vCPU id;
    /// missing tail entries mean `None`.
    pub vcpu_sockets: Vec<Option<usize>>,
    /// `true` if the scheduler guarantees every IPI it plans targets a core
    /// in the same socket as the event that caused it. The simulator then
    /// treats the lookahead as unbounded (partitions never interact), which
    /// collapses the run to a single window per `run_until`.
    pub socket_local_ipis: bool,
}

/// Why a simulation (or its scheduler) declined to run partitioned. The
/// decline is free: the run falls through to the sequential engine, which
/// is bit-for-bit identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PdesDecline {
    /// One socket: nothing to partition.
    SingleSocket,
    /// A fault engine is armed; host-level injection (thefts, core flaps,
    /// IPI loss) is inherently cross-partition.
    FaultsArmed,
    /// The scheduler does not implement [`VmScheduler::pdes_split`].
    SchedulerOptOut,
    /// A table install is staged or not yet adopted by every core.
    TablesUnsettled,
    /// An SLA monitor is attached and needs the global observation order.
    MonitorAttached,
    /// Some vCPU's placement spans sockets.
    CrossSocketPlacement,
    /// The machine models zero cross-socket IPI latency, so conservative
    /// windows could not advance (a degenerate test machine; real machines
    /// always pay an interconnect hop).
    NoLookahead,
}

/// A hypervisor VM scheduler under test.
///
/// Implementations live in the `schedulers` crate (Credit, Credit2, RTDS,
/// and the Tableau adapter). All callbacks are invoked in global simulated
/// time order; implementations keep their own run queues in sync using the
/// wake/block/deschedule notifications.
///
/// `Send` so boxed schedulers can ride inside simulations that a fleet
/// control plane steps from worker threads (hosts are sharded across
/// threads; each simulation is owned by exactly one thread at a time).
pub trait VmScheduler: Send {
    /// Short name for reports ("credit", "rtds", "tableau", ...).
    fn name(&self) -> &'static str;

    /// Picks what `core` runs next. Returns the decision and the CPU cost
    /// of making it.
    fn schedule(&mut self, core: usize, now: Nanos, view: VcpuView<'_>) -> (SchedDecision, Nanos);

    /// `vcpu` became runnable (I/O completion, timer, IPI from a peer VM).
    fn on_wakeup(&mut self, vcpu: VcpuId, now: Nanos, view: VcpuView<'_>) -> WakeupPlan;

    /// `vcpu` blocked voluntarily while running on `core`.
    fn on_block(&mut self, vcpu: VcpuId, core: usize, now: Nanos);

    /// `vcpu` was de-scheduled from `core` (context fully saved) after
    /// having run for `ran`; the scheduler performs budget/credit
    /// accounting and any post-schedule work here.
    fn on_descheduled(
        &mut self,
        vcpu: VcpuId,
        core: usize,
        ran: Nanos,
        now: Nanos,
    ) -> DeschedulePlan;

    /// The scheduler's periodic tick interval, if it uses one (Credit burns
    /// credits on 10 ms ticks). Ticks fire per core.
    fn tick_interval(&self) -> Option<Nanos> {
        None
    }

    /// A periodic tick on `core`; returns `true` if the core should
    /// re-schedule (e.g. priority changed).
    fn on_tick(&mut self, core: usize, now: Nanos, view: VcpuView<'_>) -> bool {
        let _ = (core, now, view);
        false
    }

    /// `duration` of wall time was stolen from `core` at `now` (SMI, host
    /// kernel work, a co-located tenant) while `victim` was dispatched
    /// (`None` if the core was idle). The simulator has already charged the
    /// theft to the core's wall-clock accounting; schedulers that keep their
    /// own fine-grained budgets (e.g. Tableau's second level) use this hook
    /// to charge the interference to the offending slot immediately rather
    /// than discovering it at the next de-schedule.
    fn on_stolen(&mut self, core: usize, victim: Option<VcpuId>, duration: Nanos, now: Nanos) {
        let _ = (core, victim, duration, now);
    }

    /// `core` dropped out of service at `now` (core-fault injection). Any
    /// incumbent was already de-scheduled via [`Self::on_descheduled`];
    /// the core makes no scheduling decisions until it returns. Schedulers
    /// that expose core-loss events to a recovery loop record them here.
    fn on_core_offline(&mut self, core: usize, now: Nanos) {
        let _ = (core, now);
    }

    /// An offline `core` returned to service at `now`; a re-schedule on it
    /// follows immediately.
    fn on_core_online(&mut self, core: usize, now: Nanos) {
        let _ = (core, now);
    }

    /// Whether this scheduler can ever produce dense windows (see
    /// [`VmScheduler::dense_window`]). A cheap static gate the simulator
    /// checks before attempting a batch; `false` (the default) keeps the
    /// simulator on the event-at-a-time path.
    fn dense_capable(&self) -> bool {
        false
    }

    /// Emits into `out` the exact sequence of decisions this scheduler
    /// would make for `core` at every decision boundary in `(from, horizon]`,
    /// assuming the runnable set in `view` does not change, and returns the
    /// flat per-decision costs. Slices must be contiguous, strictly
    /// increasing in `until`, start with the slice containing `from`, and
    /// extend until `until > horizon`.
    ///
    /// Returning `None` (the default) means "cannot guarantee exactness
    /// right now" — the simulator falls back to calling
    /// [`VmScheduler::schedule`] per decision. A scheduler returning
    /// `Some` promises that, over the window, `schedule` would be
    /// side-effect-free apart from the bookkeeping reconstructed by
    /// [`VmScheduler::dense_commit`], would send no IPIs, and would charge
    /// exactly the returned flat costs.
    fn dense_window(
        &mut self,
        core: usize,
        from: Nanos,
        horizon: Nanos,
        view: VcpuView<'_>,
        out: &mut Vec<DenseSlice>,
    ) -> Option<DenseCosts> {
        let _ = (core, from, horizon, view, out);
        None
    }

    /// Replays the scheduler-internal bookkeeping for `consumed` dense
    /// slices of `core` that the simulator advanced through without calling
    /// [`VmScheduler::schedule`]. `at` is the time of the last decision in
    /// `consumed`; `running` is whether that decision's vCPU is still
    /// dispatched (its de-schedule has not happened yet). After this call
    /// the scheduler's state must be byte-identical to having served every
    /// consumed decision through the generic callbacks.
    fn dense_commit(&mut self, core: usize, at: Nanos, consumed: &[DenseSlice], running: bool) {
        let _ = (core, at, consumed, running);
    }

    /// Splits this scheduler into one independent clone per socket for the
    /// partitioned (conservative PDES) engine, or declines. Must be
    /// non-destructive: the simulator may still decline after a successful
    /// split (e.g. a home-placement mismatch), dropping the clones.
    ///
    /// A scheduler returning `Ok` promises that each clone, fed only its
    /// own socket's events, makes byte-identical decisions to this
    /// scheduler fed the interleaved whole — i.e. its state is already
    /// partitioned by socket along the returned `vcpu_sockets`.
    fn pdes_split(&self, machine: &crate::machine::Machine) -> Result<PdesSplit, PdesDecline> {
        let _ = machine;
        Err(PdesDecline::SchedulerOptOut)
    }

    /// Reabsorbs the per-socket clones after a partitioned run. `parts` is
    /// the vector returned by [`VmScheduler::pdes_split`], each advanced
    /// through its socket's events. Only called when the split was `Ok`
    /// and the run actually went partitioned.
    fn pdes_merge(&mut self, machine: &crate::machine::Machine, parts: Vec<Box<dyn VmScheduler>>) {
        let _ = (machine, parts);
        unreachable!("pdes_merge on a scheduler that never opted in to pdes_split");
    }

    /// Registers a vCPU before the simulation starts. `home` is a placement
    /// hint (round-robin by default in the harness).
    fn register_vcpu(&mut self, vcpu: VcpuId, home: usize);

    /// Downcast support so harnesses can reconfigure a concrete scheduler
    /// (set caps, install new tables) after it is boxed into the simulator.
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}

/// What a guest does next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestAction {
    /// Execute for this much CPU time, then ask again.
    Compute(Nanos),
    /// Block until an external event wakes the vCPU.
    Block,
    /// Block, but wake autonomously after `Nanos` (a guest-internal timer).
    BlockFor(Nanos),
}

/// The software running inside a vCPU.
///
/// The simulator calls [`GuestWorkload::next`] whenever the previous action
/// completes (including at first dispatch), and
/// [`GuestWorkload::on_event`] whenever an external event tagged by the
/// harness is delivered.
///
/// `Send` for the same reason as [`VmScheduler`]: simulations migrate
/// between fleet worker threads.
pub trait GuestWorkload: Send {
    /// The next action, decided at absolute guest-visible time `now`.
    fn next(&mut self, now: Nanos) -> GuestAction;

    /// An external event arrived. Returns `true` if a blocked vCPU should
    /// wake (delivering an interrupt); the return value is ignored when the
    /// vCPU is already awake.
    fn on_event(&mut self, tag: u64, now: Nanos) -> bool {
        let _ = (tag, now);
        true
    }

    /// Downcast support so harnesses can retrieve workload-local
    /// measurements after a run.
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}

/// A workload that computes forever (cache-thrash / `stress --cpu`).
#[derive(Debug, Default)]
pub struct BusyLoop;

impl GuestWorkload for BusyLoop {
    fn next(&mut self, _now: Nanos) -> GuestAction {
        // One-second bursts: long enough that scheduler events dominate.
        GuestAction::Compute(Nanos::from_secs(1))
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A workload that never runs (pure idle VM).
#[derive(Debug, Default)]
pub struct IdleGuest;

impl GuestWorkload for IdleGuest {
    fn next(&mut self, _now: Nanos) -> GuestAction {
        GuestAction::Block
    }

    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_constructors() {
        let d = SchedDecision::run(VcpuId(3), Nanos::from_millis(5));
        assert_eq!(d.vcpu, Some(VcpuId(3)));
        let i = SchedDecision::idle(Nanos::from_millis(5));
        assert_eq!(i.vcpu, None);
        assert_eq!(i.until, Nanos::from_millis(5));
    }

    #[test]
    fn view_bounds() {
        let flags = [true, false];
        let view = VcpuView { runnable: &flags };
        assert!(view.is_runnable(VcpuId(0)));
        assert!(!view.is_runnable(VcpuId(1)));
        assert!(!view.is_runnable(VcpuId(9)));
    }

    #[test]
    fn builtin_workloads() {
        let mut b = BusyLoop;
        assert!(matches!(b.next(Nanos::ZERO), GuestAction::Compute(_)));
        assert!(b.on_event(0, Nanos::ZERO));
        let mut i = IdleGuest;
        assert_eq!(i.next(Nanos::ZERO), GuestAction::Block);
    }
}
