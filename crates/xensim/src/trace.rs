//! Event tracing: the simulator's equivalent of Xen's `xentrace`.
//!
//! The paper's overhead measurements (Sec. 7.2) were "collected using Xen's
//! built-in tracing framework by adding tracepoints around key operations
//! within the scheduler", and Sec. 7.4's level-2 attribution comes from
//! tracing Tableau's scheduling decisions. This module provides the same
//! capability for the simulator: a bounded, allocation-free-at-steady-state
//! ring buffer of typed scheduling events, cheap enough to leave on, plus
//! analysis helpers (per-vCPU migration counts, time-in-state, busy
//! timelines) used by experiments and tests.

use serde::{Deserialize, Serialize};

use rtsched::time::Nanos;

use crate::sched::VcpuId;

/// A traced scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// `vcpu` began running on `core`.
    Dispatch { core: usize, vcpu: VcpuId },
    /// `vcpu` stopped running on `core` (preemption or block) after `ran`.
    Deschedule {
        core: usize,
        vcpu: VcpuId,
        ran: Nanos,
    },
    /// `vcpu` became runnable.
    Wake { vcpu: VcpuId },
    /// `vcpu` blocked.
    Block { vcpu: VcpuId },
    /// `core` went idle.
    Idle { core: usize },
    /// An IPI was sent to `core`.
    Ipi { core: usize },
    /// `duration` of wall time was stolen from `core` (fault injection).
    Stolen { core: usize, duration: Nanos },
    /// An IPI to `core` was lost (fault injection; re-delivered later).
    IpiLost { core: usize },
    /// `vcpu`'s burst overran its declared demand by `extra` (fault
    /// injection).
    Overrun { vcpu: VcpuId, extra: Nanos },
    /// `core` dropped out of service for `duration` (fault injection).
    CoreOffline { core: usize, duration: Nanos },
    /// `core` returned to service (fault injection).
    CoreOnline { core: usize },
    /// The hybrid engine entered a dense batched phase with `pending`
    /// queued timers.
    BatchEnter { pending: usize },
    /// The dense phase ended after advancing `batched` events.
    BatchExit { batched: u64 },
}

impl TraceEvent {
    /// The filter class this event belongs to.
    pub fn class(&self) -> TraceClass {
        match self {
            TraceEvent::Dispatch { .. }
            | TraceEvent::Deschedule { .. }
            | TraceEvent::Idle { .. } => TraceClass::SCHED,
            TraceEvent::Wake { .. } | TraceEvent::Block { .. } => TraceClass::VCPU,
            TraceEvent::Ipi { .. } => TraceClass::IPI,
            TraceEvent::Stolen { .. }
            | TraceEvent::IpiLost { .. }
            | TraceEvent::Overrun { .. }
            | TraceEvent::CoreOffline { .. }
            | TraceEvent::CoreOnline { .. } => TraceClass::FAULT,
            TraceEvent::BatchEnter { .. } | TraceEvent::BatchExit { .. } => TraceClass::BATCH,
        }
    }
}

/// A bit-mask of trace-event classes, mirroring xentrace's `TRC_*` class
/// words. The buffer's filter is checked *before* an event is constructed
/// (see [`TraceBuffer::emit`]), so suppressed classes cost one branch per
/// call site, not a record construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceClass(u32);

impl TraceClass {
    /// Dispatch, deschedule, and idle decisions.
    pub const SCHED: TraceClass = TraceClass(1 << 0);
    /// vCPU state transitions (wake, block).
    pub const VCPU: TraceClass = TraceClass(1 << 1);
    /// Inter-processor interrupts (sent and lost).
    pub const IPI: TraceClass = TraceClass(1 << 2);
    /// Fault-injection events (thefts, overruns, core flaps).
    pub const FAULT: TraceClass = TraceClass(1 << 3);
    /// Dense-phase batch entry/exit markers (hybrid engine only; exclude
    /// this class when comparing traces across engines).
    pub const BATCH: TraceClass = TraceClass(1 << 4);
    /// Every class (the default filter).
    pub const ALL: TraceClass = TraceClass(u32::MAX);
    /// No class at all.
    pub const NONE: TraceClass = TraceClass(0);

    /// `true` if any class in `other` is in this mask.
    pub fn intersects(self, other: TraceClass) -> bool {
        self.0 & other.0 != 0
    }
}

impl std::ops::BitOr for TraceClass {
    type Output = TraceClass;
    fn bitor(self, rhs: TraceClass) -> TraceClass {
        TraceClass(self.0 | rhs.0)
    }
}

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub at: Nanos,
    /// The event.
    pub event: TraceEvent,
}

/// A bounded ring buffer of trace records.
///
/// When full, the oldest records are overwritten — exactly like a xentrace
/// buffer; analyses operate on the retained window.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
    capacity: usize,
    /// Index of the logical start (oldest record) once wrapped.
    head: usize,
    wrapped: bool,
    enabled: bool,
    /// Class mask; events outside it are dropped before construction.
    filter: TraceClass,
    /// Records dropped due to wrapping.
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a disabled buffer with the given capacity.
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            records: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            head: 0,
            wrapped: false,
            enabled: false,
            filter: TraceClass::ALL,
            dropped: 0,
        }
    }

    /// Creates an unbounded *spool* buffer mirroring `other`'s enablement
    /// and filter. Partitions record into spools (insertion order, never
    /// wrapping) so the owning simulation can splice their records back
    /// into its bounded ring in globally merged order — the ring's
    /// capacity/overwrite semantics must apply to the merged stream, not
    /// per partition.
    pub(crate) fn spool_like(other: &TraceBuffer) -> TraceBuffer {
        TraceBuffer {
            records: Vec::new(),
            capacity: usize::MAX,
            head: 0,
            wrapped: false,
            enabled: other.enabled,
            filter: other.filter,
            dropped: 0,
        }
    }

    /// The spooled records in insertion order (spool buffers never wrap,
    /// so insertion order is chronological per partition).
    pub(crate) fn spooled(&self) -> &[TraceRecord] {
        debug_assert!(!self.wrapped);
        &self.records
    }

    /// Appends an already-filtered record, applying only the ring's
    /// capacity/overwrite accounting (splice-back from partition spools;
    /// the spool recorded under the same filter).
    pub(crate) fn absorb_record(&mut self, rec: TraceRecord) {
        if !self.enabled {
            return;
        }
        self.push_record(rec);
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Restricts recording to the classes in `filter` (default
    /// [`TraceClass::ALL`]).
    pub fn set_filter(&mut self, filter: TraceClass) {
        self.filter = filter;
    }

    /// The active class filter.
    pub fn filter(&self) -> TraceClass {
        self.filter
    }

    /// Whether an event of `class` would be recorded right now. Call sites
    /// use this (via [`TraceBuffer::emit`]) to skip event construction
    /// entirely for suppressed classes.
    #[inline]
    pub fn wants(&self, class: TraceClass) -> bool {
        self.enabled && self.filter.intersects(class)
    }

    /// Records an event of `class`, constructing it only if the buffer is
    /// enabled and the class passes the filter — a dropped event costs one
    /// branch, not a construction.
    #[inline]
    pub fn emit(&mut self, at: Nanos, class: TraceClass, event: impl FnOnce() -> TraceEvent) {
        if !self.wants(class) {
            return;
        }
        let event = event();
        debug_assert_eq!(event.class(), class, "event recorded under wrong class");
        self.push_record(TraceRecord { at, event });
    }

    /// Records an already-constructed event (no-op while disabled or when
    /// its class is filtered out). Prefer [`TraceBuffer::emit`] on hot
    /// paths.
    pub fn record(&mut self, at: Nanos, event: TraceEvent) {
        if !self.enabled || !self.filter.intersects(event.class()) {
            return;
        }
        self.push_record(TraceRecord { at, event });
    }

    fn push_record(&mut self, rec: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.records[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.wrapped = true;
            self.dropped += 1;
        }
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records dropped to wrapping.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained records in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let (tail, front) = self.records.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// Clears the buffer (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.records.clear();
        self.head = 0;
        self.wrapped = false;
        self.dropped = 0;
    }
}

/// Summary statistics computed from a trace window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Dispatches per vCPU.
    pub dispatches: Vec<(u32, u64)>,
    /// Cross-core migrations per vCPU (dispatch on a different core than
    /// the previous dispatch).
    pub migrations: Vec<(u32, u64)>,
    /// Total traced service per vCPU.
    pub service: Vec<(u32, Nanos)>,
    /// IPIs per core.
    pub ipis_per_core: Vec<(usize, u64)>,
}

impl TraceSummary {
    /// Builds a summary from a trace window.
    pub fn from_trace(trace: &TraceBuffer) -> TraceSummary {
        use std::collections::HashMap;
        let mut dispatches: HashMap<u32, u64> = HashMap::new();
        let mut migrations: HashMap<u32, u64> = HashMap::new();
        let mut service: HashMap<u32, Nanos> = HashMap::new();
        let mut ipis: HashMap<usize, u64> = HashMap::new();
        let mut last_core: HashMap<u32, usize> = HashMap::new();

        for rec in trace.iter() {
            match rec.event {
                TraceEvent::Dispatch { core, vcpu } => {
                    *dispatches.entry(vcpu.0).or_default() += 1;
                    if let Some(&prev) = last_core.get(&vcpu.0) {
                        if prev != core {
                            *migrations.entry(vcpu.0).or_default() += 1;
                        }
                    }
                    last_core.insert(vcpu.0, core);
                }
                TraceEvent::Deschedule { vcpu, ran, .. } => {
                    *service.entry(vcpu.0).or_insert(Nanos::ZERO) += ran;
                }
                TraceEvent::Ipi { core } => {
                    *ipis.entry(core).or_default() += 1;
                }
                _ => {}
            }
        }

        let to_sorted_vec = |m: HashMap<u32, u64>| {
            let mut v: Vec<(u32, u64)> = m.into_iter().collect();
            v.sort_unstable();
            v
        };
        let mut service: Vec<(u32, Nanos)> = service.into_iter().collect();
        service.sort_unstable();
        let mut ipis: Vec<(usize, u64)> = ipis.into_iter().collect();
        ipis.sort_unstable();
        TraceSummary {
            dispatches: to_sorted_vec(dispatches),
            migrations: to_sorted_vec(migrations),
            service,
            ipis_per_core: ipis,
        }
    }

    /// Migration count of one vCPU.
    pub fn migrations_of(&self, vcpu: VcpuId) -> u64 {
        self.migrations
            .iter()
            .find(|&&(v, _)| v == vcpu.0)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }

    /// Dispatch count of one vCPU.
    pub fn dispatches_of(&self, vcpu: VcpuId) -> u64 {
        self.dispatches
            .iter()
            .find(|&&(v, _)| v == vcpu.0)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Nanos {
        Nanos::from_micros(v)
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut t = TraceBuffer::new(8);
        t.record(us(1), TraceEvent::Idle { core: 0 });
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(us(2), TraceEvent::Idle { core: 0 });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut t = TraceBuffer::new(3);
        t.set_enabled(true);
        for i in 0..5u64 {
            t.record(us(i), TraceEvent::Ipi { core: i as usize });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let times: Vec<u64> = t.iter().map(|r| r.at.as_micros()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn summary_counts_migrations() {
        let mut t = TraceBuffer::new(64);
        t.set_enabled(true);
        let v = VcpuId(3);
        t.record(us(0), TraceEvent::Dispatch { core: 0, vcpu: v });
        t.record(
            us(10),
            TraceEvent::Deschedule {
                core: 0,
                vcpu: v,
                ran: us(10),
            },
        );
        t.record(us(20), TraceEvent::Dispatch { core: 1, vcpu: v }); // migration
        t.record(
            us(30),
            TraceEvent::Deschedule {
                core: 1,
                vcpu: v,
                ran: us(10),
            },
        );
        t.record(us(40), TraceEvent::Dispatch { core: 1, vcpu: v }); // same core
        let s = TraceSummary::from_trace(&t);
        assert_eq!(s.dispatches_of(v), 3);
        assert_eq!(s.migrations_of(v), 1);
        assert_eq!(s.service, vec![(3, us(20))]);
    }

    #[test]
    fn summary_counts_ipis_per_core() {
        let mut t = TraceBuffer::new(16);
        t.set_enabled(true);
        t.record(us(0), TraceEvent::Ipi { core: 2 });
        t.record(us(1), TraceEvent::Ipi { core: 2 });
        t.record(us(2), TraceEvent::Ipi { core: 0 });
        let s = TraceSummary::from_trace(&t);
        assert_eq!(s.ipis_per_core, vec![(0, 1), (2, 2)]);
    }

    #[test]
    fn filter_suppresses_classes_before_construction() {
        let mut t = TraceBuffer::new(8);
        t.set_enabled(true);
        t.set_filter(TraceClass::SCHED);
        // Suppressed class: the closure must never run.
        t.emit(us(1), TraceClass::IPI, || {
            panic!("constructed a filtered event")
        });
        assert!(t.is_empty());
        t.emit(us(2), TraceClass::SCHED, || TraceEvent::Idle { core: 0 });
        assert_eq!(t.len(), 1);
        // `record` applies the same filter, after construction.
        t.record(us(3), TraceEvent::Ipi { core: 1 });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn disabled_buffer_skips_emit_construction() {
        let mut t = TraceBuffer::new(8);
        t.emit(us(1), TraceClass::SCHED, || {
            panic!("constructed while disabled")
        });
        assert!(t.is_empty());
    }

    #[test]
    fn class_masks_combine() {
        let m = TraceClass::SCHED | TraceClass::FAULT;
        assert!(m.intersects(TraceClass::SCHED));
        assert!(m.intersects(TraceClass::FAULT));
        assert!(!m.intersects(TraceClass::IPI));
        assert!(TraceClass::ALL.intersects(TraceClass::VCPU));
        assert!(!TraceClass::NONE.intersects(TraceClass::ALL));
        assert_eq!(TraceEvent::Idle { core: 0 }.class(), TraceClass::SCHED);
        assert_eq!(
            TraceEvent::Wake { vcpu: VcpuId(0) }.class(),
            TraceClass::VCPU
        );
        assert_eq!(TraceEvent::IpiLost { core: 0 }.class(), TraceClass::FAULT);
    }

    #[test]
    fn clear_resets_but_keeps_enablement() {
        let mut t = TraceBuffer::new(4);
        t.set_enabled(true);
        t.record(us(0), TraceEvent::Idle { core: 0 });
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
        assert_eq!(t.dropped(), 0);
    }
}
