//! Tables 1 & 2: mean scheduler-operation overheads under an I/O-intensive
//! high-density workload.
//!
//! Sec. 7.2: every VM runs the `stress`-based I/O workload for 60 s while
//! tracepoints record the cost of (i) scheduling decisions, (ii) wake-up
//! processing, and (iii) post-de-schedule work ("Migrate"). Table 1 is the
//! 16-core (12 guest cores) machine; Table 2 the 48-core (44 guest cores)
//! machine, where RTDS's global lock melts down (>168 µs mean migrate).
//!
//! Base costs are calibrated to Table 1 (see `schedulers::costs`); the
//! Table 2 blow-ups *emerge* from lock contention and machine-size scan
//! terms.

use serde::Serialize;

use rtsched::time::Nanos;
use workloads::IoStress;
use xensim::stats::OpKind;
use xensim::Machine;

use crate::config::{build_scenario, Background, SchedKind};
use crate::report::{print_table, us, write_json};

/// One scheduler's row pair in Table 1/2.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    /// Scheduler label.
    pub scheduler: String,
    /// Mean decision cost in µs.
    pub schedule_us: f64,
    /// Mean wake-up cost in µs.
    pub wakeup_us: f64,
    /// Mean post-de-schedule ("Migrate") cost in µs.
    pub migrate_us: f64,
    /// Number of decisions sampled.
    pub samples: u64,
}

/// Measures one scheduler on one machine.
fn measure(machine: Machine, kind: SchedKind, duration: Nanos) -> OverheadRow {
    // Per the paper's scenario split, Credit2 runs uncapped and the rest
    // capped; the workload is identical.
    let capped = kind != SchedKind::Credit2;
    let (mut sim, _v) = build_scenario(
        machine,
        4,
        kind,
        capped,
        Box::new(IoStress::paper_default()),
        Background::Io,
    );
    sim.run_until(duration);
    let ops = &sim.stats().ops;
    OverheadRow {
        scheduler: kind.label().to_string(),
        schedule_us: ops.get(OpKind::Schedule).mean_us(),
        wakeup_us: ops.get(OpKind::Wakeup).mean_us(),
        migrate_us: ops.get(OpKind::Deschedule).mean_us(),
        samples: ops.get(OpKind::Schedule).count,
    }
}

/// The full Table 1/2 report.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadTables {
    /// 16-core machine (12 guest cores) — Table 1.
    pub table1: Vec<OverheadRow>,
    /// 48-core machine (44 guest cores) — Table 2.
    pub table2: Vec<OverheadRow>,
}

const ALL: [SchedKind; 4] = [
    SchedKind::Credit,
    SchedKind::Credit2,
    SchedKind::Rtds,
    SchedKind::Tableau,
];

/// Runs both overhead tables.
pub fn run(quick: bool) -> OverheadTables {
    let duration = if quick {
        Nanos::from_millis(500)
    } else {
        Nanos::from_secs(5)
    };

    let run_machine = |machine: Machine, title: &str| -> Vec<OverheadRow> {
        let rows: Vec<OverheadRow> = ALL
            .iter()
            .map(|&kind| measure(machine, kind, duration))
            .collect();
        let printable: Vec<Vec<String>> = OpKind::ALL
            .iter()
            .map(|&op| {
                let mut cells = vec![op.label().to_string()];
                for r in &rows {
                    cells.push(us(match op {
                        OpKind::Schedule => r.schedule_us,
                        OpKind::Wakeup => r.wakeup_us,
                        OpKind::Deschedule => r.migrate_us,
                    }));
                }
                cells
            })
            .collect();
        print_table(
            title,
            &["", "Credit", "Credit2", "RTDS", "Tableau"],
            &printable,
        );
        rows
    };

    let table1 = run_machine(
        crate::config::guest_machine_16core(),
        "Table 1: mean overheads (us), 16-core 2-socket server",
    );
    let table2 = run_machine(
        crate::config::guest_machine_48core(),
        "Table 2: mean overheads (us), 48-core 4-socket server",
    );
    let tables = OverheadTables { table1, table2 };
    write_json("tab1_tab2_overheads", &tables);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [OverheadRow], name: &str) -> &'a OverheadRow {
        rows.iter().find(|r| r.scheduler == name).unwrap()
    }

    #[test]
    fn paper_orderings_hold() {
        // A short-but-real run on the small 16-core machine.
        let duration = Nanos::from_millis(400);
        let m = crate::config::guest_machine_16core();
        let rows: Vec<OverheadRow> = ALL.iter().map(|&k| measure(m, k, duration)).collect();
        let credit = row(&rows, "Credit");
        let credit2 = row(&rows, "Credit2");
        let rtds = row(&rows, "RTDS");
        let tableau = row(&rows, "Tableau");

        for r in &rows {
            assert!(
                r.samples > 100,
                "{} undersampled: {}",
                r.scheduler,
                r.samples
            );
        }
        // Schedule: Tableau cheapest; Credit most expensive.
        assert!(tableau.schedule_us < rtds.schedule_us);
        assert!(tableau.schedule_us < credit2.schedule_us);
        assert!(credit.schedule_us > credit2.schedule_us);
        // Wakeup: Tableau cheapest.
        assert!(tableau.wakeup_us < credit.wakeup_us);
        assert!(tableau.wakeup_us < credit2.wakeup_us);
        assert!(tableau.wakeup_us < rtds.wakeup_us);
        // Migrate: RTDS most expensive; Credit and Tableau tiny.
        assert!(rtds.migrate_us > credit2.migrate_us);
        assert!(credit.migrate_us < 1.0);
        assert!(tableau.migrate_us < 1.0);
    }

    #[test]
    fn rtds_migrate_blows_up_on_the_big_machine() {
        // The Table 2 headline: RTDS's global lock under 44 cores of I/O
        // churn. Short duration suffices for the contention to compound.
        let duration = Nanos::from_millis(300);
        let small = measure(
            crate::config::guest_machine_16core(),
            SchedKind::Rtds,
            duration,
        );
        let big = measure(
            crate::config::guest_machine_48core(),
            SchedKind::Rtds,
            duration,
        );
        assert!(
            big.migrate_us > 2.0 * small.migrate_us,
            "no blow-up: {} vs {}",
            big.migrate_us,
            small.migrate_us
        );
        assert!(
            big.migrate_us > 15.0,
            "absolute cost too low: {}",
            big.migrate_us
        );
        // Tableau stays flat in comparison.
        let t_small = measure(
            crate::config::guest_machine_16core(),
            SchedKind::Tableau,
            duration,
        );
        let t_big = measure(
            crate::config::guest_machine_48core(),
            SchedKind::Tableau,
            duration,
        );
        assert!(t_big.migrate_us < 2.0 * t_small.migrate_us + 1.0);
    }
}
