//! Robustness: SLA-violation rate and latency inflation under injected
//! platform faults.
//!
//! The paper evaluates Tableau on well-behaved hardware; this experiment
//! asks what happens when the platform misbehaves. [`xensim::fault`]
//! injects timer jitter/coarsening, IPI delay and loss, per-core stolen
//! time, guest burst overruns and table-switch interruptions, all scaled by
//! a single `intensity` knob in `[0, 1]`. For each scheduler we sweep the
//! intensity and report:
//!
//! * the fraction of dispatch delays exceeding the 20 ms latency goal
//!   (SLA-violation rate), aggregate and worst single vCPU;
//! * maximum and mean dispatch delay, and the mean-delay inflation
//!   relative to the same scheduler at intensity 0;
//! * fault-accounting totals (stolen time, lost IPIs, overruns).
//!
//! The headline claim: Tableau's table structure *localizes* interference.
//! Stolen time on one core is charged to the slots that were running there
//! — vCPUs homed on other cores keep their latency bound (see
//! `stolen_time_on_one_core_does_not_leak_across_cores_under_tableau`).

use serde::Serialize;

use rtsched::time::Nanos;
use workloads::IntrinsicLatency;
use xensim::fault::FaultConfig;
use xensim::{Machine, Sim};

use crate::config::{
    build_scenario, Background, SchedKind, CAPPED_SCHEDULERS, LATENCY_GOAL, UNCAPPED_SCHEDULERS,
};
use crate::report::{print_table, write_json};

/// Default fault-stream seed (kept fixed so artifacts are reproducible).
pub const DEFAULT_SEED: u64 = 42;

/// The swept fault intensities.
pub const INTENSITIES: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// Provenance of a sweep artifact: distinguishes a full run (16-core
/// machine, seconds of simulated time) from a `--quick` smoke run so the
/// two can never be mistaken for each other in `results/`.
#[derive(Debug, Clone, Serialize)]
pub struct RobustnessMeta {
    /// True for the `--quick` smoke configuration.
    pub quick: bool,
    /// Physical cores on the simulated machine.
    pub machine_cores: usize,
    /// Simulated duration per cell (ms).
    pub duration_ms: f64,
    /// Fault-stream seed.
    pub seed: u64,
}

/// The sweep artifact written to `results/robustness.json`.
#[derive(Debug, Clone, Serialize)]
pub struct RobustnessReport {
    /// Run provenance (machine, duration, seed, quick flag).
    pub meta: RobustnessMeta,
    /// One entry per (scheduler, cap, intensity) cell.
    pub points: Vec<RobustnessPoint>,
}

/// One cell of the robustness sweep.
#[derive(Debug, Clone, Serialize)]
pub struct RobustnessPoint {
    /// Scheduler label.
    pub scheduler: String,
    /// Capped or uncapped scenario.
    pub capped: bool,
    /// Fault intensity in `[0, 1]` (0 = pristine platform).
    pub intensity: f64,
    /// Fraction of dispatch delays exceeding the 20 ms goal, all vCPUs.
    pub sla_violation_rate: f64,
    /// The worst single vCPU's violation fraction.
    pub worst_vcpu_violation_rate: f64,
    /// Maximum dispatch delay over all vCPUs (ms).
    pub max_delay_ms: f64,
    /// Mean dispatch delay over all vCPUs (ms).
    pub mean_delay_ms: f64,
    /// `mean_delay / mean_delay(intensity 0)` for the same scheduler/cap.
    pub latency_inflation: f64,
    /// Total stolen time across all cores (ms).
    pub stolen_ms: f64,
    /// IPIs lost (and later re-delivered via the poll fallback).
    pub ipis_lost: u64,
    /// Guest burst overruns injected.
    pub overruns: u64,
}

/// Measures one cell (latency inflation is filled in by [`run`], relative
/// to the intensity-0 cell; here it defaults to 1).
pub fn measure(
    machine: Machine,
    kind: SchedKind,
    capped: bool,
    intensity: f64,
    seed: u64,
    duration: Nanos,
) -> RobustnessPoint {
    let (mut sim, vantage) = build_scenario(
        machine,
        4,
        kind,
        capped,
        Box::new(IntrinsicLatency::new()),
        Background::Io,
    );
    sim.set_fault_config(FaultConfig::with_intensity(seed, intensity));
    // The probe starts blocked; kick it off immediately.
    sim.push_external(Nanos(1), vantage, 0);
    sim.run_until(duration);
    summarize(&sim, kind, capped, intensity)
}

fn summarize(sim: &Sim, kind: SchedKind, capped: bool, intensity: f64) -> RobustnessPoint {
    let stats = sim.stats();
    let mut violations = 0u64;
    let mut total = 0u64;
    let mut worst = 0.0f64;
    let mut max_delay = Nanos::ZERO;
    let mut delay_sum = Nanos::ZERO;
    for (i, v) in stats.vcpus.iter().enumerate() {
        let hist = &stats.delay_hists[i];
        let viol = hist.count_at_least(LATENCY_GOAL);
        violations += viol;
        total += v.delay_count;
        if v.delay_count > 0 {
            worst = worst.max(viol as f64 / v.delay_count as f64);
        }
        max_delay = max_delay.max(v.delay_max);
        delay_sum += v.delay_total;
    }
    let mean_delay = delay_sum
        .as_nanos()
        .checked_div(total)
        .map_or(Nanos::ZERO, Nanos);
    let stolen: Nanos = stats
        .stolen_time
        .iter()
        .fold(Nanos::ZERO, |acc, &s| acc + s);
    RobustnessPoint {
        scheduler: kind.label().to_string(),
        capped,
        intensity,
        sla_violation_rate: if total > 0 {
            violations as f64 / total as f64
        } else {
            0.0
        },
        worst_vcpu_violation_rate: worst,
        max_delay_ms: max_delay.as_millis_f64(),
        mean_delay_ms: mean_delay.as_millis_f64(),
        latency_inflation: 1.0,
        stolen_ms: stolen.as_millis_f64(),
        ipis_lost: stats.ipis_lost,
        overruns: stats.overruns,
    }
}

/// Runs the sweep and measures every cell, with no I/O side effects.
///
/// Tests exercise this directly; only [`run_with_seed`] (the CLI path)
/// writes the `results/robustness.json` artifact, so `cargo test` can
/// never clobber the checked-in full-run data with quick-mode output.
pub fn sweep(quick: bool, seed: u64) -> RobustnessReport {
    let (machine, duration) = if quick {
        (Machine::small(2), Nanos::from_millis(200))
    } else {
        (crate::config::guest_machine_16core(), Nanos::from_secs(5))
    };
    // The grid in sequential order: intensity-major, capped before
    // uncapped schedulers.
    let mut cells = Vec::new();
    for intensity in INTENSITIES {
        for kind in CAPPED_SCHEDULERS {
            cells.push((kind, true, intensity));
        }
        for kind in UNCAPPED_SCHEDULERS {
            cells.push((kind, false, intensity));
        }
    }
    // Every cell is an independent simulation whose fault stream is fully
    // determined by (seed, intensity); measuring the cells concurrently
    // and reassembling in grid order reproduces the sequential sweep
    // byte-for-byte (see `tests/sweep_determinism.rs`).
    let mut points = rayon::par_map_indices(cells.len(), |i| {
        let (kind, capped, intensity) = cells[i];
        measure(machine, kind, capped, intensity, seed, duration)
    });

    // Latency inflation is relative to the same scheduler/cap at zero
    // intensity.
    let baselines: Vec<(String, bool, f64)> = points
        .iter()
        .filter(|p| p.intensity == 0.0)
        .map(|p| (p.scheduler.clone(), p.capped, p.mean_delay_ms))
        .collect();
    for p in &mut points {
        if let Some((_, _, base)) = baselines
            .iter()
            .find(|(s, c, _)| *s == p.scheduler && *c == p.capped)
        {
            if *base > 0.0 {
                p.latency_inflation = p.mean_delay_ms / base;
            }
        }
    }

    RobustnessReport {
        meta: RobustnessMeta {
            quick,
            machine_cores: machine.n_cores(),
            duration_ms: duration.as_millis_f64(),
            seed,
        },
        points,
    }
}

/// Runs the robustness sweep with the default seed.
pub fn run(quick: bool) -> Vec<RobustnessPoint> {
    run_with_seed(quick, DEFAULT_SEED)
}

/// Runs the robustness sweep, prints the table and writes the artifact.
pub fn run_with_seed(quick: bool, seed: u64) -> Vec<RobustnessPoint> {
    let report = sweep(quick, seed);
    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                if p.capped { "capped" } else { "uncapped" }.to_string(),
                p.scheduler.clone(),
                format!("{:.2}", p.intensity),
                format!("{:.4}", p.sla_violation_rate),
                format!("{:.4}", p.worst_vcpu_violation_rate),
                format!("{:.2}", p.max_delay_ms),
                format!("{:.2}x", p.latency_inflation),
                format!("{:.1}", p.stolen_ms),
                p.ipis_lost.to_string(),
                p.overruns.to_string(),
            ]
        })
        .collect();
    print_table(
        "Robustness: SLA violations and latency inflation under injected faults",
        &[
            "scenario",
            "scheduler",
            "intensity",
            "SLA viol.",
            "worst vCPU",
            "max delay (ms)",
            "inflation",
            "stolen (ms)",
            "IPIs lost",
            "overruns",
        ],
        &rows,
    );
    write_json("robustness", &report);
    report.points
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedulers::Tableau;
    use tableau_core::planner::{plan, PlannerOptions};
    use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
    use workloads::CacheThrash;
    use xensim::fault::StolenFaults;
    use xensim::VcpuId;

    const DUR: Nanos = Nanos(500_000_000);

    fn fingerprint(sim: &Sim) -> (u64, u64, Vec<(Nanos, Nanos, u64)>) {
        let s = sim.stats();
        (
            s.ipis,
            s.context_switches,
            s.vcpus
                .iter()
                .map(|v| (v.service, v.delay_max, v.delay_count))
                .collect(),
        )
    }

    #[test]
    fn zero_intensity_is_bitwise_identical_to_no_faults() {
        // `with_intensity(seed, 0.0)` must install no engine at all: the
        // run replays the pristine simulator event-for-event.
        let build = || {
            build_scenario(
                Machine::small(2),
                4,
                SchedKind::Tableau,
                true,
                Box::new(IntrinsicLatency::new()),
                Background::Io,
            )
        };
        let (mut clean, v0) = build();
        clean.push_external(Nanos(1), v0, 0);
        clean.run_until(DUR);

        let (mut zeroed, v1) = build();
        zeroed.set_fault_config(FaultConfig::with_intensity(DEFAULT_SEED, 0.0));
        assert!(
            zeroed.fault_config().is_none(),
            "zero intensity armed faults"
        );
        zeroed.push_external(Nanos(1), v1, 0);
        zeroed.run_until(DUR);

        assert_eq!(fingerprint(&clean), fingerprint(&zeroed));
        assert_eq!(clean.stats().stolen_time, zeroed.stats().stolen_time);
        assert_eq!(clean.stats().ipis_lost, 0);
        assert_eq!(zeroed.stats().overruns, 0);
    }

    #[test]
    fn stolen_time_on_one_core_does_not_leak_across_cores_under_tableau() {
        // Acceptance criterion: nonzero stolen time on core 0 adds zero SLA
        // violations for vCPUs homed entirely on core 1.
        let mut host = HostConfig::new(2);
        let spec = VcpuSpec::capped(Utilization::from_percent(25), LATENCY_GOAL);
        for i in 0..8 {
            host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
        }
        let p = plan(&host, &PlannerOptions::default()).expect("paper shape");
        let core1_vcpus: Vec<u32> = (0..8u32)
            .filter(|&v| {
                p.table
                    .placement(tableau_core::vcpu::VcpuId(v))
                    .map(|pl| pl.allocations.iter().all(|&(c, _, _)| c == 1))
                    .unwrap_or(false)
            })
            .collect();
        assert!(!core1_vcpus.is_empty(), "no vCPU fully homed on core 1");

        let run = |faulty: bool| {
            let mut sim = Sim::new(Machine::small(2), Box::new(Tableau::from_plan(&p)));
            if faulty {
                sim.set_fault_config(FaultConfig {
                    stolen: StolenFaults {
                        cores: vec![0],
                        interval: Nanos::from_millis(5),
                        duration: Nanos::from_micros(500),
                    },
                    ..FaultConfig::none()
                });
            }
            for _ in 0..8 {
                sim.add_vcpu(Box::new(CacheThrash), 0, true);
            }
            sim.run_until(Nanos::from_secs(2));
            sim
        };
        let clean = run(false);
        let faulty = run(true);
        assert!(faulty.stats().stolen_time[0] > Nanos::ZERO);
        for &v in &core1_vcpus {
            let v = VcpuId(v);
            assert_eq!(
                faulty.stats().delay_hist(v).count_at_least(LATENCY_GOAL),
                0,
                "{v} on core 1 violated its SLA under theft on core 0"
            );
            assert_eq!(
                faulty.stats().vcpu(v).delay_max,
                clean.stats().vcpu(v).delay_max,
                "{v} on core 1 saw different delays under theft on core 0"
            );
        }
    }

    #[test]
    fn faults_increase_delay_but_tableau_keeps_remote_cores_clean() {
        // At full intensity the aggregate picture degrades for everyone;
        // the sweep itself must remain deterministic per seed.
        let a = measure(
            Machine::small(2),
            SchedKind::Tableau,
            true,
            1.0,
            7,
            Nanos::from_millis(300),
        );
        let b = measure(
            Machine::small(2),
            SchedKind::Tableau,
            true,
            1.0,
            7,
            Nanos::from_millis(300),
        );
        assert_eq!(a.max_delay_ms, b.max_delay_ms);
        assert_eq!(a.ipis_lost, b.ipis_lost);
        assert_eq!(a.overruns, b.overruns);
        assert!(a.stolen_ms > 0.0);
    }

    #[test]
    fn quick_sweep_covers_the_grid_and_fills_inflation() {
        // `sweep`, not `run`: the test must never write (and thereby
        // clobber) the tracked results/robustness.json artifact.
        let report = sweep(true, DEFAULT_SEED);
        assert!(report.meta.quick);
        assert_eq!(report.meta.machine_cores, 2);
        assert_eq!(report.meta.seed, DEFAULT_SEED);
        let points = report.points;
        assert_eq!(points.len(), INTENSITIES.len() * 6);
        for p in &points {
            if p.intensity == 0.0 {
                assert_eq!(p.latency_inflation, 1.0, "{}", p.scheduler);
            }
            assert!(p.sla_violation_rate <= 1.0);
            assert!(
                p.worst_vcpu_violation_rate >= p.sla_violation_rate
                    || p.worst_vcpu_violation_rate == 0.0
            );
        }
        assert!(points.iter().any(|p| p.scheduler == "Tableau"));
    }
}
