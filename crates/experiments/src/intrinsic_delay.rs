//! Fig. 5: maximum scheduling delay as measured by
//! `redis-cli --intrinsic-latency` in a vantage VM.
//!
//! The probe is a CPU-bound loop timing its own iteration gaps, run at the
//! highest guest priority so every gap is VM-scheduler-induced. The paper's
//! observations to reproduce:
//!
//! * **capped**: Credit shows delays up to ~44 ms (credit parking across
//!   accounting periods); RTDS ~10–13 ms; Tableau always ~10 ms regardless
//!   of background workload (the table's structure, nothing else).
//! * **uncapped**: sub-millisecond for everyone with no background load;
//!   Credit degrades badly under an I/O background (up to ~220 ms);
//!   Credit2 degrades under I/O but not CPU background; Tableau stays at
//!   ≤10 ms always.

use serde::Serialize;

use rtsched::time::Nanos;
use workloads::IntrinsicLatency;
use xensim::Machine;

use crate::config::{
    build_scenario, Background, SchedKind, CAPPED_SCHEDULERS, UNCAPPED_SCHEDULERS,
};
use crate::report::{print_table, write_json};

/// One bar of Fig. 5.
#[derive(Debug, Clone, Serialize)]
pub struct DelayPoint {
    /// Scheduler label.
    pub scheduler: String,
    /// Capped or uncapped scenario.
    pub capped: bool,
    /// Background workload label.
    pub background: String,
    /// Maximum observed scheduling delay in milliseconds (guest-side
    /// probe).
    pub max_delay_ms: f64,
    /// The simulator's own per-vCPU maximum dispatch delay (cross-check).
    pub sim_delay_ms: f64,
    /// 99th-percentile dispatch delay (upper bucket bound, factor-of-two
    /// resolution) — distribution context for the paper's max-only bars.
    pub p99_delay_ms: f64,
}

/// Measures one bar.
pub fn measure(
    machine: Machine,
    kind: SchedKind,
    capped: bool,
    bg: Background,
    duration: Nanos,
) -> DelayPoint {
    let (mut sim, vantage) = build_scenario(
        machine,
        4,
        kind,
        capped,
        Box::new(IntrinsicLatency::new()),
        bg,
    );
    // The probe starts blocked; kick it off immediately.
    sim.push_external(Nanos(1), vantage, 0);
    sim.run_until(duration);
    let sim_delay = sim.stats().vcpu(vantage).delay_max;
    // The histogram reports a power-of-two upper bound; the exact maximum
    // is a tighter cap.
    let p99 = sim
        .stats()
        .delay_hist(vantage)
        .quantile_upper(0.99)
        .min(sim_delay);
    let probe = sim
        .workload_mut(vantage)
        .as_any()
        .downcast_ref::<IntrinsicLatency>()
        .expect("intrinsic probe");
    DelayPoint {
        scheduler: kind.label().to_string(),
        capped,
        background: bg.label().to_string(),
        max_delay_ms: probe.max_gap.as_millis_f64(),
        sim_delay_ms: sim_delay.as_millis_f64(),
        p99_delay_ms: p99.as_millis_f64(),
    }
}

/// Runs the full Fig. 5 grid.
pub fn run(quick: bool) -> Vec<DelayPoint> {
    let machine = crate::config::guest_machine_16core();
    let duration = if quick {
        Nanos::from_millis(500)
    } else {
        Nanos::from_secs(10)
    };
    let mut points = Vec::new();
    for bg in [Background::None, Background::Io, Background::Cpu] {
        for kind in CAPPED_SCHEDULERS {
            points.push(measure(machine, kind, true, bg, duration));
        }
        for kind in UNCAPPED_SCHEDULERS {
            points.push(measure(machine, kind, false, bg, duration));
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                if p.capped { "capped" } else { "uncapped" }.to_string(),
                p.background.clone(),
                p.scheduler.clone(),
                format!("{:.2}", p.max_delay_ms),
                format!("{:.2}", p.p99_delay_ms),
            ]
        })
        .collect();
    print_table(
        "Fig. 5: max scheduling delay (ms) via intrinsic-latency probe",
        &[
            "scenario",
            "BG",
            "scheduler",
            "max delay (ms)",
            "p99 (<=, ms)",
        ],
        &rows,
    );
    write_json("fig5_intrinsic_delay", &points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Machine {
        Machine::small(2)
    }

    const DUR: Nanos = Nanos(2_000_000_000);

    #[test]
    fn tableau_capped_delay_is_bounded_by_latency_goal() {
        for bg in [Background::None, Background::Io, Background::Cpu] {
            let p = measure(small(), SchedKind::Tableau, true, bg, DUR);
            assert!(
                p.max_delay_ms <= 20.0,
                "{}: {} ms exceeds the 20 ms goal",
                p.background,
                p.max_delay_ms
            );
            // And it is never trivially zero (a capped CPU hog must wait
            // between its slots).
            assert!(
                p.max_delay_ms > 1.0,
                "{} ms suspiciously low",
                p.max_delay_ms
            );
        }
    }

    #[test]
    fn credit_capped_delay_exceeds_tableau() {
        // Credit's parking produces far larger worst-case delays than
        // Tableau's table structure, even with no background load.
        let credit = measure(small(), SchedKind::Credit, true, Background::Io, DUR);
        let tableau = measure(small(), SchedKind::Tableau, true, Background::Io, DUR);
        assert!(
            credit.max_delay_ms > tableau.max_delay_ms * 1.5,
            "credit {} vs tableau {}",
            credit.max_delay_ms,
            tableau.max_delay_ms
        );
    }

    #[test]
    fn uncapped_idle_system_has_tiny_delays() {
        for kind in UNCAPPED_SCHEDULERS {
            let p = measure(small(), kind, false, Background::None, DUR);
            assert!(
                p.max_delay_ms < 2.0,
                "{}: {} ms with an idle system",
                p.scheduler,
                p.max_delay_ms
            );
        }
    }

    #[test]
    fn probe_and_simulator_agree() {
        let p = measure(small(), SchedKind::Tableau, true, Background::Cpu, DUR);
        // The guest-side probe can only see gaps at its 100 us quantum
        // granularity; both views must be within a quantum of each other.
        assert!(
            (p.max_delay_ms - p.sim_delay_ms).abs() <= 0.2,
            "probe {} vs sim {}",
            p.max_delay_ms,
            p.sim_delay_ms
        );
    }
}
