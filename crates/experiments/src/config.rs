//! Shared experiment configuration: the paper's evaluation setups.
//!
//! Sec. 7.2: *"on our 16-core server, we assigned four single-vCPU VMs per
//! core (i.e., each with 25% CPU utilization), with four cores dedicated to
//! dom0"* — so guest VMs run on 12 cores (48 VMs). The 48-core machine
//! analogously dedicates 4 cores to dom0, leaving 44 guest cores (176 VMs).
//! The simulator models the guest cores only (dom0's cores never run guest
//! vCPUs and the SR-IOV NIC bypasses dom0's I/O path).
//!
//! All schedulers are configured as in Sec. 7.2: Credit with a 5 ms
//! timeslice, Tableau with `U = 25%` and `L = 20 ms` (planner picks
//! `T ≈ 12.84 ms`, `C ≈ 3.21 ms`), and RTDS matched to Tableau's
//! parameters.

use std::fmt;

use rtsched::time::Nanos;
use schedulers::{Credit, Credit2, Rtds, Tableau};
use tableau_core::planner::{plan, PlanError, PlannerOptions};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
use workloads::{CacheThrash, IoStress, LightSystemNoise};
use xensim::sched::GuestWorkload;
use xensim::{Machine, Sim, VcpuId};

/// The guest-visible 16-core platform: 12 guest cores across 2 sockets.
pub fn guest_machine_16core() -> Machine {
    Machine {
        n_sockets: 2,
        cores_per_socket: 6,
        ..Machine::xeon_16core()
    }
}

/// The guest-visible 48-core platform: 44 guest cores across 4 sockets.
pub fn guest_machine_48core() -> Machine {
    Machine {
        n_sockets: 4,
        cores_per_socket: 11,
        ..Machine::xeon_48core()
    }
}

/// Which scheduler a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// Xen's default Credit scheduler.
    Credit,
    /// Xen's Credit2 (uncapped scenarios only, as in the paper).
    Credit2,
    /// RTDS (capped scenarios only, as in the paper).
    Rtds,
    /// Tableau.
    Tableau,
}

impl SchedKind {
    /// Display name matching the paper's labels.
    pub fn label(self) -> &'static str {
        match self {
            SchedKind::Credit => "Credit",
            SchedKind::Credit2 => "Credit2",
            SchedKind::Rtds => "RTDS",
            SchedKind::Tableau => "Tableau",
        }
    }
}

/// Background workload flavor ("BG" in the paper's figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Background {
    /// No benchmark running — just light guest-system activity.
    None,
    /// I/O-intensive `stress` (frequent scheduler invocations).
    Io,
    /// Cache-thrashing, fully CPU-bound `stress`.
    Cpu,
}

impl Background {
    /// Display name matching the paper's figure captions.
    pub fn label(self) -> &'static str {
        match self {
            Background::None => "No BG",
            Background::Io => "IO BG",
            Background::Cpu => "CPU BG",
        }
    }

    fn workload(self) -> Box<dyn GuestWorkload> {
        match self {
            Background::None => Box::new(LightSystemNoise::paper_default()),
            Background::Io => Box::new(IoStress::paper_default()),
            Background::Cpu => Box::new(CacheThrash),
        }
    }
}

/// The paper's per-vCPU parameters: 25% reservation, 20 ms latency goal.
pub const VM_UTILIZATION_PCT: u32 = 25;
pub const LATENCY_GOAL: Nanos = Nanos(20_000_000);

/// RTDS parameters matched to Tableau's planner output (Sec. 7.2).
pub const RTDS_BUDGET: Nanos = Nanos(3_209_456);
pub const RTDS_PERIOD: Nanos = Nanos(12_837_825);

/// Why a requested scenario cannot be built.
///
/// User-supplied configuration (CLI flags, sweep parameters) surfaces here
/// as a value instead of a panic, so the binary can exit with a one-line
/// diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// `vms_per_core` is outside the supported density range.
    InvalidVmsPerCore {
        /// The rejected value.
        vms_per_core: usize,
    },
    /// A scheduler/cap combination the paper's split excludes.
    UnsupportedCombination {
        /// Scheduler label.
        scheduler: &'static str,
        /// Whether caps were requested.
        capped: bool,
        /// Human-readable reason, mirroring the paper's constraint.
        reason: &'static str,
    },
    /// The Tableau planner rejected the resulting host configuration.
    Plan(PlanError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::InvalidVmsPerCore { vms_per_core } => write!(
                f,
                "invalid density: {vms_per_core} VMs per core (supported: 1..=100)"
            ),
            ScenarioError::UnsupportedCombination {
                scheduler,
                capped,
                reason,
            } => write!(
                f,
                "{scheduler} cannot run {}: {reason}",
                if *capped { "capped" } else { "uncapped" }
            ),
            ScenarioError::Plan(e) => write!(f, "planner rejected the scenario: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<PlanError> for ScenarioError {
    fn from(e: PlanError) -> Self {
        ScenarioError::Plan(e)
    }
}

/// Builds a high-density scenario: `vms_per_core` single-vCPU VMs per guest
/// core, one *vantage VM* (vCPU 0) running `vantage`, all others running
/// the background workload.
///
/// Returns the simulator (not yet started) and the vantage vCPU id, or a
/// [`ScenarioError`] when the requested combination is invalid (unsupported
/// scheduler/cap pairing, absurd density, or a planner rejection).
pub fn try_build_scenario(
    machine: Machine,
    vms_per_core: usize,
    kind: SchedKind,
    capped: bool,
    vantage: Box<dyn GuestWorkload>,
    background: Background,
) -> Result<(Sim, VcpuId), ScenarioError> {
    if vms_per_core == 0 || vms_per_core > 100 {
        return Err(ScenarioError::InvalidVmsPerCore { vms_per_core });
    }
    let n_cores = machine.n_cores();
    let n_vms = n_cores * vms_per_core;
    let utilization = Utilization::from_percent(100 / vms_per_core as u32);

    let sched: Box<dyn xensim::VmScheduler> = match kind {
        SchedKind::Credit => Box::new(Credit::new(machine)),
        SchedKind::Credit2 => {
            if capped {
                return Err(ScenarioError::UnsupportedCombination {
                    scheduler: "Credit2",
                    capped,
                    reason: "Credit2 does not support caps (Sec. 7.2)",
                });
            }
            Box::new(Credit2::new(machine))
        }
        SchedKind::Rtds => {
            if !capped {
                return Err(ScenarioError::UnsupportedCombination {
                    scheduler: "RTDS",
                    capped,
                    reason: "RTDS is not work-conserving; capped only",
                });
            }
            let mut r = Rtds::new(machine);
            r.set_default_params(utilization.budget_in(RTDS_PERIOD), RTDS_PERIOD);
            Box::new(r)
        }
        SchedKind::Tableau => {
            let mut host = HostConfig::new(n_cores);
            let spec = if capped {
                VcpuSpec::capped(utilization, LATENCY_GOAL)
            } else {
                VcpuSpec::new(utilization, LATENCY_GOAL)
            };
            for i in 0..n_vms {
                host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
            }
            let p = plan(&host, &PlannerOptions::default())?;
            Box::new(Tableau::from_plan(&p))
        }
    };

    let mut sim = Sim::new(machine, sched);
    let vantage_id = sim.add_vcpu(vantage, 0, false);
    for i in 1..n_vms {
        sim.add_vcpu(background.workload(), i % n_cores, true);
    }

    // Credit caps are per-vCPU runtime configuration.
    if capped && kind == SchedKind::Credit {
        let ppm = utilization.ppm();
        let credit = sim
            .scheduler_mut()
            .as_any()
            .downcast_mut::<Credit>()
            .expect("credit scheduler");
        for i in 0..n_vms {
            credit.set_cap(VcpuId(i as u32), ppm);
        }
    }

    Ok((sim, vantage_id))
}

/// Infallible wrapper over [`try_build_scenario`] for the paper's known-good
/// shapes.
///
/// # Panics
///
/// Panics with the [`ScenarioError`]'s message if the combination is
/// invalid (Credit2 capped, RTDS uncapped, planner rejection).
pub fn build_scenario(
    machine: Machine,
    vms_per_core: usize,
    kind: SchedKind,
    capped: bool,
    vantage: Box<dyn GuestWorkload>,
    background: Background,
) -> (Sim, VcpuId) {
    try_build_scenario(machine, vms_per_core, kind, capped, vantage, background)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// The scheduler line-up for a capped scenario (Sec. 7.2's split).
pub const CAPPED_SCHEDULERS: [SchedKind; 3] =
    [SchedKind::Credit, SchedKind::Rtds, SchedKind::Tableau];

/// The scheduler line-up for an uncapped scenario.
pub const UNCAPPED_SCHEDULERS: [SchedKind; 3] =
    [SchedKind::Credit, SchedKind::Credit2, SchedKind::Tableau];

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::IntrinsicLatency;

    #[test]
    fn guest_machines_match_paper_minus_dom0() {
        assert_eq!(guest_machine_16core().n_cores(), 12);
        assert_eq!(guest_machine_48core().n_cores(), 44);
    }

    #[test]
    fn all_scenarios_build() {
        let m = Machine::small(2);
        for kind in CAPPED_SCHEDULERS {
            let (sim, v) = build_scenario(
                m,
                4,
                kind,
                true,
                Box::new(IntrinsicLatency::new()),
                Background::Io,
            );
            assert_eq!(v, VcpuId(0));
            assert_eq!(sim.machine().n_cores(), 2);
        }
        for kind in UNCAPPED_SCHEDULERS {
            let (_sim, _) = build_scenario(
                m,
                4,
                kind,
                false,
                Box::new(IntrinsicLatency::new()),
                Background::Cpu,
            );
        }
    }

    #[test]
    #[should_panic(expected = "Credit2 does not support caps")]
    fn credit2_capped_is_rejected() {
        let _ = build_scenario(
            Machine::small(1),
            4,
            SchedKind::Credit2,
            true,
            Box::new(IntrinsicLatency::new()),
            Background::None,
        );
    }

    #[test]
    fn invalid_combinations_surface_as_typed_errors() {
        let mk = || Box::new(IntrinsicLatency::new());
        let m = Machine::small(1);
        let err = |r: Result<(Sim, VcpuId), ScenarioError>| match r {
            Ok(_) => panic!("expected a scenario error"),
            Err(e) => e,
        };
        let e = err(try_build_scenario(
            m,
            4,
            SchedKind::Credit2,
            true,
            mk(),
            Background::None,
        ));
        assert!(e.to_string().contains("Credit2 does not support caps"));
        let e = err(try_build_scenario(
            m,
            4,
            SchedKind::Rtds,
            false,
            mk(),
            Background::None,
        ));
        assert!(e.to_string().contains("capped only"));
        let e = err(try_build_scenario(
            m,
            0,
            SchedKind::Tableau,
            true,
            mk(),
            Background::None,
        ));
        assert_eq!(e, ScenarioError::InvalidVmsPerCore { vms_per_core: 0 });
        // Every diagnostic is a single line.
        for e in [
            ScenarioError::InvalidVmsPerCore { vms_per_core: 500 },
            ScenarioError::UnsupportedCombination {
                scheduler: "Credit2",
                capped: true,
                reason: "Credit2 does not support caps (Sec. 7.2)",
            },
        ] {
            assert!(!e.to_string().contains('\n'), "{e}");
        }
    }

    #[test]
    fn rtds_budget_matches_utilization() {
        assert_eq!(
            Utilization::from_percent(25).budget_in(RTDS_PERIOD),
            RTDS_BUDGET
        );
    }
}
