//! Report rendering: aligned text tables (the paper's rows) plus JSON
//! artifacts for downstream plotting.

use std::io::Write;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Prints an aligned table with a header row.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Directory where experiment JSON artifacts are written.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("TABLEAU_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Serializes `value` as pretty JSON into `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    write_json_to(&results_dir(), name, value)
}

/// Serializes `value` as pretty JSON into `<dir>/<name>.json`.
///
/// Tests use this with an explicit temporary directory instead of mutating
/// the process-global `TABLEAU_RESULTS_DIR` (which races with parallel
/// tests and can clobber the tracked `results/` artifacts).
pub fn write_json_to<T: Serialize>(dir: &Path, name: &str, value: &T) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize report");
    let mut f = std::fs::File::create(&path).expect("create report file");
    f.write_all(json.as_bytes()).expect("write report");
    println!("[written] {}", path.display());
    path
}

/// The short git revision of the working tree, or `"unknown"` outside a
/// repository. Artifact metadata records this so every `results/*.json`
/// file names the code that produced it.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Formats a nanosecond value as milliseconds with two decimals.
pub fn ms(ns: rtsched::time::Nanos) -> String {
    format!("{:.2}", ns.as_millis_f64())
}

/// Formats a microsecond float with two decimals.
pub fn us(v: f64) -> String {
    format!("{v:.2}")
}

/// Checks a JSON artifact path exists (test helper).
pub fn artifact_exists(name: &str) -> bool {
    Path::new(&results_dir().join(format!("{name}.json"))).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[
                vec!["1".into(), "22".into()],
                vec!["333".into(), "4".into()],
            ],
        );
    }

    #[test]
    fn json_round_trip() {
        // Explicit output dir: no process-global env mutation, so this is
        // safe alongside other tests running in parallel threads.
        let dir = std::env::temp_dir().join("tbl-test-json-round-trip");
        let path = write_json_to(&dir, "unit-test", &vec![1, 2, 3]);
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        assert!(path.exists());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(rtsched::time::Nanos::from_micros(1_500)), "1.50");
        assert_eq!(us(2.34567), "2.35");
    }
}
