//! Tableau design-space sweep: the cost of a latency goal.
//!
//! The latency goal `L` is Tableau's only real knob: the planner turns it
//! into the period `T <= L / (2 (1 - U))`, and everything else follows.
//! Tight goals buy low scheduling delay with *shorter periods*, which cost
//! more context switches, more dispatcher invocations, and bigger tables;
//! loose goals amortize overheads but let requests wait out long blackouts.
//! This sweep quantifies the trade-off on the paper's platform: a 25% web
//! vantage VM under I/O background, with `L` swept across the service
//! tiers a provider might sell.
//!
//! The paper touches this frontier implicitly (Fig. 3/4's 1 ms-goal planner
//! costs; Fig. 7's 20 ms-goal latencies); here it becomes one curve.

use serde::Serialize;

use rtsched::time::Nanos;
use schedulers::Tableau;
use tableau_core::binary::encoded_size;
use tableau_core::planner::{plan, PlannerOptions};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
use workloads::{constant_rate_arrivals, HttpServer, IoStress};
use xensim::stats::OpKind;
use xensim::{Machine, Sim};

use crate::report::{print_table, write_json};

/// One point of the latency-goal sweep.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyPoint {
    /// Configured latency goal (ms).
    pub goal_ms: u64,
    /// Period the planner chose (ms).
    pub period_ms: f64,
    /// Mean request latency (ms).
    pub mean_ms: f64,
    /// p99 request latency (ms).
    pub p99_ms: f64,
    /// Max request latency (ms).
    pub max_ms: f64,
    /// Scheduler decisions per second (dispatcher invocation rate).
    pub decisions_per_sec: f64,
    /// Compiled table size in bytes.
    pub table_bytes: usize,
}

/// Measures one latency goal.
pub fn measure(machine: Machine, goal: Nanos, rate: f64, duration: Nanos) -> LatencyPoint {
    let n_cores = machine.n_cores();
    let mut host = HostConfig::new(n_cores);
    let spec = VcpuSpec::capped(Utilization::from_percent(25), goal);
    for i in 0..n_cores * 4 {
        host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
    }
    let p = plan(&host, &PlannerOptions::default()).expect("plans");
    let period = p.params[0].period;
    let table_bytes = encoded_size(&p.table);

    let mut sim = Sim::new(machine, Box::new(Tableau::from_plan(&p)));
    let vantage = sim.add_vcpu(Box::new(HttpServer::new(1024)), 0, false);
    for i in 1..n_cores * 4 {
        sim.add_vcpu(Box::new(IoStress::paper_default()), i % n_cores, true);
    }
    for t in constant_rate_arrivals(rate, duration) {
        sim.push_external(t, vantage, 0);
    }
    sim.run_until(duration);

    let decisions = sim.stats().ops.get(OpKind::Schedule).count;
    let server = sim
        .workload_mut(vantage)
        .as_any()
        .downcast_ref::<HttpServer>()
        .unwrap();
    LatencyPoint {
        goal_ms: goal.as_millis(),
        period_ms: period.as_millis_f64(),
        mean_ms: server.latencies.mean().as_millis_f64(),
        p99_ms: server
            .latencies
            .p99()
            .unwrap_or(Nanos::ZERO)
            .as_millis_f64(),
        max_ms: server.latencies.max().as_millis_f64(),
        decisions_per_sec: decisions as f64 / duration.as_secs_f64(),
        table_bytes,
    }
}

/// Measures every goal of the sweep, with no I/O side effects (tests call
/// this; only [`run`] writes the artifact).
///
/// Every point is an independent simulation in simulated time, so the
/// points run concurrently and reassemble in goal order with results
/// identical to the sequential sweep.
pub fn sweep(quick: bool) -> Vec<LatencyPoint> {
    let machine = crate::config::guest_machine_16core();
    let duration = if quick {
        Nanos::from_millis(600)
    } else {
        Nanos::from_secs(4)
    };
    let goals: &[u64] = if quick {
        &[2, 100]
    } else {
        &[2, 5, 20, 50, 100]
    };
    let rate = 800.0; // half of the 1 KiB saturation point
    rayon::par_map_indices(goals.len(), |i| {
        measure(machine, Nanos::from_millis(goals[i]), rate, duration)
    })
}

/// Runs the sweep.
pub fn run(quick: bool) -> Vec<LatencyPoint> {
    let points = sweep(quick);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.goal_ms.to_string(),
                format!("{:.2}", p.period_ms),
                format!("{:.2}", p.mean_ms),
                format!("{:.2}", p.p99_ms),
                format!("{:.2}", p.max_ms),
                format!("{:.0}", p.decisions_per_sec),
                format!("{:.1} KiB", p.table_bytes as f64 / 1024.0),
            ]
        })
        .collect();
    print_table(
        "Latency-goal sweep: 1 KiB HTTPS @ 800 rps, capped Tableau, IO BG",
        &[
            "goal(ms)",
            "period(ms)",
            "mean",
            "p99",
            "max",
            "decisions/s",
            "table",
        ],
        &rows,
    );
    write_json("latency_goal_sweep", &points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighter_goals_buy_lower_latency_at_higher_overhead() {
        let machine = Machine::small(2);
        let d = Nanos::from_secs(2);
        let tight = measure(machine, Nanos::from_millis(2), 400.0, d);
        let loose = measure(machine, Nanos::from_millis(100), 400.0, d);
        // Latency: the tight tier is far more responsive.
        assert!(
            tight.p99_ms * 3.0 < loose.p99_ms,
            "tight {} vs loose {}",
            tight.p99_ms,
            loose.p99_ms
        );
        // Overheads: it pays with a bigger table and shorter periods (the
        // dispatcher invocation rate is dominated by the I/O background's
        // wake-ups in this scenario, so it moves only slightly — another
        // reason table-driven scheduling tolerates tight tiers well).
        assert!(tight.table_bytes > loose.table_bytes);
        assert!(tight.period_ms < loose.period_ms / 10.0);
        // Both stay within their configured bounds.
        assert!(tight.max_ms <= 2.2, "{}", tight.max_ms);
        assert!(loose.max_ms <= 100.0, "{}", loose.max_ms);
    }

    #[test]
    fn chosen_periods_scale_with_the_goal() {
        let machine = Machine::small(1);
        let d = Nanos::from_millis(400);
        let p2 = measure(machine, Nanos::from_millis(2), 100.0, d);
        let p100 = measure(machine, Nanos::from_millis(100), 100.0, d);
        assert!(p2.period_ms < 1.5);
        assert!(p100.period_ms > 30.0);
    }
}
