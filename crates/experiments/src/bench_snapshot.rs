//! `bench snapshot`: the tracked perf trajectory.
//!
//! Experiment sweeps now run their points concurrently, so their wall-clock
//! columns measure *contended* time; this module is the uncontended timing
//! source. It times the three planner stages through the full [`plan`]
//! entry point, the [`PlanCache`] hit and miss paths, and the dispatcher's
//! [`Dispatcher::decide`]/wake-up/table-switch hot paths, then writes
//! `BENCH_planner.json` and `BENCH_dispatch.json` at the repo root.
//!
//! Those two files are committed: each PR that lands a perf-relevant change
//! reruns `experiments bench snapshot` and commits the refreshed numbers,
//! so the trajectory is readable from git history alone. The `meta` block
//! (schema tag, seed, machine cores, worker threads, git rev) makes any
//! two snapshots comparable — or flags them as apples-to-oranges when the
//! machines differ. `--quick` runs a reduced iteration count and validates
//! the schema round-trip against a scratch directory without touching the
//! tracked files (the CI smoke path).

use std::path::PathBuf;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use rtsched::generator::Stage;
use rtsched::time::Nanos;
use tableau_core::cache::PlanCache;
use tableau_core::dispatch::Dispatcher;
use tableau_core::planner::{plan, PlannerOptions};
use tableau_core::vcpu::VcpuId;
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};

use crate::report::{print_table, write_json_to};

/// Schema tag; bump when the snapshot format changes incompatibly.
pub const SCHEMA: &str = "tableau-bench-v1";

/// Provenance of a snapshot: everything needed to judge whether two
/// snapshots are comparable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchMeta {
    /// Format version ([`SCHEMA`]).
    pub schema: String,
    /// True for the reduced `--quick` configuration (never committed).
    pub quick: bool,
    /// Recorded sweep seed (the bench inputs themselves are fixed).
    pub seed: u64,
    /// Physical cores on the measuring host.
    pub machine_cores: usize,
    /// Worker threads the parallel pipeline used.
    pub threads: usize,
    /// `git rev-parse --short HEAD`, or `"unknown"` outside a checkout.
    pub git_rev: String,
}

/// One timed hot path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable entry name (`area/path`), the join key across snapshots.
    pub name: String,
    /// Timed iterations (after one untimed warm-up).
    pub iters: u64,
    /// Total wall-clock for all iterations (ns).
    pub total_ns: u64,
    /// Mean per-iteration wall-clock (ns).
    pub mean_ns: f64,
}

/// A full snapshot artifact (`BENCH_planner.json` / `BENCH_dispatch.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Run provenance.
    pub meta: BenchMeta,
    /// Timed entries, in a fixed order.
    pub entries: Vec<BenchEntry>,
}

fn time_entry<R>(name: &str, iters: u64, mut f: impl FnMut() -> R) -> BenchEntry {
    std::hint::black_box(f()); // warm-up: page in code and data
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = t0.elapsed();
    BenchEntry {
        name: name.to_string(),
        iters,
        total_ns: total.as_nanos() as u64,
        mean_ns: total.as_nanos() as f64 / iters as f64,
    }
}

/// `n_vms` single-vCPU VMs at `pct`% utilization with a 20 ms goal.
fn bench_host(n_cores: usize, n_vms: usize, pct: u32) -> HostConfig {
    let mut h = HostConfig::new(n_cores);
    let spec = VcpuSpec::capped(Utilization::from_percent(pct), Nanos::from_millis(20));
    for i in 0..n_vms {
        h.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
    }
    h
}

fn meta(quick: bool, seed: u64) -> BenchMeta {
    BenchMeta {
        schema: SCHEMA.to_string(),
        quick,
        seed,
        machine_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        threads: rayon::current_num_threads(),
        git_rev: crate::report::git_rev(),
    }
}

/// Times the planner hot paths: the three generation stages (each through
/// the full `plan()` entry point) and the cache hit/miss paths.
pub fn planner_snapshot(quick: bool, seed: u64) -> BenchSnapshot {
    let iters: u64 = if quick { 2 } else { 20 };
    // Mirrors the criterion bench sets: an easily partitionable 4-per-core
    // set, and a 60%-utilization set that forces C=D splitting.
    let easy = bench_host(8, 32, 25);
    let split = bench_host(8, 13, 60);
    let defaults = PlannerOptions::default();
    let mut clustered = PlannerOptions::default();
    clustered.gen.first_stage = Stage::Clustered;

    let entries = vec![
        time_entry("plan/partitioned", iters, || {
            let p = plan(&easy, &defaults).expect("easy set plans");
            assert_eq!(p.stage, Stage::Partitioned);
            p
        }),
        time_entry("plan/semi_partitioned", iters, || {
            let p = plan(&split, &defaults).expect("split set plans");
            assert_eq!(p.stage, Stage::SemiPartitioned);
            p
        }),
        time_entry("plan/clustered", iters, || {
            plan(&split, &clustered).expect("clustered set plans")
        }),
        time_entry("cache/miss", iters, || {
            // A fresh cache per iteration: the full miss path (key build,
            // plan, insert).
            let mut c = PlanCache::new(4);
            c.get_or_plan(&easy, &defaults).expect("plans")
        }),
        {
            let mut c = PlanCache::new(4);
            c.get_or_plan(&easy, &defaults).expect("plans");
            time_entry("cache/hit", iters.max(100), move || {
                c.get_or_plan(&easy, &defaults).expect("plans")
            })
        },
    ];
    BenchSnapshot {
        meta: meta(quick, seed),
        entries,
    }
}

/// Times the dispatcher hot paths: first/second-level `decide`, wake-up
/// routing, and the two-phase table switch.
pub fn dispatch_snapshot(quick: bool, seed: u64) -> BenchSnapshot {
    let iters: u64 = if quick { 1_000 } else { 100_000 };
    let host = bench_host(8, 32, 25);
    let p = plan(&host, &PlannerOptions::default()).expect("bench host plans");
    let len = p.table.len();
    let n_vcpus = p.params.len();
    let make = |capped: bool| Dispatcher::new(p.table.clone(), vec![capped; n_vcpus], len);

    let entries = vec![
        {
            let mut d = make(false);
            let mut i = 0u64;
            time_entry("dispatch/decide", iters, move || {
                i += 1;
                let core = (i % 8) as usize;
                let now = Nanos(i * 50_000 % len.as_nanos());
                d.decide(core, now, |_| true)
            })
        },
        {
            let mut d = make(true);
            let mut i = 0u64;
            time_entry("dispatch/wakeup_capped", iters, move || {
                i += 1;
                let v = VcpuId((i % n_vcpus as u64) as u32);
                let now = Nanos(i * 50_000 % len.as_nanos());
                d.wakeup_target(v, now)
            })
        },
        {
            let mut d = make(false);
            let table = p.table.clone();
            time_entry("dispatch/table_switch_begin_abort", iters, move || {
                let staged = d
                    .begin_table_switch(table.clone(), Nanos(1))
                    .expect("stages");
                d.abort_table_switch();
                staged
            })
        },
        {
            let mut d = make(false);
            let table = p.table.clone();
            let mut round = 0u64;
            time_entry(
                "dispatch/table_switch_commit",
                iters.min(10_000),
                move || {
                    // Advance by a round per install so each arm time is fresh;
                    // touch every core past the switch and collect garbage so
                    // the epoch list stays O(1).
                    let now = len * round;
                    let staged = d.begin_table_switch(table.clone(), now).expect("stages");
                    let done = d.commit_table_switch(staged).expect("staged");
                    for core in 0..8 {
                        std::hint::black_box(d.decide(core, done, |_| true));
                    }
                    round += 2;
                    d.collect_garbage()
                },
            )
        },
    ];
    BenchSnapshot {
        meta: meta(quick, seed),
        entries,
    }
}

/// Where full-mode snapshots go: the repo root (`git rev-parse
/// --show-toplevel`), overridable with `TABLEAU_BENCH_DIR`.
fn bench_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("TABLEAU_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--show-toplevel"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| PathBuf::from(String::from_utf8_lossy(&o.stdout).trim()))
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Reads a written snapshot back and checks it is well-formed — the schema
/// smoke check CI runs via `--quick`.
fn validate(path: &std::path::Path) -> BenchSnapshot {
    let text = std::fs::read_to_string(path).expect("read snapshot back");
    let snap: BenchSnapshot = serde_json::from_str(&text).expect("snapshot schema round-trips");
    assert_eq!(snap.meta.schema, SCHEMA, "schema tag mismatch");
    assert!(!snap.entries.is_empty(), "snapshot has no entries");
    for e in &snap.entries {
        assert!(
            e.iters > 0 && e.mean_ns > 0.0,
            "degenerate entry {}",
            e.name
        );
    }
    snap
}

/// Runs both snapshots, prints them, writes and validates the artifacts.
///
/// Full mode writes `BENCH_planner.json`/`BENCH_dispatch.json` at the repo
/// root (the committed trajectory); `--quick` writes to a scratch
/// directory instead so a smoke run never dirties the tracked files.
pub fn run(quick: bool, seed: u64) -> (BenchSnapshot, BenchSnapshot) {
    let planner = planner_snapshot(quick, seed);
    let dispatch = dispatch_snapshot(quick, seed);

    for (title, snap) in [("planner", &planner), ("dispatch", &dispatch)] {
        let rows: Vec<Vec<String>> = snap
            .entries
            .iter()
            .map(|e| {
                vec![
                    e.name.clone(),
                    e.iters.to_string(),
                    format!("{:.1}", e.mean_ns / 1e3),
                ]
            })
            .collect();
        print_table(
            &format!(
                "bench snapshot [{title}] rev={} cores={} threads={}",
                snap.meta.git_rev, snap.meta.machine_cores, snap.meta.threads
            ),
            &["entry", "iters", "mean(us)"],
            &rows,
        );
    }

    let dir = if quick {
        std::env::temp_dir().join("tableau-bench-quick")
    } else {
        bench_dir()
    };
    let p_path = write_json_to(&dir, "BENCH_planner", &planner);
    let d_path = write_json_to(&dir, "BENCH_dispatch", &dispatch);
    validate(&p_path);
    validate(&d_path);
    (planner, dispatch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshots_cover_the_hot_paths() {
        let planner = planner_snapshot(true, 42);
        let names: Vec<&str> = planner.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "plan/partitioned",
                "plan/semi_partitioned",
                "plan/clustered",
                "cache/miss",
                "cache/hit"
            ]
        );
        assert_eq!(planner.meta.schema, SCHEMA);
        assert!(planner.meta.quick);
        for e in &planner.entries {
            assert!(e.mean_ns > 0.0, "{} has no measured time", e.name);
        }
        // The hit path must be far cheaper than the miss path (it skips
        // planning entirely) — this is the cache's reason to exist.
        let mean = |n: &str| {
            planner
                .entries
                .iter()
                .find(|e| e.name == n)
                .unwrap()
                .mean_ns
        };
        assert!(mean("cache/hit") * 10.0 < mean("cache/miss"));
    }

    #[test]
    fn snapshot_schema_round_trips_through_json() {
        let dispatch = dispatch_snapshot(true, 7);
        assert_eq!(dispatch.entries.len(), 4);
        let dir = std::env::temp_dir().join("tableau-bench-schema-test");
        let path = write_json_to(&dir, "BENCH_dispatch_test", &dispatch);
        let back = validate(&path);
        assert_eq!(back.meta.seed, 7);
        assert_eq!(back.entries.len(), dispatch.entries.len());
        for (a, b) in back.entries.iter().zip(&dispatch.entries) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.total_ns, b.total_ns);
        }
    }
}
