//! `bench snapshot`: the tracked perf trajectory.
//!
//! Experiment sweeps now run their points concurrently, so their wall-clock
//! columns measure *contended* time; this module is the uncontended timing
//! source. It times the three planner stages through the full [`plan`]
//! entry point, the [`PlanCache`] hit and miss paths, and the dispatcher's
//! [`Dispatcher::decide`]/wake-up/table-switch hot paths, then writes
//! `BENCH_planner.json` and `BENCH_dispatch.json` at the repo root.
//!
//! Those files are committed: each PR that lands a perf-relevant change
//! reruns `experiments bench snapshot` and commits the refreshed numbers,
//! so the trajectory is readable from git history alone. The `meta` block
//! (schema tag, seed, machine cores, worker threads, git rev) makes any
//! two snapshots comparable — or flags them as apples-to-oranges when the
//! machines differ. `--quick` runs a reduced iteration count, validates
//! the schema round-trip against a scratch directory without touching the
//! tracked files, and gates every entry against the committed snapshot:
//! a mean more than [`REGRESSION_FACTOR`]x the committed one fails the
//! run (the CI smoke path).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use rtsched::generator::Stage;
use rtsched::rules::RuleEngine;
use rtsched::schedule::{CoreSchedule, MultiCoreSchedule, Segment};
use rtsched::task::{PeriodicTask, TaskId};
use rtsched::time::Nanos;
use rtsched::verify::verify_schedule;
use schedulers::tableau::Tableau;
use tableau_core::cache::PlanCache;
use tableau_core::dispatch::Dispatcher;
use tableau_core::plan_delta;
use tableau_core::planner::{plan, PlannerOptions};
use tableau_core::vcpu::VcpuId;
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
use workloads::{IntrinsicLatency, IoStress};
use xensim::sched::BusyLoop;
use xensim::{EngineKind, Machine, Sim};

use crate::config::{build_scenario, Background, SchedKind};
use crate::report::{print_table, write_json_to};

/// Schema tag; bump when the snapshot format changes incompatibly.
pub const SCHEMA: &str = "tableau-bench-v1";

/// Provenance of a snapshot: everything needed to judge whether two
/// snapshots are comparable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchMeta {
    /// Format version ([`SCHEMA`]).
    pub schema: String,
    /// True for the reduced `--quick` configuration (never committed).
    pub quick: bool,
    /// Recorded sweep seed (the bench inputs themselves are fixed).
    pub seed: u64,
    /// Physical cores on the measuring host.
    pub machine_cores: usize,
    /// Worker threads the parallel pipeline used.
    pub threads: usize,
    /// `git rev-parse --short HEAD`, or `"unknown"` outside a checkout.
    pub git_rev: String,
}

/// One timed hot path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable entry name (`area/path`), the join key across snapshots.
    pub name: String,
    /// Timed iterations (after one untimed warm-up).
    pub iters: u64,
    /// Total wall-clock for all iterations (ns).
    pub total_ns: u64,
    /// Mean per-iteration wall-clock (ns).
    pub mean_ns: f64,
}

/// A full snapshot artifact (`BENCH_planner.json` / `BENCH_dispatch.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Run provenance.
    pub meta: BenchMeta,
    /// Timed entries, in a fixed order.
    pub entries: Vec<BenchEntry>,
}

fn time_entry<R>(name: &str, iters: u64, mut f: impl FnMut() -> R) -> BenchEntry {
    std::hint::black_box(f()); // warm-up: page in code and data
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = t0.elapsed();
    BenchEntry {
        name: name.to_string(),
        iters,
        total_ns: total.as_nanos() as u64,
        mean_ns: total.as_nanos() as f64 / iters as f64,
    }
}

/// `n_vms` single-vCPU VMs at `pct`% utilization with a 20 ms goal.
fn bench_host(n_cores: usize, n_vms: usize, pct: u32) -> HostConfig {
    bench_host_with_goal(n_cores, n_vms, pct, Nanos::from_millis(20))
}

/// `n_vms` single-vCPU VMs at `pct`% utilization with an explicit goal —
/// the paper-scale entries use the punishing 1 ms goal.
fn bench_host_with_goal(n_cores: usize, n_vms: usize, pct: u32, goal: Nanos) -> HostConfig {
    let mut h = HostConfig::new(n_cores);
    let spec = VcpuSpec::capped(Utilization::from_percent(pct), goal);
    for i in 0..n_vms {
        h.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
    }
    h
}

/// The paper-scale verification substrate: a 44-core, 176-task schedule
/// (4 tasks per core, 0.5 ms each over a 2 ms hyperperiod) in rtsched
/// types, i.e. the exact inputs `verify_schedule` and the rule engine see.
#[allow(clippy::type_complexity)]
fn verify_host_176() -> (Vec<Vec<PeriodicTask>>, Vec<Vec<Segment>>, MultiCoreSchedule) {
    let h = Nanos::from_millis(2);
    let q = h / 4;
    let bins: Vec<Vec<PeriodicTask>> = (0..44u32)
        .map(|c| {
            (0..4u32)
                .map(|i| PeriodicTask::implicit(TaskId(c * 4 + i), q, h))
                .collect()
        })
        .collect();
    let slots: Vec<Vec<Segment>> = (0..44u64)
        .map(|c| {
            (0..4u64)
                .map(|i| Segment::new(q * i, q * (i + 1), TaskId((c * 4 + i) as u32)))
                .collect()
        })
        .collect();
    let sched = MultiCoreSchedule {
        hyperperiod: h,
        cores: slots
            .iter()
            .map(|v| CoreSchedule::from_segments(v.clone()).expect("valid core"))
            .collect(),
    };
    (bins, slots, sched)
}

/// Times one full single-pass verify of the 176-task host.
fn verify_full_entry(iters: u64) -> BenchEntry {
    let (bins, _, sched) = verify_host_176();
    let tasks: Vec<PeriodicTask> = bins.into_iter().flatten().collect();
    time_entry("verify/full_176", iters.max(100), || {
        let v = verify_schedule(&tasks, &sched);
        assert!(v.is_empty(), "bench schedule must be valid");
        v
    })
}

/// Times re-certifying a single-bin delta through the rule engine on the
/// same host: one retract+assert plus an O(dirty-core) re-derivation.
fn verify_delta_entry(iters: u64) -> BenchEntry {
    let (bins, slots, sched) = verify_host_176();
    let mut engine = RuleEngine::from_bins(sched.hyperperiod, &bins, &sched);
    assert!(
        engine.verdict().expect("engine certifies").is_empty(),
        "bench schedule must be valid"
    );
    time_entry("verify/delta_incremental", iters.max(100), || {
        engine
            .apply_delta(0, bins[0].clone(), slots[0].clone())
            .expect("re-asserting a self-contained bin");
        let v = engine.verdict().expect("engine certifies");
        assert!(v.is_empty());
        v
    })
}

pub(crate) fn meta(quick: bool, seed: u64) -> BenchMeta {
    BenchMeta {
        schema: SCHEMA.to_string(),
        quick,
        seed,
        machine_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        threads: rayon::current_num_threads(),
        git_rev: crate::report::git_rev(),
    }
}

/// Times the planner hot paths: the three generation stages (each through
/// the full `plan()` entry point) and the cache hit/miss paths.
pub fn planner_snapshot(quick: bool, seed: u64) -> BenchSnapshot {
    let iters: u64 = if quick { 2 } else { 20 };
    // Mirrors the criterion bench sets: an easily partitionable 4-per-core
    // set, and a 60%-utilization set that forces C=D splitting.
    let easy = bench_host(8, 32, 25);
    let split = bench_host(8, 13, 60);
    let paper = bench_host_with_goal(44, 176, 25, Nanos::from_millis(1));
    let paper_iters: u64 = if quick { 1 } else { 5 };
    let defaults = PlannerOptions::default();
    let mut clustered = PlannerOptions::default();
    clustered.gen.first_stage = Stage::Clustered;

    let entries = vec![
        time_entry("plan/partitioned", iters, || {
            let p = plan(&easy, &defaults).expect("easy set plans");
            assert_eq!(p.stage, Stage::Partitioned);
            p
        }),
        time_entry("plan/semi_partitioned", iters, || {
            let p = plan(&split, &defaults).expect("split set plans");
            assert_eq!(p.stage, Stage::SemiPartitioned);
            p
        }),
        time_entry("plan/clustered", iters, || {
            plan(&split, &clustered).expect("clustered set plans")
        }),
        // The Fig. 3 stress cell: 176 VMs on 44 cores at the 1 ms goal —
        // the shape the memoized generator exists for (every bin shares one
        // signature). Few iterations: each run is milliseconds, not micro.
        time_entry("plan/partitioned_176", paper_iters, || {
            let p = plan(&paper, &defaults).expect("paper-scale set plans");
            assert_eq!(p.stage, Stage::Partitioned);
            p
        }),
        time_entry("plan/clustered_176", paper_iters, || {
            plan(&paper, &clustered).expect("paper-scale clustered set plans")
        }),
        // Single-VM churn on the same paper-scale host: the 175-VM plan is
        // delta-patched to the 176-VM shape. One bin is dirtied (WFD ties
        // break by index, so prior assignments are stable); 43 cores reuse
        // their compiled schedules, so the mean must sit far below the
        // full plan/partitioned_176 replan.
        {
            let paper_prev = bench_host_with_goal(44, 175, 25, Nanos::from_millis(1));
            let prev_plan = plan(&paper_prev, &defaults).expect("175-VM host plans");
            time_entry("plan/delta_single_vm", iters, || {
                let (p, report) = plan_delta(&paper_prev, &prev_plan, &paper, &defaults)
                    .expect("single-VM add delta applies");
                assert_eq!(report.dirty_cores.len(), 1, "one bin dirtied");
                p
            })
        },
        verify_full_entry(iters),
        verify_delta_entry(iters),
        time_entry("cache/miss", iters, || {
            // A fresh cache per iteration: the full miss path (key build,
            // plan, insert).
            let mut c = PlanCache::new(4);
            c.get_or_plan(&easy, &defaults).expect("plans")
        }),
        {
            let mut c = PlanCache::new(4);
            c.get_or_plan(&easy, &defaults).expect("plans");
            time_entry("cache/hit", iters.max(100), move || {
                c.get_or_plan(&easy, &defaults).expect("plans")
            })
        },
    ];
    // The ISSUE 8 acceptance bar: re-certifying a single-bin delta through
    // the rule engine must be at least 5x cheaper than a full single-pass
    // verify of the same 176-task host (the expected gap is far larger).
    let mean = |n: &str| {
        entries
            .iter()
            .find(|e| e.name == n)
            .map(|e| e.mean_ns)
            .expect("verify entries present")
    };
    assert!(
        mean("verify/delta_incremental") * 5.0 < mean("verify/full_176"),
        "incremental delta verify ({:.0} ns) must be >= 5x cheaper than the \
         full pass ({:.0} ns)",
        mean("verify/delta_incremental"),
        mean("verify/full_176")
    );
    BenchSnapshot {
        meta: meta(quick, seed),
        entries,
    }
}

/// Times the dispatcher hot paths: first/second-level `decide`, wake-up
/// routing, and the two-phase table switch.
pub fn dispatch_snapshot(quick: bool, seed: u64) -> BenchSnapshot {
    let iters: u64 = if quick { 1_000 } else { 100_000 };
    let host = bench_host(8, 32, 25);
    let p = plan(&host, &PlannerOptions::default()).expect("bench host plans");
    let len = p.table.len();
    let n_vcpus = p.params.len();
    // The control plane builds a table once and installs it everywhere; the
    // benches mirror that by sharing one `Arc<Table>` so per-install cost is
    // the staging/commit work itself, not a deep table clone.
    let table = Arc::new(p.table.clone());
    let make = |capped: bool| Dispatcher::new(table.clone(), vec![capped; n_vcpus], len);

    let entries = vec![
        {
            let mut d = make(false);
            let mut i = 0u64;
            time_entry("dispatch/decide", iters, move || {
                i += 1;
                let core = (i % 8) as usize;
                let now = Nanos(i * 50_000 % len.as_nanos());
                d.decide(core, now, |_| true)
            })
        },
        {
            let mut d = make(true);
            let mut i = 0u64;
            time_entry("dispatch/wakeup_capped", iters, move || {
                i += 1;
                let v = VcpuId((i % n_vcpus as u64) as u32);
                let now = Nanos(i * 50_000 % len.as_nanos());
                d.wakeup_target(v, now)
            })
        },
        {
            let mut d = make(false);
            let table = table.clone();
            time_entry("dispatch/table_switch_begin_abort", iters, move || {
                let staged = d
                    .begin_table_switch(table.clone(), Nanos(1))
                    .expect("stages");
                d.abort_table_switch();
                staged
            })
        },
        {
            let mut d = make(false);
            let table = table.clone();
            let mut round = 0u64;
            time_entry(
                "dispatch/table_switch_commit",
                iters.min(10_000),
                move || {
                    // Advance by a round per install so each arm time is fresh;
                    // touch every core past the switch and collect garbage so
                    // the epoch list stays O(1).
                    let now = len * round;
                    let staged = d.begin_table_switch(table.clone(), now).expect("stages");
                    let done = d.commit_table_switch(staged).expect("staged");
                    for core in 0..8 {
                        std::hint::black_box(d.decide(core, done, |_| true));
                    }
                    round += 2;
                    d.collect_garbage()
                },
            )
        },
    ];
    BenchSnapshot {
        meta: meta(quick, seed),
        entries,
    }
}

/// Wall-clock for repeated `run_until` calls over fresh scenarios; the
/// scenario build (planning, vCPU registration) is not timed. The entry
/// records only the fastest half of the iterations (sum, count, and
/// mean), and the fastest single iteration (ns) is returned alongside
/// for comparative assertions. A single descheduled iteration on a
/// contended shared runner runs 3–6x slow; a plain mean over few
/// iterations absorbs that outlier and trips the 3x regression gate on
/// noise alone, where the fastest-half mean stays within ~10% run to
/// run. Every `sim/*` entry gets this treatment: the committed
/// trajectory carries ratio claims (dense batching, PDES overhead) that
/// single-run means polluted in earlier PRs.
fn time_sim_entry_trimmed(
    name: &str,
    iters: u64,
    duration: Nanos,
    mk: impl FnMut() -> Sim,
) -> (BenchEntry, f64) {
    let mut samples = time_sim_samples(iters, duration, mk);
    samples.sort_unstable();
    let min = samples[0] as f64;
    let kept = &samples[..samples.len().div_ceil(2)];
    let total: u64 = kept.iter().sum();
    (
        BenchEntry {
            name: name.to_string(),
            iters: kept.len() as u64,
            total_ns: total,
            mean_ns: total as f64 / kept.len() as f64,
        },
        min,
    )
}

/// Per-iteration `run_until` wall times (ns) over fresh scenarios, after
/// one untimed warm-up replay.
fn time_sim_samples(iters: u64, duration: Nanos, mut mk: impl FnMut() -> Sim) -> Vec<u64> {
    let mut warm = mk(); // warm-up: page in code and data
    warm.run_until(duration);
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let mut sim = mk();
        let t0 = Instant::now();
        sim.run_until(duration);
        samples.push(t0.elapsed().as_nanos() as u64);
        std::hint::black_box(sim.events_processed());
    }
    samples
}

/// Times the simulator engine itself: `run_until` wall-clock on a dense
/// (I/O-churn) and a sparse (timer-tail) scenario, a pure-dense Tableau
/// phase under the hybrid (batched) and wheel (unbatched) engines, the
/// per-socket PDES engine against the sequential wheel on a two-socket
/// host (at one worker — the overhead bound — and at two), plus raw
/// event throughput on the 16-core scaling scenario. `mean_ns` of
/// `sim/events_per_sec` is ns *per event*: events/sec = 1e9 / mean_ns.
pub fn sim_snapshot(quick: bool, seed: u64) -> BenchSnapshot {
    let iters: u64 = if quick { 1 } else { 5 };
    let short = if quick {
        Nanos::from_millis(20)
    } else {
        Nanos::from_millis(200)
    };

    // Dense: four vCPUs per core all churning I/O — the event queue holds a
    // packed band of near-future timers, IPIs, and slice boundaries.
    let dense = || {
        let (sim, _v) = build_scenario(
            Machine::small(4),
            4,
            SchedKind::Tableau,
            true,
            Box::new(IoStress::paper_default()),
            Background::Io,
        );
        sim
    };
    // Sparse: one mostly-sleeping vCPU per core — long idle stretches where
    // the engine must skip empty time cheaply.
    let sparse = || {
        let (sim, _v) = build_scenario(
            Machine::small(4),
            1,
            SchedKind::Tableau,
            true,
            Box::new(IntrinsicLatency::new()),
            Background::None,
        );
        sim
    };

    // The pure-dense pair gets its own, longer horizon (quick mode
    // included): a 20 ms run ends before the batch-entry cooldown ever
    // lets batching engage, per-run setup would dominate short replays,
    // and the scenario is cheap either way — one second of simulated
    // dense phase is under two thousand slice boundaries.
    let dense_pair = Nanos::from_secs(1);

    // Pure-dense: eight capped busy-loop vCPUs per core under Tableau —
    // the high-density steady state the dense-phase detector exists for.
    // The batched row runs the hybrid engine; the unbatched twin runs the
    // *identical* scenario on the wheel reference engine, so the pair
    // measures the batching win inside one snapshot (the equivalence
    // suites prove the two are bit-for-bit identical in every
    // observable).
    let pure_dense = |kind: EngineKind| {
        move || {
            let mut host = HostConfig::new(2);
            let spec = VcpuSpec::capped(Utilization::from_percent(12), Nanos::from_millis(20));
            for i in 0..16 {
                host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
            }
            let p = plan(&host, &PlannerOptions::default()).expect("dense host plans");
            let mut sim = Sim::new(Machine::small(2), Box::new(Tableau::from_plan(&p)));
            sim.set_engine(kind);
            for i in 0..16 {
                sim.add_vcpu(Box::new(BusyLoop), i % 2, true);
            }
            sim
        }
    };

    // Event throughput on the 16-core scaling scenario (same topology rule
    // as the scaling sweep: sockets of ~11). Run several times and keep
    // the fastest half: the committed per-event figure drifted 101→160 ns
    // across PRs on single-run snapshots, which was scheduler noise on the
    // shared container, not a real slowdown.
    let scale_duration = if quick {
        Nanos::from_millis(100)
    } else {
        Nanos::from_secs(1)
    };
    let machine = Machine {
        n_sockets: 1,
        cores_per_socket: 16,
        ..Machine::xeon_16core()
    };
    let mk_scale = || {
        build_scenario(
            machine,
            4,
            SchedKind::Tableau,
            true,
            Box::new(IoStress::paper_default()),
            Background::Io,
        )
        .0
    };
    let scale_iters: u64 = 8;
    let mut scale_events = 1u64;
    let mut scale_samples = Vec::with_capacity(scale_iters as usize);
    {
        let mut warm = mk_scale();
        warm.run_until(scale_duration);
    }
    for _ in 0..scale_iters {
        let mut sim = mk_scale();
        let t0 = Instant::now();
        sim.run_until(scale_duration);
        scale_samples.push(t0.elapsed().as_nanos() as u64);
        scale_events = sim.events_processed().max(1);
    }
    scale_samples.sort_unstable();
    let kept = &scale_samples[..scale_samples.len().div_ceil(2)];
    let kept_wall: u64 = kept.iter().sum();
    // The run is deterministic, so every iteration processes the same
    // event count; `iters` records the events behind the kept wall time.
    let kept_events = scale_events * kept.len() as u64;
    let events_entry = BenchEntry {
        name: "sim/events_per_sec".to_string(),
        iters: kept_events,
        total_ns: kept_wall,
        mean_ns: kept_wall as f64 / kept_events as f64,
    };

    // Both halves of the pair run several iterations even in quick mode —
    // one replay is tens of microseconds, the comparative assertion below
    // wants a noise-robust minimum, and the trimmed entries need enough
    // samples to shed contention outliers.
    let pair_iters = iters.max(8);
    let (batched, batched_min) = time_sim_entry_trimmed(
        "sim/run_until_dense_batched",
        pair_iters,
        dense_pair,
        pure_dense(EngineKind::Hybrid),
    );
    let (unbatched, unbatched_min) = time_sim_entry_trimmed(
        "sim/run_until_dense_unbatched",
        pair_iters,
        dense_pair,
        pure_dense(EngineKind::Wheel),
    );
    // The dense-batching bar: advancing a settled dense phase from the
    // per-core slice-table windows measures ~3.3x cheaper than draining
    // the same boundaries through the generic event loop (see
    // EXPERIMENTS.md). The floor is set below that, and compares fastest
    // iterations, so timing noise on a loaded shared runner cannot flake
    // the gate; the committed trajectory tracks the real ratio.
    assert!(
        batched_min * 2.5 < unbatched_min,
        "dense batching (min {batched_min:.0} ns) must be well below the \
         unbatched twin (min {unbatched_min:.0} ns)",
    );

    // The PDES A/B pair: one committed two-socket Tableau host, every
    // vCPU homed on its *table* core so the per-socket lanes own disjoint
    // placements and the partitioned engine engages rather than declining.
    // The guests run the paper's target regime — high-density capped VMs
    // in dense phases — so each lane composes dense batching inside its
    // lookahead windows while still paying the full per-event lane
    // bookkeeping and boundary re-enactment (batched events are recorded
    // one by one). The partitioned half is pinned to **one** worker — on
    // this single-core container any ≥2-worker speedup is structural, so
    // the honest claim is the overhead bound: 1-worker partitioned must
    // stay within 15% of the sequential wheel on the identical scenario.
    // A third entry records the 2-worker figure so the committed
    // trajectory keeps the multi-worker ratio. (On an all-I/O-churn
    // variant, where batching cannot engage, the raw lane+merge
    // bookkeeping is ~20-25 ns/event against a ~97 ns/event wheel
    // baseline, i.e. ~1.2x at one worker — see EXPERIMENTS.md.)
    let pdes_machine = {
        let mut m = Machine::small(4);
        m.n_sockets = 2;
        m.cores_per_socket = 2;
        m.with_cross_ipi_latency(Nanos::from_micros(3))
    };
    let pdes_pair = Nanos::from_secs(10);
    let pdes_scenario = |kind: EngineKind| {
        move || {
            let mut host = HostConfig::new(4);
            let spec = VcpuSpec::capped(Utilization::from_percent(25), Nanos::from_millis(20));
            for i in 0..16 {
                host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
            }
            let p = plan(&host, &PlannerOptions::default()).expect("pdes bench host plans");
            let mut sim = Sim::new(pdes_machine, Box::new(Tableau::from_plan(&p)));
            sim.set_engine(kind);
            for i in 0..16 {
                let home = p
                    .table
                    .placement(VcpuId(i as u32))
                    .map(|pl| pl.home_core)
                    .unwrap_or(i % 4);
                sim.add_vcpu(Box::new(BusyLoop), home, true);
            }
            sim
        }
    };
    // Probe once that the scenario actually partitions — a silent decline
    // would turn the A/B pair into sequential-vs-sequential.
    {
        let mut probe = pdes_scenario(EngineKind::Partitioned)();
        rayon::with_threads(1, || probe.run_until(pdes_pair));
        assert!(
            probe.stats().pdes.partitioned_runs > 0,
            "pdes bench scenario declined partitioning: {:?}",
            probe.stats().pdes
        );
    }
    let (pdes_seq, pdes_seq_min) = time_sim_entry_trimmed(
        "sim/run_until_pdes_sequential",
        pair_iters,
        pdes_pair,
        pdes_scenario(EngineKind::Wheel),
    );
    let (pdes_part, pdes_part_min) = rayon::with_threads(1, || {
        time_sim_entry_trimmed(
            "sim/run_until_pdes_partitioned",
            pair_iters,
            pdes_pair,
            pdes_scenario(EngineKind::Partitioned),
        )
    });
    let (pdes_part_2w, _) = rayon::with_threads(2, || {
        time_sim_entry_trimmed(
            "sim/run_until_pdes_partitioned_2w",
            pair_iters,
            pdes_pair,
            pdes_scenario(EngineKind::Partitioned),
        )
    });
    assert!(
        pdes_part_min <= pdes_seq_min * 1.15,
        "1-worker partitioned PDES (min {pdes_part_min:.0} ns) must stay \
         within 15% of the sequential wheel (min {pdes_seq_min:.0} ns)",
    );
    println!(
        "pdes pair: 1w/seq = {:.2}, 2w/seq = {:.2} (single-core container)",
        pdes_part.mean_ns / pdes_seq.mean_ns,
        pdes_part_2w.mean_ns / pdes_seq.mean_ns,
    );

    let (dense_entry, _) = time_sim_entry_trimmed("sim/run_until_dense", pair_iters, short, dense);
    let (sparse_entry, _) =
        time_sim_entry_trimmed("sim/run_until_sparse", pair_iters, short, sparse);
    let entries = vec![
        dense_entry,
        sparse_entry,
        batched,
        unbatched,
        pdes_seq,
        pdes_part,
        pdes_part_2w,
        events_entry,
    ];
    BenchSnapshot {
        meta: meta(quick, seed),
        entries,
    }
}

/// Where full-mode snapshots go: the repo root (`git rev-parse
/// --show-toplevel`), overridable with `TABLEAU_BENCH_DIR`.
pub(crate) fn bench_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("TABLEAU_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--show-toplevel"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| PathBuf::from(String::from_utf8_lossy(&o.stdout).trim()))
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Reads a written snapshot back and checks it is well-formed — the schema
/// smoke check CI runs via `--quick`.
fn validate(path: &std::path::Path) -> BenchSnapshot {
    let text = std::fs::read_to_string(path).expect("read snapshot back");
    let snap: BenchSnapshot = serde_json::from_str(&text).expect("snapshot schema round-trips");
    assert_eq!(snap.meta.schema, SCHEMA, "schema tag mismatch");
    assert!(!snap.entries.is_empty(), "snapshot has no entries");
    for e in &snap.entries {
        assert!(
            e.iters > 0 && e.mean_ns > 0.0,
            "degenerate entry {}",
            e.name
        );
    }
    snap
}

/// How much slower an entry may measure before the `--quick` gate calls it
/// a regression. Generous on purpose: quick mode runs few iterations on a
/// shared CI host, so only order-of-magnitude blowups should trip it.
pub const REGRESSION_FACTOR: f64 = 3.0;

/// A committed snapshot read back tolerantly: only the join key and the
/// mean survive, so older or newer snapshots with extra/missing fields
/// still compare. `None` means the file is absent or not a
/// [`SCHEMA`]-tagged snapshot — the gate skips it rather than failing.
fn read_committed(path: &Path) -> Option<Vec<(String, f64)>> {
    use serde::Value;
    let as_str = |v: &Value| match v {
        Value::Str(s) => Some(s.clone()),
        _ => None,
    };
    let as_f64 = |v: &Value| match v {
        Value::F64(f) => Some(*f),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    };
    let text = std::fs::read_to_string(path).ok()?;
    let v: Value = serde_json::from_str(&text).ok()?;
    let top = v.as_map()?;
    let meta = Value::get_field(top, "meta")?.as_map()?;
    if as_str(Value::get_field(meta, "schema")?)? != SCHEMA {
        return None;
    }
    let entries = Value::get_field(top, "entries")?.as_seq()?;
    Some(
        entries
            .iter()
            .filter_map(|e| {
                let e = e.as_map()?;
                let name = as_str(Value::get_field(e, "name")?)?;
                let mean = as_f64(Value::get_field(e, "mean_ns")?)?;
                (mean > 0.0).then_some((name, mean))
            })
            .collect(),
    )
}

/// Compares a fresh snapshot against the committed one at `path`.
///
/// Returns one line per entry that measured more than
/// [`REGRESSION_FACTOR`]x its committed mean. Entries present on only one
/// side are ignored (bench families grow over time), as are committed
/// files that are missing or carry a foreign schema — the gate only ever
/// fails on evidence, never on absence.
pub fn regressions_against(current: &BenchSnapshot, path: &Path) -> Vec<String> {
    let Some(committed) = read_committed(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for e in &current.entries {
        let Some((_, base)) = committed.iter().find(|(n, _)| *n == e.name) else {
            continue;
        };
        if e.mean_ns > base * REGRESSION_FACTOR {
            out.push(format!(
                "{}: {:.0} ns vs committed {:.0} ns ({:.1}x > {:.0}x budget, {})",
                e.name,
                e.mean_ns,
                base,
                e.mean_ns / base,
                REGRESSION_FACTOR,
                path.file_name().unwrap_or_default().to_string_lossy(),
            ));
        }
    }
    out
}

/// Runs both snapshots, prints them, writes and validates the artifacts.
/// Returns `true` when the regression gate passed (it always passes in
/// full mode, which *refreshes* the committed trajectory instead).
///
/// Full mode writes `BENCH_planner.json`/`BENCH_dispatch.json` at the repo
/// root (the committed trajectory); `--quick` writes to a scratch
/// directory instead so a smoke run never dirties the tracked files, then
/// gates each entry against the committed snapshot: any entry more than
/// [`REGRESSION_FACTOR`]x slower than its committed mean fails the run.
pub fn run(quick: bool, seed: u64) -> bool {
    let planner = planner_snapshot(quick, seed);
    let dispatch = dispatch_snapshot(quick, seed);
    let sim = sim_snapshot(quick, seed);

    for (title, snap) in [
        ("planner", &planner),
        ("dispatch", &dispatch),
        ("sim", &sim),
    ] {
        let rows: Vec<Vec<String>> = snap
            .entries
            .iter()
            .map(|e| {
                vec![
                    e.name.clone(),
                    e.iters.to_string(),
                    format!("{:.1}", e.mean_ns / 1e3),
                ]
            })
            .collect();
        print_table(
            &format!(
                "bench snapshot [{title}] rev={} cores={} threads={}",
                snap.meta.git_rev, snap.meta.machine_cores, snap.meta.threads
            ),
            &["entry", "iters", "mean(us)"],
            &rows,
        );
    }

    let dir = if quick {
        std::env::temp_dir().join("tableau-bench-quick")
    } else {
        bench_dir()
    };
    let p_path = write_json_to(&dir, "BENCH_planner", &planner);
    let d_path = write_json_to(&dir, "BENCH_dispatch", &dispatch);
    let s_path = write_json_to(&dir, "BENCH_sim", &sim);
    validate(&p_path);
    validate(&d_path);
    validate(&s_path);

    if !quick {
        return true;
    }
    let committed = bench_dir();
    let mut bad = Vec::new();
    for (snap, file) in [
        (&planner, "BENCH_planner.json"),
        (&dispatch, "BENCH_dispatch.json"),
        (&sim, "BENCH_sim.json"),
    ] {
        bad.extend(regressions_against(snap, &committed.join(file)));
    }
    for line in &bad {
        eprintln!("bench regression: {line}");
    }
    bad.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_snapshots_cover_the_hot_paths() {
        let planner = planner_snapshot(true, 42);
        let names: Vec<&str> = planner.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "plan/partitioned",
                "plan/semi_partitioned",
                "plan/clustered",
                "plan/partitioned_176",
                "plan/clustered_176",
                "plan/delta_single_vm",
                "verify/full_176",
                "verify/delta_incremental",
                "cache/miss",
                "cache/hit"
            ]
        );
        assert_eq!(planner.meta.schema, SCHEMA);
        assert!(planner.meta.quick);
        for e in &planner.entries {
            assert!(e.mean_ns > 0.0, "{} has no measured time", e.name);
        }
        // The hit path must be far cheaper than the miss path (it skips
        // planning entirely) — this is the cache's reason to exist.
        let mean = |n: &str| {
            planner
                .entries
                .iter()
                .find(|e| e.name == n)
                .unwrap()
                .mean_ns
        };
        assert!(mean("cache/hit") * 10.0 < mean("cache/miss"));
        // The delta patch recomputes one bin out of 44 and reuses every
        // other core's compiled schedule; even with quick-mode iteration
        // counts it must beat the full memoized replan by an order of
        // magnitude (the expected gap is far larger).
        assert!(
            mean("plan/delta_single_vm") * 10.0 < mean("plan/partitioned_176"),
            "delta {} ns vs full {} ns",
            mean("plan/delta_single_vm"),
            mean("plan/partitioned_176")
        );
    }

    fn fake_snapshot(entries: &[(&str, f64)]) -> BenchSnapshot {
        BenchSnapshot {
            meta: meta(false, 1),
            entries: entries
                .iter()
                .map(|&(name, mean_ns)| BenchEntry {
                    name: name.to_string(),
                    iters: 10,
                    total_ns: (mean_ns * 10.0) as u64,
                    mean_ns,
                })
                .collect(),
        }
    }

    #[test]
    fn regression_gate_trips_only_past_the_budget() {
        let dir = std::env::temp_dir().join("tableau-bench-gate-test");
        let committed = fake_snapshot(&[("a/fast", 100.0), ("a/slow", 1000.0)]);
        let path = write_json_to(&dir, "BENCH_gate", &committed);

        // Within budget (even 2.9x) passes; a retired entry is ignored.
        let ok = fake_snapshot(&[("a/fast", 290.0), ("a/new", 9e9)]);
        assert_eq!(regressions_against(&ok, &path), Vec::<String>::new());

        // Past the budget fails, and names the entry.
        let bad = fake_snapshot(&[("a/fast", 301.0), ("a/slow", 500.0)]);
        let lines = regressions_against(&bad, &path);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("a/fast"), "{lines:?}");
    }

    #[test]
    fn regression_gate_tolerates_absent_or_foreign_snapshots() {
        let dir = std::env::temp_dir().join("tableau-bench-gate-tolerant");
        std::fs::create_dir_all(&dir).unwrap();
        let current = fake_snapshot(&[("a/fast", 1e12)]);

        // Missing file: no evidence, no failure.
        assert!(regressions_against(&current, &dir.join("nope.json")).is_empty());

        // Foreign schema: skipped.
        let foreign = dir.join("foreign.json");
        std::fs::write(
            &foreign,
            r#"{"meta":{"schema":"other-v9"},"entries":[{"name":"a/fast","mean_ns":1.0}]}"#,
        )
        .unwrap();
        assert!(regressions_against(&current, &foreign).is_empty());

        // Right schema but entries missing fields: the malformed entry is
        // dropped, the well-formed one still compares.
        let partial = dir.join("partial.json");
        std::fs::write(
            &partial,
            format!(
                r#"{{"meta":{{"schema":"{SCHEMA}"}},"entries":[{{"name":"a/fast"}},{{"name":"a/slow","mean_ns":10.0,"extra":true}}]}}"#
            ),
        )
        .unwrap();
        let current = fake_snapshot(&[("a/fast", 1e12), ("a/slow", 40.0)]);
        let lines = regressions_against(&current, &partial);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("a/slow"), "{lines:?}");
    }

    #[test]
    fn snapshot_schema_round_trips_through_json() {
        let dispatch = dispatch_snapshot(true, 7);
        assert_eq!(dispatch.entries.len(), 4);
        let dir = std::env::temp_dir().join("tableau-bench-schema-test");
        let path = write_json_to(&dir, "BENCH_dispatch_test", &dispatch);
        let back = validate(&path);
        assert_eq!(back.meta.seed, 7);
        assert_eq!(back.entries.len(), dispatch.entries.len());
        for (a, b) in back.entries.iter().zip(&dispatch.entries) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.total_ns, b.total_ns);
        }
    }
}
