//! Figs. 7 & 8: nginx HTTPS latency-vs-throughput curves.
//!
//! The vantage VM serves fixed-size files (1 KiB / 100 KiB / 1 MiB) over
//! HTTPS while an open-loop wrk2-style generator sweeps the request rate;
//! every other VM runs a background workload (I/O-intensive for Fig. 7,
//! cache-thrashing for Fig. 8). Each row of the paper's figures is a curve
//! of {mean, p99, max} latency against achieved throughput.
//!
//! Key shapes to reproduce (Secs. 7.4–7.5):
//!
//! * Tableau reaches the highest SLA-aware peak throughput for 1 KiB and
//!   100 KiB files in both capped and uncapped scenarios;
//! * RTDS collapses under the I/O background (scheduler overhead eats the
//!   vantage VM's budget);
//! * Credit's tail latencies climb well before its peak;
//! * uncapped Tableau beats capped Tableau (the second-level scheduler);
//! * **exception**: capped 1 MiB, where Credit beats Tableau — the NIC
//!   ring drains and idles during table blackouts (Sec. 7.5);
//! * Fig. 8 (CPU-bound background): all schedulers converge in the capped
//!   scenario; uncapped, Tableau keeps its capped-level peak while
//!   Credit/Credit2 lose throughput to the aggressive background VMs.

use serde::Serialize;

use rtsched::time::Nanos;
use workloads::wrk2::{constant_rate_arrivals, LoadPoint};
use workloads::HttpServer;
use xensim::Machine;

use crate::config::{
    build_scenario, Background, SchedKind, CAPPED_SCHEDULERS, UNCAPPED_SCHEDULERS,
};
use crate::report::{print_table, write_json};

/// One measured point of one curve.
#[derive(Debug, Clone, Serialize)]
pub struct CurvePoint {
    /// Scheduler label.
    pub scheduler: String,
    /// Capped or uncapped scenario.
    pub capped: bool,
    /// Background workload label.
    pub background: String,
    /// Response size in KiB.
    pub file_kib: u64,
    /// The latency/throughput measurements.
    #[serde(flatten)]
    pub load: LoadPoint,
}

/// Measures one (scheduler, scenario, size, rate) point.
pub fn measure(
    machine: Machine,
    kind: SchedKind,
    capped: bool,
    bg: Background,
    file_kib: u64,
    rate: f64,
    duration: Nanos,
) -> CurvePoint {
    let (mut sim, vantage) = build_scenario(
        machine,
        4,
        kind,
        capped,
        Box::new(HttpServer::new(file_kib * 1024)),
        bg,
    );
    for t in constant_rate_arrivals(rate, duration) {
        sim.push_external(t, vantage, 0);
    }
    // Measure exactly the load window; requests still in flight at the cut
    // simply do not count (as with a fixed-duration wrk2 run).
    sim.run_until(duration);
    let server = sim
        .workload_mut(vantage)
        .as_any()
        .downcast_ref::<HttpServer>()
        .expect("http server");
    CurvePoint {
        scheduler: kind.label().to_string(),
        capped,
        background: bg.label().to_string(),
        file_kib,
        load: LoadPoint::from_histogram(rate, server.completed, duration, &server.latencies),
    }
}

/// The swept request rates per file size (requests per second).
pub fn rates_for(file_kib: u64, quick: bool) -> Vec<f64> {
    let full: &[f64] = match file_kib {
        1 => &[
            200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0, 1400.0, 1600.0, 1800.0, 2000.0, 2400.0,
        ],
        100 => &[
            100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0, 1000.0,
        ],
        1024 => &[10.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0],
        _ => &[100.0, 500.0, 1000.0],
    };
    if quick {
        full.iter().step_by(3).copied().collect()
    } else {
        full.to_vec()
    }
}

/// Sweeps one figure row (one file size, one scenario).
pub fn sweep(
    machine: Machine,
    kinds: &[SchedKind],
    capped: bool,
    bg: Background,
    file_kib: u64,
    duration: Nanos,
    quick: bool,
) -> Vec<CurvePoint> {
    let mut out = Vec::new();
    for &kind in kinds {
        for rate in rates_for(file_kib, quick) {
            out.push(measure(machine, kind, capped, bg, file_kib, rate, duration));
        }
    }
    out
}

fn print_points(title: &str, points: &[CurvePoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.scheduler.clone(),
                if p.capped { "capped" } else { "uncapped" }.into(),
                p.file_kib.to_string(),
                format!("{:.0}", p.load.offered_rps),
                format!("{:.0}", p.load.achieved_rps),
                format!("{:.2}", p.load.mean_ms),
                format!("{:.2}", p.load.p99_ms),
                format!("{:.2}", p.load.max_ms),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "scheduler",
            "scenario",
            "KiB",
            "offered",
            "achieved",
            "mean(ms)",
            "p99(ms)",
            "max(ms)",
        ],
        &rows,
    );
}

/// Runs the full Fig. 7 grid (I/O background).
pub fn run_fig7(quick: bool) -> Vec<CurvePoint> {
    let machine = crate::config::guest_machine_16core();
    let duration = if quick {
        Nanos::from_millis(600)
    } else {
        Nanos::from_secs(5)
    };
    let mut points = Vec::new();
    for &file_kib in &[1u64, 100, 1024] {
        points.extend(sweep(
            machine,
            &CAPPED_SCHEDULERS,
            true,
            Background::Io,
            file_kib,
            duration,
            quick,
        ));
        points.extend(sweep(
            machine,
            &UNCAPPED_SCHEDULERS,
            false,
            Background::Io,
            file_kib,
            duration,
            quick,
        ));
    }
    print_points(
        "Fig. 7: nginx HTTPS latency vs. throughput (IO BG)",
        &points,
    );
    write_json("fig7_nginx_io_bg", &points);
    points
}

/// Runs the full Fig. 8 grid (cache-thrashing background, 100 KiB files).
pub fn run_fig8(quick: bool) -> Vec<CurvePoint> {
    let machine = crate::config::guest_machine_16core();
    let duration = if quick {
        Nanos::from_millis(600)
    } else {
        Nanos::from_secs(5)
    };
    let mut points = sweep(
        machine,
        &CAPPED_SCHEDULERS,
        true,
        Background::Cpu,
        100,
        duration,
        quick,
    );
    points.extend(sweep(
        machine,
        &UNCAPPED_SCHEDULERS,
        false,
        Background::Cpu,
        100,
        duration,
        quick,
    ));
    print_points(
        "Fig. 8: nginx HTTPS latency vs. throughput (cache-thrash BG, 100 KiB)",
        &points,
    );
    write_json("fig8_nginx_cpu_bg", &points);
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::sla_peak_throughput;

    fn small() -> Machine {
        Machine::small(2)
    }

    const DUR: Nanos = Nanos(2_000_000_000);

    fn peak(kind: SchedKind, capped: bool, bg: Background, kib: u64) -> f64 {
        // Scale rates to the 2-core machine: the vantage VM still has a
        // 25% reservation of one core, so per-VM peaks match the paper's.
        let points: Vec<LoadPoint> = rates_for(kib, true)
            .into_iter()
            .map(|r| measure(small(), kind, capped, bg, kib, r, DUR).load)
            .collect();
        sla_peak_throughput(&points, 100.0)
    }

    #[test]
    fn tableau_beats_rtds_on_small_files_with_io_bg() {
        // The RTDS degradation is a *scale* effect: the background VMs'
        // scheduler-invocation churn needs the full 12-guest-core machine,
        // so this check runs on the paper's platform. Near saturation
        // RTDS's p99 climbs steeply while Tableau's stays at its table
        // bound; the SLA-aware peaks separate accordingly.
        let machine = crate::config::guest_machine_16core();
        let curve = |kind: SchedKind| -> Vec<LoadPoint> {
            [1200.0, 1400.0, 1600.0]
                .into_iter()
                .map(|r| measure(machine, kind, true, Background::Io, 1, r, DUR).load)
                .collect()
        };
        let tableau = curve(SchedKind::Tableau);
        let rtds = curve(SchedKind::Rtds);
        let t = sla_peak_throughput(&tableau, 30.0);
        let r = sla_peak_throughput(&rtds, 30.0);
        assert!(
            t > r * 1.1,
            "Tableau {t} req/s vs RTDS {r} req/s (expected a clear win)"
        );
        // Tableau's p99 stays within ~its table bound at every tested rate.
        assert!(
            tableau.iter().all(|p| p.p99_ms < 15.0),
            "Tableau tails not flat: {tableau:?}"
        );
        // RTDS's p99 at the top rate has left the bounded regime.
        assert!(rtds.last().unwrap().p99_ms > 20.0);
    }

    #[test]
    fn uncapped_tableau_beats_capped_tableau() {
        let capped = peak(SchedKind::Tableau, true, Background::Io, 100);
        let uncapped = peak(SchedKind::Tableau, false, Background::Io, 100);
        assert!(
            uncapped > capped,
            "level 2 should lift throughput: {uncapped} vs {capped}"
        );
    }

    #[test]
    fn saturation_raises_latency() {
        // Far beyond peak, latency must blow past any SLA.
        let p = measure(
            small(),
            SchedKind::Tableau,
            true,
            Background::Io,
            1,
            5_000.0,
            DUR,
        );
        assert!(
            p.load.p99_ms > 100.0,
            "p99 only {} ms at 5k rps",
            p.load.p99_ms
        );
        // And achieved < offered.
        assert!(p.load.achieved_rps < 3_000.0);
    }

    #[test]
    fn low_rate_latency_is_low_for_dynamic_schedulers() {
        let p = measure(
            small(),
            SchedKind::Credit,
            false,
            Background::Cpu,
            1,
            50.0,
            DUR,
        );
        assert!(
            p.load.mean_ms < 20.0,
            "mean {} ms at 50 rps",
            p.load.mean_ms
        );
        assert!((p.load.achieved_rps - 50.0).abs() < 5.0);
    }
}
