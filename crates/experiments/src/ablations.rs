//! Ablation studies for the design choices the paper argues from.
//!
//! Four knobs, each isolating one claim:
//!
//! * **Credit's boost heuristic** (Sec. 2.1 / 7.4): with a CPU-bound
//!   background, boosting rescues I/O latency; with an I/O-bound
//!   background, everyone is boosted and the heuristic buys nothing —
//!   "unpredictable heuristics that sometimes backfire", quantified.
//! * **Second-level scheduler** (Sec. 4): disabling it (capping every VM)
//!   surrenders the idle cycles that give uncapped Tableau its throughput
//!   edge; also reports the share of dispatches the second level
//!   contributes (the paper's "over 85%" trace).
//! * **Second-level epoch length**: the fairness/overhead trade-off of the
//!   epoch tunable.
//! * **Peephole pass** (Sec. 5, future work): preemptions removed from
//!   real mixed-period tables, at what planning cost.

use serde::Serialize;

use rtsched::time::Nanos;
use schedulers::tableau::Tableau;
use schedulers::Credit;
use tableau_core::planner::{plan, PlannerOptions};
use tableau_core::vcpu::{HostConfig, Utilization, VcpuSpec, VmSpec};
use workloads::ping::{ping_arrivals, PingResponder};
use workloads::HttpServer;
use xensim::{Machine, Sim, VcpuId};

use crate::config::{build_scenario, Background, SchedKind};
use crate::report::{print_table, write_json};

/// Results of the boost ablation.
#[derive(Debug, Clone, Serialize)]
pub struct BoostAblation {
    /// Background flavor.
    pub background: String,
    /// Max ping latency with boosting (ms).
    pub with_boost_ms: f64,
    /// Max ping latency without boosting (ms).
    pub without_boost_ms: f64,
}

fn ping_max(machine: Machine, boost: bool, bg: Background, arrivals: &[Nanos]) -> f64 {
    let (mut sim, vantage) = build_scenario(
        machine,
        4,
        SchedKind::Credit,
        false,
        Box::new(PingResponder::new()),
        bg,
    );
    if !boost {
        sim.scheduler_mut()
            .as_any()
            .downcast_mut::<Credit>()
            .expect("credit")
            .set_boost_enabled(false);
    }
    for &t in arrivals {
        sim.push_external(t, vantage, 0);
    }
    sim.run_until(*arrivals.last().unwrap() + Nanos::from_millis(500));
    sim.workload_mut(vantage)
        .as_any()
        .downcast_ref::<PingResponder>()
        .unwrap()
        .latencies
        .max()
        .as_millis_f64()
}

/// Runs the boost ablation: Credit with and without BOOST, per background.
pub fn boost_ablation(quick: bool) -> Vec<BoostAblation> {
    let machine = crate::config::guest_machine_16core();
    let arrivals = if quick {
        ping_arrivals(4, 200, Nanos::from_millis(10), 7)
    } else {
        ping_arrivals(8, 2_000, Nanos::from_millis(20), 7)
    };
    let mut out = Vec::new();
    for bg in [Background::Cpu, Background::Io] {
        out.push(BoostAblation {
            background: bg.label().to_string(),
            with_boost_ms: ping_max(machine, true, bg, &arrivals),
            without_boost_ms: ping_max(machine, false, bg, &arrivals),
        });
    }
    out
}

/// Results of the second-level ablation.
#[derive(Debug, Clone, Serialize)]
pub struct Level2Ablation {
    /// Second-level epoch in ms (0 = second level disabled via caps).
    pub epoch_ms: u64,
    /// Achieved throughput at the probe rate (req/s).
    pub achieved_rps: f64,
    /// Fraction of the vantage VM's dispatches made by the second level.
    pub level2_fraction: f64,
}

fn l2_point(machine: Machine, epoch: Option<Nanos>, rate: f64, duration: Nanos) -> Level2Ablation {
    // Build the Tableau scenario manually so the epoch is controllable.
    let n_cores = machine.n_cores();
    let mut host = HostConfig::new(n_cores);
    let capped = epoch.is_none();
    let u = Utilization::from_percent(25);
    let spec = if capped {
        VcpuSpec::capped(u, Nanos::from_millis(20))
    } else {
        VcpuSpec::new(u, Nanos::from_millis(20))
    };
    for i in 0..n_cores * 4 {
        host.add_vm(VmSpec::uniform(format!("vm{i}"), 1, spec));
    }
    let p = plan(&host, &PlannerOptions::default()).expect("plans");
    let sched =
        Tableau::from_plan_with_epoch(&p, epoch.unwrap_or(tableau_core::level2::DEFAULT_EPOCH));
    let mut sim = Sim::new(machine, Box::new(sched));
    let vantage = sim.add_vcpu(Box::new(HttpServer::new(100 * 1024)), 0, false);
    for i in 1..n_cores * 4 {
        sim.add_vcpu(
            Box::new(workloads::IoStress::paper_default()),
            i % n_cores,
            true,
        );
    }
    for t in workloads::constant_rate_arrivals(rate, duration) {
        sim.push_external(t, vantage, 0);
    }
    sim.run_until(duration);
    let completed = sim
        .workload_mut(vantage)
        .as_any()
        .downcast_ref::<HttpServer>()
        .unwrap()
        .completed;
    let counts = sim
        .scheduler_mut()
        .as_any()
        .downcast_mut::<Tableau>()
        .unwrap()
        .pick_counts(VcpuId(vantage.0));
    Level2Ablation {
        epoch_ms: epoch.map(|e| e.as_millis()).unwrap_or(0),
        achieved_rps: completed as f64 / duration.as_secs_f64(),
        level2_fraction: counts.level2_fraction(),
    }
}

/// Runs the second-level ablation at a rate above the table reservation.
pub fn level2_ablation(quick: bool) -> Vec<Level2Ablation> {
    let machine = crate::config::guest_machine_16core();
    let duration = if quick {
        Nanos::from_millis(800)
    } else {
        Nanos::from_secs(4)
    };
    // 700 req/s of 100 KiB needs ~29% of a core: beyond the 25% table
    // share, reachable only through the second level (Sec. 7.4's probe).
    let rate = 700.0;
    let mut out = vec![l2_point(machine, None, rate, duration)];
    for epoch_ms in [1u64, 10, 100] {
        out.push(l2_point(
            machine,
            Some(Nanos::from_millis(epoch_ms)),
            rate,
            duration,
        ));
    }
    out
}

/// Results of the peephole ablation.
#[derive(Debug, Clone, Serialize)]
pub struct PeepholeAblation {
    /// Allocations without the pass.
    pub allocations_plain: usize,
    /// Allocations with the pass.
    pub allocations_peephole: usize,
    /// Planning time without the pass (ms).
    pub time_plain_ms: f64,
    /// Planning time with the pass (ms).
    pub time_peephole_ms: f64,
}

/// Runs the peephole ablation on a mixed-period host.
pub fn peephole_ablation() -> PeepholeAblation {
    let mut host = HostConfig::new(8);
    for i in 0..8 {
        host.add_vm(VmSpec::uniform(
            format!("fast{i}"),
            1,
            VcpuSpec::capped(Utilization::from_percent(20), Nanos::from_millis(3)),
        ));
        host.add_vm(VmSpec::uniform(
            format!("slow{i}"),
            1,
            VcpuSpec::capped(Utilization::from_percent(55), Nanos::from_millis(80)),
        ));
    }
    let count = |p: &tableau_core::planner::Plan| -> usize {
        (0..p.table.n_cores())
            .map(|c| p.table.cpu(c).allocations().len())
            .sum()
    };
    let t0 = std::time::Instant::now();
    let plain = plan(&host, &PlannerOptions::default()).unwrap();
    let time_plain = t0.elapsed();
    let t0 = std::time::Instant::now();
    let opt = plan(
        &host,
        &PlannerOptions {
            peephole: true,
            ..PlannerOptions::default()
        },
    )
    .unwrap();
    let time_peephole = t0.elapsed();
    PeepholeAblation {
        allocations_plain: count(&plain),
        allocations_peephole: count(&opt),
        time_plain_ms: time_plain.as_secs_f64() * 1e3,
        time_peephole_ms: time_peephole.as_secs_f64() * 1e3,
    }
}

/// The combined ablation report.
#[derive(Debug, Clone, Serialize)]
pub struct Ablations {
    /// Credit boost on/off.
    pub boost: Vec<BoostAblation>,
    /// Second-level scheduler off/epoch sweep.
    pub level2: Vec<Level2Ablation>,
    /// Peephole pass effect.
    pub peephole: PeepholeAblation,
}

/// Runs and prints all ablations.
pub fn run(quick: bool) -> Ablations {
    let boost = boost_ablation(quick);
    print_table(
        "Ablation: Credit's BOOST heuristic (max ping latency, ms)",
        &["background", "with boost", "without boost"],
        &boost
            .iter()
            .map(|b| {
                vec![
                    b.background.clone(),
                    format!("{:.2}", b.with_boost_ms),
                    format!("{:.2}", b.without_boost_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let level2 = level2_ablation(quick);
    print_table(
        "Ablation: second-level scheduler (100 KiB @ 700 rps, table share 25%)",
        &["epoch", "achieved rps", "level-2 dispatch share"],
        &level2
            .iter()
            .map(|l| {
                vec![
                    if l.epoch_ms == 0 {
                        "off (capped)".to_string()
                    } else {
                        format!("{} ms", l.epoch_ms)
                    },
                    format!("{:.0}", l.achieved_rps),
                    format!("{:.0}%", l.level2_fraction * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let peephole = peephole_ablation();
    print_table(
        "Ablation: peephole pass (mixed-period host)",
        &["", "plain", "peephole"],
        &[
            vec![
                "allocations".to_string(),
                peephole.allocations_plain.to_string(),
                peephole.allocations_peephole.to_string(),
            ],
            vec![
                "plan time (ms)".to_string(),
                format!("{:.2}", peephole.time_plain_ms),
                format!("{:.2}", peephole.time_peephole_ms),
            ],
        ],
    );

    let out = Ablations {
        boost,
        level2,
        peephole,
    };
    write_json("ablations", &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boost_helps_exactly_when_the_background_is_cpu_bound() {
        let machine = Machine::small(2);
        let arrivals = ping_arrivals(4, 150, Nanos::from_millis(10), 3);
        // CPU-bound background: boosting rescues the I/O vantage.
        let with_b = ping_max(machine, true, Background::Cpu, &arrivals);
        let without = ping_max(machine, false, Background::Cpu, &arrivals);
        assert!(
            with_b < without,
            "boost should help vs CPU hogs: {with_b} vs {without}"
        );
    }

    #[test]
    fn second_level_lifts_throughput_beyond_the_table_share() {
        let machine = Machine::small(2);
        let dur = Nanos::from_secs(2);
        let off = l2_point(machine, None, 700.0, dur);
        let on = l2_point(machine, Some(Nanos::from_millis(10)), 700.0, dur);
        assert!(
            on.achieved_rps > off.achieved_rps * 1.1,
            "L2 should lift throughput: {} vs {}",
            on.achieved_rps,
            off.achieved_rps
        );
        assert!(on.level2_fraction > 0.3, "{}", on.level2_fraction);
        assert_eq!(off.level2_fraction, 0.0);
    }

    #[test]
    fn peephole_reduces_or_preserves_allocations() {
        let r = peephole_ablation();
        assert!(r.allocations_peephole <= r.allocations_plain);
    }
}
