//! Fig. 6: average and maximum round-trip ping latency to a vantage VM.
//!
//! ICMP echoes are handled in the guest kernel, so in a controlled network
//! the latency is dominated by how quickly the VM scheduler dispatches the
//! VM after the packet's wake-up. The paper's observations to reproduce:
//!
//! * uncapped, no background: ~100 µs averages for every scheduler;
//! * capped: Tableau's average is visibly higher (the table's rigidity)
//!   but bounded well under the 20 ms goal;
//! * Credit's maximum explodes under background load (up to ~75 ms
//!   uncapped-IO, ~30 ms capped-IO, ~15 ms capped even with *no*
//!   background — parked by occasional system activity);
//! * RTDS and Tableau cap the maximum near their configured bounds
//!   (~9–10 ms).
//!
//! The paper sends 8 x 5,000 pings spaced uniformly in [0, 200 ms) (~8
//! minutes of wall time); the default here keeps the count but compresses
//! spacing to [0, 50 ms) so the simulation covers ~2 simulated minutes.
//! Spacing does not change what is measured (each ping is an independent
//! wake-up probe) as long as pings remain sparse relative to service time,
//! which they are in both configurations.

use serde::Serialize;

use rand::rngs::StdRng;
use rand::Rng;
use rtsched::time::Nanos;
use workloads::ping::{ping_arrivals, PingResponder};
use xensim::Machine;

use crate::config::{
    build_scenario, Background, SchedKind, CAPPED_SCHEDULERS, UNCAPPED_SCHEDULERS,
};
use crate::report::{print_table, write_json};

/// One bar pair of Fig. 6.
#[derive(Debug, Clone, Serialize)]
pub struct PingPoint {
    /// Scheduler label.
    pub scheduler: String,
    /// Capped or uncapped scenario.
    pub capped: bool,
    /// Background workload label.
    pub background: String,
    /// Mean ping latency in microseconds (Fig. 6a/6b).
    pub avg_us: f64,
    /// Maximum ping latency in milliseconds (Fig. 6c/6d).
    pub max_ms: f64,
    /// Number of ping samples recorded.
    pub samples: u64,
}

/// Measures one configuration with the given ping schedule.
pub fn measure(
    machine: Machine,
    kind: SchedKind,
    capped: bool,
    bg: Background,
    arrivals: &[Nanos],
) -> PingPoint {
    let (mut sim, vantage) =
        build_scenario(machine, 4, kind, capped, Box::new(PingResponder::new()), bg);
    for &t in arrivals {
        sim.push_external(t, vantage, 0);
    }
    let end = *arrivals.last().expect("non-empty schedule") + Nanos::from_millis(500);
    sim.run_until(end);
    let responder = sim
        .workload_mut(vantage)
        .as_any()
        .downcast_ref::<PingResponder>()
        .expect("ping responder");
    PingPoint {
        scheduler: kind.label().to_string(),
        capped,
        background: bg.label().to_string(),
        avg_us: responder.latencies.mean().as_micros_f64(),
        max_ms: responder.latencies.max().as_millis_f64(),
        samples: responder.latencies.count(),
    }
}

/// Generates the ping schedule (seeded; spacing compressed vs. the paper,
/// see module docs). `quick` shrinks the sample count for tests.
pub fn schedule(quick: bool, seed: u64) -> Vec<Nanos> {
    if quick {
        ping_arrivals(8, 100, Nanos::from_millis(10), seed)
    } else {
        ping_arrivals(8, 5_000, Nanos::from_millis(50), seed)
    }
}

/// Runs the full Fig. 6 grid.
pub fn run(quick: bool) -> Vec<PingPoint> {
    let machine = crate::config::guest_machine_16core();
    let arrivals = schedule(quick, 2018);
    let mut points = Vec::new();
    for bg in [Background::None, Background::Io, Background::Cpu] {
        for kind in CAPPED_SCHEDULERS {
            points.push(measure(machine, kind, true, bg, &arrivals));
        }
        for kind in UNCAPPED_SCHEDULERS {
            points.push(measure(machine, kind, false, bg, &arrivals));
        }
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                if p.capped { "capped" } else { "uncapped" }.to_string(),
                p.background.clone(),
                p.scheduler.clone(),
                format!("{:.1}", p.avg_us),
                format!("{:.2}", p.max_ms),
            ]
        })
        .collect();
    print_table(
        "Fig. 6: ping latency to the vantage VM",
        &["scenario", "BG", "scheduler", "avg (us)", "max (ms)"],
        &rows,
    );
    write_json("fig6_ping_latency", &points);
    points
}

/// Jittered single-ping helper used by examples: a one-off ping at `at`.
pub fn one_ping_at(rng: &mut StdRng, window: Nanos) -> Nanos {
    Nanos(rng.gen_range(0..window.as_nanos().max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small() -> Machine {
        Machine::small(2)
    }

    fn arrivals() -> Vec<Nanos> {
        ping_arrivals(4, 150, Nanos::from_millis(10), 7)
    }

    #[test]
    fn all_pings_are_answered() {
        let p = measure(
            small(),
            SchedKind::Tableau,
            true,
            Background::Io,
            &arrivals(),
        );
        assert_eq!(p.samples, 600);
    }

    #[test]
    fn uncapped_idle_latency_is_microseconds() {
        for kind in UNCAPPED_SCHEDULERS {
            let p = measure(small(), kind, false, Background::None, &arrivals());
            assert!(
                p.avg_us < 500.0,
                "{}: avg {} us in an idle system",
                p.scheduler,
                p.avg_us
            );
        }
    }

    #[test]
    fn tableau_max_respects_latency_goal() {
        for bg in [Background::None, Background::Io, Background::Cpu] {
            for capped in [true, false] {
                let p = measure(small(), SchedKind::Tableau, capped, bg, &arrivals());
                assert!(
                    p.max_ms <= 20.5,
                    "{} capped={}: max {} ms",
                    p.background,
                    capped,
                    p.max_ms
                );
            }
        }
    }

    #[test]
    fn capped_tableau_average_reflects_table_rigidity() {
        // Capped: pings arriving between slots wait for the next slot, so
        // the average is far above the uncapped case.
        let capped = measure(
            small(),
            SchedKind::Tableau,
            true,
            Background::None,
            &arrivals(),
        );
        let uncapped = measure(
            small(),
            SchedKind::Tableau,
            false,
            Background::None,
            &arrivals(),
        );
        assert!(
            capped.avg_us > 4.0 * uncapped.avg_us,
            "capped {} vs uncapped {}",
            capped.avg_us,
            uncapped.avg_us
        );
    }

    #[test]
    fn one_ping_helper_is_in_window() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(one_ping_at(&mut rng, Nanos(1_000)) < Nanos(1_000));
        }
    }
}
